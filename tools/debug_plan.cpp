// Triage tool: run one fault plan against a checker-calibrated monitor with
// debug logging, printing per-sample diagnostics around the violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include "core/checker.h"
#include "util/log.h"

using namespace avis;

int main(int argc, char** argv) {
  // usage: debug_plan <personality 0|1> <workload 0|1|2> <type:instance:ms>...
  util::Logger::instance().set_level(util::LogLevel::kDebug);
  int pers = atoi(argv[1]);
  int wl = atoi(argv[2]);
  fw::BugRegistry all_bugs = fw::BugRegistry::current_code_base();
  for (fw::BugId id : fw::kAllBugs) all_bugs.enable(id);
  core::Checker checker(static_cast<fw::Personality>(pers),
                        static_cast<workload::WorkloadId>(wl), all_bugs);
  const auto& model = checker.model();
  printf("tau=%.2f P=%.2f A=%.2f D=%d dur=%.1fs\n", model.tau(), model.max_position_spread(),
         model.max_accel_spread(), model.mode_graph().diameter(),
         model.profiling_duration_ms() / 1000.0);

  core::ExperimentSpec spec;
  spec.personality = static_cast<fw::Personality>(pers);
  spec.workload = static_cast<workload::WorkloadId>(wl);
  spec.bugs = all_bugs;
  spec.seed = 100;
  spec.stop_on_violation = false;
  for (int i = 3; i < argc; ++i) {
    int type, inst; long ms;
    sscanf(argv[i], "%d:%d:%ld", &type, &inst, &ms);
    spec.plan.add(ms, {static_cast<sensors::SensorType>(type), static_cast<uint8_t>(inst)});
  }
  printf("plan: %s\n", spec.plan.to_string().c_str());
  core::SimulationHarness harness;
  auto r = harness.run(spec, &model);
  printf("passed=%d violation=%s transitions:", r.workload_passed,
         r.violation ? core::to_string(r.violation->type) : "none");
  for (auto& t : r.transitions) printf(" %s@%.1f", t.mode_name.c_str(), t.time_ms / 1000.0);
  printf("\n");
  if (r.violation) {
    printf("VIOLATION t=%.1fs mode=%s details=%s\n", r.violation->time_ms / 1000.0,
           fw::CompositeMode::from_id(r.violation->mode_id).name().c_str(),
           r.violation->details.c_str());
  }
  // per-sample distances near violation
  long vt = r.violation ? r.violation->time_ms : 0;
  for (auto& s : r.trace) {
    if (r.violation && std::abs(s.time_ms - vt) <= 2000) {
      double best = 1e9;
      for (size_t i = 0; i < model.profiling_run_count(); ++i)
        best = std::min(best, model.state_distance(s, model.profiling_state(i, s.time_ms)));
      const auto& g = model.profiling_state(0, s.time_ms);
      printf("  t=%5.1fs d=%6.2f mode=%-12s alt=%5.1f armed=%d ground=%d | golden mode=%-12s alt=%5.1f\n",
             s.time_ms / 1000.0, best, fw::CompositeMode::from_id(s.mode_id).name().c_str(),
             -s.position.z, s.armed, s.on_ground,
             fw::CompositeMode::from_id(g.mode_id).name().c_str(), -g.position.z);
    }
  }
  return 0;
}
