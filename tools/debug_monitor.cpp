#include <cstdio>
#include "core/checker.h"

int main(int argc, char** argv) {
  using namespace avis;
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  const auto& model = checker.model();
  printf("tau=%.2f P=%.2f A=%.2f D=%d\n", model.tau(), model.max_position_spread(),
         model.max_accel_spread(), model.mode_graph().diameter());

  core::ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 1100;
  if (argc > 1) spec.plan.add(atoi(argv[2] ? argv[2] : 0) , {});
  // fault: compass#1 at t=0
  spec.plan = {};
  spec.plan.add(0, {sensors::SensorType::kCompass, 1});
  spec.stop_on_violation = false;
  core::SimulationHarness harness;
  auto r = harness.run(spec, nullptr);  // run WITHOUT monitor, full trace
  printf("passed=%d transitions:", r.workload_passed);
  for (auto& t : r.transitions) printf(" %s@%.1f", t.mode_name.c_str(), t.time_ms / 1000.0);
  printf("\n");
  // Now compute distances per sample
  for (size_t k = 0; k < r.trace.size(); k += 5) {
    const auto& s = r.trace[k];
    double best = 1e9; double dists[3];
    for (size_t i = 0; i < model.profiling_run_count(); ++i) {
      double d = model.state_distance(s, model.profiling_state(i, s.time_ms));
      dists[i] = d;
      if (d < best) best = d;
    }
    if (best > model.tau() || s.time_ms % 5000 == 0) {
      const auto& g = model.profiling_state(0, s.time_ms);
      printf("t=%5.1fs best=%6.2f [%5.1f %5.1f %5.1f] test_mode=%-10s pos=(%5.1f,%5.1f,%5.1f) golden_mode=%-10s gpos=(%5.1f,%5.1f,%5.1f) acc=(%4.1f,%4.1f,%4.1f) gacc=(%4.1f,%4.1f,%4.1f)%s\n",
             s.time_ms / 1000.0, best, dists[0], dists[1], dists[2],
             fw::CompositeMode::from_id(s.mode_id).name().c_str(), s.position.x, s.position.y, -s.position.z,
             fw::CompositeMode::from_id(g.mode_id).name().c_str(), g.position.x, g.position.y, -g.position.z,
             s.acceleration.x, s.acceleration.y, s.acceleration.z,
             g.acceleration.x, g.acceleration.y, g.acceleration.z,
             best > model.tau() ? "  <-- VIOLATION" : "");
    }
  }
  return 0;
}
