#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_throughput.json against the
committed baseline (bench/baselines/BENCH_throughput.json).

Only the single-worker configurations are gated — multi-worker numbers on
shared CI runners measure the neighbours more than the code — and the guard
band is deliberately generous (fail only on >30% items/sec regression) so a
noisy runner does not block an innocent change. A real hot-loop regression
(2x slower harness, broken checkpoint reuse) still trips it loudly.

Usage: check_bench_regression.py CURRENT.json BASELINE.json [GATED_NAME...]

Extra arguments override the default gated-name list, so the same gate can
run against other bench binaries (CI gates perf_micro's BM_BatchStep rows
against bench/baselines/BENCH_perf_micro.json this way).
"""

import json
import sys

# Single-worker benches worth gating; names must match google-benchmark's
# JSON "name" field exactly. BM_SingleExperiment is gated at batch width 4 —
# the width the checker runs at by default (Checker::kAutoBatchWidth).
GATED = [
    "BM_SingleExperiment/4",
    "BM_CheckerCampaign/1/process_time/real_time",
]

# Fail only below this fraction of the baseline rate (>30% regression).
GUARD_BAND = 0.70


def rates(report_path):
    with open(report_path) as fh:
        report = json.load(fh)
    out = {}
    for bench in report.get("benchmarks", []):
        if "items_per_second" in bench:
            out[bench["name"]] = float(bench["items_per_second"])
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current = rates(argv[1])
    baseline = rates(argv[2])
    gated = argv[3:] if len(argv) > 3 else GATED
    failures = []
    for name in gated:
        # A gated bench missing from either side is a failure: silently
        # skipping would turn the gate into a no-op after a bench rename or
        # a truncated baseline refresh.
        if name not in baseline:
            failures.append(f"{name}: missing from baseline (refresh it or update GATED)")
            continue
        if name not in current:
            failures.append(f"{name}: missing from current report")
            continue
        ratio = current[name] / baseline[name]
        status = "OK" if ratio >= GUARD_BAND else "REGRESSION"
        print(f"  {name}: {current[name]:.2f} vs baseline {baseline[name]:.2f} "
              f"items/s ({ratio:.2f}x) {status}")
        if ratio < GUARD_BAND:
            failures.append(
                f"{name}: {current[name]:.2f} items/s is below "
                f"{GUARD_BAND:.0%} of baseline {baseline[name]:.2f}")
    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
