// Campaign CLI: run an (approach x personality x workload x environment)
// scenario grid through core::CampaignRunner and emit the machine-readable
// JSON report the bench trajectory tracks (per-cell experiments/sec, unsafe
// counts, bug-first-found simulation indices).
//
// Grids are declarative core::ScenarioGrid documents (docs/SCENARIOS.md).
// The CSV flags are sugar that builds a grid through the registries; the
// same grid can be written out with --dump-scenario and run later (or on
// another host) with --scenario-file, producing a report identical to the
// flag-built run modulo wall-clock timing fields.
//
// Examples:
//   avis_campaign                                   # full 4x2x2 grid, 2 h budget
//   avis_campaign --approaches avis,random --personalities ardupilot \
//                 --workloads box-manual,fence-mission \
//                 --budget-ms 60000 --out report.json   # CI smoke grid
//   avis_campaign --workloads wind-gust-box --environments gusty \
//                 --dump-scenario grid.json             # write, don't run
//   avis_campaign --scenario-file grid.json --out report.json
//   avis_campaign --list                                # registry listing
//
// Unknown approach/personality/workload/environment/bug names (and unknown
// flags) exit non-zero with a "did you mean ...? registered ... are: ..."
// diagnostic sourced from the registries.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/common.h"
#include "core/campaign.h"
#include "core/journal.h"
#include "core/scenario.h"
#include "fuzz/fuzzer.h"
#include "net/coordinator.h"
#include "net/protocol.h"
#include "net/worker.h"
#include "sim/environment_presets.h"
#include "util/table.h"
#include "workload/registry.h"

using namespace avis;

namespace {

struct Options {
  core::ScenarioGrid grid;
  bool grid_flag_seen = false;  // any CSV/grid-shaping flag present
  int total_workers = util::default_worker_count();
  int cell_workers = 0;        // 0 = derive from total via split_worker_budget
  int experiment_workers = 0;  // 0 = derive
  int batch_width = 0;         // lockstep simulation width; 0 = auto
  std::string scenario_file;   // load the grid from this JSON document
  std::string dump_scenario;   // write the grid JSON here and exit ('-' = stdout)
  std::string out;             // JSON report path; "-" = stdout; empty = no JSON
  core::CheckpointConfig checkpoints;
  bool quiet = false;
  bool list = false;

  // Coverage-guided scenario fuzzing (docs/FUZZING.md). --fuzz N treats the
  // grid as the seed corpus and runs N mutation generations instead of a
  // plain campaign.
  long long fuzz_generations = 0;  // 0 = fuzzing off
  long long fuzz_mutants = 8;
  long long fuzz_seed = 1;
  bool fuzz_flag_seen = false;  // any --fuzz-* satellite flag present
  std::string fuzz_corpus;      // corpus document path ('-' = stdout)
  std::string fuzz_report;      // fuzz report path ('-' = stdout)

  // Distributed modes (docs/DISTRIBUTED.md). --serve shards the grid across
  // connected workers; --worker joins a coordinator's pool.
  bool serve = false;
  long long serve_port = 0;
  std::string bind_address = "127.0.0.1";  // --bind; 0.0.0.0 = trusted-network mode
  std::string worker_endpoint;  // HOST:PORT
  std::string worker_id;
  long long max_attempts = 3;
  long long cell_deadline_ms = 0;  // 0 = derive from the cell budget
  long long degraded_after_ms = 2000;
  bool no_degraded = false;
  std::string auth_token;          // shared secret for Hello (both sides)
  long long net_chaos_seed = 0;    // 0 = chaos off

  // Crash-safe campaigns (docs/DISTRIBUTED.md "Journaling & resume").
  std::string journal_path;  // write-ahead cell journal for a fresh run
  std::string resume_path;   // continue a journaled run, skipping done cells
};

// SIGINT/SIGTERM request a graceful stop: finish in-flight cells, flush the
// journal, write a partial report, exit 3. Only a flag is set here — all the
// work happens on the normal paths via the should_stop callbacks.
volatile std::sig_atomic_t g_stop_signal = 0;
void handle_stop_signal(int sig) { g_stop_signal = sig; }

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> parts;
  std::istringstream is(arg);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

// Whole-string numeric parse: trailing garbage ("60s") is an error, not a
// silent zero that would make every cell's budget start exhausted.
bool parse_number(const char* text, long long& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  out = std::strtoll(text, &end, 10);
  return end != nullptr && *end == '\0';
}

// Validate a CSV list against a registry up front so the diagnostic names
// the flag that carried the typo.
template <typename Factory>
bool check_names(const std::vector<std::string>& names,
                 const util::Registry<Factory>& registry, const char* flag) {
  for (const std::string& name : names) {
    if (!registry.contains(name)) {
      std::cerr << flag << ": "
                << util::unknown_name_message(registry.what(), registry.plural(), name,
                                              registry.names())
                << "\n";
      return false;
    }
  }
  return true;
}

template <typename Factory>
void print_registry(std::ostream& os, const util::Registry<Factory>& registry) {
  os << registry.plural() << ":\n";
  for (const auto& entry : registry.entries()) {
    os << "  " << entry.name;
    for (std::size_t pad = entry.name.size(); pad < 16; ++pad) os << ' ';
    os << " " << entry.description << "\n";
  }
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario-file FILE     run the ScenarioGrid JSON document (docs/SCENARIOS.md);\n"
      << "                           exclusive with the grid-shaping flags below\n"
      << "  --dump-scenario FILE     write the grid the flags describe as JSON and exit\n"
      << "                           ('-' = stdout)\n"
      << "  --budget-ms N            per-cell simulated budget (default 7200000 = 2 h)\n"
      << "  --seed N                 checker seed per cell (default 100)\n"
      << "  --approaches LIST        csv of registered approaches (default all four)\n"
      << "  --personalities LIST     csv of registered personalities (default both)\n"
      << "  --workloads LIST         csv of registered workloads\n"
      << "                           (default box-manual,fence-mission)\n"
      << "  --environments LIST      csv of registered environment presets (default calm)\n"
      << "  --bugs NAME              bug population selector (default current)\n"
      << "  --workers N              total hardware budget for the worker split\n"
      << "  --cell-workers N         override: cells run concurrently\n"
      << "  --experiment-workers N   override: experiment pool size per cell\n"
      << "  --batch-width N          lockstep simulation width per experiment worker\n"
      << "                           (default: auto; reports are identical at any width)\n"
      << "  --no-checkpoints         disable checkpointed prefix forking (A/B timing;\n"
      << "                           reports are bit-identical either way)\n"
      << "  --no-checkpoint-trees    keep the fault-free root but disable faulty-prefix\n"
      << "                           snapshots (A/B timing; reports identical modulo\n"
      << "                           checkpoint counters)\n"
      << "  --checkpoint-interval-ms N  snapshot cadence for the prefix run (default 1000)\n"
      << "  --checkpoint-budget-mb N retained snapshot budget, root + tree combined\n"
      << "                           (default 64)\n"
      << "  --out FILE               write the JSON report to FILE ('-' = stdout)\n"
      << "fuzz mode (docs/FUZZING.md):\n"
      << "  --fuzz N                 run N coverage-guided mutation generations seeded\n"
      << "                           from the grid instead of a plain campaign\n"
      << "  --fuzz-mutants N         mutants evaluated per generation (default 8)\n"
      << "  --fuzz-seed N            mutation rng seed (default 1; same seed =>\n"
      << "                           byte-identical corpus)\n"
      << "  --fuzz-corpus FILE       write the corpus as a replayable ScenarioGrid\n"
      << "                           document ('-' = stdout; rerun via --scenario-file)\n"
      << "  --fuzz-report FILE       write the fuzz report (coverage growth curve,\n"
      << "                           corpus, discoveries) as JSON ('-' = stdout)\n"
      << "  --list                   print every registry (names + descriptions) and exit\n"
      << "  --quiet                  suppress the text table (and coordinator/worker logs)\n"
      << "  --version                print build and protocol version and exit\n"
      << "distributed mode (docs/DISTRIBUTED.md):\n"
      << "  --serve PORT             coordinate: shard the grid across connected workers\n"
      << "                           (PORT 0 = kernel-assigned, logged on stderr)\n"
      << "  --bind ADDR              coordinator listen address (default 127.0.0.1;\n"
      << "                           the protocol is unauthenticated — bind 0.0.0.0 only\n"
      << "                           on a trusted network, see docs/DISTRIBUTED.md)\n"
      << "  --worker HOST:PORT       join the coordinator at HOST:PORT as a worker\n"
      << "  --worker-id NAME         stable worker name in logs and report provenance\n"
      << "  --max-attempts N         assignment attempts per cell before the campaign\n"
      << "                           aborts (default 3)\n"
      << "  --cell-deadline-ms N     wall-clock deadline per assignment (default: derived\n"
      << "                           from the cell budget, max(30s, budget/10))\n"
      << "  --degraded-after-ms N    with no live workers for N ms, finish remaining\n"
      << "                           cells in-process (default 2000)\n"
      << "  --no-degraded            fail instead of completing in-process\n"
      << "  --auth-token TOKEN       shared secret for the Hello handshake; both sides\n"
      << "                           must pass the same value or registration is refused\n"
      << "  --net-chaos-seed N       deterministic wire-fault injection (drop/delay/\n"
      << "                           truncate/duplicate frames); same seed = same\n"
      << "                           schedule; needs --serve or --worker (0 = off)\n"
      << "crash safety (docs/DISTRIBUTED.md):\n"
      << "  --journal FILE           write-ahead cell journal: one fsync'd record per\n"
      << "                           completed cell, so a crash loses at most the\n"
      << "                           in-flight cells\n"
      << "  --resume FILE            continue the campaign journaled in FILE: verify the\n"
      << "                           grid matches, skip journaled cells, run the rest,\n"
      << "                           and emit the same merged report an uninterrupted\n"
      << "                           run would have (modulo wall-clock fields)\n"
      << "exit codes: 0 complete, 1 runtime failure, 2 bad flags or --resume grid\n"
      << "mismatch, 3 interrupted by SIGINT/SIGTERM (partial report written)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  // The CLI default grid is the paper evaluation grid: ScenarioGrid's
  // defaults already carry it (all four approaches, both personalities,
  // both default workloads, calm environment).
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto number = [&](long long& out) {
      const char* v = value();
      if (!parse_number(v, out)) {
        std::cerr << "bad numeric value for " << arg << ": " << (v ? v : "(missing)") << "\n";
        return false;
      }
      return true;
    };
    auto csv_list = [&](std::vector<std::string>& out) {
      const char* v = value();
      if (v == nullptr) return false;
      out = split_csv(v);
      options.grid_flag_seen = true;
      return !out.empty();
    };
    long long n = 0;
    if (arg == "--budget-ms") {
      if (!number(n)) return usage(argv[0]);
      if (n <= 0) {
        std::cerr << "--budget-ms must be positive (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.grid.budget_ms = n;
      options.grid_flag_seen = true;
    } else if (arg == "--seed") {
      if (!number(n)) return usage(argv[0]);
      options.grid.seed = static_cast<std::uint64_t>(n);
      options.grid_flag_seen = true;
    } else if (arg == "--workers") {
      if (!number(n)) return usage(argv[0]);
      options.total_workers = static_cast<int>(n);
    } else if (arg == "--cell-workers") {
      if (!number(n)) return usage(argv[0]);
      options.cell_workers = static_cast<int>(n);
    } else if (arg == "--experiment-workers") {
      if (!number(n)) return usage(argv[0]);
      options.experiment_workers = static_cast<int>(n);
    } else if (arg == "--batch-width") {
      if (!number(n)) return usage(argv[0]);
      if (n < 1) {
        std::cerr << "--batch-width must be at least 1 (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.batch_width = static_cast<int>(n);
    } else if (arg == "--approaches") {
      if (!csv_list(options.grid.approaches)) return usage(argv[0]);
      if (!check_names(options.grid.approaches, core::approach_registry(), "--approaches")) {
        return 2;
      }
    } else if (arg == "--personalities") {
      if (!csv_list(options.grid.personalities)) return usage(argv[0]);
      if (!check_names(options.grid.personalities, core::personality_registry(),
                       "--personalities")) {
        return 2;
      }
    } else if (arg == "--workloads") {
      if (!csv_list(options.grid.workloads)) return usage(argv[0]);
      if (!check_names(options.grid.workloads, workload::workload_registry(), "--workloads")) {
        return 2;
      }
    } else if (arg == "--environments") {
      if (!csv_list(options.grid.environments)) return usage(argv[0]);
      if (!check_names(options.grid.environments, sim::environment_registry(),
                       "--environments")) {
        return 2;
      }
    } else if (arg == "--bugs") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.grid.bugs = v;
      options.grid_flag_seen = true;
      if (!check_names({options.grid.bugs}, core::bug_selector_registry(), "--bugs")) {
        return 2;
      }
    } else if (arg == "--scenario-file") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.scenario_file = v;
    } else if (arg == "--dump-scenario") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.dump_scenario = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.out = v;
    } else if (arg == "--no-checkpoints") {
      options.checkpoints.enabled = false;
    } else if (arg == "--no-checkpoint-trees") {
      options.checkpoints.trees = false;
    } else if (arg == "--checkpoint-budget-mb") {
      if (!number(n)) return usage(argv[0]);
      if (n <= 0) {
        std::cerr << "--checkpoint-budget-mb must be positive (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.checkpoints.byte_budget =
          static_cast<std::size_t>(n) * std::size_t{1024} * std::size_t{1024};
    } else if (arg == "--checkpoint-interval-ms") {
      if (!number(n)) return usage(argv[0]);
      if (n <= 0) {
        std::cerr << "--checkpoint-interval-ms must be positive (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.checkpoints.interval_ms = n;
    } else if (arg == "--fuzz") {
      if (!number(n)) return usage(argv[0]);
      if (n < 1) {
        std::cerr << "--fuzz must run at least 1 generation (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.fuzz_generations = n;
    } else if (arg == "--fuzz-mutants") {
      if (!number(n)) return usage(argv[0]);
      if (n < 1) {
        std::cerr << "--fuzz-mutants must be at least 1 (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.fuzz_mutants = n;
      options.fuzz_flag_seen = true;
    } else if (arg == "--fuzz-seed") {
      if (!number(n)) return usage(argv[0]);
      options.fuzz_seed = n;
      options.fuzz_flag_seen = true;
    } else if (arg == "--fuzz-corpus") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.fuzz_corpus = v;
      options.fuzz_flag_seen = true;
    } else if (arg == "--fuzz-report") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.fuzz_report = v;
      options.fuzz_flag_seen = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--version") {
      std::cout << net::kBuildVersion << " (protocol " << net::kProtocolVersion << ")\n";
      return 0;
    } else if (arg == "--serve") {
      if (!number(n)) return usage(argv[0]);
      if (n < 0 || n > 65535) {
        std::cerr << "--serve: port must be 0..65535 (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.serve = true;
      options.serve_port = n;
    } else if (arg == "--bind") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.bind_address = v;
    } else if (arg == "--worker") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.worker_endpoint = v;
    } else if (arg == "--worker-id") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.worker_id = v;
    } else if (arg == "--max-attempts") {
      if (!number(n)) return usage(argv[0]);
      if (n < 1) {
        std::cerr << "--max-attempts must be at least 1 (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.max_attempts = n;
    } else if (arg == "--cell-deadline-ms") {
      if (!number(n)) return usage(argv[0]);
      if (n < 0) {
        std::cerr << "--cell-deadline-ms must be non-negative (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.cell_deadline_ms = n;
    } else if (arg == "--degraded-after-ms") {
      if (!number(n)) return usage(argv[0]);
      if (n < 0) {
        std::cerr << "--degraded-after-ms must be non-negative (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.degraded_after_ms = n;
    } else if (arg == "--no-degraded") {
      options.no_degraded = true;
    } else if (arg == "--auth-token") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.auth_token = v;
    } else if (arg == "--net-chaos-seed") {
      if (!number(n)) return usage(argv[0]);
      if (n < 0) {
        std::cerr << "--net-chaos-seed must be non-negative (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.net_chaos_seed = n;
    } else if (arg == "--journal") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.journal_path = v;
    } else if (arg == "--resume") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.resume_path = v;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (options.list) {
    print_registry(std::cout, core::approach_registry());
    print_registry(std::cout, core::personality_registry());
    print_registry(std::cout, workload::workload_registry());
    print_registry(std::cout, sim::environment_registry());
    print_registry(std::cout, core::bug_selector_registry());
    return 0;
  }

  // Fuzz flag combinations are rejected here, before any simulation budget
  // burns: the check needs nothing but the parsed flags.
  if (options.fuzz_generations == 0 && options.fuzz_flag_seen) {
    std::cerr << "--fuzz-mutants/--fuzz-seed/--fuzz-corpus/--fuzz-report only apply in "
                 "fuzz mode; add --fuzz N (docs/FUZZING.md)\n";
    return 2;
  }
  if (options.fuzz_generations > 0) {
    if (options.serve || !options.worker_endpoint.empty()) {
      std::cerr << "--fuzz runs in-process; the distributed modes (--serve/--worker) do "
                   "not apply\n";
      return 2;
    }
    if (!options.out.empty() || !options.dump_scenario.empty()) {
      std::cerr << "--fuzz writes --fuzz-corpus/--fuzz-report documents; --out and "
                   "--dump-scenario do not apply\n";
      return 2;
    }
  }

  if (!options.journal_path.empty() && !options.resume_path.empty()) {
    std::cerr << "--journal starts a fresh journal and --resume continues one; pass "
                 "exactly one\n";
    return 2;
  }
  if ((!options.journal_path.empty() || !options.resume_path.empty()) &&
      (options.fuzz_generations > 0 || !options.dump_scenario.empty() ||
       !options.worker_endpoint.empty())) {
    std::cerr << "--journal/--resume apply to campaign runs (in-process or --serve); "
                 "they do not combine with --fuzz, --dump-scenario or --worker\n";
    return 2;
  }
  if (options.net_chaos_seed != 0 && !options.serve && options.worker_endpoint.empty()) {
    std::cerr << "--net-chaos-seed injects faults on the wire; it needs --serve or "
                 "--worker\n";
    return 2;
  }
  if (!options.auth_token.empty() && !options.serve && options.worker_endpoint.empty()) {
    std::cerr << "--auth-token guards the distributed handshake; it needs --serve or "
                 "--worker\n";
    return 2;
  }

  if (!options.worker_endpoint.empty()) {
    if (options.serve || options.grid_flag_seen || !options.scenario_file.empty()) {
      std::cerr << "--worker takes its cells from the coordinator; --serve, --scenario-file "
                   "and the grid-shaping flags do not apply\n";
      return 2;
    }
    const std::size_t colon = options.worker_endpoint.rfind(':');
    long long port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !parse_number(options.worker_endpoint.c_str() + colon + 1, port) || port < 1 ||
        port > 65535) {
      std::cerr << "--worker expects HOST:PORT (got " << options.worker_endpoint << ")\n";
      return 2;
    }
    net::WorkerOptions worker_options;
    worker_options.host = options.worker_endpoint.substr(0, colon);
    worker_options.port = static_cast<std::uint16_t>(port);
    worker_options.worker_id = options.worker_id;
    worker_options.experiment_workers = options.experiment_workers;
    worker_options.batch_width = options.batch_width;
    worker_options.auth_token = options.auth_token;
    worker_options.chaos.seed = static_cast<std::uint64_t>(options.net_chaos_seed);
    if (!options.quiet) worker_options.log = &std::cerr;
    try {
      return net::run_worker(worker_options) ? 0 : 1;
    } catch (const std::exception& err) {
      std::cerr << "worker failed: " << err.what() << "\n";
      return 1;
    }
  }

  if (!options.scenario_file.empty() && options.grid_flag_seen) {
    std::cerr << "--scenario-file carries the whole grid; combining it with grid-shaping "
                 "flags (--approaches/--personalities/--workloads/--environments/--bugs/"
                 "--budget-ms/--seed) is ambiguous\n";
    return 2;
  }

  if (!options.scenario_file.empty()) {
    std::ifstream file(options.scenario_file);
    if (!file) {
      std::cerr << "cannot open scenario file " << options.scenario_file << "\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    try {
      options.grid = core::ScenarioGrid::from_json(text.str());
    } catch (const std::exception& err) {
      std::cerr << options.scenario_file << ": " << err.what() << "\n";
      return 2;
    }
  }

  // Resolve every registry name before running (or dumping): a scenario
  // file with a typo fails here with the registered-name listing.
  std::vector<core::CampaignCellSpec> grid;
  try {
    grid = core::expand_to_cells(options.grid);
  } catch (const std::exception& err) {
    std::cerr << err.what() << "\n";
    return 2;
  }

  if (!options.dump_scenario.empty()) {
    const std::string json = options.grid.to_json();
    if (options.dump_scenario == "-") {
      std::cout << json;
    } else {
      std::ofstream file(options.dump_scenario);
      if (!file) {
        std::cerr << "cannot open " << options.dump_scenario << " for writing\n";
        return 1;
      }
      file << json;
      if (!options.quiet) {
        std::cout << "scenario grid (" << grid.size() << " cells) written to "
                  << options.dump_scenario << "\n";
      }
    }
    return 0;
  }

  if (options.fuzz_generations > 0) {
    fuzz::FuzzOptions fuzz_options;
    fuzz_options.generations = static_cast<int>(options.fuzz_generations);
    fuzz_options.mutants_per_generation = static_cast<int>(options.fuzz_mutants);
    fuzz_options.seed = static_cast<std::uint64_t>(options.fuzz_seed);
    fuzz_options.campaign.total_workers = options.total_workers;
    fuzz_options.campaign.cell_workers = options.cell_workers;
    fuzz_options.campaign.experiment_workers = options.experiment_workers;
    fuzz_options.campaign.batch_width = options.batch_width;
    fuzz_options.campaign.checkpoints = options.checkpoints;
    fuzz::FuzzResult fuzz_result;
    try {
      fuzz_result = fuzz::run_fuzz(options.grid, fuzz_options);
    } catch (const std::exception& err) {
      std::cerr << "fuzz failed: " << err.what() << "\n";
      return 1;
    }
    if (!options.quiet) {
      util::TextTable t({"gen", "evaluated", "admitted", "corpus", "cov keys", "new bugs"});
      for (const auto& row : fuzz_result.curve) {
        t.add(row.generation, row.evaluated, row.admitted, row.corpus_size,
              row.coverage_keys, row.new_bugs);
      }
      t.render(std::cout);
      std::cout << "coverage keys: " << fuzz_result.baseline_coverage.size()
                << " (seed grid) -> " << fuzz_result.corpus.coverage_union().size()
                << " (corpus), " << fuzz_result.evaluations << " evaluations\n";
      for (const auto& discovery : fuzz_result.discoveries) {
        std::cout << "new bug (gen " << discovery.generation << "):";
        for (fw::BugId bug : discovery.new_bugs) {
          std::cout << " " << fw::bug_info(bug).report_name;
        }
        std::cout << " via " << discovery.minimized.personality << "/"
                  << discovery.minimized.workload << "/" << discovery.minimized.environment
                  << "\n";
      }
    }
    const auto write_document = [&](const std::string& path, const std::string& json,
                                    const char* what) {
      if (path.empty()) return true;
      if (path == "-") {
        std::cout << json;
        return true;
      }
      std::ofstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << " for writing\n";
        return false;
      }
      file << json;
      if (!options.quiet) std::cout << what << " written to " << path << "\n";
      return true;
    };
    if (!write_document(options.fuzz_corpus, fuzz_result.corpus.to_scenario_grid_json(),
                        "fuzz corpus")) {
      return 1;
    }
    if (!write_document(options.fuzz_report, fuzz::fuzz_report_json(fuzz_result, fuzz_options),
                        "fuzz report")) {
      return 1;
    }
    return 0;
  }

  const std::size_t grid_cells = grid.size();

  // Journal / resume setup. On --resume the loaded header must bind the
  // exact campaign the flags describe — any drift (different grid, different
  // checkpoint knobs) would merge reports from two different campaigns, so
  // a mismatch is a usage error (exit 2) with a field-by-field diff.
  std::optional<core::CampaignJournal> journal;
  core::CampaignJournal::Loaded loaded;
  const bool resuming = !options.resume_path.empty();
  if (resuming) {
    try {
      loaded = core::CampaignJournal::load(options.resume_path);
    } catch (const core::JournalError& err) {
      std::cerr << "--resume: " << err.what() << "\n";
      return 2;
    }
    const core::CampaignJournal::Header requested =
        core::CampaignJournal::bind(grid, options.checkpoints, options.batch_width);
    const std::string diff =
        core::CampaignJournal::header_diff(loaded.header, requested, grid);
    if (!diff.empty()) {
      std::cerr << "--resume: journal " << options.resume_path
                << " was written by a different campaign:\n"
                << diff;
      return 2;
    }
    if (!options.quiet) {
      if (loaded.dropped_torn_record) {
        std::cerr << "[journal] dropped a torn final record (crash mid-append); "
                     "that cell re-runs\n";
      }
      std::cerr << "[journal] " << loaded.cells.size() << "/" << grid_cells
                << " cells already journaled in " << options.resume_path << "\n";
    }
    try {
      journal.emplace(core::CampaignJournal::append_to(options.resume_path));
    } catch (const core::JournalError& err) {
      std::cerr << "--resume: " << err.what() << "\n";
      return 2;
    }
  } else if (!options.journal_path.empty()) {
    try {
      journal.emplace(core::CampaignJournal::start(
          options.journal_path,
          core::CampaignJournal::bind(grid, options.checkpoints, options.batch_width)));
    } catch (const core::JournalError& err) {
      std::cerr << "--journal: " << err.what() << "\n";
      return 1;
    }
  }

  // Graceful interruption (campaign modes only — a worker's lifetime belongs
  // to its coordinator). The handlers feed the should_stop callbacks below.
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const auto should_stop = [] { return g_stop_signal != 0; };

  core::CampaignResult result;
  if (options.serve) {
    net::CoordinatorOptions serve_options;
    serve_options.port = static_cast<std::uint16_t>(options.serve_port);
    serve_options.bind_address = options.bind_address;
    serve_options.max_attempts = static_cast<int>(options.max_attempts);
    serve_options.cell_deadline_ms = options.cell_deadline_ms;
    serve_options.allow_degraded = !options.no_degraded;
    serve_options.degraded_after_ms = static_cast<int>(options.degraded_after_ms);
    serve_options.experiment_workers = options.experiment_workers;
    serve_options.batch_width = options.batch_width;
    serve_options.checkpoints = options.checkpoints;
    serve_options.auth_token = options.auth_token;
    serve_options.chaos.seed = static_cast<std::uint64_t>(options.net_chaos_seed);
    serve_options.journal = journal ? &*journal : nullptr;
    serve_options.resume = resuming ? &loaded.cells : nullptr;
    serve_options.should_stop = should_stop;
    if (!options.quiet) serve_options.log = &std::cerr;
    try {
      net::CampaignCoordinator coordinator(std::move(grid), serve_options);
      if (!options.quiet) {
        std::cerr << "[coordinator] listening on port " << coordinator.port() << "\n";
      }
      result = coordinator.run();
    } catch (const net::CampaignAborted& err) {
      std::cerr << "campaign aborted: " << err.what() << "\n";
      return 1;
    } catch (const std::exception& err) {
      std::cerr << "coordinator failed: " << err.what() << "\n";
      return 1;
    }
  } else {
    core::CampaignOptions campaign_options;
    campaign_options.total_workers = options.total_workers;
    campaign_options.cell_workers = options.cell_workers;
    campaign_options.experiment_workers = options.experiment_workers;
    campaign_options.batch_width = options.batch_width;
    campaign_options.checkpoints = options.checkpoints;
    campaign_options.journal = journal ? &*journal : nullptr;
    campaign_options.resume = resuming ? &loaded.cells : nullptr;
    campaign_options.should_stop = should_stop;
    const core::CampaignRunner runner(campaign_options);
    try {
      result = runner.run(grid);
    } catch (const core::JournalError& err) {
      std::cerr << "journal write failed: " << err.what() << "\n";
      return 1;
    }
  }

  if (result.interrupted && !options.quiet) {
    std::cerr << "campaign interrupted (signal " << static_cast<int>(g_stop_signal)
              << "): " << result.cells.size() << "/" << grid_cells
              << " cells completed; partial report written"
              << (journal ? " and journaled — finish with --resume " + journal->path()
                          : "")
              << "\n";
  }

  if (!options.quiet) {
    util::TextTable t({"#", "approach", "firmware", "workload", "environment", "sims",
                       "labels", "unsafe #", "bugs", "ckpt hit", "exp/s"});
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      const auto& cell = result.cells[i];
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.2f", cell.experiments_per_sec());
      char hit_rate[32];
      std::snprintf(hit_rate, sizeof(hit_rate), "%.0f%%",
                    100.0 * cell.report.checkpoint_hit_rate());
      t.add(static_cast<int>(i), cell.spec.display_label(), cell.spec.scenario.personality,
            cell.spec.scenario.workload, cell.spec.scenario.environment,
            cell.report.experiments, cell.report.labels, cell.report.unsafe_count(),
            static_cast<int>(cell.report.bug_first_found.size()), hit_rate, rate);
    }
    t.render(std::cout);
    bench::print_campaign_footer(std::cout, result);
  }

  if (!options.out.empty()) {
    const std::string json = core::campaign_report_json(result);
    if (options.out == "-") {
      std::cout << json;
    } else {
      std::ofstream file(options.out);
      if (!file) {
        std::cerr << "cannot open " << options.out << " for writing\n";
        return 1;
      }
      file << json;
      if (!options.quiet) std::cout << "JSON report written to " << options.out << "\n";
    }
  }
  return result.interrupted ? 3 : 0;
}
