// Campaign CLI: run an (approach x personality x workload) grid through
// core::CampaignRunner and emit the machine-readable JSON report the bench
// trajectory tracks (per-cell experiments/sec, unsafe counts, bug-first-
// found simulation indices).
//
// Examples:
//   avis_campaign                                   # full 4x2x2 grid, 2 h budget
//   avis_campaign --approaches avis,random --personalities ardupilot \
//                 --workloads box-manual,fence-mission \
//                 --budget-ms 60000 --out report.json   # CI smoke grid
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/common.h"
#include "core/campaign.h"

using namespace avis;

namespace {

struct Options {
  sim::SimTimeMs budget_ms = 7200 * 1000;
  std::uint64_t seed = 100;
  int total_workers = util::default_worker_count();
  int cell_workers = 0;        // 0 = derive from total via split_worker_budget
  int experiment_workers = 0;  // 0 = derive
  std::vector<bench::Approach> approaches = {bench::Approach::kAvis,
                                             bench::Approach::kStratifiedBfi,
                                             bench::Approach::kBfi, bench::Approach::kRandom};
  std::vector<fw::Personality> personalities = bench::evaluation_personalities();
  std::vector<workload::WorkloadId> workloads = bench::evaluation_workloads();
  std::string out;  // JSON path; "-" = stdout; empty = no JSON
  bool quiet = false;
};

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> parts;
  std::istringstream is(arg);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

// Whole-string numeric parse: trailing garbage ("60s") is an error, not a
// silent zero that would make every cell's budget start exhausted.
bool parse_number(const char* text, long long& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  out = std::strtoll(text, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_approach(const std::string& name, bench::Approach& out) {
  if (name == "avis") out = bench::Approach::kAvis;
  else if (name == "sbfi" || name == "stratified-bfi") out = bench::Approach::kStratifiedBfi;
  else if (name == "bfi") out = bench::Approach::kBfi;
  else if (name == "random") out = bench::Approach::kRandom;
  else return false;
  return true;
}

bool parse_personality(const std::string& name, fw::Personality& out) {
  if (name == "ardupilot") out = fw::Personality::kArduPilotLike;
  else if (name == "px4") out = fw::Personality::kPx4Like;
  else return false;
  return true;
}

bool parse_workload(const std::string& name, workload::WorkloadId& out) {
  if (name == "auto") out = workload::WorkloadId::kAuto;
  else if (name == "box-manual") out = workload::WorkloadId::kBoxManual;
  else if (name == "fence-mission") out = workload::WorkloadId::kFenceMission;
  else return false;
  return true;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --budget-ms N            per-cell simulated budget (default 7200000 = 2 h)\n"
      << "  --seed N                 checker seed per cell (default 100)\n"
      << "  --workers N              total hardware budget for the worker split\n"
      << "  --cell-workers N         override: cells run concurrently\n"
      << "  --experiment-workers N   override: experiment pool size per cell\n"
      << "  --approaches LIST        csv of avis,sbfi,bfi,random (default all)\n"
      << "  --personalities LIST     csv of ardupilot,px4 (default both)\n"
      << "  --workloads LIST         csv of auto,box-manual,fence-mission\n"
      << "                           (default box-manual,fence-mission)\n"
      << "  --out FILE               write the JSON report to FILE ('-' = stdout)\n"
      << "  --quiet                  suppress the text table\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto number = [&](long long& out) {
      const char* v = value();
      if (!parse_number(v, out)) {
        std::cerr << "bad numeric value for " << arg << ": " << (v ? v : "(missing)") << "\n";
        return false;
      }
      return true;
    };
    long long n = 0;
    if (arg == "--budget-ms") {
      if (!number(n)) return usage(argv[0]);
      if (n <= 0) {
        std::cerr << "--budget-ms must be positive (got " << n << ")\n";
        return usage(argv[0]);
      }
      options.budget_ms = n;
    } else if (arg == "--seed") {
      if (!number(n)) return usage(argv[0]);
      options.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--workers") {
      if (!number(n)) return usage(argv[0]);
      options.total_workers = static_cast<int>(n);
    } else if (arg == "--cell-workers") {
      if (!number(n)) return usage(argv[0]);
      options.cell_workers = static_cast<int>(n);
    } else if (arg == "--experiment-workers") {
      if (!number(n)) return usage(argv[0]);
      options.experiment_workers = static_cast<int>(n);
    } else if (arg == "--approaches") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.approaches.clear();
      for (const auto& name : split_csv(v)) {
        bench::Approach approach;
        if (!parse_approach(name, approach)) {
          std::cerr << "unknown approach: " << name << "\n";
          return usage(argv[0]);
        }
        options.approaches.push_back(approach);
      }
    } else if (arg == "--personalities") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.personalities.clear();
      for (const auto& name : split_csv(v)) {
        fw::Personality personality;
        if (!parse_personality(name, personality)) {
          std::cerr << "unknown personality: " << name << "\n";
          return usage(argv[0]);
        }
        options.personalities.push_back(personality);
      }
    } else if (arg == "--workloads") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.workloads.clear();
      for (const auto& name : split_csv(v)) {
        workload::WorkloadId workload;
        if (!parse_workload(name, workload)) {
          std::cerr << "unknown workload: " << name << "\n";
          return usage(argv[0]);
        }
        options.workloads.push_back(workload);
      }
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.out = v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (options.approaches.empty() || options.personalities.empty() ||
      options.workloads.empty()) {
    std::cerr << "empty grid\n";
    return usage(argv[0]);
  }

  std::vector<core::CampaignCellSpec> grid;
  for (bench::Approach approach : options.approaches) {
    for (fw::Personality personality : options.personalities) {
      for (workload::WorkloadId workload : options.workloads) {
        grid.push_back(bench::make_cell(approach, personality, workload,
                                        fw::BugRegistry::current_code_base(),
                                        options.budget_ms, options.seed));
      }
    }
  }

  core::CampaignOptions campaign_options;
  campaign_options.total_workers = options.total_workers;
  campaign_options.cell_workers = options.cell_workers;
  campaign_options.experiment_workers = options.experiment_workers;
  const core::CampaignRunner runner(campaign_options);
  const core::CampaignResult result = runner.run(grid);

  if (!options.quiet) {
    util::TextTable t({"#", "approach", "firmware", "workload", "sims", "labels", "unsafe #",
                       "bugs", "exp/s"});
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      const auto& cell = result.cells[i];
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.2f", cell.experiments_per_sec());
      t.add(static_cast<int>(i), cell.spec.approach, fw::to_string(cell.spec.personality),
            workload::to_string(cell.spec.workload), cell.report.experiments,
            cell.report.labels, cell.report.unsafe_count(),
            static_cast<int>(cell.report.bug_first_found.size()), rate);
    }
    t.render(std::cout);
    bench::print_campaign_footer(std::cout, result);
  }

  if (!options.out.empty()) {
    const std::string json = core::campaign_report_json(result);
    if (options.out == "-") {
      std::cout << json;
    } else {
      std::ofstream file(options.out);
      if (!file) {
        std::cerr << "cannot open " << options.out << " for writing\n";
        return 1;
      }
      file << json;
      if (!options.quiet) std::cout << "JSON report written to " << options.out << "\n";
    }
  }
  return 0;
}
