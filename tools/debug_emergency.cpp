#include <cstdio>
#include "core/harness.h"

int main() {
  using namespace avis;
  core::SimulationHarness harness;
  harness.set_step_hook([](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware& f) {
    if (t % 250 == 0 && t > 12800) {
      const auto& est = f.estimate();
      printf("t=%6.2f mode=%-14s alt=%5.2f est_alt=%5.2f climb=%6.2f est_climb=%6.2f tilt=%5.3f est_tilt=%5.3f rates=(%5.2f,%5.2f) est_rates=(%5.2f,%5.2f) vx=%5.2f\n",
             t / 1000.0, f.composite_mode().name().c_str(), s.altitude(), est.altitude(),
             s.climb_rate(), est.climb_rate(), s.attitude.tilt(), est.attitude.tilt(),
             s.body_rates.x, s.body_rates.y, est.body_rates.x, est.body_rates.y,
             s.ground_speed());
    }
  });
  core::ExperimentSpec spec;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 100;
  spec.plan.add(13070, {sensors::SensorType::kGyroscope, 0});
  spec.max_duration_ms = 25000;
  auto r = harness.run(spec, nullptr);
  printf("crash=%s\n", sim::to_string(r.crash_cause));
  return 0;
}
