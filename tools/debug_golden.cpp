#include <cstdio>
#include "core/harness.h"

int main(int argc, char** argv) {
  using namespace avis;
  int wl = argc > 1 ? atoi(argv[1]) : 2;  // default fence
  int pers = argc > 2 ? atoi(argv[2]) : 0;
  core::SimulationHarness harness;
  harness.set_step_hook([](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware& f) {
    if (t % 1000 == 0) {
      const auto& est = f.estimate();
      printf("t=%5.1fs mode=%-12s armed=%d alt=%6.2f est_alt=%6.2f pos=(%6.2f,%6.2f) est=(%6.2f,%6.2f) vz=%5.2f tilt=%5.3f crashed=%d\n",
             t / 1000.0, f.composite_mode().name().c_str(), f.armed(), s.altitude(),
             est.altitude(), s.position.x, s.position.y, est.position.x, est.position.y,
             -s.velocity.z, s.attitude.tilt(), s.crashed);
    }
  });
  core::ExperimentSpec spec;
  spec.personality = static_cast<fw::Personality>(pers);
  spec.workload = static_cast<workload::WorkloadId>(wl);
  spec.seed = 1;
  spec.max_duration_ms = 120000;
  auto r = harness.run(spec, nullptr);
  printf("passed=%d duration=%.1fs transitions:", r.workload_passed, r.duration_ms / 1000.0);
  for (auto& t : r.transitions) printf(" %s@%.1f", t.mode_name.c_str(), t.time_ms / 1000.0);
  printf("\ncrash=%s\n", sim::to_string(r.crash_cause));
  return 0;
}
