#include <cstdio>
#include "core/harness.h"

int main() {
  using namespace avis;
  core::SimulationHarness harness;
  harness.set_step_hook([](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware& f) {
    if (t % 500 == 0 && t > 12000 && t < 26000) {
      const auto& est = f.estimate();
      printf("t=%5.1fs mode=%-10s truth=(%6.2f,%6.2f,%5.1f) est=(%6.2f,%6.2f,%5.1f) wp_idx=%zu\n",
             t / 1000.0, f.composite_mode().name().c_str(), s.position.x, s.position.y,
             s.altitude(), est.position.x, est.position.y, est.altitude(),
             f.mission().current_index());
    }
  });
  core::ExperimentSpec spec;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 1;
  auto r = harness.run(spec, nullptr);
  printf("passed=%d\n", r.workload_passed);
  return 0;
}
