// Building a custom workload with the framework (paper §V-A, Fig. 8).
//
// Defines a "survey" workload — a lawnmower pattern over a field — using the
// same high-level primitives as the built-in workloads, runs it golden, then
// injects a compass-primary failure at one of its waypoint turns to show the
// APM-16967 class of bug manifests on custom missions too.
#include <iostream>
#include <memory>

#include "core/harness.h"
#include "core/invariant_monitor.h"
#include "workload/workload.h"

using namespace avis;

namespace {

// A survey: takeoff, fly two parallel transects, return, land.
class SurveyWorkload final : public workload::Workload {
 public:
  SurveyWorkload() : Workload("survey") {
    script_.wait_time(3000);
    script_.add("upload",
                [](workload::GcsContext& ctx) {
                  std::vector<mavlink::MissionItem> items;
                  items.push_back(
                      ctx.item_at(mavlink::Command::kNavTakeoff, {0.0, 0.0, -15.0}));
                  items.push_back(
                      ctx.item_at(mavlink::Command::kNavWaypoint, {30.0, 0.0, -15.0}));
                  items.push_back(
                      ctx.item_at(mavlink::Command::kNavWaypoint, {30.0, 8.0, -15.0}));
                  items.push_back(
                      ctx.item_at(mavlink::Command::kNavWaypoint, {0.0, 8.0, -15.0}));
                  items.push_back(
                      ctx.item_at(mavlink::Command::kNavReturnToLaunch, {0.0, 0.0, -15.0}));
                  ctx.upload_mission(std::move(items));
                },
                [](workload::GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
    script_.arm_system_completely();
    script_.enter_auto_mode();
    script_.wait_altitude_at_least(14.4);
    script_.wait_altitude_at_most(0.4);
    script_.wait_disarm();
  }
};

core::ExperimentSpec survey_spec() {
  core::ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload_factory = [] { return std::make_unique<SurveyWorkload>(); };
  spec.seed = 100;
  return spec;
}

}  // namespace

int main() {
  std::cout << "== custom workload example: 'survey' lawnmower mission ==\n\n";
  core::SimulationHarness harness;

  // Profile the custom workload (three fault-free runs, monitor calibration).
  std::vector<core::ExperimentResult> profiling;
  for (int i = 0; i < 3; ++i) {
    core::ExperimentSpec spec = survey_spec();
    spec.seed = 100 + i;
    profiling.push_back(harness.run(spec, nullptr));
    if (!profiling.back().workload_passed) {
      std::cerr << "profiling run failed!\n";
      return 1;
    }
  }
  std::cout << "golden transitions:";
  for (const auto& t : profiling.front().transitions) {
    std::cout << " " << t.mode_name << "@" << t.time_ms / 1000.0 << "s";
  }
  std::cout << "\n";
  const core::MonitorModel model = core::MonitorModel::calibrate(std::move(profiling));

  // Inject a primary-compass failure just after the second transect begins.
  sim::SimTimeMs wp2_time = 0;
  for (const auto& t : model.golden_transitions()) {
    if (t.mode_name == "auto-wp2") wp2_time = t.time_ms;
  }
  core::ExperimentSpec faulted = survey_spec();
  faulted.plan.add(wp2_time + 200, {sensors::SensorType::kCompass, 0});
  const auto result = harness.run(faulted, &model);

  std::cout << "\ninjected " << faulted.plan.to_string() << "\n";
  if (result.violation) {
    std::cout << "unsafe condition: " << core::to_string(result.violation->type) << " at t="
              << result.violation->time_ms / 1000.0 << "s in "
              << fw::CompositeMode::from_id(result.violation->mode_id).name() << "\n";
    std::cout << "root cause:";
    for (fw::BugId id : result.fired_bugs) std::cout << " " << fw::bug_info(id).report_name;
    std::cout << "\n";
  } else {
    std::cout << "no violation (unexpected for this window)\n";
  }
  return 0;
}
