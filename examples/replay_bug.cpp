// Finding and replaying a bug (paper §IV-D).
//
// Runs a short Avis session on the fence workload, takes the first unsafe
// condition found, re-expresses its fault plan relative to mode transitions,
// and replays it — including under a different noise seed, the paper's
// robustness claim for mode-relative replay.
#include <iostream>

#include "core/checker.h"
#include "core/replay.h"
#include "core/sabre.h"

using namespace avis;

int main() {
  std::cout << "== replay example ==\n\n";
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  const core::MonitorModel& model = checker.model();

  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             model.golden_transitions());
  core::BudgetClock budget(30 * 60 * 1000);
  const auto report = checker.run(sabre, budget);
  if (report.unsafe.empty()) {
    std::cerr << "no unsafe condition found in the quick session\n";
    return 1;
  }

  const core::UnsafeRecord& record = report.unsafe.front();
  std::cout << "found unsafe condition after " << record.experiment_index
            << " simulations:\n  plan " << record.plan.to_string() << "\n  violation "
            << core::to_string(record.violation.type) << " in "
            << fw::CompositeMode::from_id(record.violation.mode_id).name() << "\n";

  // Record: express the plan relative to the observed mode transitions.
  core::ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = record.seed;
  spec.plan = record.plan;
  const core::ReplayRecord replay_record = core::make_replay_record(spec, record.transitions);
  std::cout << "\nanchored faults:\n";
  for (const auto& fault : replay_record.anchored) {
    std::cout << "  " << fault.sensor.to_string() << " at "
              << fw::CompositeMode::from_id(fault.anchor_mode_id).name() << " + "
              << fault.delta_ms << "ms (occurrence " << fault.anchor_occurrence << ")\n";
  }

  // Replay 1: same seed — must reproduce exactly.
  const auto same = core::replay(checker.harness(), replay_record, model);
  std::cout << "\nreplay (same seed): "
            << (same.violation ? core::to_string(same.violation->type) : "no violation")
            << "\n";

  // Replay 2: perturbed seed — mode-relative injection still lands in the
  // bug window despite shifted transition times.
  const auto perturbed = core::replay(checker.harness(), replay_record, model, 987654321);
  std::cout << "replay (perturbed seed): "
            << (perturbed.violation ? core::to_string(perturbed.violation->type)
                                    : "no violation")
            << "\n";
  return same.violation && perturbed.violation ? 0 : 1;
}
