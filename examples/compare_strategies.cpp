// Head-to-head strategy comparison on one configuration (a miniature
// Table III): Avis vs Stratified BFI vs BFI vs Random on the ArduPilot-like
// firmware with the fence workload, 30-minute-equivalent budget each.
//
// Everything is registry-named (core/scenario.h): the scenario below is the
// same declarative spec `avis_campaign --scenario-file` runs, and swapping
// the workload, environment preset, or bug population is a one-string edit.
// Campaigns run through Checker::run_parallel, which spreads each batch of
// experiments across the machine's cores; the reports are identical to the
// serial path (docs/PERFORMANCE.md), so the comparison itself is unchanged.
#include <iostream>

#include "core/checker.h"
#include "core/scenario.h"
#include "util/concurrency.h"
#include "util/table.h"

using namespace avis;

int main() {
  const int workers = util::default_worker_count();
  std::cout << "== strategy comparison (ArduPilot-like, fence workload, 30 min budget, "
            << workers << " worker" << (workers == 1 ? "" : "s") << ") ==\n\n";

  core::ScenarioSpec scenario;
  scenario.personality = "ardupilot";
  scenario.workload = "fence-mission";
  scenario.environment = "calm";
  scenario.budget_ms = 30 * 60 * 1000;
  scenario.strategy_seed = 7;

  // One calibrated checker shared by every approach, exactly as the paper
  // compares strategies against the same profiled model.
  core::Checker checker(core::scenario_prototype(scenario));
  const core::MonitorModel& model = checker.model();

  util::TextTable table({"strategy", "sims", "labels", "unsafe #", "distinct bugs"});
  for (const char* approach : {"avis", "stratified-bfi", "bfi", "random"}) {
    scenario.approach = approach;
    auto strategy = core::make_scenario_strategy(scenario, model);
    core::BudgetClock budget(scenario.budget_ms);
    const auto report = checker.run_parallel(*strategy, budget, workers);
    table.add(strategy->name(), report.experiments, report.labels, report.unsafe_count(),
              static_cast<int>(report.bug_first_found.size()));
  }

  table.render(std::cout);
  std::cout << "\nAvis reaches the mode-transition windows first; Stratified BFI skips the\n"
               "windows its training data never covered; BFI burns the budget labeling;\n"
               "Random needs luck to land inside a window.\n";
  return 0;
}
