// Head-to-head strategy comparison on one configuration (a miniature
// Table III): Avis vs Stratified BFI vs BFI vs Random on the ArduPilot-like
// firmware with the fence workload, 30-minute-equivalent budget each.
//
// Campaigns run through Checker::run_parallel, which spreads each batch of
// experiments across the machine's cores; the reports are identical to the
// serial path (docs/PERFORMANCE.md), so the comparison itself is unchanged.
#include <iostream>

#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/checker.h"
#include "core/sabre.h"
#include "util/concurrency.h"
#include "util/table.h"

using namespace avis;

int main() {
  const int workers = util::default_worker_count();
  std::cout << "== strategy comparison (ArduPilot-like, fence workload, 30 min budget, "
            << workers << " worker" << (workers == 1 ? "" : "s") << ") ==\n\n";

  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  const core::MonitorModel& model = checker.model();
  baselines::NaiveBayesModel bayes(baselines::default_training_corpus());
  const auto suite = core::SimulationHarness::iris_suite();

  util::TextTable table({"strategy", "sims", "labels", "unsafe #", "distinct bugs"});
  auto run = [&](core::InjectionStrategy& strategy) {
    core::BudgetClock budget(30 * 60 * 1000);
    const auto report = checker.run_parallel(strategy, budget, workers);
    table.add(strategy.name(), report.experiments, report.labels, report.unsafe_count(),
              static_cast<int>(report.bug_first_found.size()));
  };

  core::SabreScheduler avis_strategy(suite, model.golden_transitions());
  run(avis_strategy);
  baselines::StratifiedBfi sbfi(suite, model.golden_transitions(), bayes);
  run(sbfi);
  baselines::BfiChecker bfi(suite, bayes,
                            baselines::ModeTimeline(model.golden_transitions()), 7);
  run(bfi);
  baselines::RandomInjection random(suite, model.profiling_duration_ms(), 7);
  run(random);

  table.render(std::cout);
  std::cout << "\nAvis reaches the mode-transition windows first; Stratified BFI skips the\n"
               "windows its training data never covered; BFI burns the budget labeling;\n"
               "Random needs luck to land inside a window.\n";
  return 0;
}
