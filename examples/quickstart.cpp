// Quickstart: profile a workload, run Avis (SABRE) for a small budget, and
// print every unsafe condition found.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/checker.h"
#include "core/sabre.h"
#include "util/table.h"

int main() {
  using namespace avis;

  // Check the ArduPilot-like firmware, as shipped (Table II bug population),
  // on the fence/waypoint workload.
  core::Checker checker(fw::Personality::kArduPilotLike,
                        workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());

  std::cout << "Profiling golden runs...\n";
  const core::MonitorModel& model = checker.model();
  std::cout << "  mission duration: " << model.profiling_duration_ms() / 1000.0 << " s, tau="
            << model.tau() << ", modes=" << model.mode_graph().node_count()
            << ", D=" << model.mode_graph().diameter() << "\n";
  std::cout << "  golden transitions:";
  for (const auto& t : model.golden_transitions()) {
    std::cout << " " << t.mode_name << "@" << t.time_ms / 1000.0 << "s";
  }
  std::cout << "\n\n";

  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             model.golden_transitions());

  // A 30-minute-equivalent budget keeps the quickstart fast.
  core::BudgetClock budget(30 * 60 * 1000);
  const core::CheckerReport report = checker.run(sabre, budget);

  std::cout << "Ran " << report.experiments << " simulations ("
            << report.budget_used_ms / 1000.0 << "s simulated)\n";
  std::cout << "Unsafe conditions found: " << report.unsafe_count() << "\n\n";

  util::TextTable table({"#", "fault plan", "violation", "mode", "bugs"});
  int index = 0;
  for (const auto& record : report.unsafe) {
    std::string bugs;
    for (fw::BugId id : record.fired_bugs) {
      if (!bugs.empty()) bugs += ", ";
      bugs += fw::bug_info(id).report_name;
    }
    table.add(++index, record.plan.to_string(),
              std::string(core::to_string(record.violation.type)) + " @" +
                  std::to_string(record.violation.time_ms / 1000) + "s",
              fw::CompositeMode::from_id(record.violation.mode_id).name(), bugs);
  }
  table.render(std::cout);
  return 0;
}
