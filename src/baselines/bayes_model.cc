#include "baselines/bayes_model.h"

namespace avis::baselines {

namespace {
void add(std::vector<Incident>& corpus, sensors::SensorType sensor, fw::ModeBucket bucket,
         bool unsafe, int count) {
  for (int i = 0; i < count; ++i) corpus.push_back({sensor, bucket, unsafe});
}
}  // namespace

std::vector<Incident> default_training_corpus() {
  using sensors::SensorType;
  using fw::ModeBucket;
  std::vector<Incident> corpus;

  // Main-flight-mode incidents dominate the record (paper §VI-B: BFI "is
  // more likely to trigger unsafe conditions that occur in the main flight
  // mode, especially if unsafe conditions have occurred in the past").
  add(corpus, SensorType::kCompass, ModeBucket::kWaypoint, true, 14);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kWaypoint, true, 12);
  add(corpus, SensorType::kGyroscope, ModeBucket::kWaypoint, true, 11);
  add(corpus, SensorType::kCompass, ModeBucket::kManual, true, 10);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kManual, true, 9);
  add(corpus, SensorType::kGyroscope, ModeBucket::kManual, true, 8);

  // A few takeoff incidents exist — enough for the model to rate IMU
  // failures at takeoff as risky (Stratified BFI does find PX4-17057 and
  // APM-16021), but nothing for compass/baro there.
  add(corpus, SensorType::kGyroscope, ModeBucket::kTakeoff, true, 4);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kTakeoff, true, 3);

  // Safe (handled) reports across the board teach the model that most
  // injections are survivable; GPS, barometer, battery and landing-phase
  // reports are almost exclusively benign in the record.
  add(corpus, SensorType::kGps, ModeBucket::kWaypoint, false, 16);
  add(corpus, SensorType::kGps, ModeBucket::kManual, false, 12);
  add(corpus, SensorType::kGps, ModeBucket::kTakeoff, false, 8);
  add(corpus, SensorType::kGps, ModeBucket::kLand, false, 8);
  add(corpus, SensorType::kBarometer, ModeBucket::kWaypoint, false, 12);
  add(corpus, SensorType::kBarometer, ModeBucket::kTakeoff, false, 9);
  add(corpus, SensorType::kBarometer, ModeBucket::kLand, false, 7);
  add(corpus, SensorType::kBattery, ModeBucket::kWaypoint, false, 10);
  add(corpus, SensorType::kBattery, ModeBucket::kManual, false, 8);
  add(corpus, SensorType::kCompass, ModeBucket::kTakeoff, false, 10);
  add(corpus, SensorType::kCompass, ModeBucket::kLand, false, 6);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kLand, false, 9);
  add(corpus, SensorType::kGyroscope, ModeBucket::kLand, false, 8);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kTakeoff, false, 2);
  add(corpus, SensorType::kGyroscope, ModeBucket::kTakeoff, false, 2);
  add(corpus, SensorType::kCompass, ModeBucket::kWaypoint, false, 4);
  add(corpus, SensorType::kCompass, ModeBucket::kManual, false, 3);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kWaypoint, false, 5);
  add(corpus, SensorType::kGyroscope, ModeBucket::kWaypoint, false, 5);
  add(corpus, SensorType::kAccelerometer, ModeBucket::kManual, false, 4);
  add(corpus, SensorType::kGyroscope, ModeBucket::kManual, false, 4);

  return corpus;
}

}  // namespace avis::baselines
