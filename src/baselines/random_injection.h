// Random fault injection (paper §VI, Table I row "Rnd").
//
// "Random fault injection chose fault injection sites from all sensor
// readings with equal probability. It also chose failure scenarios for
// simulation randomly." — uniformly random timestamps over the mission and
// uniformly random instance subsets (no symmetry folding, no transition
// awareness, no model).
#pragma once

#include <unordered_set>

#include "core/strategy.h"
#include "sensors/sensor_models.h"
#include "util/rng.h"

namespace avis::baselines {

class RandomInjection final : public core::InjectionStrategy {
 public:
  // The optional window/type-mask arguments enforce FaultPlanConstraints
  // (core/scenario.h): timestamps are drawn uniformly from the clamped
  // window [window_start_ms, min(window_end_ms, duration)) (end 0 =
  // unbounded) and failure sets only from allowed sensor types. The
  // defaults reproduce the historical draw sequence bit for bit.
  RandomInjection(sensors::SuiteConfig suite, sim::SimTimeMs mission_duration_ms,
                  std::uint64_t seed, sim::SimTimeMs window_start_ms = 0,
                  sim::SimTimeMs window_end_ms = 0,
                  std::uint32_t allowed_type_mask = 0xffffffffu)
      : suite_(suite), duration_ms_(mission_duration_ms), rng_(seed) {
    for (sensors::SensorType t : sensors::kAllSensorTypes) {
      if ((allowed_type_mask & (std::uint32_t{1} << static_cast<unsigned>(t))) == 0) continue;
      for (int i = 0; i < suite_.count(t); ++i) {
        all_ids_.push_back({t, static_cast<std::uint8_t>(i)});
      }
    }
    window_hi_ = window_end_ms > 0 ? std::min(window_end_ms, duration_ms_) : duration_ms_;
    window_lo_ = std::min(window_start_ms, window_hi_ > 0 ? window_hi_ - 1 : 0);
  }

  std::optional<core::FaultPlan> next(core::BudgetClock& budget) override {
    if (budget.exhausted() || all_ids_.empty()) return std::nullopt;
    for (int attempt = 0; attempt < 64; ++attempt) {
      core::FaultPlan plan;
      // Mostly single failures, sometimes multi — a geometric size pick.
      int size = 1;
      while (size < static_cast<int>(all_ids_.size()) && rng_.chance(0.3)) ++size;
      std::unordered_set<std::size_t> chosen;
      for (int k = 0; k < size; ++k) {
        chosen.insert(static_cast<std::size_t>(rng_.next_below(all_ids_.size())));
      }
      for (std::size_t index : chosen) {
        const auto t = static_cast<sim::SimTimeMs>(
            window_lo_ +
            static_cast<sim::SimTimeMs>(
                rng_.next_below(static_cast<std::uint64_t>(window_hi_ - window_lo_))));
        plan.add(t, all_ids_[index]);
      }
      if (explored_.insert(plan.signature()).second) return plan;
    }
    return std::nullopt;  // space effectively saturated
  }

  void feedback(const core::FaultPlan&, const core::ExperimentResult&) override {}
  const char* name() const override { return "Random"; }

 private:
  sensors::SuiteConfig suite_;
  sim::SimTimeMs duration_ms_;
  sim::SimTimeMs window_lo_ = 0;
  sim::SimTimeMs window_hi_ = 0;
  util::Rng rng_;
  std::vector<sensors::SensorId> all_ids_;
  std::unordered_set<std::string> explored_;
};

}  // namespace avis::baselines
