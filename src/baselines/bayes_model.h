// The Bayesian injection-site model used by BFI and Stratified BFI (paper
// §VI, after Jha et al., DSN'19).
//
// A naive-Bayes classifier over two features of an injection site: the
// failed sensor's type and the flight phase (Table IV's mode bucket) at the
// injection time. It is trained on a corpus of historical incident reports.
// The corpus models the paper's observation that BFI's training data is
// dominated by unsafe conditions "in the main flight mode": waypoint and
// manual cruising incidents are well represented, takeoff incidents are
// rare, and landing/GPS/barometer/battery incidents are essentially absent.
// That skew is exactly why BFI-family checkers miss the bugs in Table II's
// pre-flight and landing windows, and why they cannot anticipate the
// two-fault PX4-13291 ("having not seen the effects of joint failures in
// the training data, the model is unable to predict this outcome").
#pragma once

#include <array>
#include <vector>

#include "fw/modes.h"
#include "sensors/sensor_types.h"

namespace avis::baselines {

struct Incident {
  sensors::SensorType sensor;
  fw::ModeBucket bucket;
  bool unsafe = false;  // did the incident end in an unsafe condition?
};

// The synthetic "historical" corpus. Counts are per (sensor, bucket); the
// shape follows the paper's discussion in §VI-A/B.
std::vector<Incident> default_training_corpus();

class NaiveBayesModel {
 public:
  explicit NaiveBayesModel(const std::vector<Incident>& corpus) {
    for (const auto& incident : corpus) {
      auto& cell = counts_[p_index(incident.sensor, incident.bucket)];
      if (incident.unsafe) {
        cell.unsafe += 1;
        ++total_unsafe_;
      } else {
        cell.safe += 1;
        ++total_safe_;
      }
    }
  }

  // P(unsafe | sensor, bucket): Beta-smoothed per-cell posterior with a
  // pessimistic prior — an injection context the training data never covered
  // is assumed handled, which is precisely the model's blind spot the paper
  // exploits ("having not seen the effects ... the model is unable to
  // predict this outcome"). For multi-sensor failure sets callers take the
  // max over members; joint failures beyond that are invisible to the model.
  double p_unsafe(sensors::SensorType sensor, fw::ModeBucket bucket) const {
    const auto& cell = counts_[p_index(sensor, bucket)];
    return (cell.unsafe + kPriorUnsafe) / (cell.unsafe + cell.safe + kPriorUnsafe + kPriorSafe);
  }

  // A set's score is the mean of its members': the model has no joint-
  // failure training data (the paper's PX4-13291 lesson), so an untrained
  // member drags a mixed set below the run threshold rather than riding
  // along with a trained partner.
  template <typename SensorRange>
  double p_unsafe_set(const SensorRange& sensors_in_set, fw::ModeBucket bucket) const {
    double sum = 0.0;
    int count = 0;
    for (const auto& id : sensors_in_set) {
      sum += p_unsafe(id.type, bucket);
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  }

 private:
  struct Cell {
    int unsafe = 0;
    int safe = 0;
  };
  static constexpr double kPriorUnsafe = 0.3;
  static constexpr double kPriorSafe = 1.7;

  static std::size_t p_index(sensors::SensorType sensor, fw::ModeBucket bucket) {
    return static_cast<std::size_t>(sensor) * 4 + static_cast<std::size_t>(bucket);
  }

  std::array<Cell, 24> counts_{};
  int total_unsafe_ = 0;
  int total_safe_ = 0;
};

}  // namespace avis::baselines
