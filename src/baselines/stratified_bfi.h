// Stratified BFI (paper §VI, Table I): BFI's Bayesian model gating SABRE's
// transition-stratified exploration order.
//
// "We also implemented an improved version of BFI called Stratified BFI that
// uses SABRE to explore injection candidates using BFI's algorithm. While
// Stratified BFI improved upon the state of the art, it ... did not
// exhaustively target the critical periods where the UAV transitioned
// between operating modes": every SABRE-proposed scenario still pays the
// model's labeling cost and only model-approved scenarios are simulated, so
// windows the training data never covered (pre-flight, landing, GPS/baro/
// battery failures) are skipped.
#pragma once

#include "baselines/bayes_model.h"
#include "baselines/bfi.h"
#include "core/sabre.h"
#include "core/strategy.h"

namespace avis::baselines {

class StratifiedBfi final : public core::InjectionStrategy {
 public:
  // FaultPlanConstraints (injection window, fault-type mask, set sizes) are
  // enforced by the embedded SabreScheduler: every candidate plan comes out
  // of sabre_, so passing a constraint-carrying sabre_config (the registry
  // factory does, via p_sabre_config) constrains this strategy too — the
  // model gate only ever *rejects* plans, never widens them.
  StratifiedBfi(sensors::SuiteConfig suite,
                std::vector<core::ModeTransition> golden_transitions,
                const NaiveBayesModel& model, double run_threshold = 0.45,
                core::SabreConfig sabre_config = {})
      : sabre_(suite, golden_transitions, sabre_config),
        model_(&model),
        timeline_(golden_transitions),
        run_threshold_(run_threshold) {}

  std::optional<core::FaultPlan> next(core::BudgetClock& budget) override {
    while (!budget.exhausted()) {
      auto plan = sabre_.next(budget);
      if (!plan) return std::nullopt;
      budget.charge_label();
      // Score the newest injection in the plan (the site SABRE just added).
      const auto& newest = *std::max_element(
          plan->events.begin(), plan->events.end(),
          [](const core::FaultEvent& a, const core::FaultEvent& b) {
            return a.time_ms < b.time_ms;
          });
      std::vector<sensors::SensorId> newest_set;
      for (const auto& e : plan->events) {
        if (e.time_ms == newest.time_ms) newest_set.push_back(e.sensor);
      }
      const double p = model_->p_unsafe_set(newest_set, timeline_.bucket_at(newest.time_ms));
      if (p >= run_threshold_) return plan;
      // Below threshold: never simulated. Tell SABRE the scenario is closed
      // (no transitions to re-enqueue) and move on.
      sabre_.feedback(*plan, core::ExperimentResult{});
    }
    return std::nullopt;
  }

  // Like BFI: labeling charges the budget inside next(), so batches are
  // capped at one plan to keep the parallel checker's budget sequence
  // identical to serial execution (see docs/PERFORMANCE.md).
  std::vector<core::FaultPlan> next_batch(core::BudgetClock& budget, int) override {
    std::vector<core::FaultPlan> plans;
    if (auto plan = next(budget)) plans.push_back(std::move(*plan));
    return plans;
  }

  void feedback(const core::FaultPlan& plan, const core::ExperimentResult& result) override {
    sabre_.feedback(plan, result);
  }

  const char* name() const override { return "Stratified BFI"; }

 private:
  core::SabreScheduler sabre_;
  const NaiveBayesModel* model_;
  ModeTimeline timeline_;
  double run_threshold_;
};

}  // namespace avis::baselines
