// Bayesian Fault Injection (BFI), after Jha et al. DSN'19 (paper §VI).
//
// BFI scores every candidate injection site with its ML model before
// deciding to simulate it. Per the paper's measurements the model takes
// ~10 seconds per label, and sites are enumerated depth-first over the
// mission timeline at the sensor sampling granularity — which is why "BFI
// was unable to explore even a single second of data within its 2 hour
// budget": the labeling cost consumes the budget while the DFS is still
// inside the first moments of the flight.
#pragma once

#include <algorithm>
#include <unordered_set>

#include "baselines/bayes_model.h"
#include "core/canonical.h"
#include "core/strategy.h"
#include "sensors/sensor_models.h"
#include "util/rng.h"

namespace avis::baselines {

// Flight-phase lookup from the golden run's mode timeline.
class ModeTimeline {
 public:
  explicit ModeTimeline(const std::vector<core::ModeTransition>& transitions)
      : transitions_(transitions) {}

  // Approximate mission duration (time of the last transition).
  sim::SimTimeMs duration_hint() const {
    return transitions_.empty() ? 60000 : std::max<sim::SimTimeMs>(
                                              transitions_.back().time_ms, 10000);
  }

  std::uint16_t mode_at(sim::SimTimeMs t) const {
    std::uint16_t mode = 0;
    for (const auto& tr : transitions_) {
      if (tr.time_ms > t) break;
      mode = tr.mode_id;
    }
    return mode;
  }

  fw::ModeBucket bucket_at(sim::SimTimeMs t) const {
    return fw::bucket_of(fw::CompositeMode::from_id(mode_at(t)).mode);
  }

 private:
  std::vector<core::ModeTransition> transitions_;
};

struct BfiConfig {
  double run_threshold = 0.45;   // simulate sites the model rates above this
  double epsilon = 0.05;         // occasional exploratory run off the DFS path
  sim::SimTimeMs granularity_ms = 1;  // DFS step: the sensor sampling period
  sim::SimTimeMs start_ms = 0;   // DFS origin (mission start)
  int max_set_size = 2;
  // FaultPlanConstraints (core/scenario.h), matching RandomInjection's
  // contract: injection times land in [window_start_ms, min(window_end_ms,
  // duration)) (end 0 = unbounded) and failure sets draw only from allowed
  // sensor types. The defaults reproduce the historical DFS walk and
  // exploratory draw sequence bit for bit.
  sim::SimTimeMs window_start_ms = 0;
  sim::SimTimeMs window_end_ms = 0;
  std::uint32_t allowed_type_mask = 0xffffffffu;
};

class BfiChecker final : public core::InjectionStrategy {
 public:
  BfiChecker(sensors::SuiteConfig suite, const NaiveBayesModel& model, ModeTimeline timeline,
             std::uint64_t seed, BfiConfig config = {})
      : suite_(suite), model_(&model), timeline_(std::move(timeline)), rng_(seed),
        config_(config),
        current_time_(std::max(config.start_ms, config.window_start_ms)) {
    for (sensors::SensorType t : sensors::kAllSensorTypes) {
      if (!p_type_allowed(t)) continue;
      for (int i = 0; i < suite_.count(t); ++i) {
        all_ids_.push_back({t, static_cast<std::uint8_t>(i)});
      }
    }
    // Same clamp rule as RandomInjection: end 0 = mission duration, and the
    // start is pulled inside the window so the draw range is never empty.
    window_hi_ = config_.window_end_ms > 0
                     ? std::min(config_.window_end_ms, timeline_.duration_hint())
                     : timeline_.duration_hint();
    window_lo_ = std::min(config_.window_start_ms, window_hi_ > 0 ? window_hi_ - 1 : 0);
  }

  std::optional<core::FaultPlan> next(core::BudgetClock& budget) override {
    while (!budget.exhausted()) {
      // Occasional exploratory site off the DFS path (BFI samples candidate
      // sites for labeling; a few land outside the frontier).
      if (!all_ids_.empty() && rng_.chance(config_.epsilon)) {
        budget.charge_label();
        core::FaultPlan plan;
        plan.add(window_lo_ + static_cast<sim::SimTimeMs>(rng_.next_below(
                                  static_cast<std::uint64_t>(window_hi_ - window_lo_))),
                 all_ids_[rng_.next_below(all_ids_.size())]);
        return plan;
      }
      const auto candidate = p_advance();
      if (!candidate) return std::nullopt;
      budget.charge_label();  // the model scores every candidate site
      const double p =
          model_->p_unsafe_set(candidate->sensors, timeline_.bucket_at(candidate->time_ms));
      if (p >= config_.run_threshold) {
        core::FaultPlan plan;
        for (const auto& id : candidate->sensors) plan.add(candidate->time_ms, id);
        return plan;
      }
    }
    return std::nullopt;
  }

  // Labeling charges the budget inside next(), and a serial run interleaves
  // those charges with experiment charges. Capping batches at one plan keeps
  // a parallel checker's budget sequence — and therefore its report —
  // identical to serial execution; BFI is label-bound anyway, so it gains
  // nothing from concurrent simulation.
  std::vector<core::FaultPlan> next_batch(core::BudgetClock& budget, int) override {
    std::vector<core::FaultPlan> plans;
    if (auto plan = next(budget)) plans.push_back(std::move(*plan));
    return plans;
  }

  void feedback(const core::FaultPlan&, const core::ExperimentResult&) override {}
  const char* name() const override { return "BFI"; }

 private:
  struct Candidate {
    sim::SimTimeMs time_ms = 0;
    std::vector<sensors::SensorId> sensors;
  };

  bool p_type_allowed(sensors::SensorType t) const {
    return (config_.allowed_type_mask & (std::uint32_t{1} << static_cast<unsigned>(t))) != 0;
  }

  // Depth-first enumeration: all allowed subsets (size order) at the
  // current timestamp, then the next sampling instant — stopping at the
  // injection window's end when one is set.
  std::optional<Candidate> p_advance() {
    if (p_subsets().empty()) return std::nullopt;
    if (subset_cursor_ >= p_subsets().size()) {
      subset_cursor_ = 0;
      current_time_ += config_.granularity_ms;
    }
    if (config_.window_end_ms > 0 && current_time_ >= window_hi_) return std::nullopt;
    Candidate c;
    c.time_ms = current_time_;
    c.sensors = p_subsets()[subset_cursor_++];
    return c;
  }

  const std::vector<std::vector<sensors::SensorId>>& p_subsets() {
    if (!subsets_ready_) {
      subsets_ready_ = true;
      for (int size = 1; size <= config_.max_set_size; ++size) {
        for (auto& set : core::all_instance_sets_of_size(suite_, size)) {
          const bool allowed = std::all_of(
              set.begin(), set.end(),
              [this](const sensors::SensorId& id) { return p_type_allowed(id.type); });
          if (allowed) subsets_.push_back(std::move(set));
        }
      }
    }
    return subsets_;
  }

  sensors::SuiteConfig suite_;
  const NaiveBayesModel* model_;
  ModeTimeline timeline_;
  util::Rng rng_;
  BfiConfig config_;
  std::vector<sensors::SensorId> all_ids_;
  std::vector<std::vector<sensors::SensorId>> subsets_;
  bool subsets_ready_ = false;
  sim::SimTimeMs current_time_;
  sim::SimTimeMs window_lo_ = 0;
  sim::SimTimeMs window_hi_ = 0;
  std::size_t subset_cursor_ = 0;
};

}  // namespace avis::baselines
