#include "fw/controllers.h"

#include <cassert>
#include <cmath>

namespace avis::fw {

namespace {
constexpr double kGravity = 9.80665;
constexpr double kMaxMotorThrustN = 7.4;  // matches sim::QuadcopterParams
constexpr double kMassKg = 1.5;
}  // namespace

void ControlCascade::reset() {
  rate_roll_.reset();
  rate_pitch_.reset();
  rate_yaw_.reset();
  last_vel_error_ = {};
}

geo::Vec3 ControlCascade::p_accel_from_position(const Setpoint& sp, const EstimatedState& est) {
  const geo::Vec3 error = sp.position - est.position;
  // Square-root velocity profile (ArduPilot's sqrt_controller): the speed
  // demand respects the braking distance v^2 = 2*a*d, so the vehicle
  // decelerates into waypoints instead of overshooting them.
  const double h_dist = std::sqrt(error.x * error.x + error.y * error.y);
  double h_speed_target = 0.0;
  if (h_dist > 1e-6) {
    h_speed_target = std::min({gains_.max_speed_xy,
                               std::sqrt(2.0 * 0.40 * gains_.max_accel_xy * h_dist),
                               gains_.pos_p * h_dist * 2.5});
  }
  geo::Vec3 vel_target{};
  if (h_dist > 1e-6) {
    vel_target.x = error.x / h_dist * h_speed_target;
    vel_target.y = error.y / h_dist * h_speed_target;
  }
  vel_target.z = std::clamp(error.z * gains_.pos_p, -gains_.max_climb, gains_.max_descent);
  return p_accel_from_velocity(vel_target, est);
}

geo::Vec3 ControlCascade::p_accel_from_velocity(const geo::Vec3& vel_target,
                                                const EstimatedState& est) {
  const geo::Vec3 vel_error = vel_target - est.velocity;
  geo::Vec3 accel = vel_error * gains_.vel_p + (vel_error - last_vel_error_) * gains_.vel_d;
  last_vel_error_ = vel_error;
  const double h_acc = std::sqrt(accel.x * accel.x + accel.y * accel.y);
  if (h_acc > gains_.max_accel_xy) {
    const double scale = gains_.max_accel_xy / h_acc;
    accel.x *= scale;
    accel.y *= scale;
  }
  accel.z = std::clamp(accel.z, -6.0, 4.0);
  return accel;
}

sim::MotorCommands ControlCascade::p_attitude_step(const geo::Attitude& target, double thrust,
                                                   const EstimatedState& est, double dt) {
  // Angle -> rate.
  geo::Vec3 rate_target{
      gains_.att_p * geo::wrap_angle(target.roll - est.attitude.roll),
      gains_.att_p * geo::wrap_angle(target.pitch - est.attitude.pitch),
      gains_.yaw_p * geo::wrap_angle(target.yaw - est.attitude.yaw),
  };
  rate_target = rate_target.clamped(gains_.max_rate);

  // Rate -> torque demand (normalized to motor-differential units).
  const double roll_out = rate_roll_.update(rate_target.x - est.body_rates.x, dt);
  const double pitch_out = rate_pitch_.update(rate_target.y - est.body_rates.y, dt);
  const double yaw_out = rate_yaw_.update(rate_target.z - est.body_rates.z, dt);

  // Mixer (quad X): motor order FR, BL, FL, BR (see sim/vehicle_state.h).
  // Roll torque:  left motors up  -> m1,m2 increase.
  // Pitch torque: front motors up -> m0,m2 increase.
  // Yaw torque:   CCW pair (m0,m1) vs CW pair (m2,m3).
  sim::MotorCommands out;
  out.value[0] = thrust - roll_out + pitch_out + yaw_out;
  out.value[1] = thrust + roll_out - pitch_out + yaw_out;
  out.value[2] = thrust + roll_out + pitch_out - yaw_out;
  out.value[3] = thrust - roll_out - pitch_out - yaw_out;
  for (double& v : out.value) v = std::clamp(v, 0.0, 1.0);
  // Debug tripwire at the cascade output: std::clamp propagates NaN, and a
  // NaN motor command silently corrupts the physics (or a batch lane) from
  // this step onward.
  assert(std::isfinite(out.value[0]) && std::isfinite(out.value[1]) &&
         std::isfinite(out.value[2]) && std::isfinite(out.value[3]));
  return out;
}

sim::MotorCommands ControlCascade::update(const Setpoint& sp, const EstimatedState& est,
                                          double dt) {
  if (sp.kind == Setpoint::Kind::kMotorsOff) {
    reset();
    return {};
  }
  if (sp.kind == Setpoint::Kind::kEmergencyDescend) {
    // ~97% of hover thrust: terminal descent ~1.8 m/s (inside the landing
    // classifier's limit) while aerodynamic damping keeps the frame level.
    sim::MotorCommands out;
    for (double& v : out.value) v = kHoverThrottle * 0.97;
    return out;
  }

  geo::Vec3 accel_target{};
  double yaw_target = sp.yaw.value_or(est.attitude.yaw);

  switch (sp.kind) {
    case Setpoint::Kind::kPosition:
      accel_target = p_accel_from_position(sp, est);
      break;
    case Setpoint::Kind::kVelocity: {
      geo::Vec3 vel = sp.velocity;
      const double h = std::sqrt(vel.x * vel.x + vel.y * vel.y);
      if (h > gains_.max_speed_xy) {
        vel.x *= gains_.max_speed_xy / h;
        vel.y *= gains_.max_speed_xy / h;
      }
      accel_target = p_accel_from_velocity(vel, est);
      break;
    }
    case Setpoint::Kind::kAttitude: {
      // Direct attitude with climb-rate control; used by degraded modes.
      const double climb_err = sp.climb_rate - est.climb_rate();
      const double accel_up = gains_.climb_p * climb_err;
      const double thrust_n = kMassKg * (kGravity + accel_up);
      const double throttle =
          std::clamp(thrust_n / (4.0 * kMaxMotorThrustN), 0.0, 1.0);
      geo::Attitude att = sp.attitude;
      att.yaw = yaw_target;
      return p_attitude_step(att, throttle, est, dt);
    }
    case Setpoint::Kind::kMotorsOff:
    case Setpoint::Kind::kEmergencyDescend:
      return {};
  }

  // acceleration target -> attitude + thrust.
  // NED: accel up = -accel_target.z. Required specific thrust along body -z:
  const double accel_up = -accel_target.z + kGravity;
  // Desired tilt produces horizontal acceleration: ax = g*tan(pitch') etc.
  // Rotate the horizontal acceleration demand into the body-yaw frame.
  const double cy = std::cos(est.attitude.yaw);
  const double sy = std::sin(est.attitude.yaw);
  const double ax_body = accel_target.x * cy + accel_target.y * sy;
  const double ay_body = -accel_target.x * sy + accel_target.y * cy;

  // Sign: positive pitch (nose up) tilts thrust backward, so accelerating
  // along +x needs negative pitch; positive roll tilts thrust toward +y.
  geo::Attitude att_target;
  att_target.pitch =
      std::clamp(-std::atan2(ax_body, kGravity), -gains_.max_tilt_rad, gains_.max_tilt_rad);
  att_target.roll =
      std::clamp(std::atan2(ay_body, kGravity), -gains_.max_tilt_rad, gains_.max_tilt_rad);
  att_target.yaw = yaw_target;

  const double tilt_comp = std::clamp(
      1.0 / std::max(0.5, std::cos(est.attitude.tilt())), 1.0, 1.5);
  const double thrust_n = kMassKg * std::max(0.0, accel_up) * tilt_comp;
  const double throttle = std::clamp(thrust_n / (4.0 * kMaxMotorThrustN), 0.0, 1.0);

  return p_attitude_step(att_target, throttle, est, dt);
}

}  // namespace avis::fw
