// Complementary-filter correction gains, shared between the scalar
// StateEstimator (fw/estimator.cc) and the batched lockstep lanes
// (fw/estimator_batch.cc). The batch path re-derives the fault-free
// straight-line of the scalar update, and its bit-identity contract only
// holds if both read the exact same constants — so they live here instead
// of being duplicated in two translation units.
#pragma once

#include "sim/simulator.h"

namespace avis::fw::estimator_gains {

inline constexpr double kDt = sim::kStepSeconds;
inline constexpr double kGravity = 9.80665;

// Chosen for convergence well inside a takeoff's duration while rejecting
// sensor noise. Tilt correction must be gentle and gated: while the vehicle
// accelerates, the specific force is not gravity, and a strong correction
// "leans" the attitude estimate, which corrupts the velocity estimate in a
// positive feedback loop (the classic complementary-filter lean bias).
inline constexpr double kTiltGain = 0.4;
inline constexpr double kTiltGateMs2 = 1.0;  // only correct when |f| is within 1 m/s^2 of g
inline constexpr double kYawGain = 2.5;
inline constexpr double kBaroPosGain = 3.0;
inline constexpr double kBaroVelGain = 1.6;
inline constexpr double kGpsPosGain = 1.3;
inline constexpr double kGpsVelGain = 3.0;
inline constexpr double kGpsVelZGain = 0.8;
inline constexpr double kGpsAltGain = 1.1;  // weaker: GPS altitude is coarse

}  // namespace avis::fw::estimator_gains
