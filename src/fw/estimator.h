// State estimation (paper Fig. 2: "Estimate Position / Attitude / Velocity").
//
// A complementary-filter EKF-lite, structured like ArduPilot's AHRS + inertial
// nav stack: gyros propagate attitude, accelerometers correct tilt and
// propagate velocity, the barometer corrects the vertical channel, GPS
// corrects the horizontal channel (and substitutes for the barometer when it
// dies — coarsely, which is the Fig. 1 hazard), and the compass corrects
// heading. Every sensor family fails over primary -> backups; when a family
// is completely dead the estimator degrades exactly the way the paper's
// sensor bugs exploit.
//
// Seeded bugs do not live here. The firmware's failsafe logic applies
// "quirks" (stale-velocity holds, frozen altitude, biased altitude, ...) via
// the setters below; each quirk models the incorrect data path a real bug
// left in place.
#pragma once

#include <array>

#include "fw/config.h"
#include "fw/sensor_bus.h"
#include "geo/attitude.h"
#include "geo/vec3.h"
#include "sensors/sensor_types.h"
#include "sim/simulator.h"

namespace avis::fw {

struct EstimatedState {
  geo::Vec3 position;    // NED, metres from home
  geo::Vec3 velocity;    // NED, m/s
  geo::Attitude attitude;
  geo::Vec3 body_rates;  // rad/s
  double battery_voltage = 12.6;
  double battery_remaining = 1.0;

  double altitude() const { return -position.z; }
  double climb_rate() const { return -velocity.z; }
};

// Health of one sensor family after fail-over.
struct SourceHealth {
  int total = 0;
  int alive = 0;
  bool primary_alive = true;
  sim::SimTimeMs all_failed_at = -1;      // -1: family still has a live instance
  sim::SimTimeMs primary_failed_at = -1;  // -1: primary still alive

  bool any_alive() const { return alive > 0; }
};

// Bug-injected data-path distortions (see fw/firmware.cc for which bug sets
// which quirk and under what mode window).
struct EstimatorQuirks {
  bool hold_stale_gps_velocity = false;  // keep dead GPS's last velocity as truth
  bool freeze_altitude = false;          // altitude output stops updating
  double altitude_bias = 0.0;            // reported altitude = real estimate + bias
  bool freeze_heading = false;           // yaw stops updating
  bool stale_rates = false;              // body rates held at last pre-failure value
  bool gps_altitude_only = false;        // vertical reference = raw GPS (Fig. 1 hazard)
  bool derived_rates = false;            // PX4 fallback: rates from attitude derivative
  double yaw_rate_bias = 0.0;            // rad/s of phantom yaw rate (APM-5428)
};

class StateEstimator {
 public:
  StateEstimator(const FirmwareConfig& config, SensorBus& bus);

  // One 1 kHz update. `truth`/`env` are passed through to the sensor models
  // only; the estimator itself never looks at ground truth.
  void update(sim::SimTimeMs now, const sim::VehicleState& truth, const sim::Environment& env);

  // The state the rest of the firmware sees: the fused solution with any
  // bug-quirk distortion applied. The internal filter state stays clean so
  // distortions do not feed back into the fusion itself.
  const EstimatedState& state() const { return published_; }
  const SourceHealth& health(sensors::SensorType t) const {
    return health_[static_cast<std::size_t>(t)];
  }

  EstimatorQuirks& quirks() { return quirks_; }

  // Batched lockstep support: the batch engine fuses sensors in
  // fw::EstimatorBatch lanes and writes each step's solution back here so
  // the control phase (mode logic, failsafes, cascade) reads exactly what a
  // scalar update() would have produced. Pre-injection lanes carry no quirk
  // distortion, so state and published are passed separately but normally
  // bit-equal.
  void adopt_fused(const EstimatedState& state, const EstimatedState& published) {
    state_ = state;
    published_ = published;
  }

  // APM-16967's final act: the firmware resets its state estimate near the
  // end of the emergency landing, discarding the fused attitude.
  void reset_state_estimate();

  // APM-9349: accelerometer clipping during a hard turn corrupts the fused
  // velocity; models the one-time estimate jump the bug report describes.
  void corrupt_velocity(const geo::Vec3& delta) { state_.velocity += delta; }

  // True once the horizontal position solution is degraded to dead
  // reckoning (GPS family dead and no stale-velocity quirk hiding it).
  bool dead_reckoning() const { return dead_reckoning_; }

  // Complete mid-run filter state for experiment checkpointing: both the
  // clean and the quirk-distorted solutions, fail-over health, and every
  // fallback latch. Config and bus wiring are construction-time and stay
  // with the hosting arena.
  struct Snapshot {
    EstimatedState state;
    EstimatedState published;
    EstimatorQuirks quirks;
    std::array<SourceHealth, 6> health{};
    geo::Vec3 last_gps_velocity;
    geo::Vec3 last_gps_local;
    bool have_gps_sample = false;
    geo::Attitude prev_attitude;
    bool frozen_alt_valid = false;
    double frozen_alt_z = 0.0;
    bool dead_reckoning = false;
    bool have_gps_ever = false;
  };

  Snapshot save() const {
    return {state_,          published_,        quirks_,       health_,
            last_gps_velocity_, last_gps_local_, have_gps_sample_, prev_attitude_,
            frozen_alt_valid_,  frozen_alt_z_,   dead_reckoning_,  have_gps_ever_};
  }

  void load(const Snapshot& s) {
    state_ = s.state;
    published_ = s.published;
    quirks_ = s.quirks;
    health_ = s.health;
    last_gps_velocity_ = s.last_gps_velocity;
    last_gps_local_ = s.last_gps_local;
    have_gps_sample_ = s.have_gps_sample;
    prev_attitude_ = s.prev_attitude;
    frozen_alt_valid_ = s.frozen_alt_valid;
    frozen_alt_z_ = s.frozen_alt_z;
    dead_reckoning_ = s.dead_reckoning;
    have_gps_ever_ = s.have_gps_ever;
  }

 private:
  void p_update_health(sim::SimTimeMs now);

  const FirmwareConfig* config_;
  SensorBus* bus_;
  EstimatedState state_;      // internal filter state (never distorted)
  EstimatedState published_;  // filter state after quirk distortion
  EstimatorQuirks quirks_;
  std::array<SourceHealth, 6> health_{};

  geo::Vec3 last_gps_velocity_;
  geo::Vec3 last_gps_local_;     // last GPS fix in local NED
  bool have_gps_sample_ = false;
  geo::Attitude prev_attitude_;  // for the derived-rates fallback
  bool frozen_alt_valid_ = false;
  double frozen_alt_z_ = 0.0;
  bool dead_reckoning_ = false;
  bool have_gps_ever_ = false;
};

}  // namespace avis::fw
