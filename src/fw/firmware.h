// The control firmware (paper Fig. 2).
//
// One Firmware instance models a complete autopilot: it reads sensors
// through instrumented drivers, runs the state estimator, processes
// ground-station MAVLink traffic (commands, mission upload, RC sticks),
// executes the current operating mode, monitors failsafes, and produces
// motor commands. Two personalities — ArduPilot-like and PX4-like — share
// this implementation but differ in mode naming, failsafe policy for
// degraded sensors, and which seeded bugs apply (see fw/bugs.h).
//
// Everything the model checker observes crosses a protocol boundary:
// mode transitions and sensor reads via libhinj, pilot traffic via the
// MAVLink channel. The firmware never sees the fault plan.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "fw/bugs.h"
#include "fw/config.h"
#include "fw/controllers.h"
#include "fw/estimator.h"
#include "fw/mission.h"
#include "fw/modes.h"
#include "fw/sensor_bus.h"
#include "hinj/hinj.h"
#include "mavlink/channel.h"
#include "sim/simulator.h"

namespace avis::fw {

class Firmware {
 public:
  Firmware(FirmwareConfig config, SensorBus& bus, hinj::Client& hinj_client,
           mavlink::Endpoint& link, const sim::Environment& env);

  // One 1 kHz firmware iteration (Fig. 7 steps 3-5): sample sensors, fuse,
  // handle pilot traffic, run the mode + failsafe logic, mix motors.
  sim::MotorCommands step(sim::SimTimeMs now, const sim::VehicleState& truth);

  // Batched lockstep support (core::BatchHarness): the middle of step() —
  // pilot traffic, failsafes, mode selection, telemetry — with the
  // estimator fusion and the cascade hoisted out. The caller has already
  // written this step's fused solution into the estimator (adopt_fused) and
  // runs the cascade lanes itself; on !armed the cascade has been reset
  // exactly as step() would. step() routes through this so the two paths
  // cannot drift.
  struct ControlPhase {
    Setpoint setpoint;
    bool armed = false;
  };
  ControlPhase step_control_phase(sim::SimTimeMs now, const sim::VehicleState& truth);

  // --- Observability (telemetry-equivalent; used by tests and benches) ---
  Mode mode() const { return mode_; }
  CompositeMode composite_mode() const { return {mode_, submode_}; }
  bool armed() const { return armed_; }
  const EstimatedState& estimate() const { return estimator_.state(); }
  StateEstimator& estimator() { return estimator_; }
  // The batch engine keeps the cascade's PID state in its own lanes and
  // syncs it around step_control_phase (p_set_mode may reset the cascade);
  // divergence loads the lane state back through this accessor.
  ControlCascade& cascade() { return cascade_; }
  const FirmwareConfig& config() const { return config_; }
  const MissionManager& mission() const { return mission_; }
  bool mission_complete() const { return mission_complete_; }

  // Diagnostics: seeded bugs that actually fired this run, in firing order.
  // Benches use this to attribute unsafe conditions to root causes; the
  // search strategies never read it.
  const std::vector<BugId>& fired_bugs() const { return fired_bugs_; }

  // Seeded-bug runtime (public so the checkpoint Snapshot below can carry
  // it; the members themselves stay private).
  struct BugState {
    bool fired = false;
    sim::SimTimeMs fired_at = -1;
    int phase = 0;
  };

  // Complete mid-run autopilot state for experiment checkpointing: the
  // estimator and cascade capsules, the mission store (a value type,
  // captured whole), and every mode/failsafe/bug latch. The config and the
  // bus/hinj/link/env wiring are construction-time properties of the spec
  // and the hosting arena — a restored firmware keeps its own wiring. Kept
  // in lockstep with the member list below: a new stateful member must join
  // this capsule or restored runs diverge from fresh ones (the parity suite
  // in tests/test_checkpoint.cc is the tripwire).
  struct Snapshot {
    StateEstimator::Snapshot estimator;
    ControlCascade::Snapshot cascade;
    MissionManager mission;
    Mode mode = Mode::kPreFlight;
    std::uint8_t submode = 0;
    Mode prev_mode = Mode::kPreFlight;
    sim::SimTimeMs mode_entry_ms = 0;
    bool armed = false;
    bool mission_active = false;
    bool mission_complete = false;
    double takeoff_target_alt = 0.0;
    geo::Vec3 takeoff_xy;
    geo::Vec3 guided_target;
    geo::Vec3 hold_position;
    bool holding = false;
    double hold_yaw = 0.0;
    sim::SimTimeMs last_stick_change_ms = 0;
    geo::Vec3 land_xy;
    bool land_xy_valid = false;
    sim::SimTimeMs land_low_since = -1;
    double land_commanded_descent = 0.0;
    int rtl_phase = 0;
    double rtl_target_alt = 0.0;
    mavlink::RcOverride sticks;
    int wp_ordinal = 0;
    std::array<bool, 6> family_handled{};
    sim::SimTimeMs battery_dead_since = -1;
    bool position_valid = true;
    std::array<BugState, 15> bug_state{};
    std::vector<BugId> fired_bugs;
    sim::SimTimeMs land_descent_ramp_start = 0;
    sim::SimTimeMs last_telemetry_ms = -1000;
    sim::SimTimeMs last_heartbeat_ms = -1000;
    std::size_t last_reported_mission_index = static_cast<std::size_t>(-1);
  };

  Snapshot save() const;
  void load(const Snapshot& s);

 private:
  // MAVLink handling.
  void p_handle_mavlink(sim::SimTimeMs now);
  void p_handle_command(const mavlink::CommandLong& cmd, sim::SimTimeMs now);
  void p_send_telemetry(sim::SimTimeMs now, const sim::VehicleState& truth);
  void p_status(const std::string& text, std::uint8_t severity = 6);

  // Mode machine.
  void p_set_mode(Mode m, std::uint8_t submode, sim::SimTimeMs now, const char* reason);
  void p_begin_mission_item(sim::SimTimeMs now);
  void p_advance_mission(sim::SimTimeMs now);
  Setpoint p_mode_setpoint(sim::SimTimeMs now);
  void p_detect_touchdown(sim::SimTimeMs now);

  // Failsafes and seeded bugs.
  void p_failsafes(sim::SimTimeMs now);
  void p_bug_hooks(sim::SimTimeMs now);
  bool p_family_dead(sensors::SensorType t) const;
  sim::SimTimeMs p_family_death_time(sensors::SensorType t) const;
  bool p_primary_dead(sensors::SensorType t) const;
  sim::SimTimeMs p_primary_death_time(sensors::SensorType t) const;
  void p_fire(BugId id, sim::SimTimeMs now, const char* note);
  bool p_fired(BugId id) const { return bug_state_[static_cast<std::size_t>(id)].fired; }
  bool p_bug_armed(BugId id) const;  // enabled, personality matches, not fired

  // Pre-arm checks: refuse to arm with a dead sensor family (safe refusal).
  bool p_prearm_ok() const;

  FirmwareConfig config_;
  SensorBus* bus_;
  hinj::Client* hinj_;
  mavlink::Endpoint* link_;
  const sim::Environment* env_;

  StateEstimator estimator_;
  ControlCascade cascade_;
  MissionManager mission_;

  // Mode state.
  Mode mode_ = Mode::kPreFlight;
  std::uint8_t submode_ = 0;
  Mode prev_mode_ = Mode::kPreFlight;
  sim::SimTimeMs mode_entry_ms_ = 0;
  bool armed_ = false;
  bool mission_active_ = false;
  bool mission_complete_ = false;

  // Mode-specific runtime state.
  double takeoff_target_alt_ = 0.0;
  geo::Vec3 takeoff_xy_;
  geo::Vec3 guided_target_;
  geo::Vec3 hold_position_;
  bool holding_ = false;
  double hold_yaw_ = 0.0;
  sim::SimTimeMs last_stick_change_ms_ = -100000;  // last hold/fly toggle in poshold
  geo::Vec3 land_xy_;
  bool land_xy_valid_ = false;
  sim::SimTimeMs land_low_since_ = -1;
  double land_commanded_descent_ = 0.0;
  enum class RtlPhase { kClimb, kReturn, kDescend } rtl_phase_ = RtlPhase::kClimb;
  double rtl_target_alt_ = 0.0;
  mavlink::RcOverride sticks_;
  int wp_ordinal_ = 0;  // how many NAV_WAYPOINTs the mission has passed

  // Failsafe bookkeeping.
  std::array<bool, 6> family_handled_{};  // a bug or failsafe owns this family
  sim::SimTimeMs battery_dead_since_ = -1;
  bool position_valid_ = true;

  // Seeded-bug runtime.
  std::array<bool, 15> bug_armed_mask_{};  // enabled && personality match, fixed at boot
  std::array<BugState, 15> bug_state_{};
  std::vector<BugId> fired_bugs_;

  // APM-4679 land-flap timer; APM-16021 phase timer share BugState.phase.
  sim::SimTimeMs land_descent_ramp_start_ = 0;

  // Telemetry pacing.
  sim::SimTimeMs last_telemetry_ms_ = -1000;
  sim::SimTimeMs last_heartbeat_ms_ = -1000;
  std::size_t last_reported_mission_index_ = static_cast<std::size_t>(-1);
};

}  // namespace avis::fw
