// Firmware configuration: personality, control gains, speeds, failsafe
// parameters. Defaults are tuned for the Iris-class dynamics in src/sim and
// are shared by both personalities; personalities differ in mode naming,
// failsafe *policy*, and which seeded bugs apply to them.
#pragma once

#include "fw/bugs.h"
#include "fw/modes.h"

namespace avis::fw {

struct ControlGains {
  // Position -> velocity (P) and velocity -> acceleration (P + damping).
  double pos_p = 0.95;
  double vel_p = 1.4;
  double vel_d = 0.0;
  double max_speed_xy = 6.0;       // m/s
  double max_accel_xy = 4.0;       // m/s^2
  double max_tilt_rad = 0.42;      // ~24 degrees
  // Vertical.
  double alt_p = 1.4;
  double climb_p = 2.2;
  double max_climb = 3.2;          // m/s
  double max_descent = 1.6;        // m/s
  // Attitude: angle -> rate (P), rate -> torque (PID). The rate-loop gain
  // must stay well under the motor-lag pole (1/20 ms = 50/s) or the
  // airframe oscillates: 0.03 cmd/(rad/s) * 260 (rad/s^2)/cmd ~= 8/s.
  double att_p = 4.5;
  double rate_p = 0.03;
  double rate_i = 0.012;
  double rate_d = 0.0012;
  double max_rate = 3.0;           // rad/s
  double yaw_p = 2.5;
  double yaw_rate_p = 0.04;
};

struct FailsafeConfig {
  double battery_low_fraction = 0.15;
  double rtl_altitude = 15.0;       // climb-to altitude for return-to-launch
  double land_speed = 0.75;         // m/s final descent
  double land_speed_fast = 3.2;     // m/s descent above 10 m (LAND_SPEED_HIGH)
  // How long (ms) after total loss of a sensor family the failsafe reacts;
  // real firmware debounces health flags.
  int health_debounce_ms = 150;
};

struct FirmwareConfig {
  Personality personality = Personality::kArduPilotLike;
  ControlGains gains;
  FailsafeConfig failsafe;
  double takeoff_climb_rate = 2.5;  // m/s
  double waypoint_accept_radius = 2.0;  // m
  double takeoff_accept_error = 0.35;   // m from target altitude
  BugRegistry bugs = BugRegistry::current_code_base();

  static FirmwareConfig ardupilot() {
    FirmwareConfig c;
    c.personality = Personality::kArduPilotLike;
    return c;
  }

  static FirmwareConfig px4() {
    FirmwareConfig c;
    c.personality = Personality::kPx4Like;
    return c;
  }
};

}  // namespace avis::fw
