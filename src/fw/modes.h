// Operating modes (paper §II).
//
// "An operating mode encompasses all code execution associated with a pilot
// command." The firmware exposes a canonical mode set; each personality
// (ArduPilot-like, PX4-like) maps canonical modes to its own names, mirroring
// how ArduPilot's STABILIZE/AUTO/RTL/LAND and PX4's MANUAL/AUTO_MISSION/
// AUTO_RTL/AUTO_LAND cover the same flight operations.
//
// Within AUTO, the firmware reports the current mission leg as a sub-mode
// ("auto-wp1", "auto-wp2", ...). These legs are the mode-transition points
// SABRE keys on — Table II's failure windows ("Waypoint 1 -> Waypoint 2")
// are transitions between such legs.
#pragma once

#include <cstdint>
#include <string>

namespace avis::fw {

enum class Mode : std::uint8_t {
  kPreFlight = 0,     // disarmed, on ground
  kStabilize = 1,     // manual attitude control
  kAltHold = 2,       // manual with altitude hold
  kPositionHold = 3,  // manual with full position hold (workload 1's mode)
  kTakeoff = 4,
  kAuto = 5,          // waypoint mission
  kGuided = 6,        // fly to commanded target
  kLoiter = 7,
  kReturnToLaunch = 8,
  kLand = 9,
  kEmergencyLand = 10,  // failsafe descent without position control
};

inline const char* canonical_name(Mode m) {
  switch (m) {
    case Mode::kPreFlight: return "preflight";
    case Mode::kStabilize: return "stabilize";
    case Mode::kAltHold: return "alt-hold";
    case Mode::kPositionHold: return "position-hold";
    case Mode::kTakeoff: return "takeoff";
    case Mode::kAuto: return "auto";
    case Mode::kGuided: return "guided";
    case Mode::kLoiter: return "loiter";
    case Mode::kReturnToLaunch: return "rtl";
    case Mode::kLand: return "land";
    case Mode::kEmergencyLand: return "emergency-land";
  }
  return "?";
}

enum class Personality : std::uint8_t { kArduPilotLike = 0, kPx4Like = 1 };

inline const char* to_string(Personality p) {
  return p == Personality::kArduPilotLike ? "ArduPilot" : "PX4";
}

// Personality-flavoured mode name, as it would appear in telemetry logs.
inline std::string personality_mode_name(Personality p, Mode m) {
  if (p == Personality::kArduPilotLike) {
    switch (m) {
      case Mode::kPreFlight: return "DISARMED";
      case Mode::kStabilize: return "STABILIZE";
      case Mode::kAltHold: return "ALT_HOLD";
      case Mode::kPositionHold: return "POSHOLD";
      case Mode::kTakeoff: return "TAKEOFF";
      case Mode::kAuto: return "AUTO";
      case Mode::kGuided: return "GUIDED";
      case Mode::kLoiter: return "LOITER";
      case Mode::kReturnToLaunch: return "RTL";
      case Mode::kLand: return "LAND";
      case Mode::kEmergencyLand: return "LAND_EMERGENCY";
    }
  } else {
    switch (m) {
      case Mode::kPreFlight: return "STANDBY";
      case Mode::kStabilize: return "MANUAL";
      case Mode::kAltHold: return "ALTCTL";
      case Mode::kPositionHold: return "POSCTL";
      case Mode::kTakeoff: return "AUTO_TAKEOFF";
      case Mode::kAuto: return "AUTO_MISSION";
      case Mode::kGuided: return "OFFBOARD";
      case Mode::kLoiter: return "AUTO_LOITER";
      case Mode::kReturnToLaunch: return "AUTO_RTL";
      case Mode::kLand: return "AUTO_LAND";
      case Mode::kEmergencyLand: return "DESCEND";
    }
  }
  return "?";
}

// Composite mode id reported through hinj: top byte is the mode, low byte a
// sub-mode (the current mission leg inside AUTO, otherwise 0). The engine
// treats distinct composite ids as distinct states in the mode graph.
// Everything that speaks composite ids (workload scripts, SetMode commands,
// tests) should build them through this helper rather than hand-shifted
// literals.
inline constexpr std::uint16_t composite_mode_id(Mode mode, std::uint8_t submode = 0) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(mode) << 8) | submode);
}

struct CompositeMode {
  Mode mode = Mode::kPreFlight;
  std::uint8_t submode = 0;

  std::uint16_t id() const { return composite_mode_id(mode, submode); }

  static CompositeMode from_id(std::uint16_t id) {
    return {static_cast<Mode>(id >> 8), static_cast<std::uint8_t>(id & 0xff)};
  }

  std::string name() const {
    std::string n = canonical_name(mode);
    if (mode == Mode::kAuto && submode > 0) n += "-wp" + std::to_string(submode);
    return n;
  }

  constexpr bool operator==(const CompositeMode&) const = default;
};

// Table IV buckets unsafe scenarios into four coarse flight phases.
enum class ModeBucket : std::uint8_t { kTakeoff = 0, kManual = 1, kWaypoint = 2, kLand = 3 };

inline const char* to_string(ModeBucket b) {
  switch (b) {
    case ModeBucket::kTakeoff: return "Takeoff";
    case ModeBucket::kManual: return "Manual";
    case ModeBucket::kWaypoint: return "Waypoint";
    case ModeBucket::kLand: return "Land";
  }
  return "?";
}

inline ModeBucket bucket_of(Mode m) {
  switch (m) {
    case Mode::kPreFlight:
    case Mode::kTakeoff:
      return ModeBucket::kTakeoff;
    case Mode::kStabilize:
    case Mode::kAltHold:
    case Mode::kPositionHold:
    case Mode::kLoiter:
      return ModeBucket::kManual;
    case Mode::kAuto:
    case Mode::kGuided:
    case Mode::kReturnToLaunch:
      return ModeBucket::kWaypoint;
    case Mode::kLand:
    case Mode::kEmergencyLand:
      return ModeBucket::kLand;
  }
  return ModeBucket::kManual;
}

}  // namespace avis::fw
