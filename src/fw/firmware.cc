#include "fw/firmware.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace avis::fw {

namespace {
constexpr double kDt = sim::kStepSeconds;

// Land-mode pacing (ArduPilot LAND has an initial pause, then a descent-rate
// ramp; both matter for the APM-4679 land-flap bug).
constexpr sim::SimTimeMs kLandPauseMs = 1000;
constexpr sim::SimTimeMs kLandRampMs = 900;
constexpr double kLandFastAltitude = 10.0;  // above this, descend fast

geo::Vec3 limit_xy(geo::Vec3 v, double max_xy) {
  const double h = std::sqrt(v.x * v.x + v.y * v.y);
  if (h > max_xy && h > 0.0) {
    v.x *= max_xy / h;
    v.y *= max_xy / h;
  }
  return v;
}
}  // namespace

Firmware::Firmware(FirmwareConfig config, SensorBus& bus, hinj::Client& hinj_client,
                   mavlink::Endpoint& link, const sim::Environment& env)
    : config_(std::move(config)),
      bus_(&bus),
      hinj_(&hinj_client),
      link_(&link),
      env_(&env),
      estimator_(config_, bus),
      cascade_(config_.gains) {
  // The enabled-set and personality are fixed for the life of the firmware;
  // fold both into a flat mask so the per-step bug hooks pay an array load
  // instead of a hash probe.
  for (BugId id : kAllBugs) {
    bug_armed_mask_[static_cast<std::size_t>(id)] =
        config_.bugs.enabled(id) && bug_info(id).personality == config_.personality;
  }
  // Report the boot mode so the engine's mode trace starts at t=0.
  hinj_->update_mode(composite_mode().id(), composite_mode().name(), 0);
}

Firmware::Snapshot Firmware::save() const {
  Snapshot s;
  s.estimator = estimator_.save();
  s.cascade = cascade_.save();
  s.mission = mission_;
  s.mode = mode_;
  s.submode = submode_;
  s.prev_mode = prev_mode_;
  s.mode_entry_ms = mode_entry_ms_;
  s.armed = armed_;
  s.mission_active = mission_active_;
  s.mission_complete = mission_complete_;
  s.takeoff_target_alt = takeoff_target_alt_;
  s.takeoff_xy = takeoff_xy_;
  s.guided_target = guided_target_;
  s.hold_position = hold_position_;
  s.holding = holding_;
  s.hold_yaw = hold_yaw_;
  s.last_stick_change_ms = last_stick_change_ms_;
  s.land_xy = land_xy_;
  s.land_xy_valid = land_xy_valid_;
  s.land_low_since = land_low_since_;
  s.land_commanded_descent = land_commanded_descent_;
  s.rtl_phase = static_cast<int>(rtl_phase_);
  s.rtl_target_alt = rtl_target_alt_;
  s.sticks = sticks_;
  s.wp_ordinal = wp_ordinal_;
  s.family_handled = family_handled_;
  s.battery_dead_since = battery_dead_since_;
  s.position_valid = position_valid_;
  s.bug_state = bug_state_;
  s.fired_bugs = fired_bugs_;
  s.land_descent_ramp_start = land_descent_ramp_start_;
  s.last_telemetry_ms = last_telemetry_ms_;
  s.last_heartbeat_ms = last_heartbeat_ms_;
  s.last_reported_mission_index = last_reported_mission_index_;
  return s;
}

void Firmware::load(const Snapshot& s) {
  estimator_.load(s.estimator);
  cascade_.load(s.cascade);
  mission_ = s.mission;
  mode_ = s.mode;
  submode_ = s.submode;
  prev_mode_ = s.prev_mode;
  mode_entry_ms_ = s.mode_entry_ms;
  armed_ = s.armed;
  mission_active_ = s.mission_active;
  mission_complete_ = s.mission_complete;
  takeoff_target_alt_ = s.takeoff_target_alt;
  takeoff_xy_ = s.takeoff_xy;
  guided_target_ = s.guided_target;
  hold_position_ = s.hold_position;
  holding_ = s.holding;
  hold_yaw_ = s.hold_yaw;
  last_stick_change_ms_ = s.last_stick_change_ms;
  land_xy_ = s.land_xy;
  land_xy_valid_ = s.land_xy_valid;
  land_low_since_ = s.land_low_since;
  land_commanded_descent_ = s.land_commanded_descent;
  rtl_phase_ = static_cast<RtlPhase>(s.rtl_phase);
  rtl_target_alt_ = s.rtl_target_alt;
  sticks_ = s.sticks;
  wp_ordinal_ = s.wp_ordinal;
  family_handled_ = s.family_handled;
  battery_dead_since_ = s.battery_dead_since;
  position_valid_ = s.position_valid;
  bug_state_ = s.bug_state;
  fired_bugs_ = s.fired_bugs;
  land_descent_ramp_start_ = s.land_descent_ramp_start;
  last_telemetry_ms_ = s.last_telemetry_ms;
  last_heartbeat_ms_ = s.last_heartbeat_ms;
  last_reported_mission_index_ = s.last_reported_mission_index;
}

sim::MotorCommands Firmware::step(sim::SimTimeMs now, const sim::VehicleState& truth) {
  estimator_.update(now, truth, *env_);
  const ControlPhase phase = step_control_phase(now, truth);
  if (!phase.armed) {
    return {};
  }
  return cascade_.update(phase.setpoint, estimator_.state(), kDt);
}

Firmware::ControlPhase Firmware::step_control_phase(sim::SimTimeMs now,
                                                    const sim::VehicleState& truth) {
  p_handle_mavlink(now);
  if (armed_) {
    p_failsafes(now);
  }
  const Setpoint sp = p_mode_setpoint(now);
  p_send_telemetry(now, truth);
  if (!armed_) {
    cascade_.reset();
  }
  return {sp, armed_};
}

// --------------------------------------------------------------------------
// MAVLink handling
// --------------------------------------------------------------------------

void Firmware::p_handle_mavlink(sim::SimTimeMs now) {
  while (auto msg = link_->receive()) {
    if (const auto* cmd = std::get_if<mavlink::CommandLong>(&*msg)) {
      p_handle_command(*cmd, now);
    } else if (const auto* set_mode = std::get_if<mavlink::SetMode>(&*msg)) {
      const Mode requested = static_cast<Mode>(set_mode->custom_mode >> 8);
      switch (requested) {
        case Mode::kAuto:
          if (armed_ && mission_.has_mission()) {
            mission_.restart();
            mission_active_ = true;
            wp_ordinal_ = 0;
            p_begin_mission_item(now);
          }
          break;
        case Mode::kPositionHold:
          if (armed_ && mode_ != Mode::kPreFlight) {
            holding_ = false;
            p_set_mode(Mode::kPositionHold, 0, now, "pilot");
          }
          break;
        case Mode::kLand:
          if (armed_) {
            land_xy_ = estimator_.state().position;
            land_xy_valid_ = position_valid_;
            p_set_mode(Mode::kLand, 0, now, "pilot");
          }
          break;
        case Mode::kReturnToLaunch:
          if (armed_ && mode_ != Mode::kPreFlight) {
            p_set_mode(Mode::kReturnToLaunch, 0, now, "pilot");
          }
          break;
        case Mode::kGuided:
          if (armed_ && mode_ != Mode::kPreFlight) {
            guided_target_ = estimator_.state().position;
            p_set_mode(Mode::kGuided, 0, now, "pilot");
          }
          break;
        default:
          p_status("mode change rejected", 4);
          break;
      }
    } else if (const auto* count = std::get_if<mavlink::MissionCount>(&*msg)) {
      for (auto& reply : mission_.on_mission_count(*count)) link_->send(reply);
    } else if (const auto* item = std::get_if<mavlink::MissionItem>(&*msg)) {
      for (auto& reply : mission_.on_mission_item(*item)) link_->send(reply);
    } else if (const auto* rc = std::get_if<mavlink::RcOverride>(&*msg)) {
      sticks_ = *rc;
    } else if (const auto* fence = std::get_if<mavlink::FenceEnable>(&*msg)) {
      if (fence->enable) {
        sim::Fence f;
        f.min_north = fence->min_north;
        f.max_north = fence->max_north;
        f.min_east = fence->min_east;
        f.max_east = fence->max_east;
        f.max_altitude = fence->max_altitude;
        mission_.set_fence(f);
      } else {
        mission_.clear_fence();
      }
    }
    // Heartbeats and telemetry echoes are ignored.
  }
}

void Firmware::p_handle_command(const mavlink::CommandLong& cmd, sim::SimTimeMs now) {
  mavlink::CommandAck ack;
  ack.command = cmd.command;
  ack.result = mavlink::CommandResult::kAccepted;

  switch (cmd.command) {
    case mavlink::Command::kComponentArmDisarm: {
      const bool want_armed = cmd.param1 > 0.5;
      if (want_armed) {
        if (mode_ != Mode::kPreFlight || !p_prearm_ok()) {
          ack.result = mavlink::CommandResult::kDenied;
          p_status("arming denied: pre-arm checks failed", 3);
        } else {
          armed_ = true;
          p_status("armed");
        }
      } else {
        armed_ = false;
        p_set_mode(Mode::kPreFlight, 0, now, "pilot disarm");
      }
      break;
    }
    case mavlink::Command::kNavTakeoff: {
      if (!armed_ || mode_ != Mode::kPreFlight) {
        ack.result = mavlink::CommandResult::kDenied;
      } else {
        takeoff_target_alt_ = cmd.param7 > 0.0 ? cmd.param7 : 10.0;
        takeoff_xy_ = estimator_.state().position;
        hold_yaw_ = estimator_.state().attitude.yaw;
        p_set_mode(Mode::kTakeoff, 0, now, "pilot takeoff");
      }
      break;
    }
    case mavlink::Command::kNavLand: {
      if (!armed_) {
        ack.result = mavlink::CommandResult::kDenied;
      } else {
        land_xy_ = estimator_.state().position;
        land_xy_valid_ = position_valid_;
        p_set_mode(Mode::kLand, 0, now, "pilot land");
      }
      break;
    }
    case mavlink::Command::kNavReturnToLaunch: {
      if (!armed_ || mode_ == Mode::kPreFlight) {
        ack.result = mavlink::CommandResult::kDenied;
      } else {
        p_set_mode(Mode::kReturnToLaunch, 0, now, "pilot rtl");
      }
      break;
    }
    default:
      ack.result = mavlink::CommandResult::kDenied;
      break;
  }
  link_->send(ack);
}

void Firmware::p_status(const std::string& text, std::uint8_t severity) {
  mavlink::StatusText st;
  st.severity = severity;
  st.text = text;
  link_->send(st);
}

void Firmware::p_send_telemetry(sim::SimTimeMs now, const sim::VehicleState& truth) {
  (void)truth;
  if (now - last_heartbeat_ms_ >= 500) {
    last_heartbeat_ms_ = now;
    mavlink::Heartbeat hb;
    hb.system_status = armed_ ? 4 : 3;
    hb.custom_mode = composite_mode().id();
    hb.armed = armed_;
    link_->send(hb);
    hinj_->heartbeat(now);
  }
  if (now - last_telemetry_ms_ >= 100) {
    last_telemetry_ms_ = now;
    const EstimatedState& est = estimator_.state();
    mavlink::GlobalPositionInt gp;
    gp.time_ms = now;
    gp.position = env_->frame().to_geodetic(est.position);
    gp.relative_alt_m = est.altitude();
    gp.velocity_ned = est.velocity;
    gp.heading_rad = est.attitude.yaw;
    link_->send(gp);
  }
  if (mission_active_ && mission_.current_index() != last_reported_mission_index_) {
    last_reported_mission_index_ = mission_.current_index();
    mavlink::MissionCurrent mc;
    mc.seq = static_cast<std::uint16_t>(mission_.current_index());
    link_->send(mc);
  }
}

// --------------------------------------------------------------------------
// Mode machine
// --------------------------------------------------------------------------

void Firmware::p_set_mode(Mode m, std::uint8_t submode, sim::SimTimeMs now,
                          const char* reason) {
  prev_mode_ = mode_;
  mode_ = m;
  submode_ = submode;
  mode_entry_ms_ = now;
  if (m == Mode::kLand || m == Mode::kEmergencyLand) {
    land_descent_ramp_start_ = now;
    land_low_since_ = -1;
  }
  if (m == Mode::kReturnToLaunch) {
    rtl_phase_ = RtlPhase::kClimb;
    rtl_target_alt_ = std::max(config_.failsafe.rtl_altitude, estimator_.state().altitude());
  }
  cascade_.reset();
  // The paper's single instrumented call site: every mode change is
  // reported to the engine through hinj_update_mode(). The name crosses the
  // wire as a length-prefixed field the engine decodes as a view; only
  // directors that record the trace copy it.
  const CompositeMode cm = composite_mode();
  hinj_->update_mode(cm.id(), cm.name(), now);
  p_status(std::string("mode: ") + personality_mode_name(config_.personality, m) + " (" +
           reason + ")");
}

void Firmware::p_begin_mission_item(sim::SimTimeMs now) {
  const mavlink::MissionItem* item = mission_.current();
  if (item == nullptr) {
    mission_active_ = false;
    mission_complete_ = true;
    if (mode_ != Mode::kLand && mode_ != Mode::kPreFlight) {
      land_xy_ = estimator_.state().position;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "mission complete");
    }
    return;
  }
  switch (item->command) {
    case mavlink::Command::kNavTakeoff:
      takeoff_target_alt_ = item->position.altitude_m - env_->frame().home().altitude_m;
      takeoff_xy_ = estimator_.state().position;
      hold_yaw_ = estimator_.state().attitude.yaw;
      p_set_mode(Mode::kTakeoff, 0, now, "mission takeoff");
      break;
    case mavlink::Command::kNavWaypoint:
      ++wp_ordinal_;
      p_set_mode(Mode::kAuto, static_cast<std::uint8_t>(wp_ordinal_), now, "mission waypoint");
      break;
    case mavlink::Command::kNavReturnToLaunch:
      p_set_mode(Mode::kReturnToLaunch, 0, now, "mission rtl");
      break;
    case mavlink::Command::kNavLand:
      land_xy_ = env_->frame().to_local(item->position);
      land_xy_.z = 0.0;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "mission land");
      break;
    default:
      p_advance_mission(now);
      break;
  }
}

void Firmware::p_advance_mission(sim::SimTimeMs now) {
  mavlink::MissionItemReached reached;
  reached.seq = static_cast<std::uint16_t>(mission_.current_index());
  link_->send(reached);
  if (mission_.advance()) {
    p_begin_mission_item(now);
  } else {
    mission_active_ = false;
    mission_complete_ = true;
    if (mode_ != Mode::kLand) {
      land_xy_ = estimator_.state().position;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "mission complete");
    }
  }
}

Setpoint Firmware::p_mode_setpoint(sim::SimTimeMs now) {
  Setpoint sp;
  if (!armed_ || mode_ == Mode::kPreFlight) {
    sp.kind = Setpoint::Kind::kMotorsOff;
    return sp;
  }
  const EstimatedState& est = estimator_.state();

  switch (mode_) {
    case Mode::kPreFlight:
      sp.kind = Setpoint::Kind::kMotorsOff;
      break;

    case Mode::kTakeoff: {
      // Climb at a fixed rate over the launch point until the target
      // altitude is reached, then hand over to the next flight mode.
      double climb = config_.takeoff_climb_rate;
      if (p_fired(BugId::kPx417192) || p_fired(BugId::kPx417181)) {
        climb = 0.0;  // takeoff aborted but vehicle left armed and idling
      }
      if (p_fired(BugId::kApm4455)) {
        climb *= 2.6;  // mis-set climb rate after mid-climb baro loss
      }
      // Taper the climb approaching the target so the hand-over to the next
      // mode does not overshoot.
      if (climb > 0.0) {
        climb = std::min(climb, 0.9 * (takeoff_target_alt_ - est.altitude()) + 0.3);
        climb = std::max(climb, 0.0);
      }
      sp.kind = Setpoint::Kind::kVelocity;
      sp.velocity = limit_xy((takeoff_xy_ - est.position) * config_.gains.pos_p, 1.5);
      sp.velocity.z = -climb;
      double yaw_target = hold_yaw_;
      if (p_fired(BugId::kApm5428)) {
        // Heading lock dropped: the yaw reference spins.
        yaw_target = geo::wrap_angle(
            hold_yaw_ + 0.9 * static_cast<double>(now - mode_entry_ms_) / 1000.0);
      }
      sp.yaw = yaw_target;
      if (est.altitude() >= takeoff_target_alt_ - config_.takeoff_accept_error && climb > 0.0) {
        if (mission_active_) {
          p_advance_mission(now);
        } else {
          guided_target_ = est.position;
          p_set_mode(Mode::kGuided, 0, now, "takeoff complete");
        }
      }
      break;
    }

    case Mode::kAuto: {
      const mavlink::MissionItem* item = mission_.current();
      if (item == nullptr) {
        p_advance_mission(now);
        break;
      }
      geo::Vec3 target = env_->frame().to_local(item->position);
      if (p_fired(BugId::kPx417046)) {
        // RTL engagement was rejected; the navigator keeps chasing the last
        // leg's velocity forever (fly-away).
        sp.kind = Setpoint::Kind::kVelocity;
        sp.velocity = limit_xy((target - est.position), 1.0) * config_.gains.max_speed_xy;
        sp.velocity.z = 0.0;
        break;
      }
      sp.kind = Setpoint::Kind::kPosition;
      sp.position = target;
      const geo::Vec3 to_wp = target - est.position;
      if (std::sqrt(to_wp.x * to_wp.x + to_wp.y * to_wp.y) > 1.0) {
        sp.yaw = std::atan2(to_wp.y, to_wp.x);
      }
      // Geofence: breaching the fence triggers the fence failsafe (RTL),
      // which is how the fence workload's golden run is meant to end its box.
      if (mission_.fence_violated(est.position)) {
        p_status("fence breach: RTL", 3);
        mission_active_ = false;
        p_set_mode(Mode::kReturnToLaunch, 0, now, "fence failsafe");
        break;
      }
      const double dist = (target - est.position).norm();
      if (dist < config_.waypoint_accept_radius) {
        p_advance_mission(now);
      }
      break;
    }

    case Mode::kGuided:
      sp.kind = Setpoint::Kind::kPosition;
      sp.position = guided_target_;
      break;

    case Mode::kPositionHold: {
      const bool sticks_idle = std::abs(sticks_.roll) < 0.05 && std::abs(sticks_.pitch) < 0.05 &&
                               std::abs(sticks_.throttle) < 0.05;
      if (sticks_idle) {
        if (!holding_) {
          hold_position_ = est.position;
          hold_yaw_ = est.attitude.yaw;
          holding_ = true;
          last_stick_change_ms_ = now;
        }
        sp.kind = Setpoint::Kind::kPosition;
        sp.position = hold_position_;
        sp.yaw = hold_yaw_;
      } else {
        if (holding_) last_stick_change_ms_ = now;
        holding_ = false;
        // Sticks map to body-yaw-frame velocity demands.
        const double cy = std::cos(est.attitude.yaw);
        const double sy = std::sin(est.attitude.yaw);
        const double vx_body = sticks_.pitch * 4.0;   // forward
        const double vy_body = sticks_.roll * 4.0;    // right
        sp.kind = Setpoint::Kind::kVelocity;
        sp.velocity.x = vx_body * cy - vy_body * sy;
        sp.velocity.y = vx_body * sy + vy_body * cy;
        sp.velocity.z = -sticks_.throttle * 2.0;
        hold_yaw_ = geo::wrap_angle(hold_yaw_ + sticks_.yaw * 1.2 * kDt);
        sp.yaw = hold_yaw_;
      }
      break;
    }

    case Mode::kReturnToLaunch: {
      switch (rtl_phase_) {
        case RtlPhase::kClimb:
          sp.kind = Setpoint::Kind::kPosition;
          sp.position = est.position;
          sp.position.z = -rtl_target_alt_;
          if (est.altitude() >= rtl_target_alt_ - 0.5) rtl_phase_ = RtlPhase::kReturn;
          break;
        case RtlPhase::kReturn: {
          if (p_fired(BugId::kPx413291)) {
            // Battery failsafe engaged RTL without a position check; with no
            // local position the vehicle just keeps its last velocity.
            sp.kind = Setpoint::Kind::kVelocity;
            sp.velocity = limit_xy(est.velocity, config_.gains.max_speed_xy);
            if (sp.velocity.norm() < 1.0) {
              const double yaw = est.attitude.yaw;
              sp.velocity = {4.0 * std::cos(yaw), 4.0 * std::sin(yaw), 0.0};
            }
            sp.velocity.z = 0.0;
            break;
          }
          sp.kind = Setpoint::Kind::kPosition;
          sp.position = {0.0, 0.0, -rtl_target_alt_};
          const geo::Vec3 to_home = sp.position - est.position;
          if (std::sqrt(to_home.x * to_home.x + to_home.y * to_home.y) > 1.0) {
            sp.yaw = std::atan2(to_home.y, to_home.x);
          }
          const double home_dist =
              std::sqrt(est.position.x * est.position.x + est.position.y * est.position.y);
          if (home_dist < 2.0) {
            rtl_phase_ = RtlPhase::kDescend;
            land_xy_ = {0.0, 0.0, 0.0};
            land_xy_valid_ = position_valid_;
            p_set_mode(Mode::kLand, 0, now, "rtl complete");
          }
          break;
        }
        case RtlPhase::kDescend:
          // Unreachable: kDescend immediately becomes Land mode.
          sp.kind = Setpoint::Kind::kVelocity;
          sp.velocity = {0.0, 0.0, config_.failsafe.land_speed};
          break;
      }
      break;
    }

    case Mode::kLand: {
      // Descent-rate schedule: pause, then ramp, fast when high, slow final.
      const sim::SimTimeMs since_ramp = now - land_descent_ramp_start_;
      double descent = 0.0;
      if (since_ramp > kLandPauseMs) {
        const double ramp =
            std::min(1.0, static_cast<double>(since_ramp - kLandPauseMs) /
                              static_cast<double>(kLandRampMs));
        double target_speed = est.altitude() > kLandFastAltitude
                                  ? config_.failsafe.land_speed_fast
                                  : config_.failsafe.land_speed;
        // Degraded-reference landings descend conservatively. The APM-16021
        // and APM-16682 bugs are precisely this check being skipped: the
        // firmware trusts its (wrong) altitude and keeps the fast schedule.
        const bool degraded = p_family_dead(sensors::SensorType::kAccelerometer) ||
                              p_family_dead(sensors::SensorType::kBarometer);
        if (degraded && !p_fired(BugId::kApm16021) && !p_fired(BugId::kApm16682)) {
          target_speed = config_.failsafe.land_speed;
        }
        descent = ramp * target_speed;
      }
      land_commanded_descent_ = descent;
      if (land_xy_valid_) {
        sp.kind = Setpoint::Kind::kVelocity;
        sp.velocity = limit_xy((land_xy_ - est.position) * config_.gains.pos_p, 1.0);
        sp.velocity.z = descent;
      } else {
        // No trustworthy position: hold a level attitude and descend. A
        // zero-velocity target would chase the dead-reckoned velocity
        // estimate, actively dragging the vehicle away from the scene.
        sp.kind = Setpoint::Kind::kAttitude;
        sp.attitude = {};
        sp.climb_rate = -descent;
      }
      p_detect_touchdown(now);
      break;
    }

    case Mode::kEmergencyLand:
      if (estimator_.quirks().derived_rates) {
        // Degraded-but-usable attitude solution: hold level and descend.
        sp.kind = Setpoint::Kind::kAttitude;
        sp.attitude = {};
        sp.climb_rate = -0.8;
        land_commanded_descent_ = 0.8;
      } else {
        // No usable rate feedback at all: open-loop reduced thrust.
        sp.kind = Setpoint::Kind::kEmergencyDescend;
        land_commanded_descent_ = 1.5;
      }
      p_detect_touchdown(now);
      break;

    default:
      sp.kind = Setpoint::Kind::kVelocity;
      sp.velocity = {};
      break;
  }
  return sp;
}

void Firmware::p_detect_touchdown(sim::SimTimeMs now) {
  const EstimatedState& est = estimator_.state();
  // Primary detector: altitude reference says we are down and not moving.
  const bool low = est.altitude() < 0.25 && std::abs(est.climb_rate()) < 0.25;
  // Secondary detector (coarse altitude reference, e.g. GPS-only): descent
  // is commanded but the vehicle is not moving vertically near the ground —
  // it must be resting on something.
  const bool stalled = est.altitude() < 2.0 && land_commanded_descent_ > 0.3 &&
                       std::abs(est.climb_rate()) < 0.12;
  if (low || stalled) {
    if (land_low_since_ < 0) land_low_since_ = now;
    if (now - land_low_since_ > (low ? 400 : 900)) {
      armed_ = false;
      p_status("landing complete, disarmed");
      p_set_mode(Mode::kPreFlight, 0, now, "landed");
    }
  } else {
    land_low_since_ = -1;
  }
}

// --------------------------------------------------------------------------
// Failsafes and seeded bugs
// --------------------------------------------------------------------------

bool Firmware::p_family_dead(sensors::SensorType t) const {
  return !estimator_.health(t).any_alive();
}

sim::SimTimeMs Firmware::p_family_death_time(sensors::SensorType t) const {
  return estimator_.health(t).all_failed_at;
}

bool Firmware::p_primary_dead(sensors::SensorType t) const {
  return !estimator_.health(t).primary_alive;
}

sim::SimTimeMs Firmware::p_primary_death_time(sensors::SensorType t) const {
  return estimator_.health(t).primary_failed_at;
}

bool Firmware::p_bug_armed(BugId id) const {
  return bug_armed_mask_[static_cast<std::size_t>(id)] && !p_fired(id);
}

void Firmware::p_fire(BugId id, sim::SimTimeMs now, const char* note) {
  auto& st = bug_state_[static_cast<std::size_t>(id)];
  st.fired = true;
  st.fired_at = now;
  fired_bugs_.push_back(id);
  util::log_debug() << "bug " << bug_info(id).report_name << " fired at t=" << now << "ms ("
                    << note << ")";
}

bool Firmware::p_prearm_ok() const {
  // Real firmware refuses to arm with *any* unhealthy sensor ("PreArm:
  // Compass not healthy"), not merely a dead family.
  using sensors::SensorType;
  for (SensorType t : sensors::kAllSensorTypes) {
    const SourceHealth& h = estimator_.health(t);
    if (h.alive != h.total) return false;
  }
  return true;
}

void Firmware::p_failsafes(sim::SimTimeMs now) {
  p_bug_hooks(now);

  using sensors::SensorType;
  auto handled = [&](SensorType t) -> bool& {
    return family_handled_[static_cast<std::size_t>(t)];
  };
  auto debounced_dead = [&](SensorType t) {
    return p_family_dead(t) &&
           now - p_family_death_time(t) >= config_.failsafe.health_debounce_ms;
  };
  const bool airborne = mode_ != Mode::kPreFlight && estimator_.state().altitude() > 0.3;

  // A family is marked handled only when a failsafe action is actually
  // taken; a failure detected on the ground stays pending until the vehicle
  // is airborne (or never acts if it stays down — the pre-arm check and the
  // takeoff logic own that case).
  const bool landing_already = mode_ == Mode::kLand || mode_ == Mode::kEmergencyLand;

  // Gyroscopes: nothing flies without rate feedback. Unlike the other
  // families this acts even from inside a normal landing — descending on a
  // broken rate loop is not survivable.
  if (debounced_dead(SensorType::kGyroscope) && !handled(SensorType::kGyroscope)) {
    if (config_.personality == Personality::kArduPilotLike) {
      if (mode_ != Mode::kEmergencyLand) {
        handled(SensorType::kGyroscope) = true;
        // Rates are reconstructed from the accel-corrected attitude so the
        // emergency descent can still keep the frame level.
        estimator_.quirks().derived_rates = true;
        p_status("gyro failure: emergency landing", 2);
        p_set_mode(Mode::kEmergencyLand, 0, now, "gyro failsafe");
      }
    } else {
      // PX4 reconstructs rates from the attitude solution and lands.
      handled(SensorType::kGyroscope) = true;
      estimator_.quirks().derived_rates = true;
      p_status("gyro failure: descending", 2);
      if (!landing_already) {
        land_xy_ = estimator_.state().position;
        land_xy_valid_ = position_valid_;
        p_set_mode(Mode::kLand, 0, now, "gyro failsafe");
      }
    }
  }

  // Accelerometers: vertical estimation degrades; land while baro holds.
  if (debounced_dead(SensorType::kAccelerometer) && !handled(SensorType::kAccelerometer) &&
      airborne && !landing_already) {
    handled(SensorType::kAccelerometer) = true;
    p_status("accelerometer failure: landing", 2);
    land_xy_ = estimator_.state().position;
    land_xy_valid_ = position_valid_;
    p_set_mode(Mode::kLand, 0, now, "accel failsafe");
  }

  // Barometer: no trustworthy altitude reference; land on GPS altitude.
  if (debounced_dead(SensorType::kBarometer) && !handled(SensorType::kBarometer) && airborne &&
      !landing_already) {
    handled(SensorType::kBarometer) = true;
    p_status("barometer failure: landing", 2);
    land_xy_ = estimator_.state().position;
    land_xy_valid_ = position_valid_;
    p_set_mode(Mode::kLand, 0, now, "baro failsafe");
  }

  // GPS: no position; land in place. If a landing is already under way its
  // horizontal hold must stop chasing the now-dead-reckoned position.
  if (debounced_dead(SensorType::kGps)) {
    position_valid_ = false;
    land_xy_valid_ = false;
    if (!handled(SensorType::kGps) && airborne && !landing_already) {
      handled(SensorType::kGps) = true;
      p_status("GPS failure: landing without position", 2);
      p_set_mode(Mode::kLand, 0, now, "gps failsafe");
    }
  }

  // Battery monitor: unknown charge is treated as critical after a delay.
  if (p_family_dead(SensorType::kBattery)) {
    if (battery_dead_since_ < 0) battery_dead_since_ = now;
    if (now - battery_dead_since_ > 2000 && !handled(SensorType::kBattery) && airborne &&
        !landing_already) {
      handled(SensorType::kBattery) = true;
      p_status("battery monitor failure: landing", 2);
      land_xy_ = estimator_.state().position;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "battery failsafe");
    }
  }

  // Battery genuinely low (readable): return home.
  if (!p_family_dead(SensorType::kBattery) &&
      estimator_.state().battery_remaining < config_.failsafe.battery_low_fraction &&
      airborne && mode_ != Mode::kReturnToLaunch && mode_ != Mode::kLand &&
      mode_ != Mode::kEmergencyLand && !handled(SensorType::kBattery)) {
    handled(SensorType::kBattery) = true;
    p_status("battery low: RTL", 3);
    p_set_mode(Mode::kReturnToLaunch, 0, now, "battery low");
  }

  // Compass: primary loss fails over to backups inside the estimator; a
  // fully dead family continues on gyro-integrated heading.
}

void Firmware::p_bug_hooks(sim::SimTimeMs now) {
  using sensors::SensorType;
  const EstimatedState& est = estimator_.state();
  auto handled = [&](SensorType t) -> bool& {
    return family_handled_[static_cast<std::size_t>(t)];
  };
  auto died_in_window = [&](SensorType t, sim::SimTimeMs window_start,
                            sim::SimTimeMs window_end) {
    const sim::SimTimeMs d = p_family_death_time(t);
    return p_family_dead(t) && d >= window_start && (window_end < 0 || d <= window_end);
  };
  // IMU and compass bugs are broken fail-overs: they key on the *primary*
  // instance dying inside the window, regardless of surviving backups.
  auto primary_died_in_window = [&](SensorType t, sim::SimTimeMs window_start,
                                    sim::SimTimeMs window_end) {
    const sim::SimTimeMs d = p_primary_death_time(t);
    return p_primary_dead(t) && d >= window_start && (window_end < 0 || d <= window_end);
  };

  // ---- APM-16020: GPS failure right after entering AUTO (fly-away). ----
  if (p_bug_armed(BugId::kApm16020) && mode_ == Mode::kAuto && prev_mode_ == Mode::kTakeoff &&
      died_in_window(SensorType::kGps, mode_entry_ms_ - 200, mode_entry_ms_ + 2500)) {
    p_fire(BugId::kApm16020, now, "stale GPS velocity held after loss in early AUTO");
    estimator_.quirks().hold_stale_gps_velocity = true;
    handled(SensorType::kGps) = true;  // the (buggy) glitch handler owns it
  }

  // ---- APM-16021: accelerometer failure late in takeoff (crash). ----
  // Recency matters: the paper's Fig. 9 fault hits at 18 m of a 20 m climb.
  // A primary lost early in the climb fails over correctly.
  if (p_bug_armed(BugId::kApm16021) && mode_ == Mode::kTakeoff &&
      est.altitude() > 0.55 * takeoff_target_alt_ &&
      primary_died_in_window(SensorType::kAccelerometer, mode_entry_ms_, -1) &&
      now - p_primary_death_time(SensorType::kAccelerometer) < 400) {
    p_fire(BugId::kApm16021, now, "inertial altitude under-read during climb");
    // Phase 1: the state model under-reads altitude, so the climb overshoots.
    estimator_.quirks().altitude_bias = -5.0;
    handled(SensorType::kAccelerometer) = true;
  }
  if (p_fired(BugId::kApm16021)) {
    auto& st = bug_state_[static_cast<std::size_t>(BugId::kApm16021)];
    if (st.phase == 0 && mode_ != Mode::kTakeoff) {
      // Phase 2: overshoot detected; firmware lands, but the state model now
      // predicts a high altitude, so the fast-descent schedule is kept all
      // the way into the ground (Fig. 9, events 3-5).
      st.phase = 1;
      estimator_.quirks().altitude_bias = 12.0;
      land_xy_ = est.position;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "overshoot response");
    }
  }

  // ---- APM-16027: barometer failure entering takeoff (fly-away). ----
  if (p_bug_armed(BugId::kApm16027) && mode_ == Mode::kTakeoff &&
      died_in_window(SensorType::kBarometer, -1 * 1000, mode_entry_ms_ + 1200) &&
      p_family_dead(SensorType::kBarometer)) {
    p_fire(BugId::kApm16027, now, "takeoff altitude reference frozen");
    estimator_.quirks().freeze_altitude = true;
    handled(SensorType::kBarometer) = true;
  }

  // ---- APM-16967: compass failure between waypoints (crash). ----
  // The navigation controller re-reads the dead primary while it is
  // re-computing the course — the turn onto a new waypoint leg, or the
  // moment a manual position-hold leg starts/ends. Outside these windows the
  // fail-over path works.
  const bool in_turn_window =
      (mode_ == Mode::kAuto && submode_ >= 1 && now - mode_entry_ms_ < 1100) ||
      (mode_ == Mode::kPositionHold && now - last_stick_change_ms_ < 600);
  if (p_bug_armed(BugId::kApm16967) && in_turn_window &&
      primary_died_in_window(SensorType::kCompass, mode_entry_ms_ - 300, -1) &&
      now - p_primary_death_time(SensorType::kCompass) < 1100) {
    p_fire(BugId::kApm16967, now, "old compass state read; heading lost");
    estimator_.quirks().freeze_heading = true;  // fail-over never happens
  }
  if (p_fired(BugId::kApm16967)) {
    auto& st = bug_state_[static_cast<std::size_t>(BugId::kApm16967)];
    if (st.phase == 0 && now - st.fired_at > 2500) {
      st.phase = 1;  // heading loss noticed -> emergency land
      land_xy_ = est.position;
      land_xy_valid_ = position_valid_;
      p_set_mode(Mode::kLand, 0, now, "heading lost");
    } else if (st.phase == 1 && est.altitude() < 3.5) {
      st.phase = 2;  // state-estimate reset near the end of the landing
      estimator_.reset_state_estimate();
      estimator_.quirks().stale_rates = true;
      p_status("EKF reset", 2);
    }
  }

  // ---- APM-16682 (Fig. 1): accel failure during landing (crash). ----
  // The failure must start while the landing is already in progress (Table
  // II: "Return To Launch -> Land"); a pre-landing IMU loss takes the
  // correct accel-failsafe path instead. The broken fail-over goes unnoticed
  // until the final metres, where the firmware switches to GPS-driven
  // altitude without checking that the vehicle is far too low for the GPS's
  // coarse vertical resolution.
  if (p_bug_armed(BugId::kApm16682) && mode_ == Mode::kLand && est.altitude() < 3.0 &&
      primary_died_in_window(SensorType::kAccelerometer, mode_entry_ms_, -1)) {
    p_fire(BugId::kApm16682, now, "GPS-driven altitude during final landing");
    // The fail-safe switches to GPS-driven flight without checking that the
    // vehicle is too low for the GPS's coarse vertical resolution (Fig. 1).
    // The coarse fix reads high, so the fast-descent schedule stays engaged
    // all the way into the ground.
    estimator_.quirks().gps_altitude_only = true;
    estimator_.quirks().altitude_bias = 12.0;
    handled(SensorType::kAccelerometer) = true;
  }

  // ---- APM-16953: gyro failure entering land (crash). ----
  if (p_bug_armed(BugId::kApm16953) && mode_ == Mode::kLand &&
      primary_died_in_window(SensorType::kGyroscope, mode_entry_ms_ - 300,
                             mode_entry_ms_ + 2500)) {
    p_fire(BugId::kApm16953, now, "stale rate feedback during landing");
    estimator_.quirks().stale_rates = true;
    handled(SensorType::kGyroscope) = true;  // emergency-land never engages
  }

  // ---- PX4-17046: gyro failure at RTL engagement (fly-away). ----
  if (p_bug_armed(BugId::kPx417046) &&
      ((mode_ == Mode::kReturnToLaunch && now - mode_entry_ms_ < 1000) ||
       (mode_ == Mode::kAuto && submode_ >= 3)) &&
      primary_died_in_window(SensorType::kGyroscope, mode_entry_ms_ - 500, -1)) {
    p_fire(BugId::kPx417046, now, "RTL rejected; last leg velocity held");
    estimator_.quirks().derived_rates = true;  // the honest fallback does engage
    handled(SensorType::kGyroscope) = true;
    if (mode_ == Mode::kReturnToLaunch) {
      // Commander bounces back to the mission with no position target.
      p_set_mode(Mode::kAuto, static_cast<std::uint8_t>(std::max(wp_ordinal_, 1)), now,
                 "rtl rejected");
    }
    mission_active_ = true;
  }

  // ---- PX4-17057: gyro failure during takeoff spool-up (crash). ----
  if (p_bug_armed(BugId::kPx417057) && mode_ == Mode::kTakeoff &&
      now - mode_entry_ms_ < 1800 &&
      primary_died_in_window(SensorType::kGyroscope, mode_entry_ms_ - 1500, -1)) {
    p_fire(BugId::kPx417057, now, "rate fallback not engaged during takeoff");
    estimator_.quirks().stale_rates = true;
    handled(SensorType::kGyroscope) = true;
  }

  // ---- PX4-17192: compass failure before/at takeoff (takeoff failure). ---
  if (p_bug_armed(BugId::kPx417192) && mode_ == Mode::kTakeoff &&
      now - mode_entry_ms_ < 1500 && p_primary_dead(SensorType::kCompass)) {
    p_fire(BugId::kPx417192, now, "takeoff aborted on compass loss; vehicle left armed");
    // No fail-over attempt; the climb is zeroed in p_mode_setpoint.
  }

  // ---- PX4-17181: baro failure before/at takeoff (takeoff failure). ----
  if (p_bug_armed(BugId::kPx417181) && mode_ == Mode::kTakeoff &&
      now - mode_entry_ms_ < 1500 && p_family_dead(SensorType::kBarometer)) {
    p_fire(BugId::kPx417181, now, "takeoff climb zeroed on baro loss; vehicle left armed");
    handled(SensorType::kBarometer) = true;
  }

  // ---- APM-4455 (known): baro failure as the climb completes (runaway). --
  // The climb-rate setter re-reads the dead barometer while computing the
  // level-off; distinct window from APM-16027, which needs the loss at the
  // start of the takeoff.
  if (p_bug_armed(BugId::kApm4455) && mode_ == Mode::kTakeoff &&
      est.altitude() > 0.60 * takeoff_target_alt_ &&
      p_family_dead(SensorType::kBarometer) &&
      p_family_death_time(SensorType::kBarometer) >= mode_entry_ms_ + 1200) {
    p_fire(BugId::kApm4455, now, "climb rate mis-set after mid-climb baro loss");
    estimator_.quirks().freeze_altitude = true;
    handled(SensorType::kBarometer) = true;
  }

  // ---- APM-4679 (known): GPS failure during landing (land flapping). ----
  if (p_bug_armed(BugId::kApm4679) && mode_ == Mode::kLand &&
      p_family_dead(SensorType::kGps) &&
      p_family_death_time(SensorType::kGps) >= land_descent_ramp_start_) {
    p_fire(BugId::kApm4679, now, "glitch handler re-enters LAND from LAND");
    handled(SensorType::kGps) = true;
    position_valid_ = false;
    land_xy_valid_ = false;
  }
  if (p_fired(BugId::kApm4679) && mode_ == Mode::kLand) {
    auto& st = bug_state_[static_cast<std::size_t>(BugId::kApm4679)];
    if (now - st.fired_at > 800 * (st.phase + 1)) {
      ++st.phase;
      p_set_mode(Mode::kLand, 0, now, "gps glitch re-land");  // restarts pause+ramp
    }
  }

  // ---- APM-5428 (known): compass failure during takeoff yaw-align. ----
  // The yaw aligner keeps integrating against the dead primary: the heading
  // solution picks up a phantom rotation and the horizontal controller maps
  // its commands into an increasingly wrong frame.
  if (p_bug_armed(BugId::kApm5428) && mode_ == Mode::kTakeoff &&
      p_primary_dead(SensorType::kCompass)) {
    p_fire(BugId::kApm5428, now, "heading lock dropped during yaw align");
    estimator_.quirks().freeze_heading = true;
    estimator_.quirks().yaw_rate_bias = 0.4;
  }

  // ---- APM-9349 (known): accel clip during a waypoint turn. ----
  if (p_bug_armed(BugId::kApm9349) && mode_ == Mode::kAuto && submode_ >= 1 &&
      now - mode_entry_ms_ < 1500 &&
      primary_died_in_window(SensorType::kAccelerometer, mode_entry_ms_ - 200, -1)) {
    p_fire(BugId::kApm9349, now, "velocity estimate corrupted by clipped accel");
    handled(SensorType::kAccelerometer) = true;
  }
  if (p_fired(BugId::kApm9349)) {
    // The clipped samples keep re-entering the filter: the velocity estimate
    // is repeatedly kicked, the controller brakes and lunges, and after a
    // couple of seconds the firmware declares its velocity solution failed
    // and lands — still on the corrupted vertical estimate, which reads
    // "climbing" while the vehicle sinks.
    auto& st = bug_state_[static_cast<std::size_t>(BugId::kApm9349)];
    if (now - st.fired_at < 2200 && now % 150 == 0) {
      const double yaw = est.attitude.yaw;
      estimator_.corrupt_velocity({3.0 * std::cos(yaw), 3.0 * std::sin(yaw), 0.0});
    }
    if (st.phase == 0 && now - st.fired_at >= 2200) {
      st.phase = 1;
      land_xy_valid_ = false;
      p_set_mode(Mode::kLand, 0, now, "velocity solution failed");
    }
    if (st.phase == 1 && (mode_ == Mode::kLand || mode_ == Mode::kEmergencyLand) &&
        now % 150 == 0) {
      estimator_.corrupt_velocity({0.0, 0.0, -0.5});  // reads as climbing
    }
  }

  // ---- PX4-13291 (known): battery failsafe without local position. ----
  if (p_bug_armed(BugId::kPx413291) && p_family_dead(SensorType::kBattery) &&
      p_family_dead(SensorType::kGps) && mode_ != Mode::kPreFlight &&
      est.altitude() > 1.0) {
    p_fire(BugId::kPx413291, now, "battery failsafe RTL engaged with no position");
    handled(SensorType::kBattery) = true;
    handled(SensorType::kGps) = true;
    position_valid_ = false;
    p_set_mode(Mode::kReturnToLaunch, 0, now, "battery failsafe");
    rtl_phase_ = RtlPhase::kReturn;  // no altitude reference discipline either
  }
}

}  // namespace avis::fw
