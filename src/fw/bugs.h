// Seeded sensor-bug registry.
//
// The paper evaluates Avis against two bug populations:
//  * Table II: 10 previously-unknown bugs present in the then-current
//    ArduPilot/PX4 code bases. Here they are enabled by default — our
//    firmware *is* the "current code base".
//  * Table V: 5 previously-known (already fixed) bugs that the authors
//    re-inserted. Here they are disabled by default and re-inserted by the
//    Table V bench via BugRegistry::enable().
//
// Each bug models what the paper found: failure-handling logic whose context
// check is missing or too narrow for a specific operating-mode window. The
// registry also carries the metadata (symptom, sensor, window) the benches
// print, and firmware code records which bugs actually fired so benches can
// attribute unsafe conditions to root causes. The search strategies never
// read any of this — they only observe modes and inject failures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "fw/modes.h"
#include "sensors/sensor_types.h"

namespace avis::fw {

enum class BugId : std::uint8_t {
  // Table II — previously unknown, enabled by default.
  kApm16020 = 0,   // Fly-away,  GPS,    Takeoff -> Auto
  kApm16021 = 1,   // Crash,     Accel,  Takeoff -> Waypoint 1
  kApm16027 = 2,   // Fly-away,  Baro,   Pre-flight -> Takeoff
  kApm16967 = 3,   // Crash,     Compass, Waypoint 1 -> Waypoint 2
  kApm16682 = 4,   // Crash,     Accel,  RTL -> Land (Fig. 1's bug)
  kApm16953 = 5,   // Crash,     Gyro,   RTL -> Land
  kPx417046 = 6,   // Fly-away,  Gyro,   Waypoint 3 -> RTL
  kPx417057 = 7,   // Crash,     Gyro,   Pre-flight -> Takeoff
  kPx417192 = 8,   // Takeoff failure, Compass, Pre-flight -> Takeoff
  kPx417181 = 9,   // Takeoff failure, Baro,    Pre-flight -> Takeoff
  // Table V — previously known, re-inserted on demand.
  kApm4455 = 10,   // Baro failure mid-climb mis-sets climb rate
  kApm4679 = 11,   // GPS glitch handler re-enters LAND from LAND
  kApm5428 = 12,   // Compass failure during yaw align drops heading lock
  kApm9349 = 13,   // Accel clip during waypoint turn corrupts velocity
  kPx413291 = 14,  // Battery failsafe without local position (two-fault bug)
};

inline constexpr std::array<BugId, 15> kAllBugs{
    BugId::kApm16020, BugId::kApm16021, BugId::kApm16027, BugId::kApm16967, BugId::kApm16682,
    BugId::kApm16953, BugId::kPx417046, BugId::kPx417057, BugId::kPx417192, BugId::kPx417181,
    BugId::kApm4455,  BugId::kApm4679,  BugId::kApm5428,  BugId::kApm9349,  BugId::kPx413291,
};

enum class BugSymptom : std::uint8_t { kCrash, kFlyAway, kTakeoffFailure };

inline const char* to_string(BugSymptom s) {
  switch (s) {
    case BugSymptom::kCrash: return "Crash";
    case BugSymptom::kFlyAway: return "Fly Away";
    case BugSymptom::kTakeoffFailure: return "Takeoff Failure";
  }
  return "?";
}

struct BugInfo {
  BugId id;
  const char* report_name;
  Personality personality;
  BugSymptom symptom;
  sensors::SensorType sensor;
  const char* window;  // human-readable failure-starting-moment, per Table II
  bool known;          // true => Table V population
};

inline const BugInfo& bug_info(BugId id) {
  static const std::array<BugInfo, 15> kInfos{{
      {BugId::kApm16020, "APM-16020", Personality::kArduPilotLike, BugSymptom::kFlyAway,
       sensors::SensorType::kGps, "Takeoff -> Autopilot", false},
      {BugId::kApm16021, "APM-16021", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kAccelerometer, "Takeoff -> Waypoint 1", false},
      {BugId::kApm16027, "APM-16027", Personality::kArduPilotLike, BugSymptom::kFlyAway,
       sensors::SensorType::kBarometer, "Pre-Flight -> Takeoff", false},
      {BugId::kApm16967, "APM-16967", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kCompass, "Waypoint 1 -> Waypoint 2", false},
      {BugId::kApm16682, "APM-16682", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kAccelerometer, "Return To Launch -> Land", false},
      {BugId::kApm16953, "APM-16953", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kGyroscope, "Return To Launch -> Land", false},
      {BugId::kPx417046, "PX4-17046", Personality::kPx4Like, BugSymptom::kFlyAway,
       sensors::SensorType::kGyroscope, "Waypoint 3 -> Return To Launch", false},
      {BugId::kPx417057, "PX4-17057", Personality::kPx4Like, BugSymptom::kCrash,
       sensors::SensorType::kGyroscope, "Pre-Flight -> Takeoff", false},
      {BugId::kPx417192, "PX4-17192", Personality::kPx4Like, BugSymptom::kTakeoffFailure,
       sensors::SensorType::kCompass, "Pre-Flight -> Takeoff", false},
      {BugId::kPx417181, "PX4-17181", Personality::kPx4Like, BugSymptom::kTakeoffFailure,
       sensors::SensorType::kBarometer, "Pre-Flight -> Takeoff", false},
      {BugId::kApm4455, "APM-4455", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kBarometer, "Climb (any)", true},
      {BugId::kApm4679, "APM-4679", Personality::kArduPilotLike, BugSymptom::kFlyAway,
       sensors::SensorType::kGps, "Land (any)", true},
      {BugId::kApm5428, "APM-5428", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kCompass, "Takeoff yaw-align", true},
      {BugId::kApm9349, "APM-9349", Personality::kArduPilotLike, BugSymptom::kCrash,
       sensors::SensorType::kAccelerometer, "Waypoint turn", true},
      {BugId::kPx413291, "PX4-13291", Personality::kPx4Like, BugSymptom::kFlyAway,
       sensors::SensorType::kBattery, "GPS loss then battery failsafe", true},
  }};
  return kInfos[static_cast<std::size_t>(id)];
}

class BugRegistry {
 public:
  // Default population: the Table II "current code base" bugs.
  static BugRegistry current_code_base() {
    BugRegistry r;
    for (BugId id : kAllBugs) {
      if (!bug_info(id).known) r.enable(id);
    }
    return r;
  }

  // No bugs at all; used to validate that golden firmware is safe.
  static BugRegistry patched() { return BugRegistry{}; }

  void enable(BugId id) { enabled_.insert(id); }
  void disable(BugId id) { enabled_.erase(id); }
  bool enabled(BugId id) const { return enabled_.contains(id); }

  std::vector<BugId> enabled_bugs() const {
    std::vector<BugId> v(enabled_.begin(), enabled_.end());
    return v;
  }

 private:
  std::unordered_set<BugId> enabled_;
};

}  // namespace avis::fw
