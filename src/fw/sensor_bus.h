// Instrumented sensor drivers (paper §V-B).
//
// "We insert a libhinj API call in the read() procedure of each sensor
// driver. The API call queries the scheduler to determine if the read should
// fail. ... If the sensor should be failed, the API overwrites the sensor
// reading and the instrumented code executes the firmware's error-handling
// code."
//
// SensorBus is the firmware's only window onto the sensor suite: every read
// goes through the hinj client first, and an engine-directed failure latches
// the instance (clean failures never recover within a run).
#pragma once

#include "hinj/hinj.h"
#include "sensors/sensor_models.h"
#include "sim/simulator.h"

namespace avis::fw {

class SensorBus {
 public:
  SensorBus(sensors::SensorSuite& suite, hinj::Client& hinj_client)
      : suite_(&suite), hinj_(&hinj_client) {}

  // Per-type reads; `instance` selects primary (0) or a backup.
  sensors::ReadStatus read_gyro(int instance, sim::SimTimeMs now,
                                const sim::VehicleState& truth, const sim::Environment& env,
                                sensors::GyroSample& out) {
    return p_read(suite_->gyro(instance), now, truth, env, out);
  }

  sensors::ReadStatus read_accel(int instance, sim::SimTimeMs now,
                                 const sim::VehicleState& truth, const sim::Environment& env,
                                 sensors::AccelSample& out) {
    return p_read(suite_->accel(instance), now, truth, env, out);
  }

  sensors::ReadStatus read_baro(int instance, sim::SimTimeMs now,
                                const sim::VehicleState& truth, const sim::Environment& env,
                                sensors::BaroSample& out) {
    return p_read(suite_->baro(instance), now, truth, env, out);
  }

  sensors::ReadStatus read_gps(int instance, sim::SimTimeMs now,
                               const sim::VehicleState& truth, const sim::Environment& env,
                               sensors::GpsSample& out) {
    return p_read(suite_->gps(instance), now, truth, env, out);
  }

  sensors::ReadStatus read_compass(int instance, sim::SimTimeMs now,
                                   const sim::VehicleState& truth, const sim::Environment& env,
                                   sensors::CompassSample& out) {
    return p_read(suite_->compass(instance), now, truth, env, out);
  }

  sensors::ReadStatus read_battery(int instance, sim::SimTimeMs now,
                                   const sim::VehicleState& truth, const sim::Environment& env,
                                   sensors::BatterySample& out) {
    return p_read(suite_->battery(instance), now, truth, env, out);
  }

  const sensors::SuiteConfig& config() const { return suite_->config(); }

 private:
  template <typename SensorT, typename Sample>
  sensors::ReadStatus p_read(SensorT& sensor, sim::SimTimeMs now,
                             const sim::VehicleState& truth, const sim::Environment& env,
                             Sample& out) {
    // Instrumentation point: ask the engine whether this read fails. This
    // runs for every live sensor on every 1 kHz step, so it rides the hinj
    // client's fixed-size zero-allocation frame path; an already-failed
    // instance stops asking (clean failures never recover within a run).
    if (!sensor.failed() && hinj_->sensor_read(sensor.id(), now)) {
      sensor.fail();
    }
    return sensor.read(now, truth, env, out);
  }

  sensors::SensorSuite* suite_;
  hinj::Client* hinj_;
};

}  // namespace avis::fw
