#include "fw/estimator_batch.h"

#include <cassert>
#include <cmath>

#include "fw/estimator_gains.h"

namespace avis::fw {

using namespace estimator_gains;

EstimatorBatch::EstimatorBatch(int width)
    : position_(static_cast<std::size_t>(width)),
      velocity_(static_cast<std::size_t>(width)),
      attitude_(static_cast<std::size_t>(width)),
      body_rates_(static_cast<std::size_t>(width)),
      battery_voltage_(static_cast<std::size_t>(width), 12.6),
      battery_remaining_(static_cast<std::size_t>(width), 1.0),
      prev_attitude_(static_cast<std::size_t>(width)),
      last_gps_velocity_(static_cast<std::size_t>(width)),
      last_gps_local_(static_cast<std::size_t>(width)),
      have_gps_sample_(static_cast<std::size_t>(width), 0),
      have_gps_ever_(static_cast<std::size_t>(width), 0),
      dead_reckoning_(static_cast<std::size_t>(width), 0),
      quirks_(static_cast<std::size_t>(width)),
      health_(static_cast<std::size_t>(width)),
      frozen_alt_valid_(static_cast<std::size_t>(width), 0),
      frozen_alt_z_(static_cast<std::size_t>(width), 0.0) {}

void EstimatorBatch::pack(int lane, const StateEstimator::Snapshot& s) {
  const auto i = static_cast<std::size_t>(lane);
  // Fault-free invariants (see the header): a lane carrying a quirk or a
  // distorted published solution belongs past its divergence point.
  assert(!s.quirks.hold_stale_gps_velocity && !s.quirks.freeze_altitude &&
         s.quirks.altitude_bias == 0.0 && !s.quirks.freeze_heading && !s.quirks.stale_rates &&
         !s.quirks.gps_altitude_only && !s.quirks.derived_rates && s.quirks.yaw_rate_bias == 0.0);
  assert(s.published.position.x == s.state.position.x &&
         s.published.position.y == s.state.position.y &&
         s.published.position.z == s.state.position.z &&
         s.published.velocity.x == s.state.velocity.x &&
         s.published.velocity.y == s.state.velocity.y &&
         s.published.velocity.z == s.state.velocity.z);
  position_[i] = s.state.position;
  velocity_[i] = s.state.velocity;
  attitude_[i] = s.state.attitude;
  body_rates_[i] = s.state.body_rates;
  battery_voltage_[i] = s.state.battery_voltage;
  battery_remaining_[i] = s.state.battery_remaining;
  prev_attitude_[i] = s.prev_attitude;
  last_gps_velocity_[i] = s.last_gps_velocity;
  last_gps_local_[i] = s.last_gps_local;
  have_gps_sample_[i] = s.have_gps_sample ? 1 : 0;
  have_gps_ever_[i] = s.have_gps_ever ? 1 : 0;
  dead_reckoning_[i] = s.dead_reckoning ? 1 : 0;
  quirks_[i] = s.quirks;
  health_[i] = s.health;
  frozen_alt_valid_[i] = s.frozen_alt_valid ? 1 : 0;
  frozen_alt_z_[i] = s.frozen_alt_z;
}

StateEstimator::Snapshot EstimatorBatch::unpack(int lane) const {
  const auto i = static_cast<std::size_t>(lane);
  StateEstimator::Snapshot s;
  s.state = fused(lane);
  s.published = s.state;  // no quirks pre-injection: published == state
  s.quirks = quirks_[i];
  s.health = health_[i];
  s.last_gps_velocity = last_gps_velocity_[i];
  s.last_gps_local = last_gps_local_[i];
  s.have_gps_sample = have_gps_sample_[i] != 0;
  s.prev_attitude = prev_attitude_[i];
  s.frozen_alt_valid = frozen_alt_valid_[i] != 0;
  s.frozen_alt_z = frozen_alt_z_[i];
  s.dead_reckoning = dead_reckoning_[i] != 0;
  s.have_gps_ever = have_gps_ever_[i] != 0;
  return s;
}

EstimatedState EstimatorBatch::fused(int lane) const {
  const auto i = static_cast<std::size_t>(lane);
  EstimatedState e;
  e.position = position_[i];
  e.velocity = velocity_[i];
  e.attitude = attitude_[i];
  e.body_rates = body_rates_[i];
  e.battery_voltage = battery_voltage_[i];
  e.battery_remaining = battery_remaining_[i];
  return e;
}

void EstimatorBatch::step(sim::SimTimeMs now, sensors::SuiteBatch& suite,
                          const sim::VehicleState* truth, const sim::Environment* const* env,
                          const int* lanes, int count) {
  const sensors::SuiteConfig& config = suite.config();

  // Each family pass mirrors the matching block of StateEstimator::update
  // with the dead-family/quirk branches removed (provably unreachable
  // pre-injection). Every instance is still read, in ascending order —
  // reads refresh held samples and advance per-instance noise streams, and
  // both must track the scalar path exactly for a later divergence to be
  // seamless.

  // ---- Gyroscopes: fuse the primary; propagate attitude. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::GyroSample gyro;
    bool got = false;
    for (int inst = 0; inst < config.gyroscopes; ++inst) {
      sensors::GyroSample s;
      if (suite.read_gyro(inst, k, now, truth[k], s) && !got) {
        gyro = s;
        got = true;
      }
    }
    assert(got);
    body_rates_[i] = gyro.body_rates;
    // The scalar path adds quirks_.yaw_rate_bias here; pre-injection it is
    // 0.0, but the add stays because -0.0 + 0.0 == +0.0 — skipping it could
    // leave a sign bit the scalar path would have cleared.
    body_rates_[i].z += 0.0;
    attitude_[i].integrate_rates(body_rates_[i], kDt);
  }

  // ---- Accelerometers: tilt correction + velocity/position propagation. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::AccelSample accel;
    bool got = false;
    for (int inst = 0; inst < config.accelerometers; ++inst) {
      sensors::AccelSample s;
      if (suite.read_accel(inst, k, now, truth[k], s) && !got) {
        accel = s;
        got = true;
      }
    }
    assert(got);
    const geo::Vec3& f = accel.specific_force;
    const double f_mag = f.norm();
    if (std::abs(f_mag - kGravity) < kTiltGateMs2) {
      const double roll_meas = std::atan2(-f.y, -f.z);
      const double pitch_meas = std::atan2(f.x, std::sqrt(f.y * f.y + f.z * f.z));
      attitude_[i].roll += kTiltGain * kDt * geo::wrap_angle(roll_meas - attitude_[i].roll);
      attitude_[i].pitch += kTiltGain * kDt * geo::wrap_angle(pitch_meas - attitude_[i].pitch);
    }
    const geo::Vec3 world_accel =
        attitude_[i].body_to_world(f) + geo::Vec3{0.0, 0.0, kGravity};
    velocity_[i] += world_accel * kDt;
    position_[i] += velocity_[i] * kDt;
  }

  // ---- Barometer: vertical correction. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::BaroSample baro;
    bool got = false;
    for (int inst = 0; inst < config.barometers; ++inst) {
      sensors::BaroSample s;
      if (suite.read_baro(inst, k, now, truth[k], s) && !got) {
        baro = s;
        got = true;
      }
    }
    assert(got);
    const double alt_err = baro.pressure_altitude_m - (-position_[i].z);
    position_[i].z -= kBaroPosGain * kDt * alt_err;
    velocity_[i].z -= kBaroVelGain * kDt * alt_err;
  }

  // ---- GPS: horizontal correction. The barometer family is alive, so the
  // GPS-altitude fallback branch is dead here just as it is scalar. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::GpsSample gps;
    bool got = false;
    for (int inst = 0; inst < config.gpses; ++inst) {
      sensors::GpsSample s;
      if (suite.read_gps(inst, k, now, truth[k], *env[k], s) && !got && s.has_fix) {
        gps = s;
        got = true;
      }
    }
    assert(got);
    have_gps_ever_[i] = 1;
    const geo::Vec3 gps_local = env[k]->frame().to_local(gps.position);
    last_gps_local_[i] = gps_local;
    have_gps_sample_[i] = 1;
    position_[i].x += kGpsPosGain * kDt * (gps_local.x - position_[i].x);
    position_[i].y += kGpsPosGain * kDt * (gps_local.y - position_[i].y);
    velocity_[i].x += kGpsVelGain * kDt * (gps.velocity_ned.x - velocity_[i].x);
    velocity_[i].y += kGpsVelGain * kDt * (gps.velocity_ned.y - velocity_[i].y);
    velocity_[i].z += kGpsVelZGain * kDt * (gps.velocity_ned.z - velocity_[i].z);
    last_gps_velocity_[i] = gps.velocity_ned;
    dead_reckoning_[i] = 0;
  }

  // ---- Compass: heading correction. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::CompassSample compass;
    bool got = false;
    for (int inst = 0; inst < config.compasses; ++inst) {
      sensors::CompassSample s;
      if (suite.read_compass(inst, k, now, truth[k], s) && !got) {
        compass = s;
        got = true;
      }
    }
    assert(got);
    attitude_[i].yaw +=
        kYawGain * kDt * geo::wrap_angle(compass.heading_rad - attitude_[i].yaw);
    attitude_[i].yaw = geo::wrap_angle(attitude_[i].yaw);
  }

  // ---- Battery. ----
  for (int j = 0; j < count; ++j) {
    const int k = lanes[j];
    const auto i = static_cast<std::size_t>(k);
    sensors::BatterySample bat;
    bool got = false;
    for (int inst = 0; inst < config.batteries; ++inst) {
      sensors::BatterySample s;
      if (suite.read_battery(inst, k, now, truth[k], s) && !got) {
        bat = s;
        got = true;
      }
    }
    assert(got);
    battery_voltage_[i] = bat.voltage;
    battery_remaining_[i] = bat.remaining_fraction;
  }

  // ---- Publish tail: the primary-death scan, derived-rates fallback and
  // quirk distortions are all no-ops pre-injection; what remains is the
  // prev-attitude latch (and, scalar-side, published_ = state_). ----
  for (int j = 0; j < count; ++j) {
    const auto i = static_cast<std::size_t>(lanes[j]);
    prev_attitude_[i] = attitude_[i];
    // Same debug tripwire as the scalar estimator's output: a non-finite
    // lane silently corrupts everything downstream until it diverges.
    assert(std::isfinite(position_[i].x) && std::isfinite(position_[i].y) &&
           std::isfinite(position_[i].z) && std::isfinite(velocity_[i].x) &&
           std::isfinite(velocity_[i].y) && std::isfinite(velocity_[i].z) &&
           std::isfinite(attitude_[i].roll) && std::isfinite(attitude_[i].pitch) &&
           std::isfinite(attitude_[i].yaw));
  }
}

}  // namespace avis::fw
