// Batched lockstep state estimation: the fused filter state of a batch of
// experiments, stored structure-of-arrays and updated with the fault-free
// straight-line of StateEstimator::update.
//
// Pre-injection (the only regime a batched lane runs in — core::BatchHarness
// diverges a lane at its plan's first activation) the scalar update
// simplifies provably: every sensor family stays fully alive, so the
// fail-over scans degenerate to "read every instance, fuse the primary",
// the health table never changes, no quirk is ever set (every quirk write in
// fw/firmware.cc is gated on a family or primary death), and the published
// solution equals the internal one bit-for-bit. step() is that simplified
// update, one family pass at a time across all lanes, reading sensors
// through sensors::SuiteBatch with the exact per-lane read order (every
// instance, ascending) of the scalar path — which keeps each lane's RNG
// streams and filter state bit-identical to a scalar run, so a diverging
// lane unpacks into a StateEstimator::Snapshot indistinguishable from one
// produced by scalar stepping.
//
// Gains live in fw/estimator_gains.h, shared with the scalar estimator, so
// the two passes cannot drift numerically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fw/estimator.h"
#include "geo/attitude.h"
#include "geo/vec3.h"
#include "sensors/suite_batch.h"
#include "sim/environment.h"
#include "sim/simulator.h"
#include "sim/vehicle_state.h"

namespace avis::fw {

class EstimatorBatch {
 public:
  explicit EstimatorBatch(int width);

  int width() const { return static_cast<int>(position_.size()); }

  // Load one lane from a scalar estimator snapshot. Debug builds assert the
  // fault-free invariants the batch update relies on: default quirks and
  // published == state (a snapshot violating them belongs to a lane that
  // should already have diverged).
  void pack(int lane, const StateEstimator::Snapshot& s);

  // Reconstruct the scalar snapshot for a diverging or retiring lane.
  StateEstimator::Snapshot unpack(int lane) const;

  // The lane's current fused solution (state == published pre-injection);
  // the batch engine writes it into the lane firmware's estimator
  // (StateEstimator::adopt_fused) before the control phase.
  EstimatedState fused(int lane) const;

  // One 1 kHz fused update for the `count` lanes listed in `lanes`, one
  // family pass at a time. `truth` and `env` are indexed by lane id.
  void step(sim::SimTimeMs now, sensors::SuiteBatch& suite, const sim::VehicleState* truth,
            const sim::Environment* const* env, const int* lanes, int count);

 private:
  // Hot per-lane filter state, touched every step.
  std::vector<geo::Vec3> position_;
  std::vector<geo::Vec3> velocity_;
  std::vector<geo::Attitude> attitude_;
  std::vector<geo::Vec3> body_rates_;
  std::vector<double> battery_voltage_;
  std::vector<double> battery_remaining_;
  std::vector<geo::Attitude> prev_attitude_;
  std::vector<geo::Vec3> last_gps_velocity_;
  std::vector<geo::Vec3> last_gps_local_;
  std::vector<std::uint8_t> have_gps_sample_;
  std::vector<std::uint8_t> have_gps_ever_;
  std::vector<std::uint8_t> dead_reckoning_;

  // Cold per-lane state: static while the lane steps in batch (the update
  // never touches it pre-injection), carried verbatim for exact unpack.
  std::vector<EstimatorQuirks> quirks_;
  std::vector<std::array<SourceHealth, 6>> health_;
  std::vector<std::uint8_t> frozen_alt_valid_;
  std::vector<double> frozen_alt_z_;
};

}  // namespace avis::fw
