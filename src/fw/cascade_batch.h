// Batched lockstep PID-cascade lanes: the ControlCascade's mutable state
// (three rate-PID capsules plus the velocity-loop derivative memory) for a
// batch of experiments, stored structure-of-arrays.
//
// The cascade math itself is never duplicated: each step, the batch engine
// loads a lane into its firmware's own ControlCascade (the load must happen
// before the control phase — p_set_mode may legitimately reset the cascade,
// and that reset has to land on the lane's real state), runs the scalar
// update() when armed, and stores the result back here. The lanes are the
// between-step residence — compact and contiguous across the batch — while
// the work happens in the scalar work register, keeping per-lane operation
// order exactly the scalar order.
#pragma once

#include <vector>

#include "fw/controllers.h"
#include "geo/vec3.h"

namespace avis::fw {

class CascadeBatch {
 public:
  explicit CascadeBatch(int width)
      : rate_roll_(static_cast<std::size_t>(width)),
        rate_pitch_(static_cast<std::size_t>(width)),
        rate_yaw_(static_cast<std::size_t>(width)),
        last_vel_error_(static_cast<std::size_t>(width)) {}

  int width() const { return static_cast<int>(rate_roll_.size()); }

  void pack(int lane, const ControlCascade::Snapshot& s) {
    const auto i = static_cast<std::size_t>(lane);
    rate_roll_[i] = s.rate_roll;
    rate_pitch_[i] = s.rate_pitch;
    rate_yaw_[i] = s.rate_yaw;
    last_vel_error_[i] = s.last_vel_error;
  }

  ControlCascade::Snapshot unpack(int lane) const {
    const auto i = static_cast<std::size_t>(lane);
    return {rate_roll_[i], rate_pitch_[i], rate_yaw_[i], last_vel_error_[i]};
  }

  // Work-register sync around one control step.
  void load_into(int lane, ControlCascade& cascade) const { cascade.load(unpack(lane)); }
  void store_from(int lane, const ControlCascade& cascade) { pack(lane, cascade.save()); }

 private:
  std::vector<Pid::State> rate_roll_;
  std::vector<Pid::State> rate_pitch_;
  std::vector<Pid::State> rate_yaw_;
  std::vector<geo::Vec3> last_vel_error_;
};

}  // namespace avis::fw
