#include "fw/estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fw/estimator_gains.h"

namespace avis::fw {

namespace {
// Correction gains (1/s) shared with the batched lanes; see
// fw/estimator_gains.h for the tuning rationale.
using namespace estimator_gains;
}  // namespace

StateEstimator::StateEstimator(const FirmwareConfig& config, SensorBus& bus)
    : config_(&config), bus_(&bus) {
  const auto& sc = bus.config();
  health_[static_cast<std::size_t>(sensors::SensorType::kGyroscope)].total = sc.gyroscopes;
  health_[static_cast<std::size_t>(sensors::SensorType::kAccelerometer)].total =
      sc.accelerometers;
  health_[static_cast<std::size_t>(sensors::SensorType::kBarometer)].total = sc.barometers;
  health_[static_cast<std::size_t>(sensors::SensorType::kGps)].total = sc.gpses;
  health_[static_cast<std::size_t>(sensors::SensorType::kCompass)].total = sc.compasses;
  health_[static_cast<std::size_t>(sensors::SensorType::kBattery)].total = sc.batteries;
  for (auto& h : health_) h.alive = h.total;
}

void StateEstimator::update(sim::SimTimeMs now, const sim::VehicleState& truth,
                            const sim::Environment& env) {
  // ---- Gyroscopes: primary with fail-over; propagate attitude. ----
  {
    sensors::GyroSample gyro;
    bool got = false;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kGyroscope)];
    int alive = 0;
    bool primary_alive = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::GyroSample s;
      if (bus_->read_gyro(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!got) {
          gyro = s;
          got = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (quirks_.stale_rates) {
      // Bug data path: the rate consumer keeps reading the dead primary's
      // last output; the live backup (if any) is never switched in. The
      // attitude solution silently runs away.
    } else if (got) {
      state_.body_rates = gyro.body_rates;
    } else {
      // Honest degradation: without gyros the firmware cannot know its
      // rates; report zero rather than integrate garbage.
      state_.body_rates = {};
    }
    state_.body_rates.z += quirks_.yaw_rate_bias;
    state_.attitude.integrate_rates(state_.body_rates, kDt);
  }

  // ---- Accelerometers: tilt correction + velocity propagation. ----
  geo::Vec3 world_accel{};  // gravity-compensated world acceleration
  bool have_accel = false;
  {
    sensors::AccelSample accel;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kAccelerometer)];
    int alive = 0;
    bool primary_alive = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::AccelSample s;
      if (bus_->read_accel(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!have_accel) {
          accel = s;
          have_accel = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (have_accel) {
      const geo::Vec3& f = accel.specific_force;
      // Tilt correction when the specific force is close to 1 g (not
      // accelerating hard): gravity tells us which way is down.
      const double f_mag = f.norm();
      // With gyros dead (derived-rates fallback) the accelerometer is the
      // only attitude reference left: correct hard and accept the noise.
      const double tilt_gain = quirks_.derived_rates ? 6.0 : kTiltGain;
      const double tilt_gate = quirks_.derived_rates ? 3.5 : kTiltGateMs2;
      if (std::abs(f_mag - kGravity) < tilt_gate) {
        const double roll_meas = std::atan2(-f.y, -f.z);
        const double pitch_meas = std::atan2(f.x, std::sqrt(f.y * f.y + f.z * f.z));
        state_.attitude.roll +=
            tilt_gain * kDt * geo::wrap_angle(roll_meas - state_.attitude.roll);
        state_.attitude.pitch +=
            tilt_gain * kDt * geo::wrap_angle(pitch_meas - state_.attitude.pitch);
      }
      world_accel = state_.attitude.body_to_world(f) + geo::Vec3{0.0, 0.0, kGravity};
    }
  }

  // Velocity/position propagation. Without accelerometers the filter holds
  // velocity and leans fully on baro/GPS corrections.
  if (have_accel) {
    state_.velocity += world_accel * kDt;
  }
  state_.position += state_.velocity * kDt;

  // ---- Barometer: vertical correction. ----
  {
    sensors::BaroSample baro;
    bool got = false;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kBarometer)];
    int alive = 0;
    bool primary_alive = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::BaroSample s;
      if (bus_->read_baro(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!got) {
          baro = s;
          got = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (got) {
      const double alt_err = baro.pressure_altitude_m - (-state_.position.z);
      state_.position.z -= kBaroPosGain * kDt * alt_err;
      state_.velocity.z -= kBaroVelGain * kDt * alt_err;
    }
  }

  // ---- GPS: horizontal correction; vertical fallback when baro is dead. ---
  {
    sensors::GpsSample gps;
    bool got = false;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kGps)];
    int alive = 0;
    bool primary_alive = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::GpsSample s;
      if (bus_->read_gps(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!got && s.has_fix) {
          gps = s;
          got = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (got) {
      have_gps_ever_ = true;
      const geo::Vec3 gps_local = env.frame().to_local(gps.position);
      last_gps_local_ = gps_local;
      have_gps_sample_ = true;
      state_.position.x += kGpsPosGain * kDt * (gps_local.x - state_.position.x);
      state_.position.y += kGpsPosGain * kDt * (gps_local.y - state_.position.y);
      state_.velocity.x += kGpsVelGain * kDt * (gps.velocity_ned.x - state_.velocity.x);
      state_.velocity.y += kGpsVelGain * kDt * (gps.velocity_ned.y - state_.velocity.y);
      // Weak vertical-velocity fusion: without it the climb-rate estimate
      // dead-reckons on accelerometer bias whenever the barometer is gone.
      state_.velocity.z += kGpsVelZGain * kDt * (gps.velocity_ned.z - state_.velocity.z);
      last_gps_velocity_ = gps.velocity_ned;
      dead_reckoning_ = false;

      const auto& baro_h = health_[static_cast<std::size_t>(sensors::SensorType::kBarometer)];
      if (!baro_h.any_alive()) {
        // Fig. 1's hazard: GPS vertical resolution is coarse, but it is all
        // that is left once the barometer family dies.
        state_.position.z += kGpsAltGain * kDt * (gps_local.z - state_.position.z);
      }
    } else {
      if (quirks_.hold_stale_gps_velocity) {
        // APM-16020: the glitch handler keeps feeding the last GPS velocity
        // into the filter, so the position solution confidently drifts.
        state_.velocity.x += kGpsVelGain * kDt * (last_gps_velocity_.x - state_.velocity.x);
        state_.velocity.y += kGpsVelGain * kDt * (last_gps_velocity_.y - state_.velocity.y);
        dead_reckoning_ = false;
      } else if (have_gps_ever_) {
        dead_reckoning_ = true;
      }
    }
  }

  // ---- Compass: heading correction. ----
  {
    sensors::CompassSample compass;
    bool got = false;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kCompass)];
    int alive = 0;
    bool primary_alive = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::CompassSample s;
      if (bus_->read_compass(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!got) {
          compass = s;
          got = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (got && !quirks_.freeze_heading) {
      state_.attitude.yaw +=
          kYawGain * kDt * geo::wrap_angle(compass.heading_rad - state_.attitude.yaw);
      state_.attitude.yaw = geo::wrap_angle(state_.attitude.yaw);
    }
  }

  // ---- Battery. ----
  {
    sensors::BatterySample bat;
    auto& h = health_[static_cast<std::size_t>(sensors::SensorType::kBattery)];
    int alive = 0;
    bool primary_alive = false;
    bool got = false;
    for (int i = 0; i < h.total; ++i) {
      sensors::BatterySample s;
      if (bus_->read_battery(i, now, truth, env, s) == sensors::ReadStatus::kOk) {
        ++alive;
        if (i == 0) primary_alive = true;
        if (!got) {
          bat = s;
          got = true;
        }
      }
    }
    h.alive = alive;
    h.primary_alive = primary_alive;
    if (alive == 0 && h.all_failed_at < 0) h.all_failed_at = now;

    if (got) {
      state_.battery_voltage = bat.voltage;
      state_.battery_remaining = bat.remaining_fraction;
    }
    // A dead battery monitor keeps reporting its last values — the firmware
    // cannot tell remaining charge at all (PX4-13291's precondition).
  }

  // Track when each family's primary instance died (bug windows key on it).
  for (auto& h : health_) {
    if (!h.primary_alive && h.primary_failed_at < 0) h.primary_failed_at = now;
  }

  // ---- Fallback / quirk rate paths. ----
  if (quirks_.derived_rates) {
    // PX4's degraded path: body rates reconstructed by differentiating the
    // (accel-corrected) attitude. Noisy and laggy, but stable enough to fly.
    state_.body_rates = {
        geo::wrap_angle(state_.attitude.roll - prev_attitude_.roll) / kDt,
        geo::wrap_angle(state_.attitude.pitch - prev_attitude_.pitch) / kDt,
        geo::wrap_angle(state_.attitude.yaw - prev_attitude_.yaw) / kDt,
    };
  }
  prev_attitude_ = state_.attitude;

  // ---- Publish, applying quirk distortions to the output copy only. ----
  published_ = state_;
  if (quirks_.gps_altitude_only && have_gps_sample_) {
    // "GPS-driven flight": the vertical channel is raw GPS, coarse and slow.
    published_.position.z = last_gps_local_.z;
    published_.velocity.z = 0.0;
  }
  if (quirks_.freeze_altitude) {
    // Output channel frozen: the rest of the firmware keeps seeing the
    // altitude from the moment the quirk engaged.
    if (!frozen_alt_valid_) {
      frozen_alt_z_ = state_.position.z;
      frozen_alt_valid_ = true;
    }
    published_.position.z = frozen_alt_z_;
    published_.velocity.z = 0.0;
  } else {
    frozen_alt_valid_ = false;
  }
  if (quirks_.altitude_bias != 0.0) {
    published_.position.z -= quirks_.altitude_bias;  // NED: reads higher than real
  }

  // Debug tripwire: a NaN/inf here poisons every downstream consumer (and,
  // in a batch run, would silently corrupt a lane until it diverges).
  assert(std::isfinite(published_.position.x) && std::isfinite(published_.position.y) &&
         std::isfinite(published_.position.z) && std::isfinite(published_.velocity.x) &&
         std::isfinite(published_.velocity.y) && std::isfinite(published_.velocity.z) &&
         std::isfinite(published_.attitude.roll) && std::isfinite(published_.attitude.pitch) &&
         std::isfinite(published_.attitude.yaw));
}

void StateEstimator::reset_state_estimate() {
  // Models an EKF in-flight reset: attitude and velocity snap to zero and
  // must re-converge; at low altitude there is no time for that.
  state_.attitude = {};
  state_.velocity = {};
  state_.body_rates = {};
}

}  // namespace avis::fw
