// Mission storage and the vehicle side of the MAVLink mission-upload
// transaction (paper §V-A: the vehicle drives the transfer by requesting
// each item after receiving the count).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/geodesy.h"
#include "mavlink/messages.h"
#include "sim/environment.h"
#include "util/checked.h"

namespace avis::fw {

class MissionManager {
 public:
  enum class TransferPhase { kIdle, kReceiving };

  // --- Vehicle-side upload state machine ------------------------------
  // Returns messages to send back to the GCS.
  std::vector<mavlink::Message> on_mission_count(const mavlink::MissionCount& count) {
    pending_.assign(count.count, mavlink::MissionItem{});
    received_ = 0;
    phase_ = TransferPhase::kReceiving;
    if (count.count == 0) {
      phase_ = TransferPhase::kIdle;
      items_.clear();
      return {mavlink::MissionAck{mavlink::MissionResult::kAccepted}};
    }
    return {mavlink::MissionRequest{0}};
  }

  std::vector<mavlink::Message> on_mission_item(const mavlink::MissionItem& item) {
    if (phase_ != TransferPhase::kReceiving || item.seq != received_) {
      return {mavlink::MissionAck{mavlink::MissionResult::kInvalidSequence}};
    }
    pending_[item.seq] = item;
    ++received_;
    if (received_ < pending_.size()) {
      return {mavlink::MissionRequest{static_cast<std::uint16_t>(received_)}};
    }
    items_ = pending_;
    current_ = 0;
    phase_ = TransferPhase::kIdle;
    return {mavlink::MissionAck{mavlink::MissionResult::kAccepted}};
  }

  // --- Mission execution ----------------------------------------------
  bool has_mission() const { return !items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t current_index() const { return current_; }

  const mavlink::MissionItem* current() const {
    return current_ < items_.size() ? &items_[current_] : nullptr;
  }

  // Advance to the next item; returns false when the mission is complete.
  bool advance() {
    if (current_ + 1 < items_.size()) {
      ++current_;
      return true;
    }
    current_ = items_.size();
    return false;
  }

  void restart() { current_ = 0; }

  // --- Geofence ----------------------------------------------------------
  void set_fence(const sim::Fence& fence) { fence_ = fence; }
  void clear_fence() { fence_.reset(); }
  const std::optional<sim::Fence>& fence() const { return fence_; }

  bool fence_violated(const geo::Vec3& local_pos) const {
    return fence_ && fence_->violates(local_pos);
  }

 private:
  std::vector<mavlink::MissionItem> items_;
  std::vector<mavlink::MissionItem> pending_;
  std::size_t received_ = 0;
  std::size_t current_ = 0;
  TransferPhase phase_ = TransferPhase::kIdle;
  std::optional<sim::Fence> fence_;
};

}  // namespace avis::fw
