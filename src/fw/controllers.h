// Flight control cascade (paper Fig. 2: "Mode-Aware Navigation - Motor &
// Servo Ctrl").
//
// Standard multicopter structure, mirroring ArduPilot's AC_PosControl /
// AC_AttitudeControl split:
//   position error -> velocity target -> acceleration target -> (tilt, thrust)
//   attitude error -> body-rate target -> torque demand -> motor mix
// Each mode produces a Setpoint; the cascade turns it into MotorCommands.
#pragma once

#include <algorithm>
#include <optional>

#include "fw/config.h"
#include "fw/estimator.h"
#include "geo/attitude.h"
#include "geo/vec3.h"
#include "sim/vehicle_state.h"

namespace avis::fw {

// What a mode wants the vehicle to do this step.
struct Setpoint {
  enum class Kind {
    kMotorsOff,        // disarmed / crashed
    kPosition,         // hold/fly-to a NED position
    kVelocity,         // track a NED velocity (manual sticks, landing descent)
    kAttitude,         // direct attitude + climb rate (degraded modes)
    kEmergencyDescend, // uniform reduced throttle, no torque demands: the
                       // only safe option with no usable rate feedback
  };

  Kind kind = Kind::kMotorsOff;
  geo::Vec3 position;        // kPosition
  geo::Vec3 velocity;        // kVelocity
  double climb_rate = 0.0;   // kAttitude: vertical speed (+up)
  geo::Attitude attitude;    // kAttitude
  std::optional<double> yaw; // desired heading; empty = hold current
};

class Pid {
 public:
  Pid(double p, double i, double d, double i_limit = 0.4)
      : p_(p), i_(i), d_(d), i_limit_(i_limit) {}

  double update(double error, double dt) {
    integral_ = std::clamp(integral_ + error * dt * i_, -i_limit_, i_limit_);
    const double derivative = dt > 0.0 ? (error - last_error_) / dt : 0.0;
    last_error_ = error;
    return p_ * error + integral_ + d_ * derivative;
  }

  void reset() {
    integral_ = 0.0;
    last_error_ = 0.0;
  }

  // Mid-run controller state (experiment checkpointing); gains are
  // construction-time constants.
  struct State {
    double integral = 0.0;
    double last_error = 0.0;
  };

  State save() const { return {integral_, last_error_}; }

  void load(const State& s) {
    integral_ = s.integral;
    last_error_ = s.last_error;
  }

 private:
  double p_, i_, d_, i_limit_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
};

// Converts a Setpoint plus the estimated state into motor commands.
class ControlCascade {
 public:
  explicit ControlCascade(const ControlGains& gains)
      : gains_(gains),
        rate_roll_(gains.rate_p, gains.rate_i, gains.rate_d),
        rate_pitch_(gains.rate_p, gains.rate_i, gains.rate_d),
        rate_yaw_(gains.yaw_rate_p, gains.rate_i * 0.5, 0.0) {}

  sim::MotorCommands update(const Setpoint& sp, const EstimatedState& est, double dt);

  void reset();

  // Mid-run cascade state (experiment checkpointing): the three rate PIDs
  // plus the velocity-loop derivative memory.
  struct Snapshot {
    Pid::State rate_roll;
    Pid::State rate_pitch;
    Pid::State rate_yaw;
    geo::Vec3 last_vel_error;
  };

  Snapshot save() const {
    return {rate_roll_.save(), rate_pitch_.save(), rate_yaw_.save(), last_vel_error_};
  }

  void load(const Snapshot& s) {
    rate_roll_.load(s.rate_roll);
    rate_pitch_.load(s.rate_pitch);
    rate_yaw_.load(s.rate_yaw);
    last_vel_error_ = s.last_vel_error;
  }

  // Hover throttle estimate; exposed for tests.
  static constexpr double kHoverThrottle = 0.497;  // 1.5 kg / (4 * 7.4 N)

 private:
  geo::Vec3 p_accel_from_position(const Setpoint& sp, const EstimatedState& est);
  geo::Vec3 p_accel_from_velocity(const geo::Vec3& vel_target, const EstimatedState& est);
  sim::MotorCommands p_attitude_step(const geo::Attitude& target, double thrust,
                                     const EstimatedState& est, double dt);

  ControlGains gains_;
  Pid rate_roll_;
  Pid rate_pitch_;
  Pid rate_yaw_;
  geo::Vec3 last_vel_error_;
};

}  // namespace avis::fw
