// hinj protocol messages (paper §V-B).
//
// libhinj reports two things to the engine — mode transitions (via
// hinj_update_mode, inserted at the firmware's single mode-set call site)
// and sensor reads (via the call inserted into each driver's read()) — and
// receives one thing back: the scheduler's per-read fail/pass decision.
//
// Two encode/decode paths share one wire layout:
//  * the per-message-type encode_*() helpers write straight into a reusable
//    ByteWriter — the zero-allocation path the Client/Server round trip
//    uses for every instrumented sensor read;
//  * encode(Message)/decode(bytes) wrap the same helpers behind the
//    std::variant, for tests and any caller that wants owned values.
// Because encode(Message) is implemented on top of the helpers, the two
// paths are byte-identical by construction (tests/test_hinj.cc pins this).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "hinj/wire.h"
#include "sensors/sensor_types.h"

namespace avis::hinj {

enum class MessageType : std::uint8_t {
  kModeUpdate = 1,
  kReadRequest = 2,
  kReadResponse = 3,
  kHeartbeat = 4,
};

// Firmware -> engine: the vehicle's operating mode changed.
struct ModeUpdate {
  std::int64_t time_ms = 0;
  std::uint16_t mode_id = 0;
  std::string mode_name;
};

// Firmware -> engine: a sensor driver is about to complete a read().
struct ReadRequest {
  std::int64_t time_ms = 0;
  sensors::SensorId sensor;
};

// Engine -> firmware: the scheduler's decision for that read.
struct ReadResponse {
  bool fail = false;
};

// Firmware -> engine: liveness signal; the invariant monitor detects a dead
// firmware process by missing heartbeats.
struct Heartbeat {
  std::int64_t time_ms = 0;
};

using Message = std::variant<ModeUpdate, ReadRequest, ReadResponse, Heartbeat>;

// Largest fixed-size frame (ReadRequest: type + i64 + 2x u8); reserving this
// up front makes even the first frame through a fresh writer allocation-free
// after the single warm-up growth.
inline constexpr std::size_t kFixedFrameCapacity = 11;

// --- direct frame encoders (the zero-allocation path) ----------------------

inline void encode_mode_update(ByteWriter& w, std::int64_t time_ms, std::uint16_t mode_id,
                               std::string_view mode_name) {
  w.u8(static_cast<std::uint8_t>(MessageType::kModeUpdate));
  w.i64(time_ms);
  w.u16(mode_id);
  w.str(mode_name);
}

inline void encode_read_request(ByteWriter& w, std::int64_t time_ms,
                                const sensors::SensorId& sensor) {
  w.u8(static_cast<std::uint8_t>(MessageType::kReadRequest));
  w.i64(time_ms);
  w.u8(static_cast<std::uint8_t>(sensor.type));
  w.u8(sensor.instance);
}

inline void encode_read_response(ByteWriter& w, bool fail) {
  w.u8(static_cast<std::uint8_t>(MessageType::kReadResponse));
  w.u8(fail ? 1 : 0);
}

inline void encode_heartbeat(ByteWriter& w, std::int64_t time_ms) {
  w.u8(static_cast<std::uint8_t>(MessageType::kHeartbeat));
  w.i64(time_ms);
}

// --- variant wrappers -------------------------------------------------------

inline std::vector<std::uint8_t> encode(const Message& msg) {
  ByteWriter w;
  if (const auto* m = std::get_if<ModeUpdate>(&msg)) {
    encode_mode_update(w, m->time_ms, m->mode_id, m->mode_name);
  } else if (const auto* r = std::get_if<ReadRequest>(&msg)) {
    encode_read_request(w, r->time_ms, r->sensor);
  } else if (const auto* resp = std::get_if<ReadResponse>(&msg)) {
    encode_read_response(w, resp->fail);
  } else if (const auto* h = std::get_if<Heartbeat>(&msg)) {
    encode_heartbeat(w, h->time_ms);
  }
  return w.take();
}

inline Message decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto type = static_cast<MessageType>(r.u8());
  switch (type) {
    case MessageType::kModeUpdate: {
      ModeUpdate m;
      m.time_ms = r.i64();
      m.mode_id = r.u16();
      m.mode_name = r.str();
      return m;
    }
    case MessageType::kReadRequest: {
      ReadRequest req;
      req.time_ms = r.i64();
      req.sensor.type = static_cast<sensors::SensorType>(r.u8());
      req.sensor.instance = r.u8();
      return req;
    }
    case MessageType::kReadResponse: {
      ReadResponse resp;
      resp.fail = r.u8() != 0;
      return resp;
    }
    case MessageType::kHeartbeat: {
      Heartbeat h;
      h.time_ms = r.i64();
      return h;
    }
  }
  throw WireError("unknown hinj message type");
}

}  // namespace avis::hinj
