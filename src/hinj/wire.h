// hinj protocol byte encoding. The codec itself lives in util/bytes.h; this
// header pins the names the hinj message layer uses.
#pragma once

#include "util/bytes.h"

namespace avis::hinj {

using WireError = util::WireError;
using ByteWriter = util::ByteWriter;
using ByteReader = util::ByteReader;

}  // namespace avis::hinj
