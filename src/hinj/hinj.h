// libhinj: the Hardware-fault INJection instrumentation layer (paper §V-B).
//
// Two halves:
//  * Client — linked into the firmware. Drivers call sensor_read() from
//    their read() procedures; the mode-set call site calls update_mode().
//    The client serializes these into protocol messages.
//  * Server — owned by the engine. Decodes messages, forwards them to a
//    FaultDirector (the scheduler in Avis; a no-op in golden runs), and
//    returns the fail/pass decision.
//
// Keeping the serialized boundary means the firmware cannot observe anything
// about the engine except the per-read decision — the same isolation the
// paper gets from its RPC.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hinj/messages.h"
#include "sensors/sensor_types.h"
#include "util/checked.h"

namespace avis::hinj {

// Engine-side policy: which reads to fail, plus visibility into mode
// transitions and heartbeats.
class FaultDirector {
 public:
  virtual ~FaultDirector() = default;

  // Return true to fail this read (the instance latches failed afterwards).
  virtual bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) = 0;

  virtual void on_mode_update(std::uint16_t mode_id, const std::string& mode_name,
                              std::int64_t time_ms) = 0;

  virtual void on_heartbeat(std::int64_t time_ms) { (void)time_ms; }
};

// A director that never injects; golden/profiling runs use this.
class NullDirector final : public FaultDirector {
 public:
  bool should_fail(const sensors::SensorId&, std::int64_t) override { return false; }
  void on_mode_update(std::uint16_t, const std::string&, std::int64_t) override {}
};

// Engine side: decode frames, dispatch, encode responses.
class Server {
 public:
  explicit Server(FaultDirector& director) : director_(&director) {}

  // Handles one frame; returns the response frame if the message warrants
  // one (only ReadRequest does).
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& frame) {
    const Message msg = decode(frame);
    if (const auto* req = std::get_if<ReadRequest>(&msg)) {
      ReadResponse resp;
      resp.fail = director_->should_fail(req->sensor, req->time_ms);
      return encode(resp);
    }
    if (const auto* mode = std::get_if<ModeUpdate>(&msg)) {
      director_->on_mode_update(mode->mode_id, mode->mode_name, mode->time_ms);
      return {};
    }
    if (const auto* hb = std::get_if<Heartbeat>(&msg)) {
      director_->on_heartbeat(hb->time_ms);
      return {};
    }
    throw WireError("unexpected message direction");
  }

  void set_director(FaultDirector& director) { director_ = &director; }

 private:
  FaultDirector* director_;
};

// Firmware side. The instrumented call sites are:
//   * every sensor driver's read(): `if (hinj.sensor_read(id, now)) -> fail`
//   * the mode controller's set_mode(): `hinj.update_mode(...)`
class Client {
 public:
  explicit Client(Server& server) : server_(&server) {}

  // Returns true if the engine directs this read to fail.
  bool sensor_read(const sensors::SensorId& sensor, std::int64_t time_ms) {
    ReadRequest req;
    req.time_ms = time_ms;
    req.sensor = sensor;
    const auto reply = server_->handle(encode(req));
    util::expects(!reply.empty(), "hinj read request must produce a response");
    const Message msg = decode(reply);
    const auto* resp = std::get_if<ReadResponse>(&msg);
    util::expects(resp != nullptr, "hinj read response has wrong type");
    return resp->fail;
  }

  void update_mode(std::uint16_t mode_id, const std::string& mode_name, std::int64_t time_ms) {
    ModeUpdate m;
    m.time_ms = time_ms;
    m.mode_id = mode_id;
    m.mode_name = mode_name;
    server_->handle(encode(m));
  }

  void heartbeat(std::int64_t time_ms) {
    Heartbeat h;
    h.time_ms = time_ms;
    server_->handle(encode(h));
  }

 private:
  Server* server_;
};

}  // namespace avis::hinj
