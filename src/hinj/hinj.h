// libhinj: the Hardware-fault INJection instrumentation layer (paper §V-B).
//
// Two halves:
//  * Client — linked into the firmware. Drivers call sensor_read() from
//    their read() procedures; the mode-set call site calls update_mode().
//    The client serializes these into protocol messages.
//  * Server — owned by the engine. Decodes messages, forwards them to a
//    FaultDirector (the scheduler in Avis; a no-op in golden runs), and
//    returns the fail/pass decision.
//
// Keeping the serialized boundary means the firmware cannot observe anything
// about the engine except the per-read decision — the same isolation the
// paper gets from its RPC.
//
// The round trip is the inner loop of every experiment (~10 instrumented
// reads per 1 kHz firmware step), so the transport is built around a pair of
// connection-owned frame buffers: the client encodes each request into its
// reusable request buffer, the server decodes it in place and encodes any
// response into the client's reusable response buffer. After the first
// frame warms the buffers up, a read round trip performs zero heap
// allocations (tests/test_hinj_alloc.cc pins this) while the bytes crossing
// the boundary stay identical to the general encode()/decode() path.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "hinj/messages.h"
#include "sensors/sensor_types.h"
#include "util/checked.h"

namespace avis::hinj {

// Engine-side policy: which reads to fail, plus visibility into mode
// transitions and heartbeats. `mode_name` is a view over the decoded frame,
// valid only for the duration of the callback — directors that keep mode
// names (e.g. core::RecordingDirector) own their copies.
class FaultDirector {
 public:
  virtual ~FaultDirector() = default;

  // Return true to fail this read (the instance latches failed afterwards).
  virtual bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) = 0;

  virtual void on_mode_update(std::uint16_t mode_id, std::string_view mode_name,
                              std::int64_t time_ms) = 0;

  virtual void on_heartbeat(std::int64_t time_ms) { (void)time_ms; }
};

// A director that never injects; golden/profiling runs use this.
class NullDirector final : public FaultDirector {
 public:
  bool should_fail(const sensors::SensorId&, std::int64_t) override { return false; }
  void on_mode_update(std::uint16_t, std::string_view, std::int64_t) override {}
};

// Engine side: decode frames, dispatch, encode responses.
class Server {
 public:
  explicit Server(FaultDirector& director) : director_(&director) {}

  // Zero-allocation dispatch: decodes one frame in place and, when the
  // message warrants a response (only ReadRequest does), encodes it into
  // `response` (cleared first). ReadRequest/ReadResponse take the
  // fixed-size fast path; the rare string-carrying ModeUpdate decodes its
  // mode name as a string_view over the frame, so even mode transitions
  // cross the wire without a heap allocation on the server side.
  void handle_frame(std::span<const std::uint8_t> frame, ByteWriter& response) {
    response.clear();
    ByteReader r(frame);
    switch (static_cast<MessageType>(r.u8())) {
      case MessageType::kReadRequest: {
        const std::int64_t time_ms = r.i64();
        sensors::SensorId sensor;
        sensor.type = static_cast<sensors::SensorType>(r.u8());
        sensor.instance = r.u8();
        encode_read_response(response, director_->should_fail(sensor, time_ms));
        return;
      }
      case MessageType::kModeUpdate: {
        const std::int64_t time_ms = r.i64();
        const std::uint16_t mode_id = r.u16();
        director_->on_mode_update(mode_id, r.str_view(), time_ms);
        return;
      }
      case MessageType::kHeartbeat: {
        director_->on_heartbeat(r.i64());
        return;
      }
      case MessageType::kReadResponse:
        throw WireError("unexpected message direction");
    }
    throw WireError("unknown hinj message type");
  }

  // Handles one frame; returns the response frame if the message warrants
  // one (only ReadRequest does). Convenience wrapper over handle_frame for
  // callers without a connection buffer (tests, one-shot tools).
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& frame) {
    ByteWriter response;
    handle_frame(frame, response);
    return response.take();
  }

  void set_director(FaultDirector& director) { director_ = &director; }

 private:
  FaultDirector* director_;
};

// Firmware side. The instrumented call sites are:
//   * every sensor driver's read(): `if (hinj.sensor_read(id, now)) -> fail`
//   * the mode controller's set_mode(): `hinj.update_mode(...)`
// One Client is one connection: it owns the request/response frame buffers
// its calls reuse, so a long-lived client (e.g. in a reused
// core::ExperimentContext) keeps its warmed-up capacity across runs.
class Client {
 public:
  explicit Client(Server& server) : server_(&server) {
    request_.reserve(kFixedFrameCapacity);
    response_.reserve(kFixedFrameCapacity);
  }

  // Returns true if the engine directs this read to fail.
  bool sensor_read(const sensors::SensorId& sensor, std::int64_t time_ms) {
    request_.clear();
    encode_read_request(request_, time_ms, sensor);
    server_->handle_frame(request_.span(), response_);
    util::expects(!response_.empty(), "hinj read request must produce a response");
    ByteReader r(response_.span());
    util::expects(static_cast<MessageType>(r.u8()) == MessageType::kReadResponse,
                  "hinj read response has wrong type");
    return r.u8() != 0;
  }

  void update_mode(std::uint16_t mode_id, std::string_view mode_name, std::int64_t time_ms) {
    request_.clear();
    encode_mode_update(request_, time_ms, mode_id, mode_name);
    server_->handle_frame(request_.span(), response_);
  }

  void heartbeat(std::int64_t time_ms) {
    request_.clear();
    encode_heartbeat(request_, time_ms);
    server_->handle_frame(request_.span(), response_);
  }

 private:
  Server* server_;
  ByteWriter request_;
  ByteWriter response_;
};

}  // namespace avis::hinj
