// Environment presets: the worlds a scenario can fly in, keyed by the
// string name scenario files and CLI flags use (docs/SCENARIOS.md).
//
// The paper's evaluation runs "an environment without hostile weather or
// obstacles" (§IV-A) — that is the "calm" preset and the default
// everywhere. The wind presets put the so-far-unused sim::Wind model into
// play: steady mean wind displaces the hover and drifts every leg downwind;
// gusts add per-axis gaussian turbulence drawn from the simulator's
// deterministic per-run stream, so runs remain pure functions of their
// spec. Adding a preset is one add() call in the builder below.
#pragma once

#include <functional>
#include <string_view>

#include "sim/environment.h"
#include "util/registry.h"

namespace avis::sim {

using EnvironmentFactory = std::function<Environment()>;

inline util::Registry<EnvironmentFactory>& environment_registry() {
  static util::Registry<EnvironmentFactory> registry = [] {
    util::Registry<EnvironmentFactory> r("environment");
    r.add("calm", "flat field, no wind or obstacles (the paper's §IV-A world)",
          [] { return Environment{}; });
    r.add("breeze", "steady 1.8 m/s quartering wind, no gusts", [] {
      Environment env;
      Wind wind;
      wind.mean = {1.5, 1.0, 0.0};
      env.set_wind(wind);
      return env;
    });
    r.add("gusty", "2.3 m/s mean wind with 0.7 m/s gaussian gusts per axis", [] {
      Environment env;
      Wind wind;
      wind.mean = {2.0, 1.2, 0.0};
      wind.gust_stddev = 0.7;
      env.set_wind(wind);
      return env;
    });
    return r;
  }();
  return registry;
}

// Build an environment by registered preset name; throws
// util::UnknownNameError (with the registered-name listing) otherwise.
inline Environment make_environment(std::string_view name) {
  return environment_registry().at(name).factory();
}

}  // namespace avis::sim
