// Ground-truth physical state of the simulated vehicle.
//
// This is the state the Gazebo plugin reports to Avis in the paper (Fig. 7,
// step 6). Coordinates are local NED (x north, y east, z down), so altitude
// above home is -position.z.
#pragma once

#include <array>

#include "geo/attitude.h"
#include "geo/vec3.h"

namespace avis::sim {

// Normalized motor commands in [0, 1], quad-X order:
// 0 front-right, 1 back-left, 2 front-left, 3 back-right.
struct MotorCommands {
  std::array<double, 4> value{0.0, 0.0, 0.0, 0.0};

  double total() const { return value[0] + value[1] + value[2] + value[3]; }
};

struct VehicleState {
  geo::Vec3 position;         // m, NED
  geo::Vec3 velocity;         // m/s, NED
  geo::Vec3 acceleration;     // m/s^2, NED (specific force + gravity)
  geo::Attitude attitude;     // rad
  geo::Vec3 body_rates;       // rad/s, body frame
  MotorCommands motors;       // last applied commands (after motor lag)
  double battery_voltage = 12.6;  // V, 3S pack
  double battery_remaining = 1.0;  // fraction
  bool on_ground = true;
  bool crashed = false;

  double altitude() const { return -position.z; }
  double climb_rate() const { return -velocity.z; }
  double ground_speed() const {
    return std::sqrt(velocity.x * velocity.x + velocity.y * velocity.y);
  }
};

// Why a vehicle run ended in a physical collision; used by the invariant
// monitor's safety rule and by bug triage in the benches.
enum class CrashCause {
  kNone,
  kHardLanding,       // descent rate at ground contact above limit
  kTippedOver,        // excessive tilt at or near ground contact
  kLateralImpact,     // high horizontal speed at ground contact
  kObstacle,          // flew into an environment obstacle
  kFirmwareAbort,     // the firmware process itself died (InvariantError)
};

inline const char* to_string(CrashCause c) {
  switch (c) {
    case CrashCause::kNone: return "none";
    case CrashCause::kHardLanding: return "hard-landing";
    case CrashCause::kTippedOver: return "tipped-over";
    case CrashCause::kLateralImpact: return "lateral-impact";
    case CrashCause::kObstacle: return "obstacle";
    case CrashCause::kFirmwareAbort: return "firmware-abort";
  }
  return "?";
}

}  // namespace avis::sim
