#include "sim/quadcopter.h"

#include <algorithm>
#include <cmath>

namespace avis::sim {

namespace {
double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}  // namespace

CrashCause QuadcopterDynamics::step(VehicleState& state, const MotorCommands& commanded,
                                    const Environment& env, double dt,
                                    util::Rng& rng) const {
  if (state.crashed) {
    // A crashed vehicle stays where it fell; motors are assumed destroyed.
    state.velocity = {};
    state.acceleration = {};
    state.body_rates = {};
    return CrashCause::kNone;
  }

  // First-order motor lag toward the commanded values.
  const double alpha = dt / (params_.motor_time_constant_s + dt);
  for (int i = 0; i < 4; ++i) {
    const double target = clamp01(commanded.value[i]);
    state.motors.value[i] += alpha * (target - state.motors.value[i]);
  }

  // Thrust and torques from the quad-X mixer geometry.
  const auto& m = state.motors.value;
  const double f0 = m[0] * params_.max_motor_thrust_n;  // front-right (CCW)
  const double f1 = m[1] * params_.max_motor_thrust_n;  // back-left   (CCW)
  const double f2 = m[2] * params_.max_motor_thrust_n;  // front-left  (CW)
  const double f3 = m[3] * params_.max_motor_thrust_n;  // back-right  (CW)
  const double thrust = f0 + f1 + f2 + f3;

  const double l = params_.arm_length_m * 0.70710678;  // X-frame moment arm
  const double torque_roll = l * ((f1 + f2) - (f0 + f3));   // left-up positive
  const double torque_pitch = l * ((f0 + f2) - (f1 + f3));  // nose-up positive
  const double torque_yaw = params_.yaw_torque_coeff * ((f0 + f1) - (f2 + f3));

  // Rotational dynamics with aerodynamic damping.
  geo::Vec3 angular_accel{
      (torque_roll - params_.angular_drag * state.body_rates.x) / params_.inertia_roll,
      (torque_pitch - params_.angular_drag * state.body_rates.y) / params_.inertia_pitch,
      (torque_yaw - params_.angular_drag * state.body_rates.z) / params_.inertia_yaw,
  };
  state.body_rates += angular_accel * dt;
  state.attitude.integrate_rates(state.body_rates, dt);

  // Translational dynamics. Thrust acts along body -z (up when level).
  const geo::Vec3 thrust_world = state.attitude.body_to_world({0.0, 0.0, -thrust});
  geo::Vec3 wind = env.wind().mean;
  if (env.wind().gust_stddev > 0.0) {
    wind += geo::Vec3{rng.gaussian(env.wind().gust_stddev), rng.gaussian(env.wind().gust_stddev),
                      rng.gaussian(env.wind().gust_stddev)};
  }
  const geo::Vec3 air_velocity = state.velocity - wind;
  const geo::Vec3 drag = air_velocity * (-params_.linear_drag);

  geo::Vec3 force = thrust_world + drag;
  force.z += params_.mass_kg * params_.gravity;  // NED: +z is down

  state.acceleration = force / params_.mass_kg;

  // Ground support: if resting on the ground and net force is downward,
  // the ground provides the normal force.
  const bool touching = state.position.z >= Environment::ground_z() - 1e-9;
  if (touching && state.acceleration.z > 0.0 && state.velocity.z >= -1e-6) {
    state.acceleration = {0.0, 0.0, 0.0};
    state.velocity = {};
    state.position.z = Environment::ground_z();
    state.on_ground = true;
    // Tipping over while on the ground (e.g. actuating asymmetrically after
    // touchdown, as in APM-16021's final phase) is a crash.
    if (state.attitude.tilt() > params_.max_contact_tilt_rad) {
      state.crashed = true;
      return CrashCause::kTippedOver;
    }
    p_drain_battery(state, thrust, dt);
    return CrashCause::kNone;
  }

  // Free-flight integration (semi-implicit Euler).
  state.velocity += state.acceleration * dt;
  state.position += state.velocity * dt;
  state.on_ground = false;

  // Obstacle collision.
  if (env.hits_obstacle(state.position)) {
    state.crashed = true;
    state.velocity = {};
    return CrashCause::kObstacle;
  }

  // Ground contact this step?
  if (state.position.z >= Environment::ground_z()) {
    state.position.z = Environment::ground_z();
    state.on_ground = true;
    const double descent = state.velocity.z;        // +z down: positive = descending
    const double lateral = state.ground_speed();
    const double tilt = state.attitude.tilt();
    state.velocity = {};
    if (descent > params_.max_landing_speed) {
      state.crashed = true;
      return CrashCause::kHardLanding;
    }
    if (tilt > params_.max_contact_tilt_rad) {
      state.crashed = true;
      return CrashCause::kTippedOver;
    }
    if (lateral > params_.max_contact_lateral) {
      state.crashed = true;
      return CrashCause::kLateralImpact;
    }
  }

  p_drain_battery(state, thrust, dt);
  return CrashCause::kNone;
}

void QuadcopterDynamics::p_drain_battery(VehicleState& state, double thrust_n,
                                         double dt) const {
  // Power scales with thrust^1.5 (momentum theory), normalized to hover.
  const double hover_thrust = params_.mass_kg * params_.gravity;
  const double ratio = hover_thrust > 0.0 ? std::max(thrust_n / hover_thrust, 0.0) : 0.0;
  // r^1.5 as r*sqrt(r): pow() is by far the most expensive libm call in the
  // per-millisecond step and this identity keeps it out of the hot loop.
  const double power = params_.hover_power_w * (ratio * std::sqrt(ratio)) + 5.0;
  const double drained = power * dt / params_.battery_capacity_j;
  state.battery_remaining = std::max(0.0, state.battery_remaining - drained);
  state.battery_voltage = params_.empty_voltage + (params_.full_voltage - params_.empty_voltage) *
                                                      state.battery_remaining;
}

}  // namespace avis::sim
