// Batched lockstep physics: one sim::Simulator's worth of mutable state per
// lane (vehicle state, wind/contact RNG stream, crash latch), stored
// structure-of-arrays, stepped by the existing scalar QuadcopterDynamics.
//
// The dynamics math is NOT re-derived: each lane's state is unpacked into a
// caller-held scalar VehicleState work register, stepped through
// QuadcopterDynamics::step — the identical code path the scalar Simulator
// runs, with the lane's own wind RNG — and packed back. Per-lane operation
// order is therefore exactly the scalar order, which is what makes a lane's
// physics bit-identical to a scalar run and lets it diverge mid-campaign
// (core::BatchHarness) without a seam.
//
// All lanes share one QuadcopterDynamics: the harness provisions every
// simulator with default QuadcopterParams (core/harness.cc), so parameters
// are batch-invariant. Time is batch-invariant too (lockstep), so the group
// clock lives with the caller and only enters at unpack().
#pragma once

#include "sim/environment.h"
#include "sim/quadcopter.h"
#include "sim/simulator.h"
#include "sim/vehicle_state.h"
#include "sim/vehicle_state_batch.h"
#include "util/rng.h"

namespace avis::sim {

class QuadcopterBatch {
 public:
  explicit QuadcopterBatch(int width, QuadcopterParams params = {})
      : dynamics_(params),
        states_(width),
        wind_rng_(static_cast<std::size_t>(width), util::Rng(0)),
        last_crash_(static_cast<std::size_t>(width), CrashCause::kNone) {}

  int width() const { return states_.width(); }

  // Load one lane from a scalar simulator snapshot (state, wind stream
  // position, latched crash). The snapshot's time_ms is the group clock and
  // is carried by the caller.
  void pack(int lane, const Simulator::Snapshot& s) {
    states_.pack(lane, s.state);
    wind_rng_[static_cast<std::size_t>(lane)].load(s.rng);
    last_crash_[static_cast<std::size_t>(lane)] = s.last_crash;
  }

  // Reconstruct the scalar snapshot for a diverging or retiring lane.
  Simulator::Snapshot unpack(int lane, SimTimeMs time_ms) const {
    return {states_.unpack(lane), wind_rng_[static_cast<std::size_t>(lane)].save(), time_ms,
            last_crash_[static_cast<std::size_t>(lane)]};
  }

  // One physics step for one lane. `scratch` is the caller's work register
  // holding this lane's current state (see unpack_state); it is advanced in
  // place and written back to the lanes. Mirrors sim::Simulator::step minus
  // the clock tick and observer fan-out (lockstep groups have neither).
  CrashCause step(int lane, VehicleState& scratch, const MotorCommands& motors,
                  const Environment& env) {
    const CrashCause crash =
        dynamics_.step(scratch, motors, env, kStepSeconds, wind_rng_[static_cast<std::size_t>(lane)]);
    if (crash != CrashCause::kNone) last_crash_[static_cast<std::size_t>(lane)] = crash;
    states_.pack(lane, scratch);
    return crash;
  }

  void unpack_state(int lane, VehicleState& out) const { out = states_.unpack(lane); }

  CrashCause last_crash(int lane) const {
    return last_crash_[static_cast<std::size_t>(lane)];
  }

  const VehicleStateBatch& states() const { return states_; }

 private:
  QuadcopterDynamics dynamics_;
  VehicleStateBatch states_;
  // Per-lane wind/ground-contact noise streams (the scalar Simulator's rng_).
  std::vector<util::Rng> wind_rng_;
  std::vector<CrashCause> last_crash_;
};

}  // namespace avis::sim
