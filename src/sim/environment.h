// The simulated physical world: ground plane, obstacles, geofence, weather.
//
// Per the paper (§IV-A) Avis uses "an environment without hostile weather or
// obstacles" for its default workloads; obstacles and wind exist so tests can
// exercise the safety invariant and so future workloads can model them.
#pragma once

#include <optional>
#include <vector>

#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace avis::sim {

// Axis-aligned box obstacle in local NED coordinates.
struct Obstacle {
  geo::Vec3 min_corner;
  geo::Vec3 max_corner;

  bool contains(const geo::Vec3& p) const {
    return p.x >= min_corner.x && p.x <= max_corner.x && p.y >= min_corner.y &&
           p.y <= max_corner.y && p.z >= min_corner.z && p.z <= max_corner.z;
  }
};

// Horizontal rectangular geofence with an altitude ceiling. The firmware's
// mission manager enforces it; the second default workload (§V-A) plans a box
// that overlaps a fenced region the UAV must avoid.
struct Fence {
  double min_north = -1e9;
  double max_north = 1e9;
  double min_east = -1e9;
  double max_east = 1e9;
  double max_altitude = 1e9;

  bool violates(const geo::Vec3& p) const {
    return p.x < min_north || p.x > max_north || p.y < min_east || p.y > max_east ||
           -p.z > max_altitude;
  }
};

struct Wind {
  geo::Vec3 mean;           // m/s, NED
  double gust_stddev = 0.0;  // m/s, per-axis gaussian gusts
};

class Environment {
 public:
  Environment() = default;

  // Home (launch) point; local frame origin.
  void set_home(const geo::GeoPoint& home) { frame_ = geo::LocalFrame(home); }
  const geo::LocalFrame& frame() const { return frame_; }

  void add_obstacle(const Obstacle& o) { obstacles_.push_back(o); }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  void set_fence(const Fence& f) { fence_ = f; }
  const std::optional<Fence>& fence() const { return fence_; }

  void set_wind(const Wind& w) { wind_ = w; }
  const Wind& wind() const { return wind_; }

  // Ground elevation is flat at local z = 0 (NED down-positive).
  static double ground_z() { return 0.0; }

  bool hits_obstacle(const geo::Vec3& p) const {
    for (const auto& o : obstacles_) {
      if (o.contains(p)) return true;
    }
    return false;
  }

 private:
  geo::LocalFrame frame_{geo::GeoPoint{40.0, -83.0, 200.0}};  // Columbus, OH test field
  std::vector<Obstacle> obstacles_;
  std::optional<Fence> fence_;
  Wind wind_;
};

}  // namespace avis::sim
