// Quadcopter rigid-body dynamics (3DR Iris class vehicle).
//
// A simplified but physically grounded model: four motors with first-order
// lag produce thrust along the body -z axis and roll/pitch/yaw torques;
// translational dynamics include gravity, aerodynamic drag and wind; ground
// contact is modelled as an inelastic constraint with a crash classifier.
// The parameter defaults approximate the 3DR Iris used in all of the paper's
// experiments (1.5 kg, ~2:1 thrust-to-weight).
#pragma once

#include "geo/vec3.h"
#include "sim/environment.h"
#include "sim/vehicle_state.h"
#include "util/rng.h"

namespace avis::sim {

struct QuadcopterParams {
  double mass_kg = 1.5;
  double arm_length_m = 0.25;
  double max_motor_thrust_n = 7.4;    // per motor; 4 * 7.4 ≈ 2x weight
  double motor_time_constant_s = 0.02;
  double yaw_torque_coeff = 0.016;    // N*m of yaw torque per N of thrust
  double inertia_roll = 0.020;        // kg*m^2
  double inertia_pitch = 0.020;
  double inertia_yaw = 0.035;
  double linear_drag = 0.25;          // N per (m/s)
  double angular_drag = 0.06;         // N*m per (rad/s)
  double gravity = 9.80665;

  // Crash classifier thresholds (paper: "rapidly (de)accelerates but has the
  // same position as another simulated object, e.g. the ground").
  double max_landing_speed = 2.3;     // m/s descent at contact
  double max_contact_tilt_rad = 1.05; // ~60 degrees
  double max_contact_lateral = 3.0;   // m/s horizontal at contact

  // Battery: simple capacity model so the battery sensor has real data.
  double battery_capacity_j = 60000.0;
  double hover_power_w = 180.0;
  double full_voltage = 12.6;
  double empty_voltage = 10.5;
};

// Advances the vehicle state one time-step. Stateless apart from parameters:
// all mutable state lives in VehicleState so the simulator is trivially
// copyable for profiling-run comparisons.
class QuadcopterDynamics {
 public:
  explicit QuadcopterDynamics(QuadcopterParams params = {}) : params_(params) {}

  const QuadcopterParams& params() const { return params_; }

  // Steps dynamics with the commanded motor outputs. `commanded` is what the
  // firmware's mixer requested this step; motor lag is applied internally.
  // On ground contact the crash classifier decides between a normal landing
  // and a crash; a crashed vehicle no longer responds to motor commands.
  CrashCause step(VehicleState& state, const MotorCommands& commanded,
                  const Environment& env, double dt, util::Rng& rng) const;

 private:
  void p_drain_battery(VehicleState& state, double thrust_n, double dt) const;

  QuadcopterParams params_;
};

}  // namespace avis::sim
