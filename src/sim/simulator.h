// The simulation loop (Fig. 7 of the paper).
//
// One simulation time-step:
//   1. the workload calls step() on the harness;
//   2. the simulator advances time by a fixed unit (1 ms, per §V);
//   3. synthetic sensor readings are generated from the physical state;
//   4. instrumented drivers consult the fault-injection engine;
//   5. firmware computes actuator outputs;
//   6. the simulator computes the next physical state and notifies observers.
//
// This class owns steps 2 and 6; the harness in src/core wires the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/environment.h"
#include "sim/quadcopter.h"
#include "sim/vehicle_state.h"
#include "util/rng.h"

namespace avis::sim {

// Simulation time in integer milliseconds; avoids drift from accumulating
// floating-point dt and gives the fault plan exact injection timestamps.
using SimTimeMs = std::int64_t;

inline constexpr double kStepSeconds = 0.001;  // 1 ms per §V

// Observer invoked after each physics step (the paper's Gazebo plugin
// reporting over a Unix socket; here an in-process callback carrying the
// same payload: time, ground-truth state, and any crash event).
struct StepEvent {
  SimTimeMs time_ms = 0;
  const VehicleState* state = nullptr;
  CrashCause crash = CrashCause::kNone;
};

class Simulator {
 public:
  Simulator(Environment env, QuadcopterParams params, std::uint64_t seed)
      : env_(std::move(env)), dynamics_(params), rng_(seed) {}

  // Advance physics one time-step given the firmware's actuator outputs.
  // Returns the crash cause if a collision happened this step.
  CrashCause step(const MotorCommands& motors) {
    const CrashCause crash = dynamics_.step(state_, motors, env_, kStepSeconds, rng_);
    time_ms_ += 1;
    if (crash != CrashCause::kNone) last_crash_ = crash;
    for (const auto& obs : observers_) {
      obs(StepEvent{time_ms_, &state_, crash});
    }
    return crash;
  }

  void add_observer(std::function<void(const StepEvent&)> obs) {
    observers_.push_back(std::move(obs));
  }

  // Complete per-run state for experiment checkpointing. The environment,
  // dynamics parameters and observers are construction-time constants of the
  // spec and are not part of a run's mutable state; the RNG stream is (wind
  // gusts and ground-contact jitter draw from it mid-run).
  struct Snapshot {
    VehicleState state;
    util::Rng::State rng;
    SimTimeMs time_ms = 0;
    CrashCause last_crash = CrashCause::kNone;
  };

  Snapshot save() const { return {state_, rng_.save(), time_ms_, last_crash_}; }

  void load(const Snapshot& s) {
    state_ = s.state;
    rng_.load(s.rng);
    time_ms_ = s.time_ms;
    last_crash_ = s.last_crash;
  }

  SimTimeMs now_ms() const { return time_ms_; }
  double now_seconds() const { return static_cast<double>(time_ms_) * kStepSeconds; }

  const VehicleState& state() const { return state_; }
  VehicleState& mutable_state() { return state_; }
  const Environment& environment() const { return env_; }
  const QuadcopterDynamics& dynamics() const { return dynamics_; }
  CrashCause last_crash() const { return last_crash_; }
  util::Rng& rng() { return rng_; }

 private:
  Environment env_;
  QuadcopterDynamics dynamics_;
  VehicleState state_;
  util::Rng rng_;
  SimTimeMs time_ms_ = 0;
  CrashCause last_crash_ = CrashCause::kNone;
  std::vector<std::function<void(const StepEvent&)>> observers_;
};

}  // namespace avis::sim
