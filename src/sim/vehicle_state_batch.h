// Structure-of-arrays storage for the per-step vehicle state of a batch of
// lockstep experiments (core::BatchHarness).
//
// Layout granularity: one vector per VehicleState field, so a subsystem pass
// that touches only a few fields (the batched estimator reads body_rates,
// attitude, acceleration, ...) walks contiguous memory across lanes instead
// of striding over whole VehicleState objects. Vec3-valued fields stay as
// `std::vector<geo::Vec3>` rather than three scalar vectors: the three
// components are always consumed together, so splitting them buys nothing
// and costs address arithmetic.
//
// pack/unpack are exact copies in both directions — a lane that diverges to
// the scalar path (or a round-trip in the property tests) reproduces the
// scalar VehicleState bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/attitude.h"
#include "geo/vec3.h"
#include "sim/vehicle_state.h"

namespace avis::sim {

class VehicleStateBatch {
 public:
  explicit VehicleStateBatch(int width)
      : position_(static_cast<std::size_t>(width)),
        velocity_(static_cast<std::size_t>(width)),
        acceleration_(static_cast<std::size_t>(width)),
        attitude_(static_cast<std::size_t>(width)),
        body_rates_(static_cast<std::size_t>(width)),
        motors_(static_cast<std::size_t>(width)),
        battery_voltage_(static_cast<std::size_t>(width), 12.6),
        battery_remaining_(static_cast<std::size_t>(width), 1.0),
        on_ground_(static_cast<std::size_t>(width), 1),
        crashed_(static_cast<std::size_t>(width), 0) {}

  int width() const { return static_cast<int>(position_.size()); }

  void pack(int lane, const VehicleState& s) {
    const auto i = static_cast<std::size_t>(lane);
    position_[i] = s.position;
    velocity_[i] = s.velocity;
    acceleration_[i] = s.acceleration;
    attitude_[i] = s.attitude;
    body_rates_[i] = s.body_rates;
    motors_[i] = s.motors;
    battery_voltage_[i] = s.battery_voltage;
    battery_remaining_[i] = s.battery_remaining;
    on_ground_[i] = s.on_ground ? 1 : 0;
    crashed_[i] = s.crashed ? 1 : 0;
  }

  VehicleState unpack(int lane) const {
    const auto i = static_cast<std::size_t>(lane);
    VehicleState s;
    s.position = position_[i];
    s.velocity = velocity_[i];
    s.acceleration = acceleration_[i];
    s.attitude = attitude_[i];
    s.body_rates = body_rates_[i];
    s.motors = motors_[i];
    s.battery_voltage = battery_voltage_[i];
    s.battery_remaining = battery_remaining_[i];
    s.on_ground = on_ground_[i] != 0;
    s.crashed = crashed_[i] != 0;
    return s;
  }

  // Field lanes, for passes that touch a subset of the state.
  const geo::Vec3& position(int lane) const { return position_[static_cast<std::size_t>(lane)]; }
  const geo::Vec3& acceleration(int lane) const {
    return acceleration_[static_cast<std::size_t>(lane)];
  }
  bool on_ground(int lane) const { return on_ground_[static_cast<std::size_t>(lane)] != 0; }
  bool crashed(int lane) const { return crashed_[static_cast<std::size_t>(lane)] != 0; }

 private:
  std::vector<geo::Vec3> position_;
  std::vector<geo::Vec3> velocity_;
  std::vector<geo::Vec3> acceleration_;
  std::vector<geo::Attitude> attitude_;
  std::vector<geo::Vec3> body_rates_;
  std::vector<MotorCommands> motors_;
  std::vector<double> battery_voltage_;
  std::vector<double> battery_remaining_;
  std::vector<std::uint8_t> on_ground_;
  std::vector<std::uint8_t> crashed_;
};

}  // namespace avis::sim
