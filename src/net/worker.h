// Distributed campaign worker (docs/DISTRIBUTED.md).
//
// A worker is a loop: connect, Hello/HelloAck handshake, then run one
// assigned cell at a time, heartbeating from a side thread the whole time
// (FrameChannel serializes the shared socket). Cell failures are reported,
// not fatal: a cell that throws goes back as CellReport{ok=false} and the
// worker stays in the pool. Transport failures trigger reconnection with a
// fresh registration — the coordinator treats the reconnect as a brand-new
// worker. Only two things end the loop: a Shutdown frame (normal end of
// campaign, returns true) or running out of consecutive connection attempts
// (coordinator gone for good, returns false). A protocol-version refusal
// throws — reconnecting cannot fix a mismatched binary.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/campaign.h"
#include "net/chaos.h"

namespace avis::net {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string worker_id;  // empty = coordinator assigns "worker-N"

  int heartbeat_interval_ms = 250;

  // Reconnection: consecutive failed connection/handshake attempts before
  // giving the coordinator up for dead. Resets on every successful
  // registration, so a long campaign with one coordinator restart still
  // completes.
  int reconnect_attempts = 10;
  int reconnect_delay_ms = 500;

  // Cell execution pool width (a local choice; the report is bit-identical
  // regardless). Checkpoint configuration is NOT a local choice: it arrives
  // with each AssignCell frame so every cell runs — and its report echoes —
  // the coordinator's knobs.
  int experiment_workers = 0;  // 0 = util::default_worker_count()
  int batch_width = 0;         // lockstep simulation width; 0 = auto

  // Shared-secret auth token carried in Hello (docs/DISTRIBUTED.md "Trust
  // model"). Must match the coordinator's --auth-token or registration is
  // refused (fatal, like a protocol-version mismatch).
  std::string auth_token;

  // Deterministic fault injection on this worker's send path (net/chaos.h;
  // stream = connection ordinal, so reconnects do not replay the first
  // connection's schedule).
  ChaosConfig chaos;

  std::ostream* log = nullptr;
};

// Runs the worker loop. Returns true after an orderly Shutdown from the
// coordinator, false when reconnect_attempts consecutive connection attempts
// failed. Throws ProtocolError if the coordinator refuses the handshake.
bool run_worker(const WorkerOptions& options);

}  // namespace avis::net
