// Length-prefixed frame transport for the distributed campaign protocol
// (docs/DISTRIBUTED.md): every message is a 4-byte little-endian payload
// length followed by that many bytes of UTF-8 JSON. The framing reuses the
// PR-3 ByteWriter/ByteReader style — the writer's buffer is retained across
// frames, and the length prefix is decoded straight out of the receive
// buffer — and enforces a hard frame-size ceiling so a corrupt or hostile
// length prefix cannot drive an unbounded allocation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/socket.h"
#include "util/bytes.h"

namespace avis::net {

// Largest accepted payload. Campaign frames are scenario specs and cell
// reports — kilobytes, not gigabytes; anything near this limit is a
// mis-framed stream or a hostile peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// One framed, bidirectional connection. Reads are single-threaded (the
// owning event loop); writes are mutex-serialized because a worker's
// heartbeat thread shares the socket with its cell-report sender.
class FrameChannel {
 public:
  explicit FrameChannel(Socket socket) : socket_(std::move(socket)) {}

  Socket& socket() { return socket_; }
  int fd() const { return socket_.fd(); }
  bool valid() const { return socket_.valid(); }
  void close() { socket_.close(); }

  // Deterministic fault injection on the send path (net/chaos.h). Install
  // before the channel is shared across threads; every subsequent send()
  // consults the policy. nullptr (the default) is the zero-cost clean path.
  void set_chaos(std::unique_ptr<ChaosPolicy> chaos) { chaos_ = std::move(chaos); }
  ChaosPolicy* chaos() const { return chaos_.get(); }

  // Sends one frame. Throws PeerClosed/NetError on a dead connection.
  void send(std::string_view payload) {
    if (payload.size() > kMaxFrameBytes) throw NetError("frame payload too large");
    const std::lock_guard<std::mutex> lock(send_mutex_);
    writer_.clear();
    writer_.u32(static_cast<std::uint32_t>(payload.size()));
    if (chaos_ != nullptr) {
      const ChaosEvent event = chaos_->next(4 + payload.size());
      switch (event.action) {
        case ChaosAction::kPass:
          break;
        case ChaosAction::kDrop:
          return;  // the network ate the frame; the sender never learns
        case ChaosAction::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(event.delay_ms));
          break;
        case ChaosAction::kDuplicate:
          p_send_framed(payload);  // first copy; the normal path below sends the second
          break;
        case ChaosAction::kTruncate:
          // Torn write: ship a strict prefix of the framed bytes, then cut
          // the link — what a crash mid-send looks like from the peer.
          p_send_prefix(payload, event.keep_bytes);
          socket_.shutdown_both();
          throw PeerClosed("chaos: frame truncated after " +
                           std::to_string(event.keep_bytes) + " bytes");
        case ChaosAction::kSever:
          socket_.shutdown_both();
          throw PeerClosed("chaos: connection severed");
      }
    }
    p_send_framed(payload);
  }

  // Returns the next complete frame's payload, or nullopt if none became
  // complete within timeout_ms. Throws PeerClosed when the peer is gone and
  // NetError on a malformed length prefix.
  std::optional<std::string> poll_frame(int timeout_ms) {
    if (auto frame = p_take_frame()) return frame;
    // The first read honours the caller's timeout; after that, keep
    // draining whatever is already available (timeout 0) until the frame
    // completes or the kernel buffer runs dry. Without the drain, a frame
    // near the size cap would need thousands of event-loop passes at one
    // bounded read each.
    std::uint8_t chunk[65536];
    std::size_t n = socket_.recv_some(chunk, timeout_ms);
    while (n > 0) {
      if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
      }
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      if (auto frame = p_take_frame()) return frame;
      n = socket_.recv_some(chunk, 0);
    }
    return std::nullopt;
  }

 private:
  // The clean wire format: 4-byte little-endian length, then the payload.
  // writer_ already holds the prefix when these run (send() fills it).
  void p_send_framed(std::string_view payload) {
    socket_.send_all(writer_.span());
    socket_.send_all({reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()});
  }

  // First keep_bytes of the framed message (prefix + payload), nothing more.
  void p_send_prefix(std::string_view payload, std::size_t keep_bytes) {
    const std::span<const std::uint8_t> prefix = writer_.span();
    const std::size_t head = std::min(keep_bytes, prefix.size());
    socket_.send_all(prefix.subspan(0, head));
    const std::size_t tail = std::min(payload.size(), keep_bytes - head);
    socket_.send_all({reinterpret_cast<const std::uint8_t*>(payload.data()), tail});
  }

  // Extracts the next complete frame from the reassembly buffer, advancing
  // consumed_ instead of erasing from the front — repeated O(n) moves on a
  // large buffered frame would dominate reassembly otherwise. The consumed
  // prefix is reclaimed lazily: all at once when the buffer empties, or
  // before the next append in poll_frame.
  std::optional<std::string> p_take_frame() {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < 4) return std::nullopt;
    util::ByteReader reader(std::span<const std::uint8_t>(buffer_.data() + consumed_, 4));
    const std::uint32_t length = reader.u32();
    if (length > kMaxFrameBytes) {
      throw NetError("frame length " + std::to_string(length) + " exceeds limit");
    }
    if (avail < 4u + length) return std::nullopt;
    std::string payload(reinterpret_cast<const char*>(buffer_.data() + consumed_ + 4), length);
    consumed_ += 4u + length;
    if (consumed_ == buffer_.size()) {
      buffer_.clear();
      consumed_ = 0;
    }
    return payload;
  }

  Socket socket_;
  std::unique_ptr<ChaosPolicy> chaos_;  // nullptr = clean transport
  util::ByteWriter writer_;      // retained-capacity length prefix scratch
  std::vector<std::uint8_t> buffer_;  // receive reassembly buffer
  std::size_t consumed_ = 0;          // bytes of buffer_ already handed out
  std::mutex send_mutex_;
};

}  // namespace avis::net
