// Length-prefixed frame transport for the distributed campaign protocol
// (docs/DISTRIBUTED.md): every message is a 4-byte little-endian payload
// length followed by that many bytes of UTF-8 JSON. The framing reuses the
// PR-3 ByteWriter/ByteReader style — the writer's buffer is retained across
// frames, and the length prefix is decoded straight out of the receive
// buffer — and enforces a hard frame-size ceiling so a corrupt or hostile
// length prefix cannot drive an unbounded allocation.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/socket.h"
#include "util/bytes.h"

namespace avis::net {

// Largest accepted payload. Campaign frames are scenario specs and cell
// reports — kilobytes, not gigabytes; anything near this limit is a
// mis-framed stream or a hostile peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// One framed, bidirectional connection. Reads are single-threaded (the
// owning event loop); writes are mutex-serialized because a worker's
// heartbeat thread shares the socket with its cell-report sender.
class FrameChannel {
 public:
  explicit FrameChannel(Socket socket) : socket_(std::move(socket)) {}

  Socket& socket() { return socket_; }
  int fd() const { return socket_.fd(); }
  bool valid() const { return socket_.valid(); }
  void close() { socket_.close(); }

  // Sends one frame. Throws PeerClosed/NetError on a dead connection.
  void send(std::string_view payload) {
    if (payload.size() > kMaxFrameBytes) throw NetError("frame payload too large");
    const std::lock_guard<std::mutex> lock(send_mutex_);
    writer_.clear();
    writer_.u32(static_cast<std::uint32_t>(payload.size()));
    socket_.send_all(writer_.span());
    socket_.send_all({reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()});
  }

  // Returns the next complete frame's payload, or nullopt if none became
  // complete within timeout_ms. Throws PeerClosed when the peer is gone and
  // NetError on a malformed length prefix.
  std::optional<std::string> poll_frame(int timeout_ms) {
    if (auto frame = p_take_frame()) return frame;
    // The first read honours the caller's timeout; after that, keep
    // draining whatever is already available (timeout 0) until the frame
    // completes or the kernel buffer runs dry. Without the drain, a frame
    // near the size cap would need thousands of event-loop passes at one
    // bounded read each.
    std::uint8_t chunk[65536];
    std::size_t n = socket_.recv_some(chunk, timeout_ms);
    while (n > 0) {
      if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
      }
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      if (auto frame = p_take_frame()) return frame;
      n = socket_.recv_some(chunk, 0);
    }
    return std::nullopt;
  }

 private:
  // Extracts the next complete frame from the reassembly buffer, advancing
  // consumed_ instead of erasing from the front — repeated O(n) moves on a
  // large buffered frame would dominate reassembly otherwise. The consumed
  // prefix is reclaimed lazily: all at once when the buffer empties, or
  // before the next append in poll_frame.
  std::optional<std::string> p_take_frame() {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < 4) return std::nullopt;
    util::ByteReader reader(std::span<const std::uint8_t>(buffer_.data() + consumed_, 4));
    const std::uint32_t length = reader.u32();
    if (length > kMaxFrameBytes) {
      throw NetError("frame length " + std::to_string(length) + " exceeds limit");
    }
    if (avail < 4u + length) return std::nullopt;
    std::string payload(reinterpret_cast<const char*>(buffer_.data() + consumed_ + 4), length);
    consumed_ += 4u + length;
    if (consumed_ == buffer_.size()) {
      buffer_.clear();
      consumed_ = 0;
    }
    return payload;
  }

  Socket socket_;
  util::ByteWriter writer_;      // retained-capacity length prefix scratch
  std::vector<std::uint8_t> buffer_;  // receive reassembly buffer
  std::size_t consumed_ = 0;          // bytes of buffer_ already handed out
  std::mutex send_mutex_;
};

}  // namespace avis::net
