#include "net/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <variant>

#include "core/journal.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "util/checked.h"
#include "util/concurrency.h"

namespace avis::net {

namespace {

using Clock = std::chrono::steady_clock;

// Event-loop tick: the upper bound on how stale a liveness/deadline/backoff
// decision can be. Small against every timing parameter in the options.
constexpr int kTickMs = 20;

std::chrono::milliseconds p_ms(std::int64_t ms) { return std::chrono::milliseconds(ms); }

}  // namespace

// Scheduling state for one grid cell. attempts counts every assignment —
// remote or degraded in-process — so the retry cap bounds total work even
// when failures alternate between modes.
struct CampaignCoordinator::CellState {
  int attempts = 0;
  bool in_flight = false;  // currently assigned to some worker
  bool done = false;
  core::CheckerReport report;
  double wall_seconds = 0.0;
  std::string completed_by;
  std::vector<std::string> reassigned_from;
  std::string last_error;
  Clock::time_point not_before = Clock::time_point::min();  // backoff gate
};

// One TCP connection. A connection is anonymous until its Hello is
// accepted; a worker that reconnects is simply a new WorkerConn (the stale
// one dies through EOF or the liveness sweep, requeueing its cell).
struct CampaignCoordinator::WorkerConn {
  std::unique_ptr<FrameChannel> channel;
  std::string id;
  bool registered = false;
  bool dead = false;
  Clock::time_point last_seen;
  int assigned_cell = -1;
  Clock::time_point cell_deadline = Clock::time_point::max();
};

CampaignCoordinator::CampaignCoordinator(std::vector<core::CampaignCellSpec> grid,
                                         CoordinatorOptions options)
    : options_(options), grid_(std::move(grid)), listener_(options.port, options.bind_address) {
  util::expects(!grid_.empty(), "distributed campaign needs at least one cell");
  for (const auto& cell : grid_) {
    // In-process factory hooks (ablation strategies, re-inserted bug
    // populations) cannot cross a process boundary; the wire carries
    // registry names only.
    util::expects(!cell.make_strategy && !cell.bugs_override,
                  "distributed campaign cells must be registry-named scenarios");
    cell.scenario.validate();
  }
}

core::CampaignResult CampaignCoordinator::run() {
  util::expects(listener_.valid(), "CampaignCoordinator::run may only be called once");
  const auto start = Clock::now();
  std::vector<CellState> cells(grid_.size());
  std::vector<std::unique_ptr<WorkerConn>> workers;
  auto last_worker_seen = start;  // degraded-mode grace reference
  int peak_workers = 0;
  int anon_counter = 0;
  std::uint64_t chaos_stream = 0;  // accept ordinal; keys each conn's schedule
  bool interrupted = false;

  const auto log = [&](const std::string& line) {
    if (options_.log != nullptr) *options_.log << "[coordinator] " << line << std::endl;
  };

  // Resume: journaled cells are already done. Their reports merge at their
  // grid positions and the scheduler never assigns them.
  if (options_.resume != nullptr) {
    std::size_t merged = 0;
    for (const core::JournalCellRecord& record : *options_.resume) {
      if (record.index < 0 || static_cast<std::size_t>(record.index) >= cells.size()) continue;
      CellState& cell = cells[static_cast<std::size_t>(record.index)];
      if (cell.done) continue;
      cell.done = true;
      cell.report = record.report;
      cell.wall_seconds = record.wall_seconds;
      cell.attempts = record.attempts;
      cell.completed_by = record.completed_by;
      cell.reassigned_from = record.reassigned_from;
      ++merged;
    }
    log("resumed " + std::to_string(merged) + "/" + std::to_string(cells.size()) +
        " cells from journal");
  }

  // Write-ahead: append + fsync the completed cell before the coordinator
  // acts on the completion (marks it done, assigns the next cell). A
  // JournalError is deliberately not caught here — losing durability
  // mid-campaign must fail loudly, not degrade silently.
  const auto journal_cell = [&](std::size_t index, const CellState& cell,
                                const core::CheckerReport& report, double wall_seconds,
                                const std::string& completed_by) {
    if (options_.journal == nullptr) return;
    core::JournalCellRecord record;
    record.index = static_cast<int>(index);
    record.spec_hash = core::cell_identity_hash(grid_[index]);
    record.attempts = cell.attempts;
    record.completed_by = completed_by;
    record.reassigned_from = cell.reassigned_from;
    record.wall_seconds = wall_seconds;
    record.report = report;
    options_.journal->append(record);
  };

  const auto liveness_window =
      p_ms(static_cast<std::int64_t>(options_.heartbeat_interval_ms) *
           options_.heartbeat_miss_threshold);

  const int experiment_workers = options_.experiment_workers > 0
                                     ? options_.experiment_workers
                                     : util::default_worker_count();

  const auto deadline_ms_for = [&](std::size_t index) -> std::int64_t {
    if (options_.cell_deadline_ms > 0) return options_.cell_deadline_ms;
    // Simulation outpaces wall time by a wide margin, so a tenth of the
    // simulated budget is a generous wall allowance; the 30 s floor covers
    // calibration on tiny smoke budgets.
    return std::max<std::int64_t>(30000, grid_[index].scenario.budget_ms / 10);
  };

  const auto cell_name = [&](std::size_t index) {
    const core::ScenarioSpec& s = grid_[index].scenario;
    return "cell " + std::to_string(index) + " (" + s.approach + "/" + s.personality + "/" +
           s.workload + "/" + s.environment + ")";
  };

  // Abort: a poisoned cell must fail the whole campaign loudly. Best-effort
  // Shutdown to live workers, stop accepting, then throw.
  const auto abort_campaign = [&](std::size_t index) {
    for (auto& w : workers) {
      if (w->registered && !w->dead) {
        try {
          w->channel->send(encode(Message{Shutdown{"campaign aborted"}}));
        } catch (const NetError&) {
        }
      }
    }
    listener_.close();
    const CellState& cell = cells[index];
    throw CampaignAborted(cell_name(index) + " failed after " +
                          std::to_string(cell.attempts) + " attempts (max_attempts=" +
                          std::to_string(options_.max_attempts) + "); last error: " +
                          (cell.last_error.empty() ? "none recorded" : cell.last_error));
  };

  // Put an in-flight cell back on the queue after its worker failed it.
  const auto requeue = [&](std::size_t index, const std::string& from,
                           const std::string& why) {
    CellState& cell = cells[index];
    cell.in_flight = false;
    cell.reassigned_from.push_back(from);
    cell.last_error = why;
    log(cell_name(index) + " lost by " + from + " (" + why + "), attempt " +
        std::to_string(cell.attempts) + "/" + std::to_string(options_.max_attempts));
    if (cell.attempts >= options_.max_attempts) abort_campaign(index);
    // Capped exponential backoff keyed on how often the cell has failed:
    // back-to-back reassignment of a cell that just took a worker down with
    // it would burn the retry budget in milliseconds.
    std::int64_t backoff = options_.backoff_initial_ms;
    for (int i = 1; i < cell.attempts && backoff < options_.backoff_cap_ms; ++i) backoff *= 2;
    cell.not_before = Clock::now() + p_ms(std::min<std::int64_t>(backoff, options_.backoff_cap_ms));
  };

  const auto fail_worker = [&](WorkerConn& w, const std::string& why) {
    if (w.dead) return;
    w.dead = true;
    const std::string id = w.id.empty() ? "unregistered worker" : w.id;
    log(id + " dropped: " + why);
    if (w.assigned_cell >= 0) {
      const int index = w.assigned_cell;
      w.assigned_cell = -1;
      requeue(static_cast<std::size_t>(index), id, why);
    }
    w.channel->close();
  };

  const auto handle_frame = [&](WorkerConn& w, const std::string& payload) {
    Message message = decode(payload);  // ProtocolError propagates to fail_worker
    w.last_seen = Clock::now();
    if (const Hello* hello = std::get_if<Hello>(&message)) {
      if (hello->protocol != kProtocolVersion) {
        // Version skew: refuse to pair. The nack carries both versions so
        // whichever side is stale is obvious from either end's logs.
        HelloAck nack;
        nack.ok = false;
        nack.reason = "protocol version mismatch: coordinator speaks " +
                      std::to_string(kProtocolVersion) + " (" + kBuildVersion +
                      "), worker speaks " + std::to_string(hello->protocol) + " (" +
                      hello->build + ")";
        try {
          w.channel->send(encode(Message{nack}));
        } catch (const NetError&) {
        }
        log("refused worker '" + hello->worker_id + "': " + nack.reason);
        w.dead = true;
        w.channel->close();
        return;
      }
      if (!constant_time_equal(hello->auth, options_.auth_token)) {
        // The nack names the failure but never echoes either token.
        HelloAck nack;
        nack.ok = false;
        nack.reason = "auth token mismatch";
        try {
          w.channel->send(encode(Message{nack}));
        } catch (const NetError&) {
        }
        log("refused worker '" + hello->worker_id + "': " + nack.reason);
        w.dead = true;
        w.channel->close();
        return;
      }
      w.registered = true;
      w.id = hello->worker_id.empty() ? "worker-" + std::to_string(++anon_counter)
                                      : hello->worker_id;
      w.channel->send(encode(Message{HelloAck{}}));
      log("worker " + w.id + " registered (" + hello->build + ")");
    } else if (std::holds_alternative<Heartbeat>(message)) {
      // last_seen already refreshed above.
    } else if (CellReport* report = std::get_if<CellReport>(&message)) {
      if (!w.registered) throw ProtocolError("cell report before Hello");
      if (report->cell < 0 || static_cast<std::size_t>(report->cell) >= cells.size()) {
        throw ProtocolError("cell report for unknown cell " + std::to_string(report->cell));
      }
      if (report->cell != w.assigned_cell) {
        // A worker we already gave up on limped back in with a result for a
        // cell that has been reassigned; results are deterministic, so the
        // live assignment will produce the identical report. Drop it.
        log("ignoring stale report for cell " + std::to_string(report->cell) + " from " + w.id);
        return;
      }
      const std::size_t index = static_cast<std::size_t>(report->cell);
      CellState& cell = cells[index];
      w.assigned_cell = -1;
      if (!report->ok) {
        requeue(index, w.id, "failed on worker: " + report->error);
        return;
      }
      // Journal on receipt, before the completion takes effect: if we die
      // between the fsync and marking the cell done, the resume re-merges
      // the journaled copy and at worst re-journals a duplicate (load()
      // keeps the first).
      journal_cell(index, cell, report->report, report->wall_seconds, w.id);
      cell.in_flight = false;
      cell.done = true;
      cell.report = std::move(report->report);
      cell.wall_seconds = report->wall_seconds;
      cell.completed_by = w.id;
      log(cell_name(index) + " completed by " + w.id + " (attempt " +
          std::to_string(cell.attempts) + ")");
    } else {
      throw ProtocolError("unexpected message from worker");
    }
  };

  while (true) {
    if (std::all_of(cells.begin(), cells.end(), [](const CellState& c) { return c.done; })) {
      break;
    }
    if (options_.should_stop && options_.should_stop()) {
      // Graceful interrupt: everything journaled so far is durable; stop
      // assigning and return the partial merge below.
      interrupted = true;
      log("interrupted: stopping with " +
          std::to_string(std::count_if(cells.begin(), cells.end(),
                                       [](const CellState& c) { return c.done; })) +
          "/" + std::to_string(cells.size()) + " cells complete");
      break;
    }

    // Wait for traffic on the listener or any live connection, bounded by
    // the tick so timers (liveness, deadlines, backoff, degraded grace)
    // stay fresh.
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& w : workers) {
      if (!w->dead) fds.push_back({w->channel->fd(), POLLIN, 0});
    }
    ::poll(fds.data(), fds.size(), kTickMs);

    while (auto accepted = listener_.accept(0)) {
      auto conn = std::make_unique<WorkerConn>();
      conn->channel = std::make_unique<FrameChannel>(std::move(*accepted));
      if (options_.chaos.enabled()) {
        conn->channel->set_chaos(std::make_unique<ChaosPolicy>(options_.chaos, chaos_stream));
      }
      ++chaos_stream;
      conn->last_seen = Clock::now();
      workers.push_back(std::move(conn));
    }

    for (auto& w : workers) {
      if (w->dead) continue;
      try {
        while (auto payload = w->channel->poll_frame(0)) {
          handle_frame(*w, *payload);
          if (w->dead) break;
        }
      } catch (const NetError& err) {
        // PeerClosed (crashed/killed worker), ProtocolError (mismatched or
        // corrupt peer), or a transport error: all mean this worker is gone.
        // CampaignAborted is not a NetError and must propagate: a live
        // worker's failed CellReport hitting the retry cap aborts the
        // campaign, it does not mean the worker is dead.
        fail_worker(*w, err.what());
      }
    }

    const auto now = Clock::now();
    for (auto& w : workers) {
      if (w->dead) continue;
      if (now - w->last_seen > liveness_window) {
        fail_worker(*w, w->registered ? "missed heartbeats" : "no Hello within window");
        continue;
      }
      if (w->assigned_cell >= 0 && now > w->cell_deadline) {
        // Hung, not dead: still heartbeating but past the cell's wall
        // budget. Cut the connection — the worker discovers on its next
        // send and may reconnect as a fresh registration.
        fail_worker(*w, "cell deadline exceeded");
      }
    }
    std::erase_if(workers, [](const auto& w) { return w->dead; });

    int live = 0;
    for (const auto& w : workers) live += w->registered ? 1 : 0;
    peak_workers = std::max(peak_workers, live);
    if (!workers.empty()) last_worker_seen = now;

    // Hand one cell to each idle registered worker, lowest grid index
    // first, honouring per-cell backoff gates.
    for (auto& w : workers) {
      if (!w->registered || w->dead || w->assigned_cell >= 0) continue;
      int pick = -1;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].done && !cells[i].in_flight && now >= cells[i].not_before) {
          pick = static_cast<int>(i);
          break;
        }
      }
      if (pick < 0) continue;
      CellState& cell = cells[static_cast<std::size_t>(pick)];
      cell.attempts += 1;
      cell.in_flight = true;
      w->assigned_cell = pick;
      const std::int64_t deadline = deadline_ms_for(static_cast<std::size_t>(pick));
      w->cell_deadline = now + p_ms(deadline);
      AssignCell assign;
      assign.cell = pick;
      assign.attempt = cell.attempts;
      assign.deadline_ms = deadline;
      assign.label = grid_[static_cast<std::size_t>(pick)].label;
      assign.scenario = grid_[static_cast<std::size_t>(pick)].scenario;
      assign.checkpoints = options_.checkpoints;
      log(cell_name(static_cast<std::size_t>(pick)) + " -> " + w->id + " (attempt " +
          std::to_string(cell.attempts) + ", deadline " + std::to_string(deadline) + " ms)");
      try {
        w->channel->send(encode(Message{assign}));
      } catch (const NetError& err) {
        fail_worker(*w, err.what());
      }
    }

    // Degraded completion: every worker is gone (and none is mid-handshake)
    // for longer than the grace window — including the case where none ever
    // connected. Cells are pure functions of their specs, so finishing
    // them here produces the exact report the fleet would have.
    if (options_.allow_degraded && workers.empty() &&
        now - last_worker_seen >= p_ms(options_.degraded_after_ms)) {
      std::size_t remaining = 0;
      for (const CellState& cell : cells) remaining += cell.done ? 0 : 1;
      log("no live workers for " + std::to_string(options_.degraded_after_ms) +
          " ms; finishing " + std::to_string(remaining) + " remaining cells in-process");
      for (std::size_t i = 0; i < cells.size(); ++i) {
        CellState& cell = cells[i];
        if (cell.done) continue;
        if (options_.should_stop && options_.should_stop()) {
          interrupted = true;
          break;
        }
        if (cell.attempts >= options_.max_attempts) abort_campaign(i);
        cell.attempts += 1;
        core::CampaignCellResult local =
            core::run_cell(grid_[i], experiment_workers, options_.checkpoints,
                           options_.batch_width);
        journal_cell(i, cell, local.report, local.wall_seconds, "local");
        cell.done = true;
        cell.report = std::move(local.report);
        cell.wall_seconds = local.wall_seconds;
        cell.completed_by = "local";
        log(cell_name(i) + " completed in-process (attempt " + std::to_string(cell.attempts) +
            ")");
      }
      if (interrupted) break;
    }
  }

  // Campaign complete (or interrupted): release the fleet, stop accepting.
  for (auto& w : workers) {
    if (!w->registered || w->dead) continue;
    try {
      w->channel->send(encode(
          Message{Shutdown{interrupted ? "campaign interrupted" : "campaign complete"}}));
    } catch (const NetError&) {
    }
  }
  workers.clear();
  listener_.close();

  // Deterministic merge: cell i of the result is grid cell i, whichever
  // worker produced it and in whatever order reports arrived. On interrupt
  // only completed cells merge (grid_index keeps their identity).
  core::CampaignResult result;
  result.split.campaign_workers = std::max(1, peak_workers);
  result.split.experiment_workers = experiment_workers;
  result.batch_width = options_.batch_width > 0 ? options_.batch_width
                                                : core::Checker::kAutoBatchWidth;
  // Echo the checkpoint config the cells ran with, exactly as the
  // single-process runner does — a merged report must describe its own
  // provenance identically or the masked-diff identity breaks on the
  // checkpoint keys (which the distributed mask deliberately keeps).
  result.checkpoints_enabled = options_.checkpoints.enabled;
  result.checkpoint_trees = options_.checkpoints.enabled && options_.checkpoints.trees;
  result.checkpoint_budget_bytes = options_.checkpoints.byte_budget;
  result.interrupted = interrupted;
  result.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].done) continue;
    core::CampaignCellResult out;
    out.spec = grid_[i];
    out.report = std::move(cells[i].report);
    out.wall_seconds = cells[i].wall_seconds;
    out.attempts = cells[i].attempts;
    out.completed_by = cells[i].completed_by;
    out.reassigned_from = std::move(cells[i].reassigned_from);
    out.grid_index = static_cast<int>(i);
    result.cells.push_back(std::move(out));
  }
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace avis::net
