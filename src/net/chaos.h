// Deterministic network fault injection for the campaign protocol
// (docs/DISTRIBUTED.md, "Chaos testing").
//
// The same in-situ discipline the checker applies to firmware sensors is
// applied to our own transport: a ChaosPolicy sits in front of a
// FrameChannel's sends and decides, per outbound frame, whether the frame
// passes, is dropped, delayed, truncated mid-write, duplicated, or whether
// the connection is severed outright. Decisions are a pure function of
// (seed, stream, frame ordinal) — each frame draws from its own derived
// RNG, so the schedule for frame k of connection s never depends on what
// the peer did or how many bytes earlier frames carried. Same seed, same
// event trace; that determinism is what lets tests sweep the
// coordinator/worker pair through scripted fault schedules instead of
// relying on SIGKILL timing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace avis::net {

enum class ChaosAction { kPass, kDrop, kDelay, kTruncate, kDuplicate, kSever };

inline const char* chaos_action_name(ChaosAction action) {
  switch (action) {
    case ChaosAction::kPass: return "pass";
    case ChaosAction::kDrop: return "drop";
    case ChaosAction::kDelay: return "delay";
    case ChaosAction::kTruncate: return "truncate";
    case ChaosAction::kDuplicate: return "duplicate";
    case ChaosAction::kSever: return "sever";
  }
  return "?";
}

// One decision. frame is the 0-based outbound frame ordinal on this stream.
struct ChaosEvent {
  std::uint64_t frame = 0;
  ChaosAction action = ChaosAction::kPass;
  int delay_ms = 0;           // kDelay: how long the frame sits "in flight"
  std::size_t keep_bytes = 0; // kTruncate: framed bytes shipped before the cut

  bool operator==(const ChaosEvent&) const = default;
};

// Event mix. seed 0 means chaos is off (the CLI default); the probabilities
// are per-frame and deliberately mild so a seeded campaign still completes —
// the robustness machinery (reassignment, reconnection, degraded mode) is
// what absorbs the injected faults.
struct ChaosConfig {
  std::uint64_t seed = 0;
  double drop = 0.05;
  double delay = 0.05;
  double truncate = 0.02;
  double duplicate = 0.05;
  int delay_max_ms = 25;
  // Cut the connection once this many frames have been sent (0 = never).
  // The scripted analogue of SIGKILLing a worker mid-cell.
  std::uint64_t sever_after_frames = 0;

  bool enabled() const { return seed != 0; }
};

class ChaosPolicy {
 public:
  // Seeded mode: decisions derive from (config.seed, stream, frame). The
  // stream distinguishes connections of one process (reconnect attempts,
  // multiple accepted workers) so they do not replay each other's schedule.
  ChaosPolicy(const ChaosConfig& config, std::uint64_t stream)
      : config_(config), stream_(stream) {}

  // Scripted mode (tests): the k-th send executes script[k] verbatim;
  // frames past the script pass untouched.
  explicit ChaosPolicy(std::vector<ChaosEvent> script)
      : scripted_(true), script_(std::move(script)) {}

  // Decision for the next outbound frame of framed_bytes total wire bytes
  // (4-byte length prefix + payload). Appends the decision to trace().
  ChaosEvent next(std::size_t framed_bytes) {
    ChaosEvent event;
    event.frame = frame_;
    if (scripted_) {
      if (frame_ < script_.size()) {
        event = script_[frame_];
        event.frame = frame_;
      }
    } else if (config_.sever_after_frames > 0 && frame_ >= config_.sever_after_frames) {
      event.action = ChaosAction::kSever;
    } else {
      // A fresh RNG per frame keeps the decision a pure function of
      // (seed, stream, frame): no draw-count coupling between frames.
      util::Rng rng(p_mix(config_.seed, stream_, frame_));
      const double roll = rng.next_double();
      double edge = config_.drop;
      if (roll < edge) {
        event.action = ChaosAction::kDrop;
      } else if (roll < (edge += config_.delay)) {
        event.action = ChaosAction::kDelay;
        event.delay_ms =
            1 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(std::max(config_.delay_max_ms, 1))));
      } else if (roll < (edge += config_.truncate)) {
        event.action = ChaosAction::kTruncate;
        // Always strictly short of the full frame: the peer sees a torn
        // write, exactly what a crash mid-send looks like on the wire.
        event.keep_bytes = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(std::max<std::size_t>(framed_bytes, 1))));
      } else if (roll < (edge += config_.duplicate)) {
        event.action = ChaosAction::kDuplicate;
      }
    }
    ++frame_;
    trace_.push_back(event);
    return event;
  }

  // Every decision made so far, in frame order: the "event trace" the
  // determinism contract is stated over.
  const std::vector<ChaosEvent>& trace() const { return trace_; }

 private:
  static std::uint64_t p_mix(std::uint64_t seed, std::uint64_t stream, std::uint64_t frame) {
    // SplitMix-style finalizer over the three coordinates; matches the
    // quality bar of util::Rng's own generator.
    std::uint64_t z = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^ (frame * 0xbf58476d1ce4e5b9ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  ChaosConfig config_;
  std::uint64_t stream_ = 0;
  bool scripted_ = false;
  std::vector<ChaosEvent> script_;
  std::uint64_t frame_ = 0;
  std::vector<ChaosEvent> trace_;
};

}  // namespace avis::net
