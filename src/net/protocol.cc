#include "net/protocol.h"

#include <sstream>

#include "util/json.h"

namespace avis::net {

namespace {

std::string p_encode_hello(const Hello& m) {
  std::ostringstream os;
  os << "{\"type\": \"hello\", \"protocol\": " << m.protocol << ", \"build\": \""
     << util::json_escape(m.build) << "\", \"worker_id\": \"" << util::json_escape(m.worker_id)
     << "\", \"auth\": \"" << util::json_escape(m.auth) << "\"}";
  return os.str();
}

std::string p_encode_hello_ack(const HelloAck& m) {
  std::ostringstream os;
  os << "{\"type\": \"hello_ack\", \"ok\": " << (m.ok ? "true" : "false") << ", \"reason\": \""
     << util::json_escape(m.reason) << "\", \"build\": \"" << util::json_escape(m.build)
     << "\"}";
  return os.str();
}

std::string p_encode_assign(const AssignCell& m) {
  std::ostringstream os;
  os << "{\n  \"type\": \"assign_cell\",\n  \"cell\": " << m.cell
     << ",\n  \"attempt\": " << m.attempt << ",\n  \"deadline_ms\": " << m.deadline_ms
     << ",\n  \"label\": \"" << util::json_escape(m.label)
     << "\",\n  \"checkpoints\": {\"enabled\": " << (m.checkpoints.enabled ? "true" : "false")
     << ", \"trees\": " << (m.checkpoints.trees ? "true" : "false")
     << ", \"interval_ms\": " << m.checkpoints.interval_ms
     << ", \"tree_transition_horizon\": " << m.checkpoints.tree_transition_horizon
     << ", \"byte_budget\": " << m.checkpoints.byte_budget
     << "},\n  \"scenario\": "
     << m.scenario.to_json(2).substr(2)  // strip the leading pad: key supplies it
     << "\n}";
  return os.str();
}

std::string p_encode_cell_report(const CellReport& m) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n  \"type\": \"cell_report\",\n  \"cell\": " << m.cell << ",\n  \"ok\": "
     << (m.ok ? "true" : "false") << ",\n  \"error\": \"" << util::json_escape(m.error)
     << "\",\n  \"worker_id\": \"" << util::json_escape(m.worker_id)
     << "\",\n  \"wall_seconds\": " << m.wall_seconds << ",\n  \"report\": "
     << core::checker_report_json(m.report, 2).substr(2) << "\n}";
  return os.str();
}

Hello p_decode_hello(const util::Json& json) {
  Hello m;
  m.protocol = static_cast<int>(json.at("protocol").as_int64());
  m.build = json.at("build").as_string();
  m.worker_id = json.at("worker_id").as_string();
  // Optional so a v2 Hello still decodes far enough for the version-refusal
  // nack to name the mismatch instead of dying on a missing key.
  m.auth = json.get_string("auth", "");
  return m;
}

HelloAck p_decode_hello_ack(const util::Json& json) {
  HelloAck m;
  m.ok = json.at("ok").as_bool();
  m.reason = json.get_string("reason", "");
  m.build = json.get_string("build", "");
  return m;
}

AssignCell p_decode_assign(const util::Json& json) {
  AssignCell m;
  m.cell = static_cast<int>(json.at("cell").as_int64());
  m.attempt = static_cast<int>(json.get_int64("attempt", 1));
  m.deadline_ms = json.get_int64("deadline_ms", 0);
  m.label = json.get_string("label", "");
  const util::Json& cp = json.at("checkpoints");
  m.checkpoints.enabled = cp.at("enabled").as_bool();
  m.checkpoints.trees = cp.at("trees").as_bool();
  m.checkpoints.interval_ms = cp.at("interval_ms").as_int64();
  m.checkpoints.tree_transition_horizon =
      static_cast<int>(cp.at("tree_transition_horizon").as_int64());
  m.checkpoints.byte_budget =
      static_cast<std::size_t>(cp.at("byte_budget").as_int64());
  m.scenario = core::ScenarioSpec::from_json(json.at("scenario"));
  return m;
}

CellReport p_decode_cell_report(const util::Json& json) {
  CellReport m;
  m.cell = static_cast<int>(json.at("cell").as_int64());
  m.ok = json.at("ok").as_bool();
  m.error = json.get_string("error", "");
  m.worker_id = json.get_string("worker_id", "");
  if (const util::Json* wall = json.find("wall_seconds")) m.wall_seconds = wall->as_double();
  if (m.ok) m.report = core::checker_report_from_json(json.at("report"));
  return m;
}

}  // namespace

std::string encode(const Message& message) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return p_encode_hello(m);
        if constexpr (std::is_same_v<T, HelloAck>) return p_encode_hello_ack(m);
        if constexpr (std::is_same_v<T, AssignCell>) return p_encode_assign(m);
        if constexpr (std::is_same_v<T, CellReport>) return p_encode_cell_report(m);
        if constexpr (std::is_same_v<T, Heartbeat>) return "{\"type\": \"heartbeat\"}";
        if constexpr (std::is_same_v<T, Shutdown>) {
          return "{\"type\": \"shutdown\", \"reason\": \"" + util::json_escape(m.reason) +
                 "\"}";
        }
      },
      message);
}

Message decode(std::string_view payload) {
  try {
    const util::Json json = util::Json::parse(payload);
    const std::string& type = json.at("type").as_string();
    if (type == "hello") return p_decode_hello(json);
    if (type == "hello_ack") return p_decode_hello_ack(json);
    if (type == "assign_cell") return p_decode_assign(json);
    if (type == "cell_report") return p_decode_cell_report(json);
    if (type == "heartbeat") return Heartbeat{};
    if (type == "shutdown") return Shutdown{json.get_string("reason", "")};
    throw ProtocolError("unknown message type: " + type);
  } catch (const util::JsonError& err) {
    // Malformed frames (truncated JSON, wrong field types, out-of-range
    // enums) all funnel into the one error the transport layer handles.
    throw ProtocolError(std::string("malformed frame: ") + err.what());
  }
}

}  // namespace avis::net
