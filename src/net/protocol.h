// Message types for the distributed campaign service (docs/DISTRIBUTED.md).
//
// The wire format is deliberately the repo's existing interchange formats:
// frames carry JSON (util/json.h) because PR 4 made ScenarioSpec JSON the
// cell wire format and the campaign report JSON the aggregation format —
// this header just gives those documents an envelope. Every message has a
// "type" tag; unknown tags, missing fields, and out-of-range values decode
// to a ProtocolError, which both ends treat as a faulty peer (close and, on
// the coordinator, reassign) rather than undefined behavior.
//
//   worker -> coordinator: Hello, Heartbeat, CellReport
//   coordinator -> worker: HelloAck, AssignCell, Shutdown
//
// A version handshake guards the pairing: Hello carries the protocol
// version and build string, and the coordinator refuses (HelloAck.ok=false)
// any worker whose protocol version differs — mismatched binaries must
// refuse to pair instead of misparsing each other's frames.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "core/campaign.h"
#include "core/scenario.h"
#include "net/socket.h"

namespace avis::net {

// Bumped on any frame-shape change. Mismatch => refuse to pair.
// v2: AssignCell carries the campaign's checkpoint configuration so worker
// cells run with the coordinator's knobs (--no-checkpoints,
// --no-checkpoint-trees, --checkpoint-budget-mb) instead of local defaults,
// and CellReport's CheckerReport gained checkpoint_hits_by_level /
// checkpoint_tree_evicted / stalled_runs.
// v3: Hello carries the shared-secret auth token (--auth-token); the
// coordinator refuses registration on mismatch.
inline constexpr int kProtocolVersion = 3;
// Human-readable build identity, shown by --version and carried in Hello.
inline constexpr const char* kBuildVersion = "avis-campaign 0.6";

class ProtocolError : public NetError {
 public:
  using NetError::NetError;
};

struct Hello {
  int protocol = kProtocolVersion;
  std::string build = kBuildVersion;
  std::string worker_id;
  // Shared-secret auth token (docs/DISTRIBUTED.md "Trust model"). Both
  // sides default to empty, which still compares equal — the token is
  // opt-in for non-loopback deployments, not a mandatory credential.
  std::string auth;
};

struct HelloAck {
  bool ok = true;
  std::string reason;  // set when ok == false (version mismatch, ...)
  std::string build = kBuildVersion;
};

struct AssignCell {
  int cell = 0;     // grid index; echoed back in CellReport
  int attempt = 1;  // 1-based assignment count (provenance)
  std::int64_t deadline_ms = 0;  // wall-clock budget the coordinator enforces
  std::string label;             // display label override, usually empty
  core::ScenarioSpec scenario;
  // The coordinator's checkpoint knobs. Reports are bit-identical with or
  // without checkpoints, but the campaign JSON echoes the configuration, so
  // a worker running different knobs than the coordinator would produce a
  // report that lies about how it was computed.
  core::CheckpointConfig checkpoints;
};

struct CellReport {
  int cell = 0;
  bool ok = true;
  std::string error;  // set when ok == false: the cell threw on the worker
  std::string worker_id;
  double wall_seconds = 0.0;
  core::CheckerReport report;
};

struct Heartbeat {};

struct Shutdown {
  std::string reason;
};

using Message = std::variant<Hello, HelloAck, AssignCell, CellReport, Heartbeat, Shutdown>;

// Constant-time equality for the Hello auth token: the comparison cost must
// not depend on how many leading bytes match, or the handshake becomes a
// timing oracle that leaks the token byte by byte. Length still leaks (it
// always does with variable-length secrets); the scan length depends only
// on the attacker-supplied side.
inline bool constant_time_equal(std::string_view candidate, std::string_view secret) {
  unsigned char diff = candidate.size() == secret.size() ? 0 : 1;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    const unsigned char expected =
        secret.empty() ? 0 : static_cast<unsigned char>(secret[i % secret.size()]);
    diff |= static_cast<unsigned char>(candidate[i]) ^ expected;
  }
  return diff == 0;
}

// JSON round trip for one frame payload. decode throws ProtocolError on
// anything malformed (including JSON errors from a truncated or hostile
// payload — parsing runs under util::JsonLimits).
std::string encode(const Message& message);
Message decode(std::string_view payload);

}  // namespace avis::net
