// Minimal POSIX TCP wrappers for the distributed campaign service
// (docs/DISTRIBUTED.md). Deliberately tiny: RAII sockets, a listener with
// poll()-based accept timeouts, and bounded-time send/recv — just enough for
// the coordinator's single-threaded event loop and the worker's framed
// connection, with every failure surfacing as a typed exception instead of
// an errno the campaign layer would have to interpret.
#pragma once

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

namespace avis::net {

class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The peer closed (or reset) the connection. Distinct from NetError because
// the coordinator treats it as a dead worker — an expected fault, not a
// local programming error.
class PeerClosed : public NetError {
 public:
  using NetError::NetError;
};

inline std::string p_errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  // Half-close both directions but keep the fd open. The chaos layer
  // (net/chaos.h) uses this to simulate a severed link: unlike close(),
  // the fd stays valid so an event loop polling it sees EOF (-> PeerClosed)
  // instead of silently skipping a negative fd forever.
  void shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  // Small frames should not sit in Nagle's buffer: heartbeats and cell
  // assignments are latency-sensitive next to multi-second cell runs.
  void set_nodelay() {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  // Writes the whole buffer or throws. MSG_NOSIGNAL: a worker whose
  // coordinator vanished gets a PeerClosed, not a process-killing SIGPIPE.
  void send_all(std::span<const std::uint8_t> data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) throw PeerClosed("peer closed connection");
        throw NetError(p_errno_message("send"));
      }
      data = data.subspan(static_cast<std::size_t>(n));
    }
  }

  // Reads whatever is available within timeout_ms: returns the byte count
  // (> 0), or 0 if the timeout expired with nothing to read. An orderly or
  // reset peer shutdown throws PeerClosed.
  std::size_t recv_some(std::span<std::uint8_t> buffer, int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    while (true) {
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw NetError(p_errno_message("poll"));
      }
      if (ready == 0) return 0;
      break;
    }
    while (true) {
      const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) throw PeerClosed("peer reset connection");
        throw NetError(p_errno_message("recv"));
      }
      if (n == 0) throw PeerClosed("peer closed connection");
      return static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_ = -1;
};

// A listening TCP socket. Binds on construction (port 0 = kernel-assigned;
// read it back through port()), accepts with a poll() timeout. The bind
// address is explicit because the frame protocol is unauthenticated
// (docs/DISTRIBUTED.md "Trust model"): callers choose how far to expose it,
// and the default is loopback-only.
class Listener {
 public:
  explicit Listener(std::uint16_t port, const std::string& bind_address = "127.0.0.1") {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
      throw NetError("invalid bind address '" + bind_address + "' (expected IPv4 dotted quad)");
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw NetError(p_errno_message("socket"));
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string message = p_errno_message("bind");
      ::close(fd_);
      fd_ = -1;
      throw NetError(message);
    }
    if (::listen(fd_, 16) < 0) {
      const std::string message = p_errno_message("listen");
      ::close(fd_);
      fd_ = -1;
      throw NetError(message);
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
  }

  ~Listener() { close(); }
  Listener(Listener&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  // One accepted connection, or nullopt if none arrived within timeout_ms.
  std::optional<Socket> accept(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    while (true) {
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw NetError(p_errno_message("poll"));
      }
      if (ready == 0) return std::nullopt;
      break;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // The connecting peer can vanish between poll and accept; that is the
      // peer's failure, not ours.
      if (errno == ECONNABORTED || errno == EINTR || errno == EAGAIN) return std::nullopt;
      throw NetError(p_errno_message("accept"));
    }
    Socket socket(fd);
    socket.set_nodelay();
    return socket;
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Resolve and connect; throws NetError naming the endpoint on failure.
inline Socket connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &result);
  if (rc != 0) {
    throw NetError("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  int last_errno = 0;
  for (addrinfo* entry = result; entry != nullptr; entry = entry->ai_next) {
    const int fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) {
      ::freeaddrinfo(result);
      Socket socket(fd);
      socket.set_nodelay();
      return socket;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(result);
  errno = last_errno;
  throw NetError(p_errno_message(("connect to " + host + ":" + std::to_string(port)).c_str()));
}

}  // namespace avis::net
