#include "net/worker.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <thread>
#include <variant>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/concurrency.h"

namespace avis::net {

namespace {

using Clock = std::chrono::steady_clock;

// Outcome of one connected session.
enum class SessionEnd {
  kShutdown,   // coordinator said Shutdown: campaign over
  kDisconnect  // transport died: reconnect and re-register
};

// Handshake response wait. Generous: the coordinator answers a Hello within
// one event-loop tick unless it is mid-degraded-completion.
constexpr int kAckTimeoutMs = 10000;

SessionEnd p_run_session(const WorkerOptions& options, FrameChannel& channel,
                         const std::function<void(const std::string&)>& log) {
  Hello hello;
  hello.worker_id = options.worker_id;
  hello.auth = options.auth_token;
  channel.send(encode(Message{hello}));

  // The ack must be the first frame; anything else is a protocol breach.
  const auto ack_deadline = Clock::now() + std::chrono::milliseconds(kAckTimeoutMs);
  std::optional<std::string> first;
  while (!(first = channel.poll_frame(50))) {
    if (Clock::now() > ack_deadline) throw NetError("no HelloAck within handshake window");
  }
  const Message ack_message = decode(*first);
  const HelloAck* ack = std::get_if<HelloAck>(&ack_message);
  if (ack == nullptr) throw ProtocolError("expected HelloAck, got a different frame");
  if (!ack->ok) {
    // Refused registration (protocol version skew): reconnecting with the
    // same binary can never succeed, so this is fatal, not retryable.
    throw ProtocolError("coordinator refused registration: " + ack->reason);
  }
  log("registered with coordinator (" + ack->build + ")");

  // Heartbeats ride a side thread so liveness survives multi-second cell
  // runs; FrameChannel::send serializes the shared socket. A send failure
  // just stops the thread — the main loop sees the same dead socket on its
  // next poll and handles reconnection.
  std::atomic<bool> heartbeat_ok{true};
  std::jthread heartbeat([&](std::stop_token stop) {
    const auto interval = std::chrono::milliseconds(options.heartbeat_interval_ms);
    auto next = Clock::now() + interval;
    while (!stop.stop_requested()) {
      if (Clock::now() >= next) {
        try {
          channel.send(encode(Message{Heartbeat{}}));
        } catch (const NetError&) {
          heartbeat_ok.store(false);
          return;
        }
        next = Clock::now() + interval;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const int experiment_workers = options.experiment_workers > 0
                                     ? options.experiment_workers
                                     : util::default_worker_count();

  while (true) {
    if (!heartbeat_ok.load()) return SessionEnd::kDisconnect;
    std::optional<std::string> payload;
    try {
      payload = channel.poll_frame(100);
    } catch (const NetError&) {
      return SessionEnd::kDisconnect;
    }
    if (!payload) continue;

    const Message message = decode(*payload);
    if (const AssignCell* assign = std::get_if<AssignCell>(&message)) {
      log("assigned cell " + std::to_string(assign->cell) + " (attempt " +
          std::to_string(assign->attempt) + ", deadline " + std::to_string(assign->deadline_ms) +
          " ms)");
      CellReport report;
      report.cell = assign->cell;
      report.worker_id = options.worker_id;
      const auto cell_start = Clock::now();
      try {
        core::CampaignCellSpec spec;
        spec.scenario = assign->scenario;
        spec.label = assign->label;
        core::CampaignCellResult result = core::run_cell(spec, experiment_workers,
                                                         assign->checkpoints,
                                                         options.batch_width);
        report.ok = true;
        report.report = std::move(result.report);
      } catch (const std::exception& err) {
        // The cell failed locally (bad registry name, resource exhaustion);
        // report it and stay available — the coordinator decides whether to
        // retry elsewhere or abort.
        report.ok = false;
        report.error = err.what();
      }
      report.wall_seconds =
          std::chrono::duration<double>(Clock::now() - cell_start).count();
      log("cell " + std::to_string(assign->cell) + (report.ok ? " done" : " FAILED") + " in " +
          std::to_string(report.wall_seconds) + " s");
      try {
        channel.send(encode(Message{report}));
      } catch (const NetError&) {
        return SessionEnd::kDisconnect;
      }
    } else if (const Shutdown* shutdown = std::get_if<Shutdown>(&message)) {
      log("shutdown: " + shutdown->reason);
      return SessionEnd::kShutdown;
    } else {
      throw ProtocolError("unexpected frame from coordinator");
    }
  }
}

}  // namespace

bool run_worker(const WorkerOptions& options) {
  const auto log = [&](const std::string& line) {
    if (options.log != nullptr) {
      *options.log << "[worker" << (options.worker_id.empty() ? "" : " " + options.worker_id)
                   << "] " << line << std::endl;
    }
  };

  int consecutive_failures = 0;
  std::uint64_t connection_ordinal = 0;
  while (true) {
    try {
      FrameChannel channel(connect_to(options.host, options.port));
      if (options.chaos.enabled()) {
        channel.set_chaos(std::make_unique<ChaosPolicy>(options.chaos, connection_ordinal));
      }
      ++connection_ordinal;
      const SessionEnd end = p_run_session(options, channel, log);
      if (end == SessionEnd::kShutdown) return true;
      consecutive_failures = 0;  // the session registered; the fleet lives
      log("connection lost; reconnecting");
    } catch (const ProtocolError&) {
      throw;  // refused handshake or corrupt coordinator: not retryable
    } catch (const NetError& err) {
      ++consecutive_failures;
      log(std::string("connection attempt failed (") + err.what() + "), " +
          std::to_string(consecutive_failures) + "/" +
          std::to_string(options.reconnect_attempts));
      if (consecutive_failures >= options.reconnect_attempts) {
        log("coordinator unreachable; giving up");
        return false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.reconnect_delay_ms));
  }
}

}  // namespace avis::net
