// Distributed campaign coordinator (docs/DISTRIBUTED.md).
//
// Expands a ScenarioGrid into cells and shards them across worker processes
// connected over TCP, one in-flight cell per worker, merging per-cell
// reports in deterministic grid order into a CampaignResult whose JSON is
// byte-identical (modulo wall-clock and provenance fields) to a
// single-process CampaignRunner::run of the same grid — cells are pure
// functions of their spec, so re-running one on a different host is safe.
//
// Robustness is the contract, not an afterthought:
//   - liveness: workers heartbeat; silence past the miss threshold (or a
//     closed socket) marks the worker dead and requeues its in-flight cell;
//   - deadlines: every assignment carries a wall-clock deadline derived
//     from the cell's simulated budget; a worker that blows it is treated
//     as hung, disconnected, and its cell reassigned;
//   - retry/backoff: reassignment waits out a capped exponential backoff,
//     and a cell that fails max_attempts assignments aborts the campaign
//     with CampaignAborted naming the cell (a poisoned cell must fail
//     loudly, not loop forever);
//   - re-registration: a worker that reconnects is simply a new worker;
//   - degraded mode: if every worker dies (or none ever connects), the
//     coordinator finishes the remaining cells in-process, so the campaign
//     always completes with a full report.
// Per-cell attempts / reassigned_from / completed_by provenance lands in
// the report JSON (core::CampaignCellResult).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "net/chaos.h"
#include "net/socket.h"

namespace avis::net {

// A cell exhausted its assignment attempts; the campaign cannot produce a
// complete report and fails loudly instead of retrying forever.
//
// Deliberately NOT a NetError: the abort can be thrown from inside the
// coordinator's frame-handling path (a live worker's failed CellReport hits
// the retry cap), and the event loop converts NetError into "this worker is
// dead" — an abort caught there would tear down the fleet and then spin on
// a cell that can never complete.
class CampaignAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CoordinatorOptions {
  std::uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  // The protocol is unauthenticated, so exposure is an explicit choice:
  // loopback by default; "0.0.0.0" (--bind) opens the trusted-network
  // multi-host mode described in docs/DISTRIBUTED.md "Trust model".
  std::string bind_address = "127.0.0.1";

  // Liveness: workers send Heartbeat every heartbeat_interval_ms; a worker
  // silent for interval * miss_threshold is dead. The interval is also
  // handed to workers implicitly (both ends default it); the threshold is
  // generous because a worker's heartbeat thread shares the socket with
  // multi-kilobyte report sends.
  int heartbeat_interval_ms = 250;
  int heartbeat_miss_threshold = 8;

  // Scheduling robustness.
  int max_attempts = 3;        // assignment attempts per cell before aborting
  int backoff_initial_ms = 250;  // reassignment backoff, doubled per attempt
  int backoff_cap_ms = 5000;
  // Wall-clock deadline per assignment. 0 derives it from the cell's
  // simulated budget: max(30 s, budget_ms / 10) — simulation runs much
  // faster than real time, so a worker that has not finished a cell within
  // a tenth of its simulated budget is hung, not slow.
  std::int64_t cell_deadline_ms = 0;

  // Degraded completion: with no live worker for degraded_after_ms (and
  // none mid-handshake), remaining cells run in-process so the campaign
  // still completes. Disable to fail fast instead (tests use this to pin
  // the retry-cap path).
  bool allow_degraded = true;
  int degraded_after_ms = 2000;

  // Experiment pool width and checkpoint config for degraded in-process
  // cells (remote workers choose their own; reports are bit-identical
  // either way).
  int experiment_workers = 0;  // 0 = util::default_worker_count()
  int batch_width = 0;         // lockstep simulation width; 0 = auto
  core::CheckpointConfig checkpoints;

  // Shared-secret auth (docs/DISTRIBUTED.md "Trust model"): a worker whose
  // Hello.auth does not match (constant-time compare) is refused at the
  // handshake. Empty (the default) matches only workers sending no token.
  std::string auth_token;

  // Crash safety (core/journal.h): with `journal` set, every completed cell
  // is appended + fsync'd on CellReport receipt — before the coordinator
  // acts on the completion. Cells listed in `resume` are pre-marked done
  // with their journaled reports and never assigned. Borrowed, not owned.
  core::CampaignJournal* journal = nullptr;
  const std::vector<core::JournalCellRecord>* resume = nullptr;

  // Cooperative interrupt (SIGINT/SIGTERM), polled once per event-loop
  // tick: stop assigning, shut the fleet down, return a partial result with
  // interrupted = true.
  std::function<bool()> should_stop;

  // Deterministic fault injection on every accepted connection's send path
  // (net/chaos.h; stream = accept ordinal). Coordinator-side outbound
  // chaos; workers take their own ChaosConfig for the other direction.
  ChaosConfig chaos;

  std::ostream* log = nullptr;  // progress/diagnostic lines; nullptr = quiet
};

class CampaignCoordinator {
 public:
  // Binds the listening socket immediately (so port() is valid before
  // run()), validates that every cell is a pure registry-named scenario —
  // cells pinning in-process factories cannot cross a process boundary.
  CampaignCoordinator(std::vector<core::CampaignCellSpec> grid, CoordinatorOptions options);

  std::uint16_t port() const { return listener_.port(); }

  // Blocks until every cell has a report (returning the merged result in
  // grid order) or a cell exhausts max_attempts (throwing CampaignAborted).
  // Call once.
  core::CampaignResult run();

 private:
  struct CellState;
  struct WorkerConn;

  CoordinatorOptions options_;
  std::vector<core::CampaignCellSpec> grid_;
  Listener listener_;
};

}  // namespace avis::net
