#include "study/bug_study.h"

#include <cstdio>

namespace avis::study {

namespace {

// One cell of the classification table: how many reports share this exact
// (root cause, repro condition, symptom) combination. The cell counts were
// chosen so every marginal matches the statistics in paper §III:
//
//   totals: semantic 146 (68%), sensor 44 (20%), memory 13, other 12 = 215
//   crash bugs: semantic 7, sensor 15, memory 9, other 6 = 37
//     -> sensor share of crashes 15/37 = 40.5%           (Finding 1)
//   sensor repro: default 21 (47.7%), env 15, env+hw 8   (Finding 2)
//   sensor symptoms: serious 15 (34.1%), transient 14, none 15 (Finding 3)
//   semantic: 90% asymptomatic (131 of 146)
struct Cell {
  RootCause cause;
  ReproCondition repro;
  Symptom symptom;
  int count;
};

constexpr Cell kCells[] = {
    // Semantic: mostly asymptomatic, easy to reproduce (logic errors).
    {RootCause::kSemantic, ReproCondition::kDefaultSettings, Symptom::kNoSymptoms, 98},
    {RootCause::kSemantic, ReproCondition::kCustomEnv, Symptom::kNoSymptoms, 24},
    {RootCause::kSemantic, ReproCondition::kCustomEnvAndHw, Symptom::kNoSymptoms, 9},
    {RootCause::kSemantic, ReproCondition::kDefaultSettings, Symptom::kTransient, 5},
    {RootCause::kSemantic, ReproCondition::kCustomEnv, Symptom::kTransient, 3},
    {RootCause::kSemantic, ReproCondition::kDefaultSettings, Symptom::kCrashOrFlyAway, 4},
    {RootCause::kSemantic, ReproCondition::kCustomEnv, Symptom::kCrashOrFlyAway, 3},
    // Sensor: 44 total; 21 default-settings, 15 serious.
    {RootCause::kSensor, ReproCondition::kDefaultSettings, Symptom::kCrashOrFlyAway, 8},
    {RootCause::kSensor, ReproCondition::kDefaultSettings, Symptom::kTransient, 7},
    {RootCause::kSensor, ReproCondition::kDefaultSettings, Symptom::kNoSymptoms, 6},
    {RootCause::kSensor, ReproCondition::kCustomEnv, Symptom::kCrashOrFlyAway, 5},
    {RootCause::kSensor, ReproCondition::kCustomEnv, Symptom::kTransient, 5},
    {RootCause::kSensor, ReproCondition::kCustomEnv, Symptom::kNoSymptoms, 5},
    {RootCause::kSensor, ReproCondition::kCustomEnvAndHw, Symptom::kCrashOrFlyAway, 2},
    {RootCause::kSensor, ReproCondition::kCustomEnvAndHw, Symptom::kTransient, 2},
    {RootCause::kSensor, ReproCondition::kCustomEnvAndHw, Symptom::kNoSymptoms, 4},
    // Memory: crashes dominate (use-after-free, overflow).
    {RootCause::kMemory, ReproCondition::kDefaultSettings, Symptom::kCrashOrFlyAway, 6},
    {RootCause::kMemory, ReproCondition::kCustomEnvAndHw, Symptom::kCrashOrFlyAway, 3},
    {RootCause::kMemory, ReproCondition::kDefaultSettings, Symptom::kTransient, 2},
    {RootCause::kMemory, ReproCondition::kCustomEnv, Symptom::kNoSymptoms, 2},
    // Other (incl. concurrency): hard to reproduce, often serious.
    {RootCause::kOther, ReproCondition::kCustomEnv, Symptom::kCrashOrFlyAway, 4},
    {RootCause::kOther, ReproCondition::kCustomEnvAndHw, Symptom::kCrashOrFlyAway, 2},
    {RootCause::kOther, ReproCondition::kCustomEnv, Symptom::kTransient, 4},
    {RootCause::kOther, ReproCondition::kDefaultSettings, Symptom::kNoSymptoms, 2},
};

}  // namespace

std::vector<BugReport> build_corpus() {
  std::vector<BugReport> corpus;
  corpus.reserve(215);
  int serial = 0;
  for (const Cell& cell : kCells) {
    for (int i = 0; i < cell.count; ++i, ++serial) {
      BugReport report;
      // Reports alternate between the two projects and spread over the
      // study's 2016-2019 window, mirroring the roughly even split of the
      // paper's corpus (206 ArduPilot / 188 PX4 before pruning).
      report.project = serial % 2 == 0 ? Project::kArduPilot : Project::kPx4;
      report.year = 2016 + serial % 4;
      char id[32];
      std::snprintf(id, sizeof(id), "%s-%d-%04d",
                    report.project == Project::kArduPilot ? "APM" : "PX4", report.year,
                    serial);
      report.id = id;
      report.root_cause = cell.cause;
      report.repro = cell.repro;
      report.symptom = cell.symptom;
      corpus.push_back(std::move(report));
    }
  }
  return corpus;
}

StudySummary summarize(const std::vector<BugReport>& corpus) {
  StudySummary s;
  s.total = static_cast<int>(corpus.size());
  for (const auto& report : corpus) {
    s.by_root_cause[static_cast<std::size_t>(report.root_cause)] += 1;
    if (report.symptom == Symptom::kCrashOrFlyAway) {
      s.crash_by_root_cause[static_cast<std::size_t>(report.root_cause)] += 1;
    }
    if (report.root_cause == RootCause::kSensor) {
      s.sensor_by_repro[static_cast<std::size_t>(report.repro)] += 1;
      s.sensor_by_symptom[static_cast<std::size_t>(report.symptom)] += 1;
    }
  }
  return s;
}

double StudySummary::sensor_share() const {
  return total > 0 ? static_cast<double>(by_root_cause[1]) / total : 0.0;
}

double StudySummary::sensor_share_of_crashes() const {
  int crashes = 0;
  for (int c : crash_by_root_cause) crashes += c;
  return crashes > 0 ? static_cast<double>(crash_by_root_cause[1]) / crashes : 0.0;
}

double StudySummary::sensor_default_repro_share() const {
  const int sensor = by_root_cause[1];
  return sensor > 0 ? static_cast<double>(sensor_by_repro[0]) / sensor : 0.0;
}

double StudySummary::sensor_serious_share() const {
  const int sensor = by_root_cause[1];
  return sensor > 0 ? static_cast<double>(sensor_by_symptom[0]) / sensor : 0.0;
}

}  // namespace avis::study
