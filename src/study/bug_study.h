// The empirical bug study (paper §III, Figure 3).
//
// The paper reviews 394 issues filed against ArduPilot and PX4 between 2016
// and 2019, prunes to 215 analyzable bugs, and classifies them three ways:
// root cause, reproduction conditions, and symptom. The raw GitHub corpus is
// not redistributable, so this module reconstructs a synthetic corpus whose
// per-category counts match every statistic the paper reports:
//   * Finding 1 — sensor bugs are 20% of all bugs and 40% of crash bugs;
//   * Finding 2 — 47% of sensor bugs reproduce under default settings;
//   * Finding 3 — 34% of sensor bugs have serious symptoms.
// The fig3_bug_study bench aggregates this corpus to regenerate Figure 3.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace avis::study {

enum class RootCause { kSemantic, kSensor, kMemory, kOther };
enum class ReproCondition { kDefaultSettings, kCustomEnv, kCustomEnvAndHw };
enum class Symptom { kCrashOrFlyAway, kTransient, kNoSymptoms };
enum class Project { kArduPilot, kPx4 };

inline const char* to_string(RootCause c) {
  switch (c) {
    case RootCause::kSemantic: return "Semantic";
    case RootCause::kSensor: return "Sensor";
    case RootCause::kMemory: return "Memory";
    case RootCause::kOther: return "Other";
  }
  return "?";
}

inline const char* to_string(ReproCondition c) {
  switch (c) {
    case ReproCondition::kDefaultSettings: return "Default settings";
    case ReproCondition::kCustomEnv: return "Custom env";
    case ReproCondition::kCustomEnvAndHw: return "Custom env & hw";
  }
  return "?";
}

inline const char* to_string(Symptom s) {
  switch (s) {
    case Symptom::kCrashOrFlyAway: return "Crash/Fly away";
    case Symptom::kTransient: return "Transient";
    case Symptom::kNoSymptoms: return "No symptoms";
  }
  return "?";
}

struct BugReport {
  std::string id;       // e.g. "APM-2016-0042"
  Project project;
  int year;
  RootCause root_cause;
  ReproCondition repro;
  Symptom symptom;
};

// The 215-report corpus (after the paper's pruning).
std::vector<BugReport> build_corpus();

// Aggregations for Figure 3 and Findings 1-3.
struct StudySummary {
  int total = 0;
  std::array<int, 4> by_root_cause{};       // Fig. 3(A), first series
  std::array<int, 4> crash_by_root_cause{}; // Fig. 3(A), crash-only series
  std::array<int, 3> sensor_by_repro{};     // Fig. 3(B)
  std::array<int, 3> sensor_by_symptom{};   // Fig. 3(C)

  double sensor_share() const;               // Finding 1: ~20%
  double sensor_share_of_crashes() const;    // Finding 1: ~40%
  double sensor_default_repro_share() const; // Finding 2: ~47%
  double sensor_serious_share() const;       // Finding 3: ~34%
};

StudySummary summarize(const std::vector<BugReport>& corpus);

}  // namespace avis::study
