// Batched lockstep sensor lanes: the mutable state of every SensorSuite
// instance for a batch of experiments, stored structure-of-arrays and read
// through the same measurement statics the scalar instances use.
//
// One InstanceLanes block per physical sensor instance (gyro 0, gyro 1,
// baro 0, ...): each block holds, lane-major, the noise stream, the held
// sample, its refresh clock, and the latched failure — exactly the fields of
// sensors::InstanceState. The read path mirrors SensorInstance::read line
// for line (hold, refresh cadence, failure latch) and draws noise through
// the sensor's static measure(), so a lane's sample sequence — including the
// RNG stream position after every read — is bit-identical to the scalar
// suite's. That is what lets a lane diverge to the scalar path mid-run: its
// unpacked InstanceState is indistinguishable from one that lived through
// the same steps scalar.
//
// The batch path skips the hinj should-fail query that fw::SensorBus issues
// before each read: lanes only run pre-injection (core::BatchHarness
// diverges a lane at its plan's first activation), where the query provably
// returns false and has no observable effect (ScheduledDirector::should_fail
// is pure). Failure latches are carried for pack/unpack fidelity, and reads
// honor them, but a latched failure in a stepping lane means the harness
// missed a divergence — the debug assert below is the tripwire.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sensors/sensor_models.h"
#include "sim/environment.h"
#include "sim/simulator.h"
#include "sim/vehicle_state.h"
#include "util/checked.h"
#include "util/rng.h"

namespace avis::sensors {

// Lane-major mutable state of one sensor instance across the batch.
template <typename Sample>
struct InstanceLanes {
  explicit InstanceLanes(int width, sim::SimTimeMs interval)
      : interval_ms(interval),
        rng(static_cast<std::size_t>(width), util::Rng(0)),
        held(static_cast<std::size_t>(width)),
        has_sample(static_cast<std::size_t>(width), 0),
        last_sample_ms(static_cast<std::size_t>(width), 0),
        failed(static_cast<std::size_t>(width), 0) {}

  void pack(int lane, const InstanceState<Sample>& s) {
    const auto i = static_cast<std::size_t>(lane);
    rng[i].load(s.rng);
    held[i] = s.held;
    has_sample[i] = s.has_sample ? 1 : 0;
    last_sample_ms[i] = s.last_sample_ms;
    failed[i] = s.failed ? 1 : 0;
  }

  InstanceState<Sample> unpack(int lane) const {
    const auto i = static_cast<std::size_t>(lane);
    return {rng[i].save(), held[i], has_sample[i] != 0, last_sample_ms[i], failed[i] != 0};
  }

  // SensorInstance::read's hold/refresh logic; the caller supplies the
  // measurement (it differs per sensor type). Returns false for a failed
  // instance, leaving `out` untouched, exactly like the scalar driver.
  template <typename MeasureFn>
  bool read(int lane, sim::SimTimeMs now, Sample& out, MeasureFn&& measure) {
    const auto i = static_cast<std::size_t>(lane);
    if (failed[i]) {
      assert(false && "batched lane read a failed sensor: divergence was missed");
      return false;
    }
    if (!has_sample[i] || now - last_sample_ms[i] >= interval_ms) {
      held[i] = measure(rng[i]);
      last_sample_ms[i] = now;
      has_sample[i] = 1;
    }
    out = held[i];
    return true;
  }

  sim::SimTimeMs interval_ms;
  std::vector<util::Rng> rng;
  std::vector<Sample> held;
  std::vector<std::uint8_t> has_sample;
  std::vector<sim::SimTimeMs> last_sample_ms;
  std::vector<std::uint8_t> failed;
};

class SuiteBatch {
 public:
  SuiteBatch(const SuiteConfig& config, int width) : config_(config) {
    const auto interval = [](double rate_hz) {
      return static_cast<sim::SimTimeMs>(1000.0 / rate_hz);
    };
    for (int i = 0; i < config.gyroscopes; ++i)
      gyros_.emplace_back(width, interval(Gyroscope::kRateHz));
    for (int i = 0; i < config.accelerometers; ++i)
      accels_.emplace_back(width, interval(Accelerometer::kRateHz));
    for (int i = 0; i < config.barometers; ++i)
      baros_.emplace_back(width, interval(Barometer::kRateHz));
    for (int i = 0; i < config.gpses; ++i) gpses_.emplace_back(width, interval(Gps::kRateHz));
    for (int i = 0; i < config.compasses; ++i)
      compasses_.emplace_back(width, interval(Compass::kRateHz));
    for (int i = 0; i < config.batteries; ++i)
      batteries_.emplace_back(width, interval(BatterySensor::kRateHz));
  }

  const SuiteConfig& config() const { return config_; }

  // Load/extract one lane's complete suite state. The snapshot must carry
  // the same sensor complement (same contract as SensorSuite::load).
  void pack(int lane, const SuiteSnapshot& s) {
    util::expects(s.gyros.size() == gyros_.size() && s.accels.size() == accels_.size() &&
                      s.baros.size() == baros_.size() && s.gpses.size() == gpses_.size() &&
                      s.compasses.size() == compasses_.size() &&
                      s.batteries.size() == batteries_.size(),
                  "suite snapshot must match the batch's sensor complement");
    for (std::size_t i = 0; i < gyros_.size(); ++i) gyros_[i].pack(lane, s.gyros[i]);
    for (std::size_t i = 0; i < accels_.size(); ++i) accels_[i].pack(lane, s.accels[i]);
    for (std::size_t i = 0; i < baros_.size(); ++i) baros_[i].pack(lane, s.baros[i]);
    for (std::size_t i = 0; i < gpses_.size(); ++i) gpses_[i].pack(lane, s.gpses[i]);
    for (std::size_t i = 0; i < compasses_.size(); ++i) compasses_[i].pack(lane, s.compasses[i]);
    for (std::size_t i = 0; i < batteries_.size(); ++i) batteries_[i].pack(lane, s.batteries[i]);
  }

  SuiteSnapshot unpack(int lane) const {
    SuiteSnapshot s;
    for (const auto& g : gyros_) s.gyros.push_back(g.unpack(lane));
    for (const auto& a : accels_) s.accels.push_back(a.unpack(lane));
    for (const auto& b : baros_) s.baros.push_back(b.unpack(lane));
    for (const auto& g : gpses_) s.gpses.push_back(g.unpack(lane));
    for (const auto& c : compasses_) s.compasses.push_back(c.unpack(lane));
    for (const auto& b : batteries_) s.batteries.push_back(b.unpack(lane));
    return s;
  }

  // Per-type reads. The noise/bias parameters are the model defaults — the
  // scalar suite is only ever built with them (SensorSuite's constructor
  // passes none), so the batch is parameterized identically by construction.
  bool read_gyro(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                 GyroSample& out) {
    return gyros_[static_cast<std::size_t>(instance)].read(
        lane, now, out, [&](util::Rng& rng) {
          return Gyroscope::measure(truth, rng, Gyroscope::kDefaultNoise, Gyroscope::kDefaultBias);
        });
  }

  bool read_accel(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                  AccelSample& out) {
    return accels_[static_cast<std::size_t>(instance)].read(
        lane, now, out, [&](util::Rng& rng) {
          return Accelerometer::measure(truth, rng, Accelerometer::kDefaultNoise,
                                        Accelerometer::kDefaultBias);
        });
  }

  bool read_baro(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                 BaroSample& out) {
    return baros_[static_cast<std::size_t>(instance)].read(
        lane, now, out,
        [&](util::Rng& rng) { return Barometer::measure(truth, rng, Barometer::kDefaultNoise); });
  }

  bool read_gps(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                const sim::Environment& env, GpsSample& out) {
    return gpses_[static_cast<std::size_t>(instance)].read(
        lane, now, out, [&](util::Rng& rng) {
          return Gps::measure(truth, env, rng, Gps::kDefaultHNoise, Gps::kDefaultVNoise);
        });
  }

  bool read_compass(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                    CompassSample& out) {
    return compasses_[static_cast<std::size_t>(instance)].read(
        lane, now, out,
        [&](util::Rng& rng) { return Compass::measure(truth, rng, Compass::kDefaultNoise); });
  }

  bool read_battery(int instance, int lane, sim::SimTimeMs now, const sim::VehicleState& truth,
                    BatterySample& out) {
    return batteries_[static_cast<std::size_t>(instance)].read(
        lane, now, out, [&](util::Rng& rng) {
          return BatterySensor::measure(truth, rng, BatterySensor::kDefaultNoise);
        });
  }

 private:
  SuiteConfig config_;
  std::vector<InstanceLanes<GyroSample>> gyros_;
  std::vector<InstanceLanes<AccelSample>> accels_;
  std::vector<InstanceLanes<BaroSample>> baros_;
  std::vector<InstanceLanes<GpsSample>> gpses_;
  std::vector<InstanceLanes<CompassSample>> compasses_;
  std::vector<InstanceLanes<BatterySample>> batteries_;
};

}  // namespace avis::sensors
