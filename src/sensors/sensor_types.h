// Sensor taxonomy shared by the firmware, the fault-injection engine and the
// search strategies.
//
// The paper's fault model (§IV-B): any sensor *instance* can cleanly fail at
// any time — the instance stops communicating and its driver reports the
// failure — and a failed sensor never recovers within a test run. Instances
// of one type have roles (one primary, the rest backups); the sensor-
// instance-symmetry pruning policy is defined over these roles.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace avis::sensors {

enum class SensorType : std::uint8_t {
  kGyroscope = 0,
  kAccelerometer = 1,
  kBarometer = 2,
  kGps = 3,
  kCompass = 4,
  kBattery = 5,
};

inline constexpr std::array<SensorType, 6> kAllSensorTypes{
    SensorType::kGyroscope, SensorType::kAccelerometer, SensorType::kBarometer,
    SensorType::kGps,       SensorType::kCompass,       SensorType::kBattery,
};

inline const char* to_string(SensorType t) {
  switch (t) {
    case SensorType::kGyroscope: return "gyroscope";
    case SensorType::kAccelerometer: return "accelerometer";
    case SensorType::kBarometer: return "barometer";
    case SensorType::kGps: return "GPS";
    case SensorType::kCompass: return "compass";
    case SensorType::kBattery: return "battery";
  }
  return "?";
}

enum class SensorRole : std::uint8_t { kPrimary = 0, kBackup = 1 };

inline const char* to_string(SensorRole r) {
  return r == SensorRole::kPrimary ? "primary" : "backup";
}

// Identifies one physical sensor instance, e.g. "compass #1" ("B1" in the
// paper's Fig. 6). Instance 0 is always the primary.
struct SensorId {
  SensorType type = SensorType::kGyroscope;
  std::uint8_t instance = 0;

  constexpr bool operator==(const SensorId&) const = default;
  constexpr auto operator<=>(const SensorId&) const = default;

  SensorRole role() const { return instance == 0 ? SensorRole::kPrimary : SensorRole::kBackup; }

  std::string to_string() const {
    return std::string(sensors::to_string(type)) + "#" + std::to_string(instance);
  }
};

inline std::ostream& operator<<(std::ostream& os, const SensorId& id) {
  return os << id.to_string();
}

// Samples produced by each sensor family. The estimator consumes these; the
// fault-injection hook may replace a sample with a failure indication.
struct GyroSample {
  geo::Vec3 body_rates;  // rad/s
};

struct AccelSample {
  geo::Vec3 specific_force;  // m/s^2, body frame (measures thrust - gravity)
};

struct BaroSample {
  double pressure_altitude_m = 0.0;  // above home
};

struct GpsSample {
  geo::GeoPoint position;
  geo::Vec3 velocity_ned;  // m/s
  int num_satellites = 0;
  double hdop = 99.9;
  bool has_fix = false;
};

struct CompassSample {
  double heading_rad = 0.0;  // magnetic heading
};

struct BatterySample {
  double voltage = 0.0;
  double remaining_fraction = 0.0;
};

// Result status of one driver read() (paper §V-B: the libhinj call in each
// driver's read() returns the scheduler's decision).
enum class ReadStatus : std::uint8_t {
  kOk = 0,
  kFailed = 1,   // clean failure injected or latched: no data
};

}  // namespace avis::sensors

namespace std {
template <>
struct hash<avis::sensors::SensorId> {
  size_t operator()(const avis::sensors::SensorId& id) const noexcept {
    return (static_cast<size_t>(id.type) << 8) | id.instance;
  }
};
}  // namespace std
