// Synthetic sensor instances (Fig. 7, step 3: "sensors simulated").
//
// Each instance derives its reading from the simulator's ground-truth state
// plus instance-specific bias and gaussian noise, at the instance's native
// sample rate (between native samples the driver re-reads the held value,
// matching how real drivers poll device FIFOs). Noise magnitudes follow
// datasheet-level values for the 3DR Iris sensor stack; the GPS's coarse
// vertical accuracy is what makes APM-16682 (GPS-guided flight at low
// altitude) dangerous, exactly as described in the paper's Fig. 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/attitude.h"
#include "sensors/sensor_types.h"
#include "sim/environment.h"
#include "sim/simulator.h"
#include "sim/vehicle_state.h"
#include "util/checked.h"
#include "util/rng.h"

namespace avis::sensors {

// Complete mutable state of one sensor instance mid-run, for experiment
// checkpointing: the noise stream position, the held sample and its clock,
// and the latched failure. Model parameters (identity, rate, noise, bias)
// are construction-time constants and stay out.
template <typename Sample>
struct InstanceState {
  util::Rng::State rng;
  Sample held{};
  bool has_sample = false;
  sim::SimTimeMs last_sample_ms = 0;
  bool failed = false;
};

// Common per-instance machinery: identity, native rate, latched clean
// failure. Concrete sensors implement p_measure() to produce a fresh sample.
template <typename Sample>
class SensorInstance {
 public:
  SensorInstance(SensorId id, double rate_hz, util::Rng rng)
      : id_(id), interval_ms_(rate_hz > 0 ? static_cast<sim::SimTimeMs>(1000.0 / rate_hz) : 1),
        rng_(rng) {}
  virtual ~SensorInstance() = default;

  SensorInstance(const SensorInstance&) = delete;
  SensorInstance& operator=(const SensorInstance&) = delete;

  const SensorId& id() const { return id_; }
  bool failed() const { return failed_; }

  // Clean failure: the device stops communicating for the rest of the run.
  void fail() { failed_ = true; }

  // Return the instance to its just-constructed state with a fresh noise
  // stream, as if it had been rebuilt with `rng`. Lets a reused suite start
  // a new run without reallocating the instance (core::ExperimentContext);
  // identity, rate, and the model parameters of the derived class are
  // construction-time constants and stay put.
  void reset(util::Rng rng) {
    rng_ = rng;
    held_ = Sample{};
    has_sample_ = false;
    last_sample_ms_ = 0;
    failed_ = false;
  }

  // Mid-run state capture/restore (checkpointed prefix forking). save/load
  // cover exactly the fields reset() clears, so a loaded instance is
  // state-identical to one that lived through the prefix.
  InstanceState<Sample> save() const {
    return {rng_.save(), held_, has_sample_, last_sample_ms_, failed_};
  }

  void load(const InstanceState<Sample>& s) {
    rng_.load(s.rng);
    held_ = s.held;
    has_sample_ = s.has_sample;
    last_sample_ms_ = s.last_sample_ms;
    failed_ = s.failed;
  }

  // Driver read path. Returns kFailed (and leaves `out` untouched) once the
  // instance has failed; otherwise returns the held sample, refreshing it
  // when a native sample period has elapsed.
  ReadStatus read(sim::SimTimeMs now_ms, const sim::VehicleState& truth,
                  const sim::Environment& env, Sample& out) {
    if (failed_) return ReadStatus::kFailed;
    if (!has_sample_ || now_ms - last_sample_ms_ >= interval_ms_) {
      held_ = p_measure(truth, env, rng_);
      last_sample_ms_ = now_ms;
      has_sample_ = true;
    }
    out = held_;
    return ReadStatus::kOk;
  }

 protected:
  virtual Sample p_measure(const sim::VehicleState& truth, const sim::Environment& env,
                           util::Rng& rng) = 0;

 private:
  SensorId id_;
  sim::SimTimeMs interval_ms_;
  util::Rng rng_;
  Sample held_{};
  bool has_sample_ = false;
  sim::SimTimeMs last_sample_ms_ = 0;
  bool failed_ = false;
};

// Each sensor's measurement model is a static function so the batched
// sensor lanes (sensors::SuiteBatch) draw samples with exactly the math —
// and exactly the RNG draw order — of the scalar instances; p_measure
// delegates to it. The default noise/bias constants are named for the same
// reason: a batch suite must be parameterized identically to a scalar one.
class Gyroscope final : public SensorInstance<GyroSample> {
 public:
  static constexpr double kRateHz = 1000.0;
  static constexpr double kDefaultNoise = 0.002;
  static constexpr double kDefaultBias = 0.001;

  Gyroscope(SensorId id, util::Rng rng, double noise = kDefaultNoise,
            double bias = kDefaultBias)
      : SensorInstance(id, kRateHz, rng), noise_(noise), bias_(bias) {}

  static GyroSample measure(const sim::VehicleState& truth, util::Rng& rng, double noise,
                            double bias) {
    return {truth.body_rates + geo::Vec3{bias + rng.gaussian(noise),
                                         bias + rng.gaussian(noise),
                                         bias + rng.gaussian(noise)}};
  }

 protected:
  GyroSample p_measure(const sim::VehicleState& truth, const sim::Environment&,
                       util::Rng& rng) override {
    return measure(truth, rng, noise_, bias_);
  }

 private:
  double noise_;
  double bias_;
};

class Accelerometer final : public SensorInstance<AccelSample> {
 public:
  static constexpr double kRateHz = 1000.0;
  static constexpr double kDefaultNoise = 0.05;
  static constexpr double kDefaultBias = 0.02;

  Accelerometer(SensorId id, util::Rng rng, double noise = kDefaultNoise,
                double bias = kDefaultBias)
      : SensorInstance(id, kRateHz, rng), noise_(noise), bias_(bias) {}

  static AccelSample measure(const sim::VehicleState& truth, util::Rng& rng, double noise,
                             double bias) {
    // Accelerometers measure specific force: acceleration minus gravity,
    // expressed in the body frame.
    const geo::Vec3 gravity{0.0, 0.0, 9.80665};
    const geo::Vec3 specific_world = truth.acceleration - gravity;
    const geo::Vec3 body = truth.attitude.world_to_body(specific_world);
    return {body + geo::Vec3{bias + rng.gaussian(noise), bias + rng.gaussian(noise),
                             bias + rng.gaussian(noise)}};
  }

 protected:
  AccelSample p_measure(const sim::VehicleState& truth, const sim::Environment&,
                        util::Rng& rng) override {
    return measure(truth, rng, noise_, bias_);
  }

 private:
  double noise_;
  double bias_;
};

class Barometer final : public SensorInstance<BaroSample> {
 public:
  static constexpr double kRateHz = 50.0;
  static constexpr double kDefaultNoise = 0.12;

  Barometer(SensorId id, util::Rng rng, double noise = kDefaultNoise)
      : SensorInstance(id, kRateHz, rng), noise_(noise) {}

  static BaroSample measure(const sim::VehicleState& truth, util::Rng& rng, double noise) {
    return {truth.altitude() + rng.gaussian(noise)};
  }

 protected:
  BaroSample p_measure(const sim::VehicleState& truth, const sim::Environment&,
                       util::Rng& rng) override {
    return measure(truth, rng, noise_);
  }

 private:
  double noise_;
};

class Gps final : public SensorInstance<GpsSample> {
 public:
  static constexpr double kRateHz = 5.0;
  // Horizontal ~1.2 m, vertical ~2.8 m 1-sigma: consumer GPS. The vertical
  // coarseness is the paper's Fig. 1 root hazard.
  static constexpr double kDefaultHNoise = 0.9;
  static constexpr double kDefaultVNoise = 2.8;

  Gps(SensorId id, util::Rng rng, double h_noise = kDefaultHNoise,
      double v_noise = kDefaultVNoise)
      : SensorInstance(id, kRateHz, rng), h_noise_(h_noise), v_noise_(v_noise) {}

  static GpsSample measure(const sim::VehicleState& truth, const sim::Environment& env,
                           util::Rng& rng, double h_noise, double v_noise) {
    const geo::Vec3 noisy_local = truth.position + geo::Vec3{rng.gaussian(h_noise),
                                                             rng.gaussian(h_noise),
                                                             -rng.gaussian(v_noise)};
    GpsSample s;
    s.position = env.frame().to_geodetic(noisy_local);
    s.velocity_ned = truth.velocity + geo::Vec3{rng.gaussian(0.1), rng.gaussian(0.1),
                                                rng.gaussian(0.2)};
    s.num_satellites = 14;
    s.hdop = 0.8;
    s.has_fix = true;
    return s;
  }

 protected:
  GpsSample p_measure(const sim::VehicleState& truth, const sim::Environment& env,
                      util::Rng& rng) override {
    return measure(truth, env, rng, h_noise_, v_noise_);
  }

 private:
  double h_noise_;
  double v_noise_;
};

class Compass final : public SensorInstance<CompassSample> {
 public:
  static constexpr double kRateHz = 100.0;
  static constexpr double kDefaultNoise = 0.015;

  Compass(SensorId id, util::Rng rng, double noise = kDefaultNoise)
      : SensorInstance(id, kRateHz, rng), noise_(noise) {}

  static CompassSample measure(const sim::VehicleState& truth, util::Rng& rng, double noise) {
    return {geo::wrap_angle(truth.attitude.yaw + rng.gaussian(noise))};
  }

 protected:
  CompassSample p_measure(const sim::VehicleState& truth, const sim::Environment&,
                          util::Rng& rng) override {
    return measure(truth, rng, noise_);
  }

 private:
  double noise_;
};

class BatterySensor final : public SensorInstance<BatterySample> {
 public:
  static constexpr double kRateHz = 10.0;
  static constexpr double kDefaultNoise = 0.02;

  BatterySensor(SensorId id, util::Rng rng, double noise = kDefaultNoise)
      : SensorInstance(id, kRateHz, rng), noise_(noise) {}

  static BatterySample measure(const sim::VehicleState& truth, util::Rng& rng, double noise) {
    return {truth.battery_voltage + rng.gaussian(noise), truth.battery_remaining};
  }

 protected:
  BatterySample p_measure(const sim::VehicleState& truth, const sim::Environment&,
                          util::Rng& rng) override {
    return measure(truth, rng, noise_);
  }

 private:
  double noise_;
};

// How many instances of each type the vehicle carries. Instance 0 is the
// primary. Defaults model the Iris autopilot stack (dual IMU, dual compass,
// single baro/GPS/battery).
struct SuiteConfig {
  int gyroscopes = 2;
  int accelerometers = 2;
  int barometers = 1;
  int gpses = 1;
  int compasses = 2;
  int batteries = 1;

  int count(SensorType t) const {
    switch (t) {
      case SensorType::kGyroscope: return gyroscopes;
      case SensorType::kAccelerometer: return accelerometers;
      case SensorType::kBarometer: return barometers;
      case SensorType::kGps: return gpses;
      case SensorType::kCompass: return compasses;
      case SensorType::kBattery: return batteries;
    }
    return 0;
  }

  int total() const {
    return gyroscopes + accelerometers + barometers + gpses + compasses + batteries;
  }

  bool operator==(const SuiteConfig&) const = default;
};

// Mid-run state of every instance in a suite, in the suite's construction
// order (experiment checkpointing).
struct SuiteSnapshot {
  std::vector<InstanceState<GyroSample>> gyros;
  std::vector<InstanceState<AccelSample>> accels;
  std::vector<InstanceState<BaroSample>> baros;
  std::vector<InstanceState<GpsSample>> gpses;
  std::vector<InstanceState<CompassSample>> compasses;
  std::vector<InstanceState<BatterySample>> batteries;
};

// The vehicle's full sensor complement. Owns every instance; exposes typed
// access for the firmware drivers and id-based failure injection for the
// engine.
class SensorSuite {
 public:
  SensorSuite(const SuiteConfig& config, util::Rng& seed_source) : config_(config) {
    for (int i = 0; i < config.gyroscopes; ++i)
      gyros_.push_back(std::make_unique<Gyroscope>(
          SensorId{SensorType::kGyroscope, static_cast<std::uint8_t>(i)}, seed_source.fork(i)));
    for (int i = 0; i < config.accelerometers; ++i)
      accels_.push_back(std::make_unique<Accelerometer>(
          SensorId{SensorType::kAccelerometer, static_cast<std::uint8_t>(i)},
          seed_source.fork(16 + i)));
    for (int i = 0; i < config.barometers; ++i)
      baros_.push_back(std::make_unique<Barometer>(
          SensorId{SensorType::kBarometer, static_cast<std::uint8_t>(i)},
          seed_source.fork(32 + i)));
    for (int i = 0; i < config.gpses; ++i)
      gpses_.push_back(std::make_unique<Gps>(
          SensorId{SensorType::kGps, static_cast<std::uint8_t>(i)}, seed_source.fork(48 + i)));
    for (int i = 0; i < config.compasses; ++i)
      compasses_.push_back(std::make_unique<Compass>(
          SensorId{SensorType::kCompass, static_cast<std::uint8_t>(i)},
          seed_source.fork(64 + i)));
    for (int i = 0; i < config.batteries; ++i)
      batteries_.push_back(std::make_unique<BatterySensor>(
          SensorId{SensorType::kBattery, static_cast<std::uint8_t>(i)},
          seed_source.fork(80 + i)));
  }

  const SuiteConfig& config() const { return config_; }

  // Re-seed every instance in place, drawing fork ids in exactly the order
  // the constructor does, so a reset suite is state-identical to a freshly
  // built one (the arena-reuse determinism contract, docs/PERFORMANCE.md)
  // without re-doing the per-instance heap allocations. The complement must
  // match — a different config means a different vehicle, not a new run.
  void reset(const SuiteConfig& config, util::Rng& seed_source) {
    util::expects(config == config_, "suite reset must keep the sensor complement");
    for (int i = 0; i < config.gyroscopes; ++i) gyros_[i]->reset(seed_source.fork(i));
    for (int i = 0; i < config.accelerometers; ++i) accels_[i]->reset(seed_source.fork(16 + i));
    for (int i = 0; i < config.barometers; ++i) baros_[i]->reset(seed_source.fork(32 + i));
    for (int i = 0; i < config.gpses; ++i) gpses_[i]->reset(seed_source.fork(48 + i));
    for (int i = 0; i < config.compasses; ++i) compasses_[i]->reset(seed_source.fork(64 + i));
    for (int i = 0; i < config.batteries; ++i) batteries_[i]->reset(seed_source.fork(80 + i));
  }

  // Capture/restore every instance's mid-run state (checkpointed prefix
  // forking). Like reset(), load() requires the same sensor complement —
  // restoring a different vehicle's snapshot is a logic error.
  SuiteSnapshot save() const {
    SuiteSnapshot s;
    for (const auto& g : gyros_) s.gyros.push_back(g->save());
    for (const auto& a : accels_) s.accels.push_back(a->save());
    for (const auto& b : baros_) s.baros.push_back(b->save());
    for (const auto& g : gpses_) s.gpses.push_back(g->save());
    for (const auto& c : compasses_) s.compasses.push_back(c->save());
    for (const auto& b : batteries_) s.batteries.push_back(b->save());
    return s;
  }

  void load(const SuiteSnapshot& s) {
    util::expects(s.gyros.size() == gyros_.size() && s.accels.size() == accels_.size() &&
                      s.baros.size() == baros_.size() && s.gpses.size() == gpses_.size() &&
                      s.compasses.size() == compasses_.size() &&
                      s.batteries.size() == batteries_.size(),
                  "suite snapshot must match the sensor complement");
    for (std::size_t i = 0; i < gyros_.size(); ++i) gyros_[i]->load(s.gyros[i]);
    for (std::size_t i = 0; i < accels_.size(); ++i) accels_[i]->load(s.accels[i]);
    for (std::size_t i = 0; i < baros_.size(); ++i) baros_[i]->load(s.baros[i]);
    for (std::size_t i = 0; i < gpses_.size(); ++i) gpses_[i]->load(s.gpses[i]);
    for (std::size_t i = 0; i < compasses_.size(); ++i) compasses_[i]->load(s.compasses[i]);
    for (std::size_t i = 0; i < batteries_.size(); ++i) batteries_[i]->load(s.batteries[i]);
  }

  Gyroscope& gyro(int i) { return *gyros_.at(i); }
  Accelerometer& accel(int i) { return *accels_.at(i); }
  Barometer& baro(int i) { return *baros_.at(i); }
  Gps& gps(int i) { return *gpses_.at(i); }
  Compass& compass(int i) { return *compasses_.at(i); }
  BatterySensor& battery(int i) { return *batteries_.at(i); }

  // Latch a clean failure on one instance. Returns false if the id does not
  // exist on this vehicle.
  bool fail(const SensorId& id) {
    if (id.instance >= config_.count(id.type)) return false;
    switch (id.type) {
      case SensorType::kGyroscope: gyros_[id.instance]->fail(); return true;
      case SensorType::kAccelerometer: accels_[id.instance]->fail(); return true;
      case SensorType::kBarometer: baros_[id.instance]->fail(); return true;
      case SensorType::kGps: gpses_[id.instance]->fail(); return true;
      case SensorType::kCompass: compasses_[id.instance]->fail(); return true;
      case SensorType::kBattery: batteries_[id.instance]->fail(); return true;
    }
    return false;
  }

  bool is_failed(const SensorId& id) const {
    if (id.instance >= config_.count(id.type)) return false;
    switch (id.type) {
      case SensorType::kGyroscope: return gyros_[id.instance]->failed();
      case SensorType::kAccelerometer: return accels_[id.instance]->failed();
      case SensorType::kBarometer: return baros_[id.instance]->failed();
      case SensorType::kGps: return gpses_[id.instance]->failed();
      case SensorType::kCompass: return compasses_[id.instance]->failed();
      case SensorType::kBattery: return batteries_[id.instance]->failed();
    }
    return false;
  }

  // All instance ids on this vehicle, in deterministic order; the search
  // strategies enumerate the fault space from this list.
  std::vector<SensorId> all_ids() const {
    std::vector<SensorId> ids;
    for (SensorType t : kAllSensorTypes) {
      for (int i = 0; i < config_.count(t); ++i) {
        ids.push_back(SensorId{t, static_cast<std::uint8_t>(i)});
      }
    }
    return ids;
  }

 private:
  SuiteConfig config_;
  std::vector<std::unique_ptr<Gyroscope>> gyros_;
  std::vector<std::unique_ptr<Accelerometer>> accels_;
  std::vector<std::unique_ptr<Barometer>> baros_;
  std::vector<std::unique_ptr<Gps>> gpses_;
  std::vector<std::unique_ptr<Compass>> compasses_;
  std::vector<std::unique_ptr<BatterySensor>> batteries_;
};

}  // namespace avis::sensors
