// The workload registry: every workload the campaign stack can run, keyed
// by the string name scenario files and CLI flags use (docs/SCENARIOS.md).
//
// Adding a workload is one edit in this file: define the class (or include
// its header) and add() it in the builder below. Nothing else — no enum, no
// switch, no CLI parser — needs to change; `avis_campaign --list` and the
// unknown-name diagnostics pick the entry up from here.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "util/registry.h"
#include "workload/default_workloads.h"
#include "workload/extra_workloads.h"

namespace avis::workload {

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

inline util::Registry<WorkloadFactory>& workload_registry() {
  static util::Registry<WorkloadFactory> registry = [] {
    util::Registry<WorkloadFactory> r("workload");
    r.add("auto", "Fig. 8 mission: takeoff + land flown in AUTO (paper §V-A)",
          [] { return std::unique_ptr<Workload>(std::make_unique<AutoWorkload>()); });
    r.add("box-manual",
          "20 m box flown on RC sticks in position-hold, land at launch (paper §V-A)",
          [] { return std::unique_ptr<Workload>(std::make_unique<BoxManualWorkload>()); });
    r.add("fence-mission",
          "waypoint box whose last leg crosses a geofence; fence failsafe returns home "
          "(paper §V-A)",
          [] { return std::unique_ptr<Workload>(std::make_unique<FenceMissionWorkload>()); });
    r.add("wind-gust-box",
          "box perimeter flown as an AUTO mission under wind; pairs with the gusty "
          "environment preset",
          [] { return std::unique_ptr<Workload>(std::make_unique<WindGustBoxWorkload>()); });
    r.add("survey", "five-transect lawnmower survey, return to launch; the longest mission",
          [] { return std::unique_ptr<Workload>(std::make_unique<SurveyMissionWorkload>()); });
    return r;
  }();
  return registry;
}

// Build a workload by registered name; throws util::UnknownNameError (with
// the registered-name listing) for anything else.
inline std::unique_ptr<Workload> make_workload(std::string_view name) {
  return workload_registry().at(name).factory();
}

}  // namespace avis::workload
