// The default workloads (paper §V-A).
//
//  * AutoWorkload  — the Fig. 8 example: upload a takeoff+land mission,
//    arm, enter auto mode, wait for the climb and the landing.
//  * BoxManualWorkload — "a manual mode that holds the vehicle's position":
//    ascend to 20 m, fly the perimeter of a 20 m x 20 m box on RC sticks in
//    position-hold, land at the launch point.
//  * FenceMissionWorkload — "waypoints and a fence": ascend to 20 m, fly a
//    box whose last leg crosses a fenced region; the fence failsafe returns
//    the vehicle home, where it lands.
//
// All three run unchanged on both firmware personalities — the portability
// problem the framework exists to solve.
#pragma once

#include <memory>

#include "workload/workload.h"

namespace avis::workload {

inline constexpr double kCruiseAltitude = 20.0;

class AutoWorkload final : public Workload {
 public:
  AutoWorkload() : Workload("auto") {
    script_.wait_time(3000);
    script_.add("upload", [](GcsContext& ctx) {
      std::vector<mavlink::MissionItem> items;
      items.push_back(ctx.item_at(mavlink::Command::kNavTakeoff,
                                  {0.0, 0.0, -kCruiseAltitude}));
      items.push_back(ctx.item_at(mavlink::Command::kNavLand, {0.0, 0.0, 0.0}));
      ctx.upload_mission(std::move(items));
    },
    [](GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
    script_.arm_system_completely();
    script_.enter_auto_mode();
    script_.wait_altitude_at_least(kCruiseAltitude - 0.6);
    script_.wait_altitude_at_most(0.4);
    script_.wait_disarm();
  }
};

class BoxManualWorkload final : public Workload {
 public:
  BoxManualWorkload() : Workload("box-manual") {
    script_.wait_time(3000);
    script_.arm_system_completely();
    script_.add("takeoff", [](GcsContext& ctx) { ctx.takeoff(kCruiseAltitude); },
                [](GcsContext& ctx) { return ctx.altitude() >= kCruiseAltitude - 0.6; });
    script_.enter_mode(fw::Mode::kPositionHold);
    p_leg("north", /*pitch=*/0.85, /*roll=*/0.0,
          [](GcsContext& ctx) { return ctx.local_position().x >= 20.0; });
    p_leg("east", 0.0, 0.85, [](GcsContext& ctx) { return ctx.local_position().y >= 20.0; });
    p_leg("south", -0.85, 0.0, [](GcsContext& ctx) { return ctx.local_position().x <= 0.5; });
    p_leg("west", 0.0, -0.85, [](GcsContext& ctx) { return ctx.local_position().y <= 0.5; });
    script_.add("land", [](GcsContext& ctx) { ctx.land(); }, [](GcsContext&) { return true; });
    script_.wait_disarm();
  }

 private:
  void p_leg(const char* name, double pitch, double roll,
             std::function<bool(GcsContext&)> done) {
    // Push the sticks until the leg target is crossed, then release and let
    // position-hold capture and settle.
    script_.add(std::string("leg_") + name,
                [pitch, roll](GcsContext& ctx) { ctx.rc(roll, pitch, 0.0, 0.0); },
                [done = std::move(done), pitch, roll](GcsContext& ctx) {
                  ctx.rc(roll, pitch, 0.0, 0.0);  // keep the sticks held
                  return done(ctx);
                },
                30000);
    script_.add_timed(std::string("settle_") + name,
                      [](GcsContext& ctx) { ctx.rc(0.0, 0.0, 0.0, 0.0); },
                      [](GcsContext&, sim::SimTimeMs elapsed) { return elapsed >= 1200; });
  }
};

class FenceMissionWorkload final : public Workload {
 public:
  FenceMissionWorkload() : Workload("fence-mission") {
    script_.wait_time(3000);
    script_.add("enable_fence",
                [](GcsContext& ctx) {
                  sim::Fence fence;
                  fence.min_north = -5.0;
                  fence.max_north = 28.0;  // the last leg crosses this edge
                  fence.min_east = -5.0;
                  fence.max_east = 30.0;
                  fence.max_altitude = 40.0;
                  ctx.enable_fence(fence);
                },
                [](GcsContext&) { return true; });
    script_.add("upload", [](GcsContext& ctx) {
      std::vector<mavlink::MissionItem> items;
      items.push_back(ctx.item_at(mavlink::Command::kNavTakeoff,
                                  {0.0, 0.0, -kCruiseAltitude}));
      items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                  {20.0, 0.0, -kCruiseAltitude}));
      items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                  {20.0, 20.0, -kCruiseAltitude}));
      // Waypoint 3 lies beyond the fence; the golden run breaches the fence
      // mid-leg, triggering the fence-failsafe RTL (wp3 -> RTL transition).
      items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                  {45.0, 20.0, -kCruiseAltitude}));
      ctx.upload_mission(std::move(items));
    },
    [](GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
    script_.arm_system_completely();
    script_.enter_auto_mode();
    script_.wait_altitude_at_least(kCruiseAltitude - 0.6);
    script_.wait_altitude_at_most(0.4);
    script_.wait_disarm();
  }
};

enum class WorkloadId { kAuto = 0, kBoxManual = 1, kFenceMission = 2 };

inline const char* to_string(WorkloadId id) {
  switch (id) {
    case WorkloadId::kAuto: return "auto";
    case WorkloadId::kBoxManual: return "box-manual";
    case WorkloadId::kFenceMission: return "fence-mission";
  }
  return "?";
}

inline std::unique_ptr<Workload> make_workload(WorkloadId id) {
  switch (id) {
    case WorkloadId::kAuto: return std::make_unique<AutoWorkload>();
    case WorkloadId::kBoxManual: return std::make_unique<BoxManualWorkload>();
    case WorkloadId::kFenceMission: return std::make_unique<FenceMissionWorkload>();
  }
  return nullptr;
}

}  // namespace avis::workload
