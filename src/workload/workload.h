// Workload framework (paper §V-A, Fig. 8).
//
// A workload is a sequence of steps; each step has an on-entry action and a
// completion predicate, mirroring the paper's Python framework where
// `takeoff()`/`wait_altitude()` calls yield control back to Avis via the
// step() RPC. Steps never block: the harness pumps the workload once per
// simulation step and the workload advances when the current predicate
// holds. A per-step timeout marks the run failed rather than hanging the
// checker (the deadlock hazard §V-A describes).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fw/modes.h"
#include "workload/context.h"

namespace avis::workload {

enum class WorkloadStatus { kRunning, kPassed, kFailed };

class Script {
 public:
  struct Step {
    std::string name;
    std::function<void(GcsContext&)> on_entry;
    std::function<bool(GcsContext&)> done;
    // Elapsed-time variant: receives milliseconds since the step was
    // entered. Time-based steps use this instead of capturing a mutable
    // start timestamp in `done` — step lambdas must be stateless so a
    // workload's progress is fully described by the base-class fields
    // (Workload::Progress), which is what lets checkpointed prefix forking
    // restore a mid-flight workload into a factory-fresh instance.
    std::function<bool(GcsContext&, sim::SimTimeMs)> done_since;
    sim::SimTimeMs timeout_ms = 60000;
  };

  void add(std::string name, std::function<void(GcsContext&)> on_entry,
           std::function<bool(GcsContext&)> done, sim::SimTimeMs timeout_ms = 60000) {
    steps_.push_back({std::move(name), std::move(on_entry), std::move(done), {}, timeout_ms});
  }

  // A step whose completion depends on time since entry; `done_since` gets
  // the elapsed milliseconds alongside the context.
  void add_timed(std::string name, std::function<void(GcsContext&)> on_entry,
                 std::function<bool(GcsContext&, sim::SimTimeMs)> done_since,
                 sim::SimTimeMs timeout_ms = 60000) {
    steps_.push_back({std::move(name), std::move(on_entry), {}, std::move(done_since),
                      timeout_ms});
  }

  // Fig. 8 style helpers ----------------------------------------------------
  void wait_time(sim::SimTimeMs ms) {
    add_timed("wait_time", [](GcsContext&) {},
              [ms](GcsContext&, sim::SimTimeMs elapsed) { return elapsed >= ms; });
  }

  void upload_mission(std::vector<mavlink::MissionItem> items) {
    add("upload_mission",
        [items = std::move(items)](GcsContext& ctx) { ctx.upload_mission(items); },
        [](GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
  }

  void arm_system_completely() {
    add("arm", [](GcsContext& ctx) { ctx.arm(); },
        [](GcsContext& ctx) { return ctx.armed(); }, 5000);
  }

  void enter_mode(fw::Mode mode) {
    add(std::string("enter_") + fw::canonical_name(mode),
        [mode](GcsContext& ctx) { ctx.set_mode(fw::composite_mode_id(mode)); },
        [](GcsContext&) { return true; });
  }

  void enter_auto_mode() { enter_mode(fw::Mode::kAuto); }

  void wait_altitude_at_least(double alt_m, sim::SimTimeMs timeout_ms = 60000) {
    add("wait_altitude>=", [](GcsContext&) {},
        [alt_m](GcsContext& ctx) { return ctx.altitude() >= alt_m; }, timeout_ms);
  }

  void wait_altitude_at_most(double alt_m, sim::SimTimeMs timeout_ms = 60000) {
    add("wait_altitude<=", [](GcsContext&) {},
        [alt_m](GcsContext& ctx) { return ctx.altitude() <= alt_m; }, timeout_ms);
  }

  void wait_disarm(sim::SimTimeMs timeout_ms = 60000) {
    add("wait_disarm", [](GcsContext&) {},
        [](GcsContext& ctx) { return !ctx.armed(); }, timeout_ms);
  }

  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

// Base class: concrete workloads build their Script in the constructor.
class Workload {
 public:
  virtual ~Workload() = default;

  // Advance the workload one harness tick. Steps whose completion predicate
  // already holds are chained within the tick (like the sequential calls in
  // the paper's Fig. 8 script); the tick ends at the first unfinished step.
  WorkloadStatus step(GcsContext& ctx) {
    const auto& steps = script_.steps();
    while (status_ == WorkloadStatus::kRunning) {
      if (index_ >= steps.size()) {
        status_ = WorkloadStatus::kPassed;
        break;
      }
      const auto& step = steps[index_];
      if (!entered_) {
        step.on_entry(ctx);
        entered_ = true;
        entered_at_ = ctx.now_ms();
      }
      const bool done = step.done_since ? step.done_since(ctx, ctx.now_ms() - entered_at_)
                                        : step.done(ctx);
      if (done) {
        ++index_;
        entered_ = false;
        continue;
      }
      if (ctx.now_ms() - entered_at_ > step.timeout_ms) {
        status_ = WorkloadStatus::kFailed;
        failed_step_ = step.name;
      }
      break;
    }
    return status_;
  }

  WorkloadStatus status() const { return status_; }
  const std::string& failed_step() const { return failed_step_; }
  const std::string& name() const { return name_; }
  std::size_t current_step() const { return index_; }

  // Mid-run progress for experiment checkpointing. Because step lambdas are
  // stateless by contract (time-based steps go through Script::add_timed),
  // these base-class fields are the workload's complete mutable state:
  // loading them into a factory-fresh instance of the same workload resumes
  // it exactly where the prefix run left off.
  struct Progress {
    std::size_t index = 0;
    bool entered = false;
    sim::SimTimeMs entered_at = 0;
    WorkloadStatus status = WorkloadStatus::kRunning;
    std::string failed_step;
  };

  Progress save() const { return {index_, entered_, entered_at_, status_, failed_step_}; }

  void load(const Progress& p) {
    index_ = p.index;
    entered_ = p.entered;
    entered_at_ = p.entered_at;
    status_ = p.status;
    failed_step_ = p.failed_step;
  }

 protected:
  explicit Workload(std::string name) : name_(std::move(name)) {}
  Script script_;

 private:
  std::string name_;
  std::size_t index_ = 0;
  bool entered_ = false;
  sim::SimTimeMs entered_at_ = 0;
  WorkloadStatus status_ = WorkloadStatus::kRunning;
  std::string failed_step_;
};

}  // namespace avis::workload
