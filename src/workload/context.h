// Ground-control-station context for workloads.
//
// The workload is the pilot (paper §IV-A): it talks to the vehicle only
// through the MAVLink channel — commands out, telemetry in. The context
// caches the latest telemetry so workload steps can express conditions like
// "altitude reached" without blocking, and wraps the mission-upload state
// machine so workloads cannot deadlock the transaction (§V-A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/geodesy.h"
#include "mavlink/channel.h"
#include "mavlink/messages.h"
#include "mavlink/mission_protocol.h"
#include "sim/simulator.h"

namespace avis::workload {

class GcsContext {
 public:
  GcsContext(mavlink::Endpoint& gcs, const geo::LocalFrame& frame)
      : gcs_(&gcs), uploader_(gcs), frame_(frame) {}

  // Drain incoming telemetry; called by the harness every step.
  void pump(sim::SimTimeMs now) {
    now_ms_ = now;
    while (auto msg = gcs_->receive()) {
      // Mission-upload replies are consumed by the uploader first.
      auto remaining = uploader_.handle(std::move(*msg));
      if (!remaining) continue;
      if (const auto* hb = std::get_if<mavlink::Heartbeat>(&*remaining)) {
        armed_ = hb->armed;
        mode_id_ = hb->custom_mode;
        have_heartbeat_ = true;
      } else if (const auto* gp = std::get_if<mavlink::GlobalPositionInt>(&*remaining)) {
        local_position_ = frame_.to_local(gp->position);
        relative_alt_ = gp->relative_alt_m;
        velocity_ = gp->velocity_ned;
        heading_ = gp->heading_rad;
        have_position_ = true;
      } else if (const auto* ack = std::get_if<mavlink::CommandAck>(&*remaining)) {
        last_ack_ = *ack;
      } else if (const auto* st = std::get_if<mavlink::StatusText>(&*remaining)) {
        status_texts_.push_back(st->text);
      } else if (const auto* reached = std::get_if<mavlink::MissionItemReached>(&*remaining)) {
        last_reached_ = reached->seq;
      }
    }
  }

  // --- Command helpers (the framework's high-level API) -------------------
  void arm() { send_command(mavlink::Command::kComponentArmDisarm, 1.0); }
  void disarm() { send_command(mavlink::Command::kComponentArmDisarm, 0.0); }

  void takeoff(double altitude_m) {
    mavlink::CommandLong cmd;
    cmd.command = mavlink::Command::kNavTakeoff;
    cmd.param7 = altitude_m;
    gcs_->send(cmd);
  }

  void land() { send_command(mavlink::Command::kNavLand); }
  void return_to_launch() { send_command(mavlink::Command::kNavReturnToLaunch); }

  void set_mode(std::uint16_t composite_id) {
    mavlink::SetMode sm;
    sm.custom_mode = composite_id;
    gcs_->send(sm);
  }

  void rc(double roll, double pitch, double throttle, double yaw) {
    mavlink::RcOverride rc;
    rc.roll = roll;
    rc.pitch = pitch;
    rc.throttle = throttle;
    rc.yaw = yaw;
    gcs_->send(rc);
  }

  void enable_fence(const sim::Fence& fence) {
    mavlink::FenceEnable fe;
    fe.enable = true;
    fe.min_north = fence.min_north;
    fe.max_north = fence.max_north;
    fe.min_east = fence.min_east;
    fe.max_east = fence.max_east;
    fe.max_altitude = fence.max_altitude;
    gcs_->send(fe);
  }

  void upload_mission(std::vector<mavlink::MissionItem> items) {
    uploader_.start(std::move(items));
  }
  bool mission_uploaded() const { return uploader_.done(); }
  bool mission_upload_failed() const { return uploader_.failed(); }

  // --- Telemetry view ------------------------------------------------------
  sim::SimTimeMs now_ms() const { return now_ms_; }
  bool armed() const { return armed_; }
  std::uint16_t mode_id() const { return mode_id_; }
  bool have_position() const { return have_position_; }
  const geo::Vec3& local_position() const { return local_position_; }
  double altitude() const { return relative_alt_; }
  const geo::Vec3& velocity() const { return velocity_; }
  double heading() const { return heading_; }
  const std::vector<std::string>& status_texts() const { return status_texts_; }

  // Mission-item helper: build an item from a local NED position.
  mavlink::MissionItem item_at(mavlink::Command command, const geo::Vec3& local,
                               std::uint16_t seq = 0) const {
    mavlink::MissionItem item;
    item.seq = seq;
    item.command = command;
    item.position = frame_.to_geodetic(local);
    return item;
  }

  const geo::LocalFrame& frame() const { return frame_; }

  // Mid-run GCS state for experiment checkpointing: the mission-upload
  // transaction, the cached telemetry view, and the status-text log. The
  // endpoint and frame are per-run wiring and stay with the hosting run.
  struct Snapshot {
    mavlink::MissionUploader::State uploader;
    sim::SimTimeMs now_ms = 0;
    bool armed = false;
    std::uint16_t mode_id = 0;
    bool have_heartbeat = false;
    bool have_position = false;
    geo::Vec3 local_position;
    double relative_alt = 0.0;
    geo::Vec3 velocity;
    double heading = 0.0;
    std::optional<mavlink::CommandAck> last_ack;
    std::optional<std::uint16_t> last_reached;
    std::vector<std::string> status_texts;
  };

  Snapshot save() const {
    return {uploader_.save(), now_ms_,   armed_,    mode_id_,  have_heartbeat_,
            have_position_,   local_position_, relative_alt_, velocity_, heading_,
            last_ack_,        last_reached_,   status_texts_};
  }

  void load(const Snapshot& s) {
    uploader_.load(s.uploader);
    now_ms_ = s.now_ms;
    armed_ = s.armed;
    mode_id_ = s.mode_id;
    have_heartbeat_ = s.have_heartbeat;
    have_position_ = s.have_position;
    local_position_ = s.local_position;
    relative_alt_ = s.relative_alt;
    velocity_ = s.velocity;
    heading_ = s.heading;
    last_ack_ = s.last_ack;
    last_reached_ = s.last_reached;
    status_texts_ = s.status_texts;
  }

 private:
  void send_command(mavlink::Command command, double param1 = 0.0) {
    mavlink::CommandLong cmd;
    cmd.command = command;
    cmd.param1 = param1;
    gcs_->send(cmd);
  }

  mavlink::Endpoint* gcs_;
  mavlink::MissionUploader uploader_;
  geo::LocalFrame frame_;

  sim::SimTimeMs now_ms_ = 0;
  bool armed_ = false;
  std::uint16_t mode_id_ = 0;
  bool have_heartbeat_ = false;
  bool have_position_ = false;
  geo::Vec3 local_position_;
  double relative_alt_ = 0.0;
  geo::Vec3 velocity_;
  double heading_ = 0.0;
  std::optional<mavlink::CommandAck> last_ack_;
  std::optional<std::uint16_t> last_reached_;
  std::vector<std::string> status_texts_;
};

}  // namespace avis::workload
