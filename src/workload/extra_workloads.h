// Workloads beyond the paper's evaluation pair (ROADMAP: "opens a new
// workload"). Both are built from the same Fig. 8 primitives as the
// defaults and complete on both firmware personalities.
//
//  * WindGustBoxWorkload — a box perimeter flown as an AUTO mission,
//    designed to pair with the "gusty"/"breeze" environment presets
//    (sim::Wind): the mission controller rejects the wind disturbance, so
//    the golden run completes while the profiled envelope and the mode
//    windows reflect a turbulent flight.
//  * SurveyMissionWorkload — a multi-leg lawnmower survey (five transects,
//    then return-to-launch), the longest mission in the tree: it exposes
//    many auto-wp mode-transition windows for SABRE to crawl.
#pragma once

#include "workload/workload.h"

namespace avis::workload {

inline constexpr double kWindBoxAltitude = 18.0;
inline constexpr double kSurveyAltitude = 16.0;

class WindGustBoxWorkload final : public Workload {
 public:
  WindGustBoxWorkload() : Workload("wind-gust-box") {
    script_.wait_time(3000);
    script_.add("upload",
                [](GcsContext& ctx) {
                  std::vector<mavlink::MissionItem> items;
                  items.push_back(ctx.item_at(mavlink::Command::kNavTakeoff,
                                              {0.0, 0.0, -kWindBoxAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {18.0, 0.0, -kWindBoxAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {18.0, 18.0, -kWindBoxAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {0.0, 18.0, -kWindBoxAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {0.0, 0.0, -kWindBoxAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavLand, {0.0, 0.0, 0.0}));
                  ctx.upload_mission(std::move(items));
                },
                [](GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
    script_.arm_system_completely();
    script_.enter_auto_mode();
    script_.wait_altitude_at_least(kWindBoxAltitude - 0.6);
    // Gusts stretch the perimeter legs; give the descent wait headroom over
    // the default step timeout.
    script_.wait_altitude_at_most(0.4, 90000);
    script_.wait_disarm();
  }
};

class SurveyMissionWorkload final : public Workload {
 public:
  SurveyMissionWorkload() : Workload("survey") {
    script_.wait_time(3000);
    script_.add("upload",
                [](GcsContext& ctx) {
                  std::vector<mavlink::MissionItem> items;
                  items.push_back(ctx.item_at(mavlink::Command::kNavTakeoff,
                                              {0.0, 0.0, -kSurveyAltitude}));
                  // Lawnmower transects over a 32 m x 24 m field.
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {32.0, 0.0, -kSurveyAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {32.0, 12.0, -kSurveyAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {0.0, 12.0, -kSurveyAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {0.0, 24.0, -kSurveyAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavWaypoint,
                                              {32.0, 24.0, -kSurveyAltitude}));
                  items.push_back(ctx.item_at(mavlink::Command::kNavReturnToLaunch,
                                              {0.0, 0.0, -kSurveyAltitude}));
                  ctx.upload_mission(std::move(items));
                },
                [](GcsContext& ctx) { return ctx.mission_uploaded(); }, 10000);
    script_.arm_system_completely();
    script_.enter_auto_mode();
    script_.wait_altitude_at_least(kSurveyAltitude - 0.6);
    // Five transects plus the return leg take most of the mission; the
    // descent wait spans all of it.
    script_.wait_altitude_at_most(0.4, 120000);
    script_.wait_disarm();
  }
};

}  // namespace avis::workload
