// In-memory duplex link between the ground-control station (workload) and
// the vehicle. Messages cross the link as encoded frames — each endpoint
// only sees bytes, mirroring the UDP link to SITL in the paper's setup.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mavlink/codec.h"
#include "mavlink/messages.h"

namespace avis::mavlink {

class Channel;

// One side of the link. Endpoint identity feeds the frame header.
class Endpoint {
 public:
  Endpoint(Channel& channel, bool is_vehicle, std::uint8_t system_id)
      : channel_(&channel), is_vehicle_(is_vehicle), system_id_(system_id) {}

  void send(const Message& m);
  std::optional<Message> receive();
  bool has_pending() const;

 private:
  Channel* channel_;
  bool is_vehicle_;
  std::uint8_t system_id_;
  std::uint8_t next_seq_ = 0;
};

class Channel {
 public:
  Channel() : gcs_(*this, false, 255), vehicle_(*this, true, 1) {}

  Endpoint& gcs() { return gcs_; }
  Endpoint& vehicle() { return vehicle_; }

  // Frames in flight, per direction.
  std::deque<std::vector<std::uint8_t>> to_vehicle;
  std::deque<std::vector<std::uint8_t>> to_gcs;

  // Drop all in-flight traffic (used when a test run is torn down).
  void clear() {
    to_vehicle.clear();
    to_gcs.clear();
  }

 private:
  Endpoint gcs_;
  Endpoint vehicle_;
};

inline void Endpoint::send(const Message& m) {
  auto frame = pack(m, next_seq_++, system_id_, 1);
  if (is_vehicle_) {
    channel_->to_gcs.push_back(std::move(frame));
  } else {
    channel_->to_vehicle.push_back(std::move(frame));
  }
}

inline std::optional<Message> Endpoint::receive() {
  auto& queue = is_vehicle_ ? channel_->to_vehicle : channel_->to_gcs;
  while (!queue.empty()) {
    const auto bytes = std::move(queue.front());
    queue.pop_front();
    if (auto msg = unpack(bytes)) return msg;  // corrupted frames are dropped
  }
  return std::nullopt;
}

inline bool Endpoint::has_pending() const {
  return !(is_vehicle_ ? channel_->to_vehicle : channel_->to_gcs).empty();
}

}  // namespace avis::mavlink
