// In-memory duplex link between the ground-control station (workload) and
// the vehicle. Messages cross the link as encoded frames — each endpoint
// only sees bytes, mirroring the UDP link to SITL in the paper's setup.
//
// Frame vectors are recycled through a channel-owned freelist: send() packs
// into a recycled buffer, receive() returns the consumed buffer to the
// freelist. At the 20 ms GCS pump rate this makes steady-state traffic
// allocation-free (telemetry frames all reuse the same few buffers) without
// changing a byte on the wire.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "mavlink/codec.h"
#include "mavlink/messages.h"

namespace avis::mavlink {

class Channel;

// One side of the link. Endpoint identity feeds the frame header.
class Endpoint {
 public:
  Endpoint(Channel& channel, bool is_vehicle, std::uint8_t system_id)
      : channel_(&channel), is_vehicle_(is_vehicle), system_id_(system_id) {}

  void send(const Message& m);
  std::optional<Message> receive();
  bool has_pending() const;

  // Back to the boot state (sequence numbers restart); part of
  // Channel::reset_link.
  void reset_seq() { next_seq_ = 0; }

  // Sequence-number position, for mid-run checkpointing: a restored
  // endpoint must stamp its next frame exactly as the prefix run would.
  std::uint8_t seq() const { return next_seq_; }
  void set_seq(std::uint8_t seq) { next_seq_ = seq; }

 private:
  Channel* channel_;
  bool is_vehicle_;
  std::uint8_t system_id_;
  std::uint8_t next_seq_ = 0;
};

class Channel {
 public:
  Channel() : gcs_(*this, false, 255), vehicle_(*this, true, 1) {}

  Endpoint& gcs() { return gcs_; }
  Endpoint& vehicle() { return vehicle_; }

  // Frames in flight, per direction.
  std::deque<std::vector<std::uint8_t>> to_vehicle;
  std::deque<std::vector<std::uint8_t>> to_gcs;

  // Return the link to its just-constructed observable state — no traffic
  // in flight, sequence numbers at zero — while keeping the warmed-up frame
  // freelist, so a reused channel (core::ExperimentContext) starts the next
  // run allocation-free.
  void reset_link() {
    while (!to_vehicle.empty()) {
      recycle_frame(std::move(to_vehicle.front()));
      to_vehicle.pop_front();
    }
    while (!to_gcs.empty()) {
      recycle_frame(std::move(to_gcs.front()));
      to_gcs.pop_front();
    }
    gcs_.reset_seq();
    vehicle_.reset_seq();
  }

  // Mid-run link state for experiment checkpointing: the encoded frames in
  // flight (bytes, direction-ordered) and both endpoints' sequence
  // positions. The freelist is capacity, not state, and stays out.
  struct Snapshot {
    std::vector<std::vector<std::uint8_t>> to_vehicle;
    std::vector<std::vector<std::uint8_t>> to_gcs;
    std::uint8_t gcs_seq = 0;
    std::uint8_t vehicle_seq = 0;
  };

  Snapshot save() const {
    Snapshot s;
    s.to_vehicle.assign(to_vehicle.begin(), to_vehicle.end());
    s.to_gcs.assign(to_gcs.begin(), to_gcs.end());
    s.gcs_seq = gcs_.seq();
    s.vehicle_seq = vehicle_.seq();
    return s;
  }

  // Restores the link to the snapshot's observable state. In-flight frames
  // are copied into recycled buffers so a warmed-up channel stays
  // allocation-light.
  void load(const Snapshot& s) {
    reset_link();
    for (const auto& bytes : s.to_vehicle) {
      std::vector<std::uint8_t> frame = acquire_frame();
      frame.assign(bytes.begin(), bytes.end());
      to_vehicle.push_back(std::move(frame));
    }
    for (const auto& bytes : s.to_gcs) {
      std::vector<std::uint8_t> frame = acquire_frame();
      frame.assign(bytes.begin(), bytes.end());
      to_gcs.push_back(std::move(frame));
    }
    gcs_.set_seq(s.gcs_seq);
    vehicle_.set_seq(s.vehicle_seq);
  }

  // Freelist of retired frame vectors. acquire hands back an empty vector
  // that keeps its old capacity; recycle caps the list so a traffic burst
  // cannot pin unbounded memory.
  std::vector<std::uint8_t> acquire_frame() {
    if (free_frames_.empty()) return {};
    std::vector<std::uint8_t> frame = std::move(free_frames_.back());
    free_frames_.pop_back();
    frame.clear();
    return frame;
  }

  void recycle_frame(std::vector<std::uint8_t>&& frame) {
    if (free_frames_.size() < kMaxFreeFrames) free_frames_.push_back(std::move(frame));
  }

  // Scratch writer for payload staging in Endpoint::send. The channel is
  // single-threaded by construction (one simulated vehicle, one GCS, both
  // pumped from the harness loop), so one scratch buffer serves both ends.
  util::ByteWriter& payload_scratch() { return payload_scratch_; }

 private:
  static constexpr std::size_t kMaxFreeFrames = 64;

  Endpoint gcs_;
  Endpoint vehicle_;
  std::vector<std::vector<std::uint8_t>> free_frames_;
  util::ByteWriter payload_scratch_;
};

inline void Endpoint::send(const Message& m) {
  std::vector<std::uint8_t> frame = channel_->acquire_frame();
  pack_into(m, next_seq_++, system_id_, 1, channel_->payload_scratch(), frame);
  if (is_vehicle_) {
    channel_->to_gcs.push_back(std::move(frame));
  } else {
    channel_->to_vehicle.push_back(std::move(frame));
  }
}

inline std::optional<Message> Endpoint::receive() {
  auto& queue = is_vehicle_ ? channel_->to_vehicle : channel_->to_gcs;
  while (!queue.empty()) {
    auto bytes = std::move(queue.front());
    queue.pop_front();
    auto msg = unpack(bytes);  // corrupted frames are dropped
    channel_->recycle_frame(std::move(bytes));
    if (msg) return msg;
  }
  return std::nullopt;
}

inline bool Endpoint::has_pending() const {
  return !(is_vehicle_ ? channel_->to_vehicle : channel_->to_gcs).empty();
}

}  // namespace avis::mavlink
