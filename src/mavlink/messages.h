// MAVLink-like message set (paper §IV-A, §V-A).
//
// The subset needed by the workload framework and the firmware: heartbeats,
// long commands (arm/takeoff/land/RTL/mode), the mission-upload handshake
// (COUNT -> REQUEST xN -> ACK, vehicle-driven, which is the deadlock hazard
// the framework exists to hide), telemetry, and status text. Message ids
// follow the real MAVLink common dialect where one exists.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "geo/geodesy.h"
#include "util/bytes.h"

namespace avis::mavlink {

enum class MsgId : std::uint8_t {
  kHeartbeat = 0,
  kSetMode = 11,
  kGlobalPositionInt = 33,
  kMissionItem = 39,
  kMissionRequest = 40,
  kMissionCurrent = 42,
  kMissionCount = 44,
  kMissionItemReached = 46,
  kMissionAck = 47,
  kRcOverride = 70,
  kCommandLong = 76,
  kCommandAck = 77,
  kFenceEnable = 161,   // dialect-specific in real MAVLink; fixed id here
  kStatusText = 253,
};

// MAV_CMD subset.
enum class Command : std::uint16_t {
  kNavWaypoint = 16,
  kNavReturnToLaunch = 20,
  kNavLand = 21,
  kNavTakeoff = 22,
  kDoSetMode = 176,
  kComponentArmDisarm = 400,
};

enum class CommandResult : std::uint8_t { kAccepted = 0, kDenied = 2, kFailed = 4 };

struct Heartbeat {
  std::uint8_t system_status = 0;  // MAV_STATE: 3 standby, 4 active, 6 emergency
  std::uint32_t custom_mode = 0;   // firmware-specific mode id
  bool armed = false;
};

struct SetMode {
  std::uint32_t custom_mode = 0;
};

struct GlobalPositionInt {
  std::int64_t time_ms = 0;
  geo::GeoPoint position;
  double relative_alt_m = 0.0;
  geo::Vec3 velocity_ned;
  double heading_rad = 0.0;
};

struct MissionItem {
  std::uint16_t seq = 0;
  Command command = Command::kNavWaypoint;
  double param1 = 0.0;  // e.g. hold time / min pitch
  geo::GeoPoint position;
};

struct MissionRequest {
  std::uint16_t seq = 0;
};

struct MissionCurrent {
  std::uint16_t seq = 0;
};

struct MissionCount {
  std::uint16_t count = 0;
};

struct MissionItemReached {
  std::uint16_t seq = 0;
};

enum class MissionResult : std::uint8_t { kAccepted = 0, kError = 1, kInvalidSequence = 13 };

struct MissionAck {
  MissionResult result = MissionResult::kAccepted;
};

// Pilot stick input (RC_CHANNELS_OVERRIDE analogue), normalized to [-1, 1].
// The manual box workload flies with these; manual modes map them to
// velocity / yaw-rate demands.
struct RcOverride {
  double roll = 0.0;      // + = right
  double pitch = 0.0;     // + = forward
  double throttle = 0.0;  // + = climb
  double yaw = 0.0;       // + = clockwise yaw rate
};

struct CommandLong {
  Command command = Command::kNavWaypoint;
  double param1 = 0.0;
  double param2 = 0.0;
  double param3 = 0.0;
  double param4 = 0.0;
  double param5 = 0.0;  // latitude by MAVLink convention
  double param6 = 0.0;  // longitude
  double param7 = 0.0;  // altitude
};

struct CommandAck {
  Command command = Command::kNavWaypoint;
  CommandResult result = CommandResult::kAccepted;
};

struct FenceEnable {
  bool enable = false;
  double min_north = 0.0;
  double max_north = 0.0;
  double min_east = 0.0;
  double max_east = 0.0;
  double max_altitude = 0.0;
};

struct StatusText {
  std::uint8_t severity = 6;  // MAV_SEVERITY_INFO
  std::string text;
};

using Message =
    std::variant<Heartbeat, SetMode, GlobalPositionInt, MissionItem, MissionRequest,
                 MissionCurrent, MissionCount, MissionItemReached, MissionAck, RcOverride,
                 CommandLong, CommandAck, FenceEnable, StatusText>;

MsgId message_id(const Message& m);
// Append the payload bytes to a (caller-cleared) reusable writer; the
// allocation-free path Endpoint::send packs through.
void encode_payload_into(const Message& m, util::ByteWriter& w);
std::vector<std::uint8_t> encode_payload(const Message& m);
// Decodes in place from any contiguous byte range (vector, frame slice).
Message decode_payload(MsgId id, std::span<const std::uint8_t> payload);

}  // namespace avis::mavlink
