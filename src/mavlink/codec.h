// MAVLink v1-style framing: STX, length, sequence, system/component ids,
// message id, payload, X.25 CRC-16. The checksum algorithm is the real
// MAVLink one (CRC-16/MCRF4XX) so corrupted-frame tests exercise authentic
// behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mavlink/messages.h"
#include "util/bytes.h"

namespace avis::mavlink {

inline constexpr std::uint8_t kStx = 0xFE;

struct Frame {
  std::uint8_t seq = 0;
  std::uint8_t system_id = 0;
  std::uint8_t component_id = 0;
  MsgId msg_id = MsgId::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

// CRC-16/MCRF4XX as used by MAVLink (x25 checksum, init 0xffff).
inline std::uint16_t crc_x25(const std::uint8_t* data, std::size_t len,
                             std::uint16_t crc = 0xffff) {
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t tmp = data[i] ^ static_cast<std::uint8_t>(crc & 0xff);
    tmp ^= static_cast<std::uint8_t>(tmp << 4);
    crc = static_cast<std::uint16_t>((crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4));
  }
  return crc;
}

// Serializes a frame to wire bytes.
inline std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  out.push_back(kStx);
  out.push_back(static_cast<std::uint8_t>(f.payload.size() & 0xff));
  out.push_back(static_cast<std::uint8_t>(f.payload.size() >> 8));
  out.push_back(f.seq);
  out.push_back(f.system_id);
  out.push_back(f.component_id);
  out.push_back(static_cast<std::uint8_t>(f.msg_id));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  // CRC over everything after STX.
  const std::uint16_t crc = crc_x25(out.data() + 1, out.size() - 1);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  return out;
}

// Validates frame structure (STX, declared length, CRC) and returns the
// payload slice, or nullopt on any corruption. Single source of truth for
// the checks both decode paths (Frame-building and in-place) rely on.
inline std::optional<std::span<const std::uint8_t>> validate_frame(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 9 || bytes[0] != kStx) return std::nullopt;
  const std::size_t payload_len =
      static_cast<std::size_t>(bytes[1]) | (static_cast<std::size_t>(bytes[2]) << 8);
  if (bytes.size() != 9 + payload_len) return std::nullopt;
  const std::uint16_t wire_crc = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(bytes[bytes.size() - 2]) |
      (static_cast<std::uint16_t>(bytes[bytes.size() - 1]) << 8));
  if (crc_x25(bytes.data() + 1, bytes.size() - 3) != wire_crc) return std::nullopt;
  return bytes.subspan(7, payload_len);
}

// Parses wire bytes back into a frame. Returns nullopt on any corruption
// (bad STX, truncation, CRC mismatch).
inline std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& bytes) {
  const auto payload = validate_frame(bytes);
  if (!payload) return std::nullopt;
  Frame f;
  f.seq = bytes[3];
  f.system_id = bytes[4];
  f.component_id = bytes[5];
  f.msg_id = static_cast<MsgId>(bytes[6]);
  f.payload.assign(payload->begin(), payload->end());
  return f;
}

// Message -> frame bytes, written into a caller-owned buffer. The payload
// is staged through a reusable scratch writer and the frame vector is
// cleared and overwritten, so a send path that recycles both (see
// mavlink::Channel) allocates nothing once warmed up. Byte layout is
// identical to encode_frame (the wrapper below shares this code).
inline void pack_into(const Message& m, std::uint8_t seq, std::uint8_t sys, std::uint8_t comp,
                      util::ByteWriter& payload_scratch, std::vector<std::uint8_t>& out) {
  payload_scratch.clear();
  encode_payload_into(m, payload_scratch);
  const auto payload = payload_scratch.span();
  out.clear();
  out.reserve(9 + payload.size());
  out.push_back(kStx);
  out.push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
  out.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  out.push_back(seq);
  out.push_back(sys);
  out.push_back(comp);
  out.push_back(static_cast<std::uint8_t>(message_id(m)));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t crc = crc_x25(out.data() + 1, out.size() - 1);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
}

// Convenience: full message -> frame bytes and back.
inline std::vector<std::uint8_t> pack(const Message& m, std::uint8_t seq, std::uint8_t sys,
                                      std::uint8_t comp) {
  util::ByteWriter payload;
  std::vector<std::uint8_t> out;
  pack_into(m, seq, sys, comp, payload, out);
  return out;
}

// Frame bytes -> message, decoding the payload in place (no Frame struct,
// no payload copy). Same validation as decode_frame: nullopt on bad STX,
// truncation, or CRC mismatch.
inline std::optional<Message> unpack(const std::vector<std::uint8_t>& bytes) {
  const auto payload = validate_frame(bytes);
  if (!payload) return std::nullopt;
  return decode_payload(static_cast<MsgId>(bytes[6]), *payload);
}

}  // namespace avis::mavlink
