#include "mavlink/messages.h"

namespace avis::mavlink {

namespace {

void put_geo(util::ByteWriter& w, const geo::GeoPoint& p) {
  w.f64(p.latitude_deg);
  w.f64(p.longitude_deg);
  w.f64(p.altitude_m);
}

geo::GeoPoint get_geo(util::ByteReader& r) {
  geo::GeoPoint p;
  p.latitude_deg = r.f64();
  p.longitude_deg = r.f64();
  p.altitude_m = r.f64();
  return p;
}

void put_vec(util::ByteWriter& w, const geo::Vec3& v) {
  w.f64(v.x);
  w.f64(v.y);
  w.f64(v.z);
}

geo::Vec3 get_vec(util::ByteReader& r) {
  geo::Vec3 v;
  v.x = r.f64();
  v.y = r.f64();
  v.z = r.f64();
  return v;
}

}  // namespace

MsgId message_id(const Message& m) {
  struct Visitor {
    MsgId operator()(const Heartbeat&) const { return MsgId::kHeartbeat; }
    MsgId operator()(const SetMode&) const { return MsgId::kSetMode; }
    MsgId operator()(const GlobalPositionInt&) const { return MsgId::kGlobalPositionInt; }
    MsgId operator()(const MissionItem&) const { return MsgId::kMissionItem; }
    MsgId operator()(const MissionRequest&) const { return MsgId::kMissionRequest; }
    MsgId operator()(const MissionCurrent&) const { return MsgId::kMissionCurrent; }
    MsgId operator()(const MissionCount&) const { return MsgId::kMissionCount; }
    MsgId operator()(const MissionItemReached&) const { return MsgId::kMissionItemReached; }
    MsgId operator()(const MissionAck&) const { return MsgId::kMissionAck; }
    MsgId operator()(const RcOverride&) const { return MsgId::kRcOverride; }
    MsgId operator()(const CommandLong&) const { return MsgId::kCommandLong; }
    MsgId operator()(const CommandAck&) const { return MsgId::kCommandAck; }
    MsgId operator()(const FenceEnable&) const { return MsgId::kFenceEnable; }
    MsgId operator()(const StatusText&) const { return MsgId::kStatusText; }
  };
  return std::visit(Visitor{}, m);
}

void encode_payload_into(const Message& m, util::ByteWriter& w) {
  if (const auto* hb = std::get_if<Heartbeat>(&m)) {
    w.u8(hb->system_status);
    w.u32(hb->custom_mode);
    w.u8(hb->armed ? 1 : 0);
  } else if (const auto* sm = std::get_if<SetMode>(&m)) {
    w.u32(sm->custom_mode);
  } else if (const auto* gp = std::get_if<GlobalPositionInt>(&m)) {
    w.i64(gp->time_ms);
    put_geo(w, gp->position);
    w.f64(gp->relative_alt_m);
    put_vec(w, gp->velocity_ned);
    w.f64(gp->heading_rad);
  } else if (const auto* mi = std::get_if<MissionItem>(&m)) {
    w.u16(mi->seq);
    w.u16(static_cast<std::uint16_t>(mi->command));
    w.f64(mi->param1);
    put_geo(w, mi->position);
  } else if (const auto* mr = std::get_if<MissionRequest>(&m)) {
    w.u16(mr->seq);
  } else if (const auto* mc = std::get_if<MissionCurrent>(&m)) {
    w.u16(mc->seq);
  } else if (const auto* cnt = std::get_if<MissionCount>(&m)) {
    w.u16(cnt->count);
  } else if (const auto* mir = std::get_if<MissionItemReached>(&m)) {
    w.u16(mir->seq);
  } else if (const auto* ack = std::get_if<MissionAck>(&m)) {
    w.u8(static_cast<std::uint8_t>(ack->result));
  } else if (const auto* rc = std::get_if<RcOverride>(&m)) {
    w.f64(rc->roll);
    w.f64(rc->pitch);
    w.f64(rc->throttle);
    w.f64(rc->yaw);
  } else if (const auto* cl = std::get_if<CommandLong>(&m)) {
    w.u16(static_cast<std::uint16_t>(cl->command));
    w.f64(cl->param1);
    w.f64(cl->param2);
    w.f64(cl->param3);
    w.f64(cl->param4);
    w.f64(cl->param5);
    w.f64(cl->param6);
    w.f64(cl->param7);
  } else if (const auto* ca = std::get_if<CommandAck>(&m)) {
    w.u16(static_cast<std::uint16_t>(ca->command));
    w.u8(static_cast<std::uint8_t>(ca->result));
  } else if (const auto* fe = std::get_if<FenceEnable>(&m)) {
    w.u8(fe->enable ? 1 : 0);
    w.f64(fe->min_north);
    w.f64(fe->max_north);
    w.f64(fe->min_east);
    w.f64(fe->max_east);
    w.f64(fe->max_altitude);
  } else if (const auto* st = std::get_if<StatusText>(&m)) {
    w.u8(st->severity);
    w.str(st->text);
  }
}

std::vector<std::uint8_t> encode_payload(const Message& m) {
  util::ByteWriter w;
  encode_payload_into(m, w);
  return w.take();
}

Message decode_payload(MsgId id, std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  switch (id) {
    case MsgId::kHeartbeat: {
      Heartbeat hb;
      hb.system_status = r.u8();
      hb.custom_mode = r.u32();
      hb.armed = r.u8() != 0;
      return hb;
    }
    case MsgId::kSetMode: {
      SetMode sm;
      sm.custom_mode = r.u32();
      return sm;
    }
    case MsgId::kGlobalPositionInt: {
      GlobalPositionInt gp;
      gp.time_ms = r.i64();
      gp.position = get_geo(r);
      gp.relative_alt_m = r.f64();
      gp.velocity_ned = get_vec(r);
      gp.heading_rad = r.f64();
      return gp;
    }
    case MsgId::kMissionItem: {
      MissionItem mi;
      mi.seq = r.u16();
      mi.command = static_cast<Command>(r.u16());
      mi.param1 = r.f64();
      mi.position = get_geo(r);
      return mi;
    }
    case MsgId::kMissionRequest: {
      MissionRequest mr;
      mr.seq = r.u16();
      return mr;
    }
    case MsgId::kMissionCurrent: {
      MissionCurrent mc;
      mc.seq = r.u16();
      return mc;
    }
    case MsgId::kMissionCount: {
      MissionCount c;
      c.count = r.u16();
      return c;
    }
    case MsgId::kMissionItemReached: {
      MissionItemReached mir;
      mir.seq = r.u16();
      return mir;
    }
    case MsgId::kMissionAck: {
      MissionAck ack;
      ack.result = static_cast<MissionResult>(r.u8());
      return ack;
    }
    case MsgId::kRcOverride: {
      RcOverride rc;
      rc.roll = r.f64();
      rc.pitch = r.f64();
      rc.throttle = r.f64();
      rc.yaw = r.f64();
      return rc;
    }
    case MsgId::kCommandLong: {
      CommandLong cl;
      cl.command = static_cast<Command>(r.u16());
      cl.param1 = r.f64();
      cl.param2 = r.f64();
      cl.param3 = r.f64();
      cl.param4 = r.f64();
      cl.param5 = r.f64();
      cl.param6 = r.f64();
      cl.param7 = r.f64();
      return cl;
    }
    case MsgId::kCommandAck: {
      CommandAck ca;
      ca.command = static_cast<Command>(r.u16());
      ca.result = static_cast<CommandResult>(r.u8());
      return ca;
    }
    case MsgId::kFenceEnable: {
      FenceEnable fe;
      fe.enable = r.u8() != 0;
      fe.min_north = r.f64();
      fe.max_north = r.f64();
      fe.min_east = r.f64();
      fe.max_east = r.f64();
      fe.max_altitude = r.f64();
      return fe;
    }
    case MsgId::kStatusText: {
      StatusText st;
      st.severity = r.u8();
      st.text = r.str();
      return st;
    }
  }
  throw util::WireError("unknown mavlink message id");
}

}  // namespace avis::mavlink
