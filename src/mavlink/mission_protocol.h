// Ground-control-station side of the MAVLink mission-upload transaction.
//
// Paper §V-A: "to upload new missions the ground-control station first
// communicates the number of mission items to the vehicle and then waits for
// the vehicle to request each item". Because the vehicle drives the
// transaction, a naive GCS that blocks on requests can deadlock against a
// model checker that is itself synchronizing the vehicle — so this state
// machine is strictly non-blocking: pump() consumes whatever arrived and
// sends at most what was asked for.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mavlink/channel.h"
#include "mavlink/messages.h"
#include "util/checked.h"

namespace avis::mavlink {

class MissionUploader {
 public:
  enum class Phase { kIdle, kAwaitingRequests, kDone, kFailed };

  explicit MissionUploader(Endpoint& gcs) : gcs_(&gcs) {}

  // Begin a new upload. Any in-progress transaction is abandoned.
  void start(std::vector<MissionItem> items) {
    items_ = std::move(items);
    for (std::uint16_t i = 0; i < items_.size(); ++i) items_[i].seq = i;
    phase_ = Phase::kAwaitingRequests;
    MissionCount count;
    count.count = static_cast<std::uint16_t>(items_.size());
    gcs_->send(count);
  }

  // Feed one received message. Non-mission messages are ignored and returned
  // to the caller so other protocol layers can process them.
  std::optional<Message> handle(Message msg) {
    if (phase_ != Phase::kAwaitingRequests) return msg;
    if (const auto* req = std::get_if<MissionRequest>(&msg)) {
      if (req->seq < items_.size()) {
        gcs_->send(items_[req->seq]);
      } else {
        phase_ = Phase::kFailed;
      }
      return std::nullopt;
    }
    if (const auto* ack = std::get_if<MissionAck>(&msg)) {
      phase_ = ack->result == MissionResult::kAccepted ? Phase::kDone : Phase::kFailed;
      return std::nullopt;
    }
    return msg;
  }

  Phase phase() const { return phase_; }
  bool done() const { return phase_ == Phase::kDone; }
  bool failed() const { return phase_ == Phase::kFailed; }

  // Mid-run transaction state (experiment checkpointing): the staged items
  // and the phase; the endpoint wiring belongs to the hosting context.
  struct State {
    std::vector<MissionItem> items;
    Phase phase = Phase::kIdle;
  };

  State save() const { return {items_, phase_}; }

  void load(const State& s) {
    items_ = s.items;
    phase_ = s.phase;
  }

 private:
  Endpoint* gcs_;
  std::vector<MissionItem> items_;
  Phase phase_ = Phase::kIdle;
};

}  // namespace avis::mavlink
