#include "fuzz/mutator.h"

#include <set>
#include <string>

#include "sensors/sensor_models.h"
#include "sim/environment_presets.h"
#include "util/checked.h"
#include "workload/registry.h"

namespace avis::fuzz {
namespace {

// Operator indices. The dispatch draw is uniform over these, so adding an
// operator only appends a case — earlier seeds keep their meaning within a
// release but are not stable across operator-set changes (documented in
// docs/FUZZING.md).
enum Op : int {
  kSwapWorkload = 0,
  kSwapEnvironment,
  kSwapPersonality,
  kPerturbSetSize,
  kPerturbPlanEvents,
  kSetWindow,
  kClearWindow,
  kRedrawFaultTypes,
  kOpCount,
};

void p_apply(util::Rng& rng, core::ScenarioSpec& spec, const MutationConfig& config, int op) {
  switch (op) {
    case kSwapWorkload:
      spec.workload = util::pick_other_name(rng, workload::workload_registry(), spec.workload);
      break;
    case kSwapEnvironment:
      spec.environment =
          util::pick_other_name(rng, sim::environment_registry(), spec.environment);
      break;
    case kSwapPersonality:
      spec.personality =
          util::pick_other_name(rng, core::personality_registry(), spec.personality);
      break;
    case kPerturbSetSize:
      spec.constraints.max_set_size = static_cast<int>(
          util::perturb(rng, spec.constraints.max_set_size, config.set_size, 1));
      break;
    case kPerturbPlanEvents:
      spec.constraints.max_plan_events = static_cast<int>(
          util::perturb(rng, spec.constraints.max_plan_events, config.plan_events, 1));
      break;
    case kSetWindow: {
      // Snap to the coverage grid: the window mutation exists to move the
      // spec across (edge x window-bucket) coverage keys.
      const auto start_bucket = static_cast<sim::SimTimeMs>(
          rng.next_below(static_cast<std::uint64_t>(config.max_window_buckets)));
      const auto span = static_cast<sim::SimTimeMs>(
          1 + rng.next_below(static_cast<std::uint64_t>(config.max_window_span)));
      spec.constraints.window_start_ms = start_bucket * config.window_grid_ms;
      spec.constraints.window_end_ms = (start_bucket + span) * config.window_grid_ms;
      break;
    }
    case kClearWindow:
      spec.constraints.window_start_ms = 0;
      spec.constraints.window_end_ms = 0;
      break;
    case kRedrawFaultTypes: {
      // Draw 1..max_fault_types+1; the top value clears back to "all types".
      const auto size = static_cast<int>(
          1 + rng.next_below(static_cast<std::uint64_t>(config.max_fault_types + 1)));
      spec.constraints.fault_types.clear();
      if (size > config.max_fault_types) break;
      // `size` draws deduped through a std::set: the list stays sorted, so
      // equal type sets serialize identically (corpus dedup keys on JSON).
      std::set<std::string> names;
      for (int i = 0; i < size; ++i) {
        const auto index = rng.next_below(sensors::kAllSensorTypes.size());
        names.insert(std::string(sensors::to_string(sensors::kAllSensorTypes[index])));
      }
      spec.constraints.fault_types.assign(names.begin(), names.end());
      break;
    }
    default:
      util::expects(false, "mutate: unknown operator");
  }
}

}  // namespace

core::ScenarioSpec mutate(util::Rng& rng, const core::ScenarioSpec& parent,
                          const MutationConfig& config) {
  util::expects(config.max_ops >= 1, "mutate: max_ops must be >= 1");
  util::expects(config.max_window_buckets >= 1 && config.max_window_span >= 1,
                "mutate: window bounds must be >= 1");
  util::expects(config.max_fault_types >= 1, "mutate: max_fault_types must be >= 1");
  core::ScenarioSpec mutant = parent;
  const auto ops = 1 + rng.next_below(static_cast<std::uint64_t>(config.max_ops));
  for (std::uint64_t i = 0; i < ops; ++i) {
    p_apply(rng, mutant, config, static_cast<int>(rng.next_below(kOpCount)));
  }
  return mutant;
}

}  // namespace avis::fuzz
