// Coverage-guided scenario fuzz loop (docs/FUZZING.md).
//
// The fuzzer closes the loop the rest of the system leaves open: SABRE
// searches *within* a scenario, the campaign grid enumerates hand-curated
// scenarios — the fuzzer invents new ones. It evaluates the seed grid
// through the ordinary CampaignRunner, admits every cell into a
// coverage-keyed corpus, then repeatedly mutates corpus entries
// (fuzz/mutator.h) and keeps the mutants that reach (mode-graph edge x
// injection-window) coverage keys nothing reached before. Scenarios that
// manifest bugs no seed cell found are reported with a greedily minimized
// spec (mutated fields reverted toward the generation-0 ancestor while the
// bug keeps reproducing).
//
// Determinism: mutation draws come from one util::Rng seeded by
// FuzzOptions::seed, mutants are evaluated through CampaignRunner (whose
// cell reports are bit-identical at any worker count), and batches keep grid
// order — so the same seed yields a byte-identical corpus document and an
// equal coverage map on every run, at any parallelism (tests/test_fuzz.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/coverage.h"
#include "core/scenario.h"
#include "fuzz/corpus.h"
#include "fuzz/mutator.h"
#include "fw/bugs.h"

namespace avis::fuzz {

struct FuzzOptions {
  int generations = 4;            // mutation rounds after the seed evaluation
  int mutants_per_generation = 8;
  std::uint64_t seed = 1;         // mutation rng seed (independent of scenario seeds)
  MutationConfig mutation;
  core::CampaignOptions campaign;  // how each evaluation batch runs
  int minimize_budget = 8;         // extra evaluations spent minimizing one discovery
};

// One row of the coverage growth curve. Row 0 is the seed evaluation.
struct FuzzGenerationStats {
  int generation = 0;
  int evaluated = 0;      // scenarios run this generation
  int admitted = 0;       // corpus admissions
  int corpus_size = 0;    // after this generation
  int coverage_keys = 0;  // corpus union key count after this generation
  int new_bugs = 0;       // bugs first found this generation
};

// A fuzz-found bug: a mutant manifested a bug no earlier scenario (seed or
// mutant) manifested.
struct FuzzDiscovery {
  int generation = 0;
  std::vector<fw::BugId> new_bugs;
  core::ScenarioSpec spec;       // the mutant as drawn
  core::ScenarioSpec minimized;  // reverted toward its root while the bugs reproduce
};

struct FuzzResult {
  Corpus corpus;
  std::vector<FuzzGenerationStats> curve;
  std::vector<FuzzDiscovery> discoveries;
  core::CoverageMap baseline_coverage;  // union over the seed grid alone
  int evaluations = 0;                  // seeds + mutants + minimization probes
  double wall_seconds = 0.0;
};

// Runs the loop: evaluate seeds, then `generations` rounds of mutate ->
// evaluate -> admit/minimize. Throws util::UnknownNameError /
// util::InvariantError before any simulation if the seed grid is invalid.
FuzzResult run_fuzz(const core::ScenarioGrid& seed_grid, const FuzzOptions& options);

// The fuzz report: options echo, coverage growth curve, corpus entries
// (generation, novel keys, spec) and discoveries with minimized specs.
std::string fuzz_report_json(const FuzzResult& result, const FuzzOptions& options);

}  // namespace avis::fuzz
