#include "fuzz/corpus.h"

#include <algorithm>
#include <utility>

namespace avis::fuzz {

bool Corpus::consider(CorpusEntry entry) {
  entry.new_keys.clear();
  for (const auto& [key, count] : entry.coverage) {
    if (!union_.contains(key)) entry.new_keys.push_back(key);
  }
  if (entry.new_keys.empty()) return false;

  // Evict entries the newcomer dominates. Every evicted key set is a subset
  // of the newcomer's, so the union's key set is unchanged by eviction; the
  // counts are rebuilt below so they always sum over current entries.
  const auto dominated = [&entry](const CorpusEntry& existing) {
    return core::coverage_keys_subset(existing.coverage, entry.coverage);
  };
  evicted_ += static_cast<int>(std::count_if(entries_.begin(), entries_.end(), dominated));
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), dominated), entries_.end());

  entries_.push_back(std::move(entry));
  union_.clear();
  for (const CorpusEntry& kept : entries_) core::merge_coverage(union_, kept.coverage);
  return true;
}

core::ScenarioGrid Corpus::to_scenario_grid() const {
  core::ScenarioGrid grid;
  grid.approaches.clear();
  grid.personalities.clear();
  grid.workloads.clear();
  grid.environments.clear();
  grid.scenarios.reserve(entries_.size());
  for (const CorpusEntry& entry : entries_) grid.scenarios.push_back(entry.spec);
  return grid;
}

std::vector<core::ScenarioSpec> Corpus::load_specs(std::string_view json) {
  return core::ScenarioGrid::from_json(json).expand();
}

}  // namespace avis::fuzz
