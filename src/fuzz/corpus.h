// Coverage-keyed corpus manager (docs/FUZZING.md).
//
// The corpus holds the scenarios worth mutating further: an entry is
// admitted iff its run reached at least one (mode-graph edge x
// injection-window) coverage key no earlier entry reached — which also
// dedups by coverage signature, since a mutant whose keys are all known
// contributes nothing. Admission evicts entries the newcomer dominates
// (their key set is a subset of the newcomer's), so the corpus stays a
// frontier, not a history. No key is ever lost to eviction: an entry is only
// evicted by a newcomer that covers all of its keys.
//
// The on-disk format is a plain ScenarioGrid document with empty cartesian
// axes and the corpus specs as explicit `scenarios`, so a dumped corpus
// replays through the existing `avis_campaign --scenario-file` path with no
// fuzzer involved.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.h"
#include "core/coverage.h"
#include "core/scenario.h"

namespace avis::fuzz {

struct CorpusEntry {
  core::ScenarioSpec spec;
  core::CoverageMap coverage;  // full (key -> run count) map of the entry's run

  // Keys absent from the corpus union when this entry was admitted — the
  // reason it is in the corpus. Sorted (CoverageMap iteration order).
  std::vector<core::CoverageKey> new_keys;

  int generation = 0;  // 0 = seed grid, n = produced in fuzz generation n

  // The generation-0 ancestor spec, carried by value (eviction reorders the
  // corpus, so an index would dangle). Minimization reverts mutated fields
  // toward it.
  core::ScenarioSpec root;

  // The in-loop CheckerReport, kept for the replay-identity check
  // (tests/test_fuzz.cc re-runs the dumped spec and compares). Not
  // serialized — the corpus document holds specs only.
  core::CheckerReport report;
};

class Corpus {
 public:
  // Admits `entry` iff it reaches a coverage key absent from the union;
  // fills entry.new_keys, evicts dominated entries, and returns true. A
  // rejected entry leaves the corpus untouched.
  bool consider(CorpusEntry entry);

  const std::vector<CorpusEntry>& entries() const { return entries_; }
  const core::CoverageMap& coverage_union() const { return union_; }
  int evicted() const { return evicted_; }

  // The replayable document: a ScenarioGrid with empty axes and the corpus
  // specs (in corpus order) as explicit scenarios. Deterministic — the same
  // corpus always serializes byte-identically.
  core::ScenarioGrid to_scenario_grid() const;
  std::string to_scenario_grid_json() const { return to_scenario_grid().to_json(); }

  // Loads the specs back out of a dumped corpus document (or any scenario
  // grid — expansion order is the replay order the campaign runner uses).
  static std::vector<core::ScenarioSpec> load_specs(std::string_view json);

 private:
  std::vector<CorpusEntry> entries_;
  core::CoverageMap union_;  // counts summed over current entries
  int evicted_ = 0;
};

}  // namespace avis::fuzz
