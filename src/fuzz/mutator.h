// Seeded mutation engine over ScenarioSpec (docs/FUZZING.md).
//
// A mutant is its parent with 1..max_ops mutation operators applied, every
// operator drawing from registries or bounded integer ranges
// (util/mutation.h) so the result is valid by construction — mutate() never
// returns a spec that ScenarioSpec::validate() rejects. The engine only
// touches the fields that move coverage: workload, environment, personality,
// and the fault-plan constraints (set size, plan events, injection window,
// fault types). Approach, bug population, budget and seeds are identity
// fields of the fuzz campaign and stay fixed — the fuzzer compares mutants
// against their ancestors, which only makes sense when those are shared.
//
// All randomness comes from the caller's util::Rng, so a mutation sequence
// is a pure function of the fuzz seed (the determinism contract
// tests/test_fuzz.cc pins).
#pragma once

#include "core/coverage.h"
#include "core/scenario.h"
#include "util/mutation.h"
#include "util/rng.h"

namespace avis::fuzz {

struct MutationConfig {
  int max_ops = 2;  // operators per mutant: 1 + next_below(max_ops)

  // Bounds for the integer constraint perturbations.
  util::IntRange set_size = {1, 3};
  util::IntRange plan_events = {1, 4};

  // Injection-window mutation: windows snap to the coverage quantum so a
  // window mutation moves the spec across coverage buckets, not within one.
  sim::SimTimeMs window_grid_ms = core::kCoverageWindowMs;
  int max_window_buckets = 30;  // start bucket drawn from [0, max)
  int max_window_span = 4;      // window length, in buckets

  // Fault-type list redraw: how many names one redraw keeps (a draw of
  // `clear_size` clears the list back to "all types").
  int max_fault_types = 2;
};

// One mutant: `parent` with 1 + rng.next_below(config.max_ops) operators
// applied. May return a spec equal to the parent (e.g. a perturbation
// clamped back onto a bound); the corpus dedups those by spec identity.
core::ScenarioSpec mutate(util::Rng& rng, const core::ScenarioSpec& parent,
                          const MutationConfig& config = {});

}  // namespace avis::fuzz
