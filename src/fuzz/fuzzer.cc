#include "fuzz/fuzzer.h"

#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "util/checked.h"
#include "util/json.h"
#include "util/rng.h"

namespace avis::fuzz {
namespace {

// One scenario, end to end, with the campaign options' per-cell knobs. Cell
// reports are bit-identical at any worker count, so evaluating a mutant here
// or inside a batched CampaignRunner::run yields the same report.
core::CheckerReport p_evaluate_one(const core::ScenarioSpec& spec,
                                   const core::CampaignOptions& options) {
  core::CampaignCellSpec cell;
  cell.scenario = spec;
  const util::WorkerBudget split = util::split_worker_budget(options.total_workers, 1);
  const int experiment_workers =
      options.experiment_workers > 0 ? options.experiment_workers : split.experiment_workers;
  return core::run_cell(cell, experiment_workers, options.checkpoints, options.batch_width)
      .report;
}

bool p_finds_all(const core::CheckerReport& report, const std::vector<fw::BugId>& bugs) {
  for (fw::BugId bug : bugs) {
    if (!report.bug_first_found.contains(bug)) return false;
  }
  return true;
}

// Greedy one-pass minimization: revert each mutated field (in a fixed order)
// toward the generation-0 ancestor and keep the reversion when every
// discovered bug still reproduces. Bounded by options.minimize_budget
// evaluations; `evaluations` counts what was spent.
core::ScenarioSpec p_minimize(const core::ScenarioSpec& spec, const core::ScenarioSpec& root,
                              const std::vector<fw::BugId>& bugs, const FuzzOptions& options,
                              int& evaluations) {
  core::ScenarioSpec minimized = spec;
  int budget = options.minimize_budget;
  const auto try_revert = [&](auto&& revert) {
    if (budget <= 0) return;
    core::ScenarioSpec candidate = minimized;
    revert(candidate);
    if (candidate == minimized) return;
    --budget;
    ++evaluations;
    if (p_finds_all(p_evaluate_one(candidate, options.campaign), bugs)) {
      minimized = std::move(candidate);
    }
  };
  try_revert([&](core::ScenarioSpec& s) { s.workload = root.workload; });
  try_revert([&](core::ScenarioSpec& s) { s.environment = root.environment; });
  try_revert([&](core::ScenarioSpec& s) { s.personality = root.personality; });
  try_revert([&](core::ScenarioSpec& s) {
    s.constraints.max_set_size = root.constraints.max_set_size;
  });
  try_revert([&](core::ScenarioSpec& s) {
    s.constraints.max_plan_events = root.constraints.max_plan_events;
  });
  try_revert([&](core::ScenarioSpec& s) {
    s.constraints.window_start_ms = root.constraints.window_start_ms;
    s.constraints.window_end_ms = root.constraints.window_end_ms;
  });
  try_revert([&](core::ScenarioSpec& s) { s.constraints.fault_types = root.constraints.fault_types; });
  return minimized;
}

void p_append_key_array(std::ostream& os, const std::vector<core::CoverageKey>& keys) {
  os << "[";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << core::coverage_key_string(keys[i]) << "\"";
  }
  os << "]";
}

}  // namespace

FuzzResult run_fuzz(const core::ScenarioGrid& seed_grid, const FuzzOptions& options) {
  util::expects(options.generations >= 1, "fuzz: generations must be >= 1");
  util::expects(options.mutants_per_generation >= 1,
                "fuzz: mutants_per_generation must be >= 1");
  seed_grid.validate();

  const auto started = std::chrono::steady_clock::now();
  FuzzResult result;
  util::Rng rng(options.seed);
  const core::CampaignRunner runner(options.campaign);

  // Generation 0: the seed grid, through the ordinary campaign path.
  const std::vector<core::CampaignCellSpec> seed_cells = core::expand_to_cells(seed_grid);
  core::CampaignResult seed_run = runner.run(seed_cells);

  std::set<std::string> seen_specs;   // spec JSON — never evaluate a spec twice
  std::set<fw::BugId> known_bugs;     // bugs any scenario has manifested so far
  // Mutation parents when the corpus is empty: a micro-budget seed grid can
  // produce zero coverage (every run bricks on the pad with one mode), and
  // the loop must still make progress — a mutated injection window often
  // reaches edges the unconstrained seeds never do.
  std::vector<core::ScenarioSpec> seed_specs;
  FuzzGenerationStats seed_stats;
  for (std::size_t i = 0; i < seed_run.cells.size(); ++i) {
    core::CampaignCellResult& cell = seed_run.cells[i];
    core::merge_coverage(result.baseline_coverage, cell.report.edge_coverage);
    for (const auto& [bug, index] : cell.report.bug_first_found) known_bugs.insert(bug);
    seen_specs.insert(cell.spec.scenario.to_json());
    seed_specs.push_back(cell.spec.scenario);
    CorpusEntry entry;
    entry.spec = cell.spec.scenario;
    entry.root = cell.spec.scenario;
    entry.coverage = cell.report.edge_coverage;
    entry.generation = 0;
    entry.report = std::move(cell.report);
    seed_stats.admitted += result.corpus.consider(std::move(entry)) ? 1 : 0;
  }
  result.evaluations += static_cast<int>(seed_run.cells.size());
  seed_stats.generation = 0;
  seed_stats.evaluated = static_cast<int>(seed_run.cells.size());
  seed_stats.corpus_size = static_cast<int>(result.corpus.entries().size());
  seed_stats.coverage_keys = static_cast<int>(result.corpus.coverage_union().size());
  seed_stats.new_bugs = static_cast<int>(known_bugs.size());
  result.curve.push_back(seed_stats);

  for (int generation = 1; generation <= options.generations; ++generation) {
    // Draw this generation's batch: parent picked uniformly from the corpus,
    // mutants deduped (across the whole run) by spec identity. The attempt
    // bound keeps a saturated space from spinning forever.
    std::vector<core::CampaignCellSpec> batch;
    std::vector<core::ScenarioSpec> roots;
    const int max_attempts = 20 * options.mutants_per_generation;
    for (int attempt = 0;
         attempt < max_attempts &&
         static_cast<int>(batch.size()) < options.mutants_per_generation;
         ++attempt) {
      const auto& entries = result.corpus.entries();
      const core::ScenarioSpec* parent_spec = nullptr;
      const core::ScenarioSpec* parent_root = nullptr;
      if (!entries.empty()) {
        const CorpusEntry& parent = entries[rng.next_below(entries.size())];
        parent_spec = &parent.spec;
        parent_root = &parent.root;
      } else {
        const core::ScenarioSpec& seed = seed_specs[rng.next_below(seed_specs.size())];
        parent_spec = &seed;
        parent_root = &seed;
      }
      core::ScenarioSpec mutant = mutate(rng, *parent_spec, options.mutation);
      if (!seen_specs.insert(mutant.to_json()).second) continue;
      core::CampaignCellSpec cell;
      cell.scenario = std::move(mutant);
      batch.push_back(std::move(cell));
      roots.push_back(*parent_root);
    }

    FuzzGenerationStats stats;
    stats.generation = generation;
    stats.evaluated = static_cast<int>(batch.size());
    if (!batch.empty()) {
      core::CampaignResult run = runner.run(batch);
      result.evaluations += static_cast<int>(run.cells.size());
      for (std::size_t i = 0; i < run.cells.size(); ++i) {
        core::CampaignCellResult& cell = run.cells[i];
        std::vector<fw::BugId> fresh;
        for (const auto& [bug, index] : cell.report.bug_first_found) {
          if (known_bugs.insert(bug).second) fresh.push_back(bug);
        }
        CorpusEntry entry;
        entry.spec = cell.spec.scenario;
        entry.root = roots[i];
        entry.coverage = cell.report.edge_coverage;
        entry.generation = generation;
        entry.report = std::move(cell.report);
        stats.admitted += result.corpus.consider(std::move(entry)) ? 1 : 0;
        if (!fresh.empty()) {
          FuzzDiscovery discovery;
          discovery.generation = generation;
          discovery.new_bugs = fresh;
          discovery.spec = cell.spec.scenario;
          discovery.minimized = p_minimize(cell.spec.scenario, roots[i], fresh, options,
                                           result.evaluations);
          stats.new_bugs += static_cast<int>(fresh.size());
          result.discoveries.push_back(std::move(discovery));
        }
      }
    }
    stats.corpus_size = static_cast<int>(result.corpus.entries().size());
    stats.coverage_keys = static_cast<int>(result.corpus.coverage_union().size());
    result.curve.push_back(stats);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return result;
}

std::string fuzz_report_json(const FuzzResult& result, const FuzzOptions& options) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"fuzz\": {\n";
  os << "    \"generations\": " << options.generations << ",\n";
  os << "    \"mutants_per_generation\": " << options.mutants_per_generation << ",\n";
  os << "    \"seed\": " << options.seed << ",\n";
  os << "    \"minimize_budget\": " << options.minimize_budget << ",\n";
  os << "    \"evaluations\": " << result.evaluations << ",\n";
  os << "    \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "    \"baseline_coverage_keys\": " << result.baseline_coverage.size() << ",\n";
  os << "    \"coverage_keys\": " << result.corpus.coverage_union().size() << ",\n";
  os << "    \"corpus_evicted\": " << result.corpus.evicted() << ",\n";
  os << "    \"coverage_curve\": [\n";
  for (std::size_t i = 0; i < result.curve.size(); ++i) {
    const FuzzGenerationStats& row = result.curve[i];
    os << "      {\"generation\": " << row.generation << ", \"evaluated\": " << row.evaluated
       << ", \"admitted\": " << row.admitted << ", \"corpus_size\": " << row.corpus_size
       << ", \"coverage_keys\": " << row.coverage_keys << ", \"new_bugs\": " << row.new_bugs
       << "}";
    if (i + 1 < result.curve.size()) os << ",";
    os << "\n";
  }
  os << "    ]\n";
  os << "  },\n";
  os << "  \"corpus\": [\n";
  const auto& entries = result.corpus.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "    {\n";
    os << "      \"generation\": " << entries[i].generation << ",\n";
    os << "      \"new_keys\": ";
    p_append_key_array(os, entries[i].new_keys);
    os << ",\n";
    os << "      \"scenario\":\n" << entries[i].spec.to_json(6) << "\n";
    os << "    }";
    if (i + 1 < entries.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n";
  os << "  \"discoveries\": [\n";
  for (std::size_t i = 0; i < result.discoveries.size(); ++i) {
    const FuzzDiscovery& discovery = result.discoveries[i];
    os << "    {\n";
    os << "      \"generation\": " << discovery.generation << ",\n";
    os << "      \"new_bugs\": [";
    for (std::size_t b = 0; b < discovery.new_bugs.size(); ++b) {
      if (b) os << ", ";
      os << "\"" << util::json_escape(fw::bug_info(discovery.new_bugs[b]).report_name)
         << "\"";
    }
    os << "],\n";
    os << "      \"scenario\":\n" << discovery.spec.to_json(6) << ",\n";
    os << "      \"minimized\":\n" << discovery.minimized.to_json(6) << "\n";
    os << "    }";
    if (i + 1 < result.discoveries.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace avis::fuzz
