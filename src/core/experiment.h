// Experiment specification and result types shared by the harness, the
// invariant monitor, and every search strategy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workload/workload.h"

#include "fw/bugs.h"
#include "fw/modes.h"
#include "core/fault_plan.h"
#include "geo/vec3.h"
#include "sim/vehicle_state.h"
#include "workload/default_workloads.h"

namespace avis::core {

// One entry in the mode trace the engine records through hinj.
struct ModeTransition {
  sim::SimTimeMs time_ms = 0;
  std::uint16_t mode_id = 0;
  std::string mode_name;
};

// The paper's state tuple (P, alpha, M) sampled along a run (§IV-C),
// plus the physical flags the safety rule needs.
struct StateSample {
  sim::SimTimeMs time_ms = 0;
  geo::Vec3 position;
  geo::Vec3 acceleration;
  std::uint16_t mode_id = 0;
  bool on_ground = false;
  bool armed = false;
};

inline constexpr sim::SimTimeMs kSamplePeriodMs = 100;  // 10 Hz monitor rate

enum class ViolationType : std::uint8_t {
  kCrash,          // physical collision (safety rule)
  kFirmwareDead,   // firmware process aborted (safety rule)
  kLiveliness,     // Eq. 1: state deviates from every profiling run
  kFlyAway,        // hard backstop: left the profiled flight volume
};

inline const char* to_string(ViolationType v) {
  switch (v) {
    case ViolationType::kCrash: return "crash";
    case ViolationType::kFirmwareDead: return "firmware-dead";
    case ViolationType::kLiveliness: return "liveliness";
    case ViolationType::kFlyAway: return "fly-away";
  }
  return "?";
}

struct Violation {
  ViolationType type = ViolationType::kLiveliness;
  sim::SimTimeMs time_ms = 0;
  std::uint16_t mode_id = 0;  // composite mode at violation time
  std::string details;

  fw::ModeBucket bucket() const {
    return fw::bucket_of(fw::CompositeMode::from_id(mode_id).mode);
  }
};

struct ExperimentSpec {
  fw::Personality personality = fw::Personality::kArduPilotLike;
  workload::WorkloadId workload = workload::WorkloadId::kAuto;
  // Custom workloads built with the framework plug in here; when set it
  // overrides `workload`. Registry-named scenarios (core/scenario.h) always
  // arrive through this factory.
  std::function<std::unique_ptr<workload::Workload>()> workload_factory;
  // The world the run flies in; empty means the default flat calm field
  // (the "calm" preset in sim/environment_presets.h). The factory must be a
  // pure function so a run stays a pure function of its spec; keep captures
  // small — the spec (and this function) is copied once per experiment.
  std::function<sim::Environment()> environment_factory;
  fw::BugRegistry bugs = fw::BugRegistry::current_code_base();
  FaultPlan plan;
  std::uint64_t seed = 1;
  sim::SimTimeMs max_duration_ms = 150000;
  bool stop_on_violation = true;
};

struct ExperimentResult {
  bool workload_passed = false;
  std::optional<Violation> violation;
  std::vector<ModeTransition> transitions;
  std::vector<StateSample> trace;  // sampled at kSamplePeriodMs
  std::vector<fw::BugId> fired_bugs;
  sim::SimTimeMs duration_ms = 0;
  sim::CrashCause crash_cause = sim::CrashCause::kNone;
  // Checkpointing provenance: the sim time this run resumed from a recorded
  // prefix snapshot (0 = simulated from scratch). Wall-clock accounting
  // only — every observable field above is bit-identical either way, and
  // duration_ms stays the run's full logical duration.
  sim::SimTimeMs resumed_from_ms = 0;
  // Depth of the checkpoint the run resumed from: 0 = fault-free root (or
  // cold when resumed_from_ms == 0), d >= 1 = a tree snapshot with d
  // injections already activated. Wall-clock provenance like
  // resumed_from_ms; feeds the per-level hit counters in CheckerReport.
  int resumed_depth = 0;

  bool unsafe() const { return violation.has_value(); }
};

}  // namespace avis::core
