#include "core/scenario.h"

#include <sstream>

#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/harness.h"
#include "core/sabre.h"
#include "sim/environment_presets.h"
#include "util/checked.h"
#include "workload/registry.h"

namespace avis::core {

namespace {

// Keys accepted by the scenario / grid parsers. Unknown keys are rejected
// loudly — a typo'd "envrionment" silently falling back to "calm" would
// invalidate a whole campaign.
constexpr const char* kSpecKeys[] = {"approach",  "personality",   "workload",
                                     "environment", "bugs",        "budget_ms",
                                     "seed",        "strategy_seed", "constraints"};
constexpr const char* kGridKeys[] = {"approaches",  "personalities", "workloads",
                                     "environments", "bugs",         "budget_ms",
                                     "seed",         "strategy_seed", "constraints",
                                     "scenarios"};
constexpr const char* kConstraintKeys[] = {"max_set_size", "max_plan_events",
                                           "window_start_ms", "window_end_ms", "fault_types"};

void p_append_string_array(std::ostream& os, const std::vector<std::string>& values);

std::vector<std::string> p_fault_type_names() {
  std::vector<std::string> names;
  names.reserve(sensors::kAllSensorTypes.size());
  for (sensors::SensorType type : sensors::kAllSensorTypes) {
    names.push_back(sensors::to_string(type));
  }
  return names;
}

void p_validate_constraints(const FaultPlanConstraints& constraints) {
  util::expects(constraints.max_set_size >= 1, "constraints.max_set_size must be >= 1");
  util::expects(constraints.max_plan_events >= 1, "constraints.max_plan_events must be >= 1");
  util::expects(constraints.window_start_ms >= 0,
                "constraints.window_start_ms must be non-negative");
  util::expects(constraints.window_end_ms == 0 ||
                    constraints.window_end_ms > constraints.window_start_ms,
                "constraints.window_end_ms must be 0 (unbounded) or after window_start_ms");
  for (const std::string& name : constraints.fault_types) resolve_fault_type(name);
}

template <std::size_t N>
void p_reject_unknown_keys(const util::Json& object, const char* const (&known)[N],
                           const char* what) {
  for (const auto& [key, value] : object.as_object()) {
    bool recognized = false;
    for (const char* candidate : known) {
      if (key == candidate) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      std::vector<std::string> names(std::begin(known), std::end(known));
      throw util::JsonError(std::string(what) + ": " +
                            util::unknown_name_message("key", key, names));
    }
  }
}

FaultPlanConstraints p_constraints_from_json(const util::Json* json) {
  FaultPlanConstraints constraints;
  if (json == nullptr) return constraints;
  p_reject_unknown_keys(*json, kConstraintKeys, "constraints");
  constraints.max_set_size =
      static_cast<int>(json->get_int64("max_set_size", constraints.max_set_size));
  constraints.max_plan_events =
      static_cast<int>(json->get_int64("max_plan_events", constraints.max_plan_events));
  constraints.window_start_ms = json->get_int64("window_start_ms", constraints.window_start_ms);
  constraints.window_end_ms = json->get_int64("window_end_ms", constraints.window_end_ms);
  constraints.fault_types = json->get_string_array("fault_types", constraints.fault_types);
  p_validate_constraints(constraints);
  return constraints;
}

void p_append_constraints_json(std::ostream& os, const FaultPlanConstraints& constraints,
                               const std::string& pad) {
  os << pad << "\"constraints\": {\"max_set_size\": " << constraints.max_set_size
     << ", \"max_plan_events\": " << constraints.max_plan_events
     << ", \"window_start_ms\": " << constraints.window_start_ms
     << ", \"window_end_ms\": " << constraints.window_end_ms;
  // Emitted only when restricting: the empty list means "all types", and
  // omitting it keeps the default round trip byte-stable.
  if (!constraints.fault_types.empty()) {
    os << ", \"fault_types\": ";
    p_append_string_array(os, constraints.fault_types);
  }
  os << "}";
}

void p_append_string_array(std::ostream& os, const std::vector<std::string>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << util::json_escape(values[i]) << "\"";
  }
  os << "]";
}

SabreConfig p_sabre_config(const FaultPlanConstraints& constraints) {
  SabreConfig config;
  config.max_set_size = constraints.max_set_size;
  config.max_plan_events = constraints.max_plan_events;
  config.window_start_ms = constraints.window_start_ms;
  config.window_end_ms = constraints.window_end_ms;
  config.allowed_type_mask = fault_type_mask(constraints.fault_types);
  return config;
}

}  // namespace

sensors::SensorType resolve_fault_type(std::string_view name) {
  for (sensors::SensorType type : sensors::kAllSensorTypes) {
    if (name == sensors::to_string(type)) return type;
  }
  throw util::UnknownNameError(
      util::unknown_name_message("fault type", std::string(name), p_fault_type_names()));
}

std::uint32_t fault_type_mask(const std::vector<std::string>& fault_types) {
  if (fault_types.empty()) {
    return (std::uint32_t{1} << sensors::kAllSensorTypes.size()) - 1;
  }
  std::uint32_t mask = 0;
  for (const std::string& name : fault_types) {
    mask |= std::uint32_t{1} << static_cast<unsigned>(resolve_fault_type(name));
  }
  return mask;
}

// --- Registries -----------------------------------------------------------

util::Registry<ApproachInfo>& approach_registry() {
  static util::Registry<ApproachInfo> registry = [] {
    util::Registry<ApproachInfo> r("approach", "approaches");
    r.add("avis", "SABRE: mode-transition-targeted injection (the paper's Avis)",
          ApproachInfo{"Avis", [](const MonitorModel& model, const ScenarioSpec& spec) {
                         return std::unique_ptr<InjectionStrategy>(
                             std::make_unique<SabreScheduler>(
                                 SimulationHarness::iris_suite(), model.golden_transitions(),
                                 p_sabre_config(spec.constraints)));
                       }});
    r.add("stratified-bfi",
          "SABRE's stratified schedule gated by the BFI Bayes model (paper Table I)",
          ApproachInfo{"Strat. BFI", [](const MonitorModel& model, const ScenarioSpec& spec) {
                         return std::unique_ptr<InjectionStrategy>(
                             std::make_unique<baselines::StratifiedBfi>(
                                 SimulationHarness::iris_suite(), model.golden_transitions(),
                                 shared_bayes(), /*run_threshold=*/0.45,
                                 p_sabre_config(spec.constraints)));
                       }});
    r.add("bfi", "Bayes-guided fault injection; labeling charges the budget (paper §VI)",
          ApproachInfo{"BFI", [](const MonitorModel& model, const ScenarioSpec& spec) {
                         baselines::BfiConfig config;
                         config.max_set_size = spec.constraints.max_set_size;
                         config.window_start_ms = spec.constraints.window_start_ms;
                         config.window_end_ms = spec.constraints.window_end_ms;
                         config.allowed_type_mask =
                             fault_type_mask(spec.constraints.fault_types);
                         baselines::ModeTimeline timeline(model.golden_transitions());
                         return std::unique_ptr<InjectionStrategy>(
                             std::make_unique<baselines::BfiChecker>(
                                 SimulationHarness::iris_suite(), shared_bayes(),
                                 std::move(timeline), spec.strategy_seed, config));
                       }});
    r.add("random", "uniformly random injection sites and failure sets (paper §VI)",
          ApproachInfo{"Random", [](const MonitorModel& model, const ScenarioSpec& spec) {
                         return std::unique_ptr<InjectionStrategy>(
                             std::make_unique<baselines::RandomInjection>(
                                 SimulationHarness::iris_suite(),
                                 model.profiling_duration_ms(), spec.strategy_seed,
                                 spec.constraints.window_start_ms,
                                 spec.constraints.window_end_ms,
                                 fault_type_mask(spec.constraints.fault_types)));
                       }});
    r.add("sbfi", "alias for stratified-bfi",
          ApproachInfo{"Strat. BFI", [](const MonitorModel& model, const ScenarioSpec& spec) {
                         return approach_registry().at("stratified-bfi").factory.make(model,
                                                                                      spec);
                       }});
    return r;
  }();
  return registry;
}

util::Registry<fw::Personality>& personality_registry() {
  static util::Registry<fw::Personality> registry = [] {
    util::Registry<fw::Personality> r("personality", "personalities");
    r.add("ardupilot", "ArduPilot-like firmware personality", fw::Personality::kArduPilotLike);
    r.add("px4", "PX4-like firmware personality", fw::Personality::kPx4Like);
    return r;
  }();
  return registry;
}

util::Registry<BugSelector>& bug_selector_registry() {
  static util::Registry<BugSelector> registry = [] {
    util::Registry<BugSelector> r("bug population");
    r.add("current", "the Table II 'current code base' population",
          [] { return fw::BugRegistry::current_code_base(); });
    r.add("patched", "no seeded bugs; golden firmware",
          [] { return fw::BugRegistry::patched(); });
    r.add("all", "every seeded bug, including the Table V known population", [] {
      fw::BugRegistry registry;
      for (fw::BugId id : fw::kAllBugs) registry.enable(id);
      return registry;
    });
    return r;
  }();
  return registry;
}

// --- Resolution -----------------------------------------------------------

fw::Personality resolve_personality(std::string_view name) {
  return personality_registry().at(name).factory;
}

fw::BugRegistry resolve_bugs(std::string_view name) {
  return bug_selector_registry().at(name).factory();
}

std::string approach_label(std::string_view name) {
  const auto* entry = approach_registry().find(name);
  return entry != nullptr ? entry->factory.label : std::string(name);
}

ExperimentSpec scenario_prototype(const ScenarioSpec& spec) {
  ExperimentSpec prototype;
  prototype.personality = resolve_personality(spec.personality);
  // Capture the registered factory, not the name: the prototype is copied
  // once per experiment, and these factories capture nothing, so the copy
  // stays allocation-free.
  prototype.workload_factory = workload::workload_registry().at(spec.workload).factory;
  if (spec.environment != "calm") {
    prototype.environment_factory = sim::environment_registry().at(spec.environment).factory;
  } else {
    sim::environment_registry().at(spec.environment);  // still validate the name
  }
  prototype.bugs = resolve_bugs(spec.bugs);
  prototype.seed = spec.seed;
  return prototype;
}

std::unique_ptr<InjectionStrategy> make_scenario_strategy(const ScenarioSpec& spec,
                                                          const MonitorModel& model) {
  return approach_registry().at(spec.approach).factory.make(model, spec);
}

const baselines::NaiveBayesModel& shared_bayes() {
  static const baselines::NaiveBayesModel model(baselines::default_training_corpus());
  return model;
}

// --- ScenarioSpec ---------------------------------------------------------

void ScenarioSpec::validate() const {
  approach_registry().at(approach);
  personality_registry().at(personality);
  workload::workload_registry().at(workload);
  sim::environment_registry().at(environment);
  bug_selector_registry().at(bugs);
  util::expects(budget_ms > 0, "scenario budget_ms must be positive");
  p_validate_constraints(constraints);
}

std::string ScenarioSpec::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << pad << "  \"approach\": \"" << util::json_escape(approach) << "\",\n";
  os << pad << "  \"personality\": \"" << util::json_escape(personality) << "\",\n";
  os << pad << "  \"workload\": \"" << util::json_escape(workload) << "\",\n";
  os << pad << "  \"environment\": \"" << util::json_escape(environment) << "\",\n";
  os << pad << "  \"bugs\": \"" << util::json_escape(bugs) << "\",\n";
  os << pad << "  \"budget_ms\": " << budget_ms << ",\n";
  os << pad << "  \"seed\": " << seed << ",\n";
  os << pad << "  \"strategy_seed\": " << strategy_seed << ",\n";
  p_append_constraints_json(os, constraints, pad + "  ");
  os << "\n" << pad << "}";
  return os.str();
}

ScenarioSpec ScenarioSpec::from_json(const util::Json& json) {
  p_reject_unknown_keys(json, kSpecKeys, "scenario");
  ScenarioSpec spec;
  spec.approach = json.get_string("approach", spec.approach);
  spec.personality = json.get_string("personality", spec.personality);
  spec.workload = json.get_string("workload", spec.workload);
  spec.environment = json.get_string("environment", spec.environment);
  spec.bugs = json.get_string("bugs", spec.bugs);
  spec.budget_ms = json.get_int64("budget_ms", spec.budget_ms);
  spec.seed = json.get_uint64("seed", spec.seed);
  spec.strategy_seed = json.get_uint64("strategy_seed", spec.seed + 7);
  spec.constraints = p_constraints_from_json(json.find("constraints"));
  return spec;
}

ScenarioSpec ScenarioSpec::from_json(std::string_view text) {
  return from_json(util::Json::parse(text));
}

// --- ScenarioGrid ---------------------------------------------------------

std::vector<ScenarioSpec> ScenarioGrid::expand() const {
  std::vector<ScenarioSpec> specs;
  specs.reserve(approaches.size() * personalities.size() * workloads.size() *
                    environments.size() +
                scenarios.size());
  for (const std::string& approach : approaches) {
    for (const std::string& personality : personalities) {
      for (const std::string& workload : workloads) {
        for (const std::string& environment : environments) {
          ScenarioSpec spec;
          spec.approach = approach;
          spec.personality = personality;
          spec.workload = workload;
          spec.environment = environment;
          spec.bugs = bugs;
          spec.budget_ms = budget_ms;
          spec.seed = seed;
          spec.strategy_seed = strategy_seed != 0 ? strategy_seed : seed + 7;
          spec.constraints = constraints;
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  specs.insert(specs.end(), scenarios.begin(), scenarios.end());
  return specs;
}

void ScenarioGrid::validate() const {
  const std::vector<ScenarioSpec> specs = expand();
  util::expects(!specs.empty(), "scenario grid expands to an empty campaign");
  for (const ScenarioSpec& spec : specs) spec.validate();
}

std::string ScenarioGrid::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"approaches\": ";
  p_append_string_array(os, approaches);
  os << ",\n  \"personalities\": ";
  p_append_string_array(os, personalities);
  os << ",\n  \"workloads\": ";
  p_append_string_array(os, workloads);
  os << ",\n  \"environments\": ";
  p_append_string_array(os, environments);
  os << ",\n  \"bugs\": \"" << util::json_escape(bugs) << "\",\n";
  os << "  \"budget_ms\": " << budget_ms << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"strategy_seed\": " << strategy_seed << ",\n";
  p_append_constraints_json(os, constraints, "  ");
  if (!scenarios.empty()) {
    os << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      os << scenarios[i].to_json(4);
      if (i + 1 < scenarios.size()) os << ",";
      os << "\n";
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

ScenarioGrid ScenarioGrid::from_json(const util::Json& json) {
  p_reject_unknown_keys(json, kGridKeys, "scenario grid");
  ScenarioGrid grid;
  grid.approaches = json.get_string_array("approaches", grid.approaches);
  grid.personalities = json.get_string_array("personalities", grid.personalities);
  grid.workloads = json.get_string_array("workloads", grid.workloads);
  grid.environments = json.get_string_array("environments", grid.environments);
  grid.bugs = json.get_string("bugs", grid.bugs);
  grid.budget_ms = json.get_int64("budget_ms", grid.budget_ms);
  grid.seed = json.get_uint64("seed", grid.seed);
  grid.strategy_seed = json.get_uint64("strategy_seed", grid.strategy_seed);
  grid.constraints = p_constraints_from_json(json.find("constraints"));
  if (const util::Json* scenarios = json.find("scenarios")) {
    for (const util::Json& element : scenarios->as_array()) {
      grid.scenarios.push_back(ScenarioSpec::from_json(element));
    }
  }
  return grid;
}

ScenarioGrid ScenarioGrid::from_json(std::string_view text) {
  return from_json(util::Json::parse(text));
}

}  // namespace avis::core
