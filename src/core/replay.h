// Bug replay (paper §IV-D).
//
// "Avis records the failures that it injects... To reconstruct the unsafe
// condition, Avis re-executes the mission, injecting the same faults at the
// same time offsets from mode transitions. Even in the presence of minor
// non-determinism this technique is successful since failures are injected
// at the same time relative to the modes they affect."
//
// Each fault event is anchored to the k-th occurrence of the composite mode
// it was injected under; on replay, the director watches live mode updates
// and arms the event when its anchor re-occurs.
#pragma once

#include <map>
#include <vector>

#include "core/experiment.h"
#include "core/harness.h"
#include "hinj/hinj.h"

namespace avis::core {

struct AnchoredFault {
  std::uint16_t anchor_mode_id = 0;  // composite mode the fault was injected in
  int anchor_occurrence = 0;         // which occurrence of that mode (0-based)
  sim::SimTimeMs delta_ms = 0;       // offset from the mode-entry time
  sensors::SensorId sensor;
};

struct ReplayRecord {
  ExperimentSpec spec;                  // original experiment (plan kept for reference)
  std::vector<AnchoredFault> anchored;  // plan re-expressed relative to modes
};

// Build a replay record from an unsafe run's plan and observed transitions.
// Plan events are time-sorted (FaultPlan::normalize), so a single forward
// walk over the transitions anchors every event: the cursor tracks the
// active mode and per-mode occurrence counts as it advances.
inline ReplayRecord make_replay_record(const ExperimentSpec& spec,
                                       const std::vector<ModeTransition>& transitions) {
  ReplayRecord record;
  record.spec = spec;
  std::map<std::uint16_t, int> occurrences;
  const ModeTransition* anchor = nullptr;
  int anchor_occurrence = 0;
  std::size_t cursor = 0;
  for (const auto& event : spec.plan.events) {
    while (cursor < transitions.size() && transitions[cursor].time_ms <= event.time_ms) {
      anchor = &transitions[cursor];
      anchor_occurrence = occurrences[anchor->mode_id]++;
      ++cursor;
    }
    AnchoredFault fault;
    fault.sensor = event.sensor;
    if (anchor != nullptr) {
      fault.anchor_mode_id = anchor->mode_id;
      fault.anchor_occurrence = anchor_occurrence;
      fault.delta_ms = event.time_ms - anchor->time_ms;
    } else {
      fault.anchor_mode_id = 0;
      fault.anchor_occurrence = 0;
      fault.delta_ms = event.time_ms;
    }
    record.anchored.push_back(fault);
  }
  return record;
}

// Director that injects anchored faults as their anchors re-occur.
class ReplayDirector final : public hinj::FaultDirector {
 public:
  explicit ReplayDirector(std::vector<AnchoredFault> faults) : faults_(std::move(faults)) {
    armed_at_.assign(faults_.size(), -1);
  }

  void on_mode_update(std::uint16_t mode_id, std::string_view, std::int64_t time_ms) override {
    const int occurrence = occurrences_[mode_id]++;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (armed_at_[i] < 0 && faults_[i].anchor_mode_id == mode_id &&
          faults_[i].anchor_occurrence == occurrence) {
        armed_at_[i] = time_ms + faults_[i].delta_ms;
      }
    }
  }

  bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) override {
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (armed_at_[i] >= 0 && time_ms >= armed_at_[i] && faults_[i].sensor == sensor) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<AnchoredFault> faults_;
  std::vector<std::int64_t> armed_at_;
  std::map<std::uint16_t, int> occurrences_;
};

// Re-execute a recorded unsafe run. Returns the replayed result; callers
// check that the violation reproduces.
inline ExperimentResult replay(const SimulationHarness& harness, const ReplayRecord& record,
                               const MonitorModel& model, std::uint64_t seed_override = 0) {
  ExperimentSpec spec = record.spec;
  spec.plan = {};  // faults come from the replay director instead
  if (seed_override != 0) spec.seed = seed_override;
  ReplayDirector director(record.anchored);
  return harness.run_with_director(spec, director, &model);
}

}  // namespace avis::core
