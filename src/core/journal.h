// Write-ahead cell journal for crash-safe campaigns (docs/DISTRIBUTED.md,
// "Journaling & resume").
//
// A journal is a JSONL file. Line 1 is a header binding the campaign it
// belongs to: one identity hash per grid cell (in grid order) plus the
// report-affecting config knobs (checkpoint settings, batch width). Every
// later line is one completed cell — its full lossless CheckerReport
// (checker_report_json) plus execution provenance. Records are appended
// with a single write() and fsync'd before the campaign acts on the
// completion, so after SIGKILL at any instant the file holds every
// acknowledged cell plus at most one torn final line. load() detects the
// torn record and drops it (the cell simply re-runs); corruption anywhere
// *except* the final line cannot be produced by a crash and is fatal.
//
// Cells are pure functions of their ScenarioSpec (the determinism contract
// in docs/PERFORMANCE.md), which is what makes resume sound: a journaled
// report is bit-identical to what re-running the cell would produce, so a
// resumed campaign's merged report matches an uninterrupted run modulo
// wall-clock and provenance fields — the same masked-diff contract the
// distributed merge path already honors (tests/test_distributed.cc).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/checkpoint.h"

namespace avis::core {

class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Content-addressed cell identity: FNV-1a 64 over label + 0x1f +
// ScenarioSpec::to_json() (byte-stable key order), as 16 hex digits. A
// journal record only ever resumes a cell whose spec is bit-identical —
// changing any grid flag changes the hash and fails the header bind.
std::string cell_identity_hash(const CampaignCellSpec& cell);

// One completed cell as journaled: where it sits in the grid, what it was
// (spec hash), how it ran (provenance), and the full report.
struct JournalCellRecord {
  int index = -1;
  std::string spec_hash;
  int attempts = 1;
  std::string completed_by = "local";
  std::vector<std::string> reassigned_from;
  double wall_seconds = 0.0;
  CheckerReport report;
};

class CampaignJournal {
 public:
  static constexpr int kVersion = 1;

  struct Header {
    int version = kVersion;
    std::size_t cells = 0;
    bool checkpoints_enabled = true;
    bool checkpoint_trees = true;
    sim::SimTimeMs checkpoint_interval_ms = 0;
    std::size_t checkpoint_budget_bytes = 0;
    int batch_width = 0;  // requested width (0 = auto)
    std::vector<std::string> cell_hashes;  // grid order
  };

  struct Loaded {
    Header header;
    std::vector<JournalCellRecord> cells;  // valid records, duplicates dropped
    bool dropped_torn_record = false;      // final line was a partial write
  };

  // The header a campaign with this grid and config would write. Binds
  // everything that changes report bytes; deliberately excludes wall-clock
  // knobs (worker counts, ports) that the masked-diff contract ignores.
  static Header bind(const std::vector<CampaignCellSpec>& grid,
                     const CheckpointConfig& checkpoints, int batch_width);

  // Human-readable field-by-field mismatch between a loaded header and the
  // requested campaign; empty string means compatible. `grid` (the
  // requested cells) annotates per-cell hash mismatches with registry names.
  static std::string header_diff(const Header& journal, const Header& requested,
                                 const std::vector<CampaignCellSpec>& grid);

  // Fresh journal: truncate/create `path`, write + fsync the header line.
  static CampaignJournal start(const std::string& path, const Header& header);

  // Reopen an existing journal for appending (the --resume path). Does not
  // re-validate the header; callers load() + header_diff() first.
  static CampaignJournal append_to(const std::string& path);

  // Parse a journal back. Throws JournalError if the file is missing, the
  // header is unreadable, or a non-final record is corrupt. A torn final
  // line sets dropped_torn_record instead. Records with an index/hash that
  // disagree with the header are corruption (fatal, same non-final rule);
  // duplicate indices keep the first copy (determinism makes them equal).
  static Loaded load(const std::string& path);

  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&& other) noexcept;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;
  ~CampaignJournal();

  // Append one completed cell: a single write() of the record line, then
  // fsync. On return the record is durable; call this *before* acting on
  // the completion (marking the cell done, acking the worker).
  void append(const JournalCellRecord& record);

  const std::string& path() const { return path_; }

 private:
  CampaignJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  void p_write_line(std::string line);

  std::string path_;
  int fd_ = -1;
};

}  // namespace avis::core
