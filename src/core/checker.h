// The checker loop: drives one search strategy against one (firmware
// personality, workload) pair under a budget, collecting every unsafe
// condition found. This is the outer loop all of Tables II-V run through.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/harness.h"
#include "core/invariant_monitor.h"
#include "core/strategy.h"

namespace avis::core {

struct UnsafeRecord {
  FaultPlan plan;
  Violation violation;
  std::vector<fw::BugId> fired_bugs;
  std::vector<ModeTransition> transitions;
  std::uint64_t seed = 0;
  int experiment_index = 0;  // 1-based simulation count when found
};

struct CheckerReport {
  std::string strategy_name;
  int experiments = 0;
  int labels = 0;
  sim::SimTimeMs budget_used_ms = 0;
  std::vector<UnsafeRecord> unsafe;
  // Simulation count at which each seeded bug first manifested.
  std::map<fw::BugId, int> bug_first_found;

  int unsafe_count() const { return static_cast<int>(unsafe.size()); }

  // Table IV groups unsafe scenarios by the operating mode at the *newest
  // injection* (the site the search chose), not the mode the violation
  // later manifested in — a landing-phase crash caused by a waypoint-window
  // fault counts toward Waypoint.
  std::array<int, 4> unsafe_by_bucket() const {
    std::array<int, 4> buckets{};
    for (const auto& record : unsafe) {
      sim::SimTimeMs newest = 0;
      for (const auto& e : record.plan.events) newest = std::max(newest, e.time_ms);
      std::uint16_t mode_id = 0;
      for (const auto& t : record.transitions) {
        if (t.time_ms > newest) break;
        mode_id = t.mode_id;
      }
      const fw::ModeBucket bucket = fw::bucket_of(fw::CompositeMode::from_id(mode_id).mode);
      buckets[static_cast<std::size_t>(bucket)] += 1;
    }
    return buckets;
  }

  bool found_bug(fw::BugId id) const { return bug_first_found.contains(id); }
};

class Checker {
 public:
  Checker(fw::Personality personality, workload::WorkloadId workload, fw::BugRegistry bugs,
          std::uint64_t seed_base = 100)
      : personality_(personality), workload_(workload), bugs_(std::move(bugs)),
        seed_base_(seed_base) {}

  // Profiling runs + monitor calibration happen on first use and are reused
  // across strategies so comparisons share the same model.
  const MonitorModel& model() {
    if (!model_) {
      model_ = harness_.profile(personality_, workload_, bugs_, /*runs=*/3, seed_base_);
    }
    return *model_;
  }

  CheckerReport run(InjectionStrategy& strategy, BudgetClock& budget) {
    const MonitorModel& monitor = model();
    CheckerReport report;
    report.strategy_name = strategy.name();
    while (!budget.exhausted()) {
      auto plan = strategy.next(budget);
      if (!plan) break;
      ExperimentSpec spec;
      spec.personality = personality_;
      spec.workload = workload_;
      spec.bugs = bugs_;
      spec.plan = *plan;
      // Test runs reuse the golden run's seed: on this deterministic
      // substrate a run then differs from the golden run only through the
      // injected faults, which keeps Eq. 1 free of seed-variance noise (the
      // paper absorbs that noise into tau instead).
      spec.seed = seed_base_;
      spec.max_duration_ms = monitor.profiling_duration_ms() + 45000;
      const ExperimentResult result = harness_.run(spec, &monitor);
      budget.charge_experiment(result.duration_ms);
      ++report.experiments;
      strategy.feedback(*plan, result);
      if (result.unsafe()) {
        UnsafeRecord record;
        record.plan = *plan;
        record.violation = *result.violation;
        record.fired_bugs = result.fired_bugs;
        record.transitions = result.transitions;
        record.seed = spec.seed;
        record.experiment_index = report.experiments;
        for (fw::BugId id : result.fired_bugs) {
          report.bug_first_found.try_emplace(id, report.experiments);
        }
        report.unsafe.push_back(std::move(record));
      }
    }
    report.labels = budget.labels();
    report.budget_used_ms = budget.used_ms();
    return report;
  }

  fw::Personality personality() const { return personality_; }
  workload::WorkloadId workload() const { return workload_; }
  const fw::BugRegistry& bugs() const { return bugs_; }
  SimulationHarness& harness() { return harness_; }

 private:
  fw::Personality personality_;
  workload::WorkloadId workload_;
  fw::BugRegistry bugs_;
  std::uint64_t seed_base_;
  SimulationHarness harness_;
  std::optional<MonitorModel> model_;
};

}  // namespace avis::core
