// The checker loop: drives one search strategy against one (firmware
// personality, workload) pair under a budget, collecting every unsafe
// condition found. This is the outer loop all of Tables II-V run through.
#pragma once

#include <array>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/budget.h"
#include "core/harness.h"
#include "core/invariant_monitor.h"
#include "core/strategy.h"
#include "util/thread_pool.h"

namespace avis::core {

struct UnsafeRecord {
  FaultPlan plan;
  Violation violation;
  std::vector<fw::BugId> fired_bugs;
  std::vector<ModeTransition> transitions;
  std::uint64_t seed = 0;
  int experiment_index = 0;  // 1-based simulation count when found
};

struct CheckerReport {
  std::string strategy_name;
  int experiments = 0;
  int labels = 0;
  sim::SimTimeMs budget_used_ms = 0;
  std::vector<UnsafeRecord> unsafe;
  // Simulation count at which each seeded bug first manifested.
  std::map<fw::BugId, int> bug_first_found;

  // Checkpointed prefix forking observability (docs/PERFORMANCE.md): how
  // many experiments restored a recorded prefix snapshot (hit) vs simulated
  // from scratch despite an available store (miss — the plan injects before
  // the first snapshot; with checkpointing disabled both counters stay 0),
  // how many snapshots the store evicted to fit its byte budget, and the
  // total simulated milliseconds the restores skipped.
  // Wall-clock accounting only: the reported experiments, budget charges
  // and unsafe records are bit-identical with checkpointing on or off.
  int checkpoint_hits = 0;
  int checkpoint_misses = 0;
  int checkpoint_evicted = 0;
  sim::SimTimeMs checkpoint_skipped_ms = 0;

  double checkpoint_hit_rate() const {
    const int total = checkpoint_hits + checkpoint_misses;
    return total > 0 ? static_cast<double>(checkpoint_hits) / total : 0.0;
  }

  int unsafe_count() const { return static_cast<int>(unsafe.size()); }

  // Table IV groups unsafe scenarios by the operating mode at the *newest
  // injection* (the site the search chose), not the mode the violation
  // later manifested in — a landing-phase crash caused by a waypoint-window
  // fault counts toward Waypoint.
  std::array<int, 4> unsafe_by_bucket() const {
    std::array<int, 4> buckets{};
    for (const auto& record : unsafe) {
      sim::SimTimeMs newest = 0;
      for (const auto& e : record.plan.events) newest = std::max(newest, e.time_ms);
      std::uint16_t mode_id = 0;
      for (const auto& t : record.transitions) {
        if (t.time_ms > newest) break;
        mode_id = t.mode_id;
      }
      const fw::ModeBucket bucket = fw::bucket_of(fw::CompositeMode::from_id(mode_id).mode);
      buckets[static_cast<std::size_t>(bucket)] += 1;
    }
    return buckets;
  }

  bool found_bug(fw::BugId id) const { return bug_first_found.contains(id); }
};

class Checker {
 public:
  // The prototype carries the full experiment identity — personality,
  // workload (enum or factory), environment, bug population — and its
  // `seed` is the seed base for profiling and experiments. Registry-named
  // scenarios build a prototype through core::scenario_prototype(); the
  // prototype's plan is cleared here, each experiment installs its own.
  explicit Checker(ExperimentSpec prototype, CheckpointConfig checkpoints = {})
      : prototype_(std::move(prototype)), checkpoint_config_(checkpoints) {
    prototype_.plan = FaultPlan{};
    prototype_.stop_on_violation = true;
  }

  Checker(fw::Personality personality, workload::WorkloadId workload, fw::BugRegistry bugs,
          std::uint64_t seed_base = 100)
      : Checker(p_make_prototype(personality, workload, std::move(bugs), seed_base)) {}

  // Profiling runs + monitor calibration happen on first use and are reused
  // across strategies so comparisons share the same model.
  const MonitorModel& model() {
    if (!model_) {
      auto context = contexts_.acquire();
      model_ = harness_.profile(prototype_, /*runs=*/3, prototype_.seed, context.get());
      contexts_.release(std::move(context));
    }
    return *model_;
  }

  CheckerReport run(InjectionStrategy& strategy, BudgetClock& budget) {
    const MonitorModel& monitor = model();
    const CheckpointStore* checkpoints = p_checkpoints(monitor);
    CheckerReport report;
    report.strategy_name = strategy.name();
    auto context = contexts_.acquire();
    while (!budget.exhausted()) {
      auto plan = strategy.next(budget);
      if (!plan) break;
      const ExperimentSpec spec = p_make_spec(*plan, monitor);
      ExperimentResult result = harness_.run(spec, &monitor, context.get(), checkpoints);
      p_apply(report, strategy, budget, *plan, std::move(result));
    }
    contexts_.release(std::move(context));
    report.labels = budget.labels();
    report.budget_used_ms = budget.used_ms();
    report.checkpoint_evicted = checkpoints != nullptr ? checkpoints->evicted() : 0;
    return report;
  }

  // Parallel variant: strategies hand out a batch of independent plans, the
  // pool simulates them concurrently, and results are applied on this
  // thread in submission order. Budget charging, feedback() and
  // UnsafeRecord collection are therefore single-threaded, so BudgetClock
  // needs no locking and the report is bit-identical to run() for the same
  // plan sequence. If the budget exhausts mid-batch, the in-flight
  // remainder is drained but not applied — exactly the experiments a serial
  // run would never have started. Those discarded plans were already
  // consumed from the strategy, so a strategy object that went through
  // run_parallel should not be resumed with a fresh budget (no current
  // caller does; serial run() has no such caveat). See docs/PERFORMANCE.md.
  CheckerReport run_parallel(InjectionStrategy& strategy, BudgetClock& budget, int workers) {
    if (workers <= 1) return run(strategy, budget);
    const MonitorModel& monitor = model();
    // Recorded on this thread before any batch is dispatched; workers then
    // share the store strictly read-only.
    const CheckpointStore* checkpoints = p_checkpoints(monitor);
    util::ThreadPool pool(workers);
    CheckerReport report;
    report.strategy_name = strategy.name();
    bool out_of_budget = false;
    while (!out_of_budget && !budget.exhausted()) {
      // Twice the worker count keeps the pool saturated while the caller
      // thread applies results; strategies may return fewer (SABRE stops at
      // its expansion-wave boundary to preserve the serial plan sequence).
      std::vector<FaultPlan> plans = strategy.next_batch(budget, 2 * workers);
      if (plans.empty()) break;
      std::vector<std::future<ExperimentResult>> in_flight;
      in_flight.reserve(plans.size());
      for (const FaultPlan& plan : plans) {
        in_flight.push_back(pool.submit(
            [this, spec = p_make_spec(plan, monitor), &monitor, checkpoints] {
              // Per-worker arena: whichever worker picks this task up checks
              // a context out for the duration of the experiment, so the
              // simulator/suite/firmware storage is reset, not reallocated,
              // from one experiment to the next. An exception skips the
              // release and simply retires the context.
              auto context = contexts_.acquire();
              ExperimentResult result = harness_.run(spec, &monitor, context.get(), checkpoints);
              contexts_.release(std::move(context));
              return result;
            }));
      }
      for (std::size_t i = 0; i < in_flight.size(); ++i) {
        ExperimentResult result = in_flight[i].get();  // rethrows worker errors
        // Result 0 is always applied: the serial loop runs and applies any
        // plan next() returns, even when proposal-side charges (BFI's
        // labels) crossed the budget limit while producing it. Later
        // results are discarded once the budget exhausts — exactly the
        // experiments a serial run would never have started.
        if (out_of_budget || (i > 0 && budget.exhausted())) {
          out_of_budget = true;
          continue;
        }
        p_apply(report, strategy, budget, plans[i], std::move(result));
      }
    }
    report.labels = budget.labels();
    report.budget_used_ms = budget.used_ms();
    report.checkpoint_evicted = checkpoints != nullptr ? checkpoints->evicted() : 0;
    return report;
  }

  // The scenario's checkpoint store (recorded on first use when enabled);
  // nullptr when checkpointing is off. Exposed for tests and tools.
  const CheckpointStore* checkpoint_store() {
    if (!checkpoint_config_.enabled) return nullptr;
    return p_checkpoints(model());
  }
  const CheckpointConfig& checkpoint_config() const { return checkpoint_config_; }

  fw::Personality personality() const { return prototype_.personality; }
  // The enum id the prototype was built from; registry-named scenarios run
  // through `prototype().workload_factory` and leave this at its default.
  workload::WorkloadId workload() const { return prototype_.workload; }
  const fw::BugRegistry& bugs() const { return prototype_.bugs; }
  const ExperimentSpec& prototype() const { return prototype_; }
  SimulationHarness& harness() { return harness_; }

 private:
  static ExperimentSpec p_make_prototype(fw::Personality personality,
                                         workload::WorkloadId workload, fw::BugRegistry bugs,
                                         std::uint64_t seed_base) {
    ExperimentSpec prototype;
    prototype.personality = personality;
    prototype.workload = workload;
    prototype.bugs = std::move(bugs);
    prototype.seed = seed_base;
    return prototype;
  }

  ExperimentSpec p_make_spec(const FaultPlan& plan, const MonitorModel& monitor) const {
    ExperimentSpec spec = prototype_;
    spec.plan = plan;
    // Test runs reuse the golden run's seed (already the prototype's): on
    // this deterministic substrate a run then differs from the golden run
    // only through the injected faults, which keeps Eq. 1 free of
    // seed-variance noise (the paper absorbs that noise into tau instead).
    spec.max_duration_ms = monitor.profiling_duration_ms() + 45000;
    return spec;
  }

  // Records the scenario's fault-free prefix once; every later call returns
  // the same store. The recording is one extra fault-free simulation —
  // amortized across the campaign the way profiling already is. On top of
  // the cadence grid, a snapshot is captured at every golden mode-transition
  // timestamp: the search strategies concentrate their injections exactly
  // there (SABRE seeds its queue from the golden transitions), so those
  // plans restore with zero re-simulated prefix.
  const CheckpointStore* p_checkpoints(const MonitorModel& monitor) {
    if (!checkpoint_config_.enabled) return nullptr;
    if (!checkpoints_) {
      CheckpointConfig config = checkpoint_config_;
      for (const ModeTransition& t : monitor.golden_transitions()) {
        config.capture_at.push_back(t.time_ms);
      }
      auto context = contexts_.acquire();
      checkpoints_ = harness_.record_prefix(p_make_spec(FaultPlan{}, monitor), &monitor,
                                            config, context.get());
      contexts_.release(std::move(context));
    }
    return &*checkpoints_;
  }

  void p_apply(CheckerReport& report, InjectionStrategy& strategy, BudgetClock& budget,
               const FaultPlan& plan, ExperimentResult result) {
    budget.charge_experiment(result.duration_ms);
    ++report.experiments;
    if (result.resumed_from_ms > 0) {
      ++report.checkpoint_hits;
      report.checkpoint_skipped_ms += result.resumed_from_ms;
    } else if (checkpoints_) {
      ++report.checkpoint_misses;
    }
    strategy.feedback(plan, result);
    if (result.unsafe()) {
      UnsafeRecord record;
      record.plan = plan;
      record.violation = *result.violation;
      record.fired_bugs = result.fired_bugs;
      record.transitions = std::move(result.transitions);
      record.seed = prototype_.seed;
      record.experiment_index = report.experiments;
      for (fw::BugId id : record.fired_bugs) {
        report.bug_first_found.try_emplace(id, report.experiments);
      }
      report.unsafe.push_back(std::move(record));
    }
  }

  ExperimentSpec prototype_;
  CheckpointConfig checkpoint_config_;
  SimulationHarness harness_;
  ExperimentContextPool contexts_;
  std::optional<MonitorModel> model_;
  std::optional<CheckpointStore> checkpoints_;
};

}  // namespace avis::core
