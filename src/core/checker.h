// The checker loop: drives one search strategy against one (firmware
// personality, workload) pair under a budget, collecting every unsafe
// condition found. This is the outer loop all of Tables II-V run through.
#pragma once

#include <algorithm>
#include <array>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_harness.h"
#include "core/budget.h"
#include "core/coverage.h"
#include "core/harness.h"
#include "core/invariant_monitor.h"
#include "core/strategy.h"
#include "util/thread_pool.h"

namespace avis::core {

struct UnsafeRecord {
  FaultPlan plan;
  Violation violation;
  std::vector<fw::BugId> fired_bugs;
  std::vector<ModeTransition> transitions;
  std::uint64_t seed = 0;
  int experiment_index = 0;  // 1-based simulation count when found
};

struct CheckerReport {
  std::string strategy_name;
  int experiments = 0;
  int labels = 0;
  sim::SimTimeMs budget_used_ms = 0;
  std::vector<UnsafeRecord> unsafe;
  // Simulation count at which each seeded bug first manifested.
  std::map<fw::BugId, int> bug_first_found;

  // Mode-graph edge coverage over every applied experiment, keyed by
  // (edge, injection-window bucket) — see core/coverage.h. Derived from the
  // applied-result sequence like bug_first_found, and from transitions that
  // are bit-identical across worker counts, batch widths and checkpoint
  // modes, so it is part of report identity (NOT masked the way the
  // checkpoint_* counters are).
  CoverageMap edge_coverage;

  // Checkpointed prefix forking observability (docs/PERFORMANCE.md): how
  // many experiments restored a recorded prefix snapshot (hit) vs simulated
  // from scratch despite an available store (miss — the plan injects before
  // the first snapshot; with checkpointing disabled both counters stay 0),
  // how many snapshots the store evicted to fit its byte budget, and the
  // total simulated milliseconds the restores skipped.
  // Wall-clock accounting only: the reported experiments, budget charges
  // and unsafe records are bit-identical with checkpointing on or off.
  int checkpoint_hits = 0;
  int checkpoint_misses = 0;
  int checkpoint_evicted = 0;
  sim::SimTimeMs checkpoint_skipped_ms = 0;
  // Per-level restore counters (checkpoint trees): index 0 counts restores
  // from the fault-free root, index d >= 1 restores from a tree snapshot
  // with d injections already activated. Sums to checkpoint_hits. Sized to
  // the deepest level hit. Like every checkpoint counter this is wall-clock
  // observability; serial and parallel runs may count coincidental prefix
  // hits differently (wave timing decides what is recorded when a plan
  // resolves), which is why report-identity checks mask checkpoint_*.
  std::vector<int> checkpoint_hits_by_level;
  // Tree snapshots evicted under byte-budget pressure (root evictions stay
  // in checkpoint_evicted).
  int checkpoint_tree_evicted = 0;
  // Experiments that ran to max_duration without a violation (the
  // workload never finished and nothing tripped the monitor) — the
  // ROADMAP's stalled-run observability item. Deterministic across
  // checkpoint modes: duration_ms is a logical quantity.
  int stalled_runs = 0;

  double checkpoint_hit_rate() const {
    const int total = checkpoint_hits + checkpoint_misses;
    return total > 0 ? static_cast<double>(checkpoint_hits) / total : 0.0;
  }

  int unsafe_count() const { return static_cast<int>(unsafe.size()); }

  // Table IV groups unsafe scenarios by the operating mode at the *newest
  // injection* (the site the search chose), not the mode the violation
  // later manifested in — a landing-phase crash caused by a waypoint-window
  // fault counts toward Waypoint.
  std::array<int, 4> unsafe_by_bucket() const {
    std::array<int, 4> buckets{};
    for (const auto& record : unsafe) {
      sim::SimTimeMs newest = 0;
      for (const auto& e : record.plan.events) newest = std::max(newest, e.time_ms);
      std::uint16_t mode_id = 0;
      for (const auto& t : record.transitions) {
        if (t.time_ms > newest) break;
        mode_id = t.mode_id;
      }
      const fw::ModeBucket bucket = fw::bucket_of(fw::CompositeMode::from_id(mode_id).mode);
      buckets[static_cast<std::size_t>(bucket)] += 1;
    }
    return buckets;
  }

  bool found_bug(fw::BugId id) const { return bug_first_found.contains(id); }
};

class Checker {
 public:
  // The prototype carries the full experiment identity — personality,
  // workload (enum or factory), environment, bug population — and its
  // `seed` is the seed base for profiling and experiments. Registry-named
  // scenarios build a prototype through core::scenario_prototype(); the
  // prototype's plan is cleared here, each experiment installs its own.
  explicit Checker(ExperimentSpec prototype, CheckpointConfig checkpoints = {})
      : prototype_(std::move(prototype)), checkpoint_config_(checkpoints) {
    prototype_.plan = FaultPlan{};
    prototype_.stop_on_violation = true;
  }

  Checker(fw::Personality personality, workload::WorkloadId workload, fw::BugRegistry bugs,
          std::uint64_t seed_base = 100)
      : Checker(p_make_prototype(personality, workload, std::move(bugs), seed_base)) {}

  // Profiling runs + monitor calibration happen on first use and are reused
  // across strategies so comparisons share the same model.
  const MonitorModel& model() {
    if (!model_) {
      auto context = contexts_.acquire();
      model_ = harness_.profile(prototype_, /*runs=*/3, prototype_.seed, context.get());
      contexts_.release(std::move(context));
    }
    return *model_;
  }

  // Lockstep batch width for experiment simulation: how many independent
  // plans the strategy hands out at a time to be stepped together through
  // core::BatchHarness (bit-identical to one-at-a-time scalar runs — the
  // batch engine's contract). 0 (the default) means auto, currently
  // kAutoBatchWidth; width 1 still routes through the batch engine as a
  // degenerate single-lane batch. Applies to run() and, per worker chunk,
  // to run_parallel(); profiling and prefix recording stay scalar.
  static constexpr int kAutoBatchWidth = 4;
  // Slack every experiment gets past the profiled mission duration before
  // it is cut off (p_make_spec); a safe run that uses all of it counts as
  // stalled (CheckerReport::stalled_runs).
  static constexpr sim::SimTimeMs kSettleMs = 45000;
  void set_batch_width(int width) { batch_width_ = width; }
  int batch_width() const { return batch_width_ > 0 ? batch_width_ : kAutoBatchWidth; }

  // Serial checker loop, batched: up to batch_width() plans per strategy
  // request, stepped in lockstep, results applied in proposal order. If the
  // budget exhausts mid-batch the remaining results are discarded — exactly
  // the experiments a width-1 loop would never have started — so the report
  // is bit-identical to the historical one-at-a-time loop. Like
  // run_parallel, discarded plans were already consumed from the strategy,
  // so a strategy that went through a batched run should not be resumed
  // with a fresh budget (no current caller does).
  CheckerReport run(InjectionStrategy& strategy, BudgetClock& budget) {
    const MonitorModel& monitor = model();
    const CheckpointStore* checkpoints = p_checkpoints(monitor);
    // Per-campaign tree: every campaign over this checker starts from an
    // empty tree so its hit counters (and plan recordings) are a function
    // of the campaign alone, not of which strategies ran before it.
    if (checkpoints_) checkpoints_->clear_tree();
    const int capture_limit =
        checkpoints != nullptr && checkpoints->trees_enabled() ? strategy.chain_extension_limit()
                                                               : 0;
    CheckerReport report;
    report.strategy_name = strategy.name();
    auto engine = engines_.acquire(harness_);
    bool out_of_budget = false;
    std::vector<std::vector<ExperimentSnapshot>> captures;
    while (!out_of_budget && !budget.exhausted()) {
      std::vector<FaultPlan> plans =
          strategy.next_batch(budget, p_adaptive_width(budget, batch_width()));
      if (plans.empty()) break;
      std::vector<ExperimentSpec> specs;
      specs.reserve(plans.size());
      for (const FaultPlan& plan : plans) specs.push_back(p_make_spec(plan, monitor));
      // Handing the engine the remaining budget lets it stop simulating
      // lanes whose results the discard loop below is guaranteed to throw
      // away (see BatchHarness::run) — the discarded slots are then default
      // results this loop never reads.
      std::vector<ExperimentResult> results =
          engine->run(specs, &monitor, checkpoints, budget.remaining_ms(), capture_limit,
                      capture_limit > 0 ? &captures : nullptr);
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (out_of_budget || (i > 0 && budget.exhausted())) {
          out_of_budget = true;
          continue;
        }
        // The engine is idle between waves, so merges land inline (the
        // parallel loop defers them instead — see run_parallel).
        p_apply(report, strategy, budget, plans[i], std::move(results[i]),
                capture_limit > 0 ? &captures[i] : nullptr, nullptr);
      }
    }
    engines_.release(std::move(engine));
    report.labels = budget.labels();
    report.budget_used_ms = budget.used_ms();
    report.checkpoint_evicted = checkpoints != nullptr ? checkpoints->evicted() : 0;
    report.checkpoint_tree_evicted = checkpoints != nullptr ? checkpoints->tree_evicted() : 0;
    return report;
  }

  // Parallel variant: strategies hand out a batch of independent plans, the
  // pool simulates them concurrently, and results are applied on this
  // thread in submission order. Budget charging, feedback() and
  // UnsafeRecord collection are therefore single-threaded, so BudgetClock
  // needs no locking and the report is bit-identical to run() for the same
  // plan sequence. If the budget exhausts mid-batch, the in-flight
  // remainder is drained but not applied — exactly the experiments a serial
  // run would never have started. Those discarded plans were already
  // consumed from the strategy, so a strategy object that went through
  // run_parallel should not be resumed with a fresh budget (no current
  // caller does; serial run() has no such caveat). See docs/PERFORMANCE.md.
  CheckerReport run_parallel(InjectionStrategy& strategy, BudgetClock& budget, int workers) {
    if (workers <= 1) return run(strategy, budget);
    const MonitorModel& monitor = model();
    // Recorded on this thread before any batch is dispatched; workers then
    // share the store strictly read-only. Tree merges are deferred to the
    // end of each wave (below) to keep that invariant.
    const CheckpointStore* checkpoints = p_checkpoints(monitor);
    if (checkpoints_) checkpoints_->clear_tree();
    const int capture_limit =
        checkpoints != nullptr && checkpoints->trees_enabled() ? strategy.chain_extension_limit()
                                                               : 0;
    util::ThreadPool pool(workers);
    CheckerReport report;
    report.strategy_name = strategy.name();
    bool out_of_budget = false;
    struct ChunkOutput {
      std::vector<ExperimentResult> results;
      std::vector<std::vector<ExperimentSnapshot>> captures;
    };
    std::vector<PendingMerge> deferred;
    while (!out_of_budget && !budget.exhausted()) {
      // Two width-sized lockstep chunks per worker keep the pool saturated
      // while the caller thread applies results; strategies may return fewer
      // plans (SABRE stops at its expansion-wave boundary to preserve the
      // serial plan sequence). Near the budget boundary the chunk width
      // shrinks with the adaptive cap, so a wave overshoots by at most the
      // chunk count, not chunk-count-times-width, experiments.
      const auto width = static_cast<std::size_t>(p_adaptive_width(budget, batch_width()));
      std::vector<FaultPlan> plans =
          strategy.next_batch(budget, 2 * workers * static_cast<int>(width));
      if (plans.empty()) break;
      std::vector<std::future<ChunkOutput>> in_flight;
      in_flight.reserve((plans.size() + width - 1) / width);
      for (std::size_t begin = 0; begin < plans.size(); begin += width) {
        const std::size_t end = std::min(plans.size(), begin + width);
        std::vector<ExperimentSpec> specs;
        specs.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) specs.push_back(p_make_spec(plans[i], monitor));
        in_flight.push_back(
            pool.submit([this, specs = std::move(specs), &monitor, checkpoints, capture_limit] {
              // Per-worker engine: whichever worker picks this chunk up
              // checks a batch engine out for the duration, so the lane
              // worlds are reset, not reallocated, from one chunk to the
              // next (the arena-reuse contract). An exception skips the
              // release and simply retires the engine.
              auto engine = engines_.acquire(harness_);
              ChunkOutput out;
              out.results = engine->run(specs, &monitor, checkpoints, -1, capture_limit,
                                        capture_limit > 0 ? &out.captures : nullptr);
              engines_.release(std::move(engine));
              return out;
            }));
      }
      // Apply in flattened submission order — the proposal order — so the
      // report is bit-identical to the serial loop for the same plans.
      std::size_t applied = 0;
      for (auto& chunk : in_flight) {
        ChunkOutput out = chunk.get();  // rethrows worker errors
        for (std::size_t j = 0; j < out.results.size(); ++j) {
          // Result 0 is always applied: the serial loop runs and applies any
          // plan next() returns, even when proposal-side charges (BFI's
          // labels) crossed the budget limit while producing it. Later
          // results are discarded once the budget exhausts — exactly the
          // experiments a serial run would never have started.
          if (out_of_budget || (applied > 0 && budget.exhausted())) {
            out_of_budget = true;
          } else {
            p_apply(report, strategy, budget, plans[applied], std::move(out.results[j]),
                    capture_limit > 0 ? &out.captures[j] : nullptr, &deferred);
          }
          ++applied;
        }
      }
      // The wave is fully drained: no worker holds a chunk, so the store
      // can be mutated. Merging here (not inside p_apply) is what lets the
      // next wave's children resolve their parents' recordings without the
      // engine threads ever observing a mutation.
      for (PendingMerge& merge : deferred) {
        checkpoints_->merge_run(merge.plan, std::move(merge.snapshots), std::move(merge.trace),
                                std::move(merge.transitions));
      }
      deferred.clear();
    }
    report.labels = budget.labels();
    report.budget_used_ms = budget.used_ms();
    report.checkpoint_evicted = checkpoints != nullptr ? checkpoints->evicted() : 0;
    report.checkpoint_tree_evicted = checkpoints != nullptr ? checkpoints->tree_evicted() : 0;
    return report;
  }

  // The scenario's checkpoint store (recorded on first use when enabled);
  // nullptr when checkpointing is off. Exposed for tests and tools.
  const CheckpointStore* checkpoint_store() {
    if (!checkpoint_config_.enabled) return nullptr;
    return p_checkpoints(model());
  }
  const CheckpointConfig& checkpoint_config() const { return checkpoint_config_; }

  fw::Personality personality() const { return prototype_.personality; }
  // The enum id the prototype was built from; registry-named scenarios run
  // through `prototype().workload_factory` and leave this at its default.
  workload::WorkloadId workload() const { return prototype_.workload; }
  const fw::BugRegistry& bugs() const { return prototype_.bugs; }
  const ExperimentSpec& prototype() const { return prototype_; }
  SimulationHarness& harness() { return harness_; }

 private:
  static ExperimentSpec p_make_prototype(fw::Personality personality,
                                         workload::WorkloadId workload, fw::BugRegistry bugs,
                                         std::uint64_t seed_base) {
    ExperimentSpec prototype;
    prototype.personality = personality;
    prototype.workload = workload;
    prototype.bugs = std::move(bugs);
    prototype.seed = seed_base;
    return prototype;
  }

  // Budget-aware batch sizing: a full-width batch proposed just before the
  // budget exhausts runs experiments whose results the mid-batch discard
  // rule throws away — pure wall-clock waste, and a no-injection control
  // plan at a wave's tail wastes a full-duration run. Estimate how many
  // experiments still fit from the average charge so far (label charges
  // included, which only biases the estimate low, i.e. conservative) and
  // cap the request. A strategy's plan sequence is independent of the
  // request size (the next_batch contract), so the cap moves wall clock
  // only, never the report.
  int p_adaptive_width(const BudgetClock& budget, int width) const {
    if (budget.experiments() == 0) return width;
    const sim::SimTimeMs avg =
        std::max<sim::SimTimeMs>(1, budget.used_ms() / budget.experiments());
    const sim::SimTimeMs fit = (budget.remaining_ms() + avg - 1) / avg;
    return std::clamp(static_cast<int>(std::min<sim::SimTimeMs>(fit, width)), 1, width);
  }

  ExperimentSpec p_make_spec(const FaultPlan& plan, const MonitorModel& monitor) const {
    ExperimentSpec spec = prototype_;
    spec.plan = plan;
    // Test runs reuse the golden run's seed (already the prototype's): on
    // this deterministic substrate a run then differs from the golden run
    // only through the injected faults, which keeps Eq. 1 free of
    // seed-variance noise (the paper absorbs that noise into tau instead).
    spec.max_duration_ms = monitor.profiling_duration_ms() + kSettleMs;
    return spec;
  }

  // Records the scenario's fault-free prefix once; every later call returns
  // the same store. The recording is one extra fault-free simulation —
  // amortized across the campaign the way profiling already is. On top of
  // the cadence grid, a snapshot is captured at every golden mode-transition
  // timestamp: the search strategies concentrate their injections exactly
  // there (SABRE seeds its queue from the golden transitions), so those
  // plans restore with zero re-simulated prefix.
  const CheckpointStore* p_checkpoints(const MonitorModel& monitor) {
    if (!checkpoint_config_.enabled) return nullptr;
    if (!checkpoints_) {
      CheckpointConfig config = checkpoint_config_;
      for (const ModeTransition& t : monitor.golden_transitions()) {
        config.capture_at.push_back(t.time_ms);
      }
      auto context = contexts_.acquire();
      checkpoints_ = harness_.record_prefix(p_make_spec(FaultPlan{}, monitor), &monitor,
                                            config, context.get());
      contexts_.release(std::move(context));
    }
    return &*checkpoints_;
  }

  // One finished directed run waiting to be merged into the checkpoint
  // tree at the wave boundary (run_parallel defers merges so worker threads
  // only ever read the store).
  struct PendingMerge {
    FaultPlan plan;
    std::vector<ExperimentSnapshot> snapshots;
    std::vector<StateSample> trace;
    std::vector<ModeTransition> transitions;
  };

  // Applies one result: budget charge, counters, strategy feedback, unsafe
  // record, and — when the run was recorded for the checkpoint tree
  // (`captured` non-null and non-empty) — the tree merge, inline when
  // `deferred` is null or queued onto it otherwise. Unsafe runs are never
  // merged: the strategies only extend bug-free chains.
  void p_apply(CheckerReport& report, InjectionStrategy& strategy, BudgetClock& budget,
               const FaultPlan& plan, ExperimentResult result,
               std::vector<ExperimentSnapshot>* captured, std::vector<PendingMerge>* deferred) {
    budget.charge_experiment(result.duration_ms);
    ++report.experiments;
    // Before the moves below: unsafe runs donate their transitions to the
    // UnsafeRecord and bug-free captured runs to the tree merge.
    accumulate_run_coverage(report.edge_coverage, plan, result.transitions);
    if (result.resumed_from_ms > 0) {
      ++report.checkpoint_hits;
      report.checkpoint_skipped_ms += result.resumed_from_ms;
      const auto level = static_cast<std::size_t>(result.resumed_depth);
      if (report.checkpoint_hits_by_level.size() <= level) {
        report.checkpoint_hits_by_level.resize(level + 1, 0);
      }
      ++report.checkpoint_hits_by_level[level];
    } else if (checkpoints_) {
      ++report.checkpoint_misses;
    }
    if (!result.unsafe() &&
        result.duration_ms >= model_->profiling_duration_ms() + kSettleMs) {
      ++report.stalled_runs;
    }
    strategy.feedback(plan, result);
    if (result.unsafe()) {
      UnsafeRecord record;
      record.plan = plan;
      record.violation = *result.violation;
      record.fired_bugs = result.fired_bugs;
      record.transitions = std::move(result.transitions);
      record.seed = prototype_.seed;
      record.experiment_index = report.experiments;
      for (fw::BugId id : record.fired_bugs) {
        report.bug_first_found.try_emplace(id, report.experiments);
      }
      report.unsafe.push_back(std::move(record));
    } else if (captured != nullptr && !captured->empty() && checkpoints_) {
      if (deferred == nullptr) {
        checkpoints_->merge_run(plan, std::move(*captured), std::move(result.trace),
                                std::move(result.transitions));
      } else {
        deferred->push_back(PendingMerge{plan, std::move(*captured), std::move(result.trace),
                                         std::move(result.transitions)});
      }
    }
  }

  ExperimentSpec prototype_;
  CheckpointConfig checkpoint_config_;
  SimulationHarness harness_;
  ExperimentContextPool contexts_;
  BatchHarnessPool engines_;
  int batch_width_ = 0;  // 0 = auto (kAutoBatchWidth)
  std::optional<MonitorModel> model_;
  std::optional<CheckpointStore> checkpoints_;
};

}  // namespace avis::core
