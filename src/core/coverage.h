// Mode-graph edge coverage (docs/FUZZING.md).
//
// A run's behavior is canonicalized by its mode-transition sequence (the
// mode graph, core/mode_graph.h), and a fault plan's search-relevant
// identity by *when* it first perturbs that sequence. Coverage keys combine
// the two: one key per (mode-graph edge, injection-window bucket), where the
// edge is a consecutive pair of distinct composite mode ids observed in a
// run and the bucket is the plan's first injection timestamp quantized to
// kCoverageWindowMs (-1 for fault-free plans). The checker accumulates keys
// for every applied experiment (CheckerReport::edge_coverage), which makes
// the map deterministic: results are applied in submission order, and
// transitions are bit-identical across worker counts, batch widths, and
// checkpoint modes — so unlike the checkpoint_* counters, edge coverage is
// part of report identity, not masked out of it.
//
// The scenario fuzzer (src/fuzz/) uses these keys as its fitness signal: a
// mutant scenario is interesting iff it reaches a key no corpus entry has.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_plan.h"

namespace avis::core {

// Injection-window quantum. Coarse enough that the offset crawl around one
// transition (12 x 200 ms per direction) usually lands in one or two
// buckets, fine enough that distinct mission phases (takeoff, legs, RTL,
// landing) get distinct buckets.
inline constexpr sim::SimTimeMs kCoverageWindowMs = 5000;

struct CoverageKey {
  std::uint16_t from_mode = 0;
  std::uint16_t to_mode = 0;
  std::int32_t window = -1;  // injection bucket; -1 = plan injects nothing

  auto operator<=>(const CoverageKey&) const = default;
};

// Key -> number of runs that traversed the edge under that window. std::map
// so iteration (serialization, signatures) is deterministic by construction.
using CoverageMap = std::map<CoverageKey, int>;

inline std::int32_t coverage_window_bucket(sim::SimTimeMs first_injection_ms) {
  if (first_injection_ms == FaultPlan::kNever) return -1;
  return static_cast<std::int32_t>(first_injection_ms / kCoverageWindowMs);
}

// Accumulates one run: every consecutive pair of distinct mode ids in
// `transitions` is an edge, keyed by the plan's injection bucket. Mirrors
// ModeGraph's edge rule so the coverage map is a windowed view of the same
// graph the monitor reasons about.
inline void accumulate_run_coverage(CoverageMap& map, const FaultPlan& plan,
                                    const std::vector<ModeTransition>& transitions) {
  const std::int32_t window = coverage_window_bucket(plan.first_injection_ms());
  bool have_prev = false;
  std::uint16_t prev = 0;
  for (const ModeTransition& t : transitions) {
    if (have_prev && prev != t.mode_id) {
      map[CoverageKey{prev, t.mode_id, window}] += 1;
    }
    have_prev = true;
    prev = t.mode_id;
  }
}

inline void merge_coverage(CoverageMap& into, const CoverageMap& from) {
  for (const auto& [key, count] : from) into[key] += count;
}

// "12->34@w3" / "12->34@w-1" — the human-readable key the campaign report
// and fuzz report print.
inline std::string coverage_key_string(const CoverageKey& key) {
  return std::to_string(key.from_mode) + "->" + std::to_string(key.to_mode) + "@w" +
         std::to_string(key.window);
}

// True when every key of `inner` appears in `outer` (counts ignored) — the
// corpus manager's dominance test.
inline bool coverage_keys_subset(const CoverageMap& inner, const CoverageMap& outer) {
  for (const auto& [key, count] : inner) {
    if (!outer.contains(key)) return false;
  }
  return true;
}

}  // namespace avis::core
