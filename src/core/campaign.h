// Campaign-level parallel execution (ROADMAP: "shard whole campaigns").
//
// A campaign is a grid of independent cells, each described by a
// declarative ScenarioSpec (core/scenario.h): registry names for approach,
// personality, workload, environment and bug population, plus budget and
// seeds. Each cell owns its own Checker (and therefore its own profiling
// runs and monitor model), its own strategy, and its own BudgetClock. Cells
// share nothing mutable, so the runner executes them concurrently on a
// cell-level ThreadPool layered on top of each cell's in-process experiment
// pool, and collects results in deterministic grid order. Every cell report
// is bit-identical to a serial run of the same cell regardless of either
// worker count (tests/test_campaign.cc; docs/PERFORMANCE.md has the full
// contract).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checker.h"
#include "core/scenario.h"
#include "util/concurrency.h"

namespace avis::core {

// Write-ahead journal (core/journal.h); forward-declared because journal.h
// includes this header for the cell/report types.
class CampaignJournal;
struct JournalCellRecord;

// Compatibility/extension hook: builds a cell's strategy once its monitor
// model is calibrated. The second argument is the cell's strategy seed.
using StrategyFactory =
    std::function<std::unique_ptr<InjectionStrategy>(const MonitorModel&, std::uint64_t)>;

struct CampaignCellSpec {
  // The declarative description; registry names resolve when the cell runs.
  ScenarioSpec scenario;

  // Display label for reports; empty means the approach registry's label
  // ("Avis" for "avis"), or the raw approach name for non-registry cells.
  std::string label;

  // Escape hatches for cells that are not registry entries: the ablation
  // bench runs SABRE with per-cell pruning configs, table 5 re-inserts one
  // known bug per cell, and the parity tests pin custom factories. When
  // set, they override the corresponding scenario field; everything else
  // (personality, workload, environment, budget, seeds) still resolves from
  // the scenario.
  StrategyFactory make_strategy;
  std::optional<fw::BugRegistry> bugs_override;

  std::string display_label() const {
    return !label.empty() ? label : approach_label(scenario.approach);
  }
};

// The grid a ScenarioGrid document describes, as runnable cells.
std::vector<CampaignCellSpec> expand_to_cells(const ScenarioGrid& grid);

struct CampaignCellResult {
  CampaignCellSpec spec;
  CheckerReport report;
  // The cell's strategy, kept alive for post-run inspection (the ablation
  // benches read SABRE's pruning counters through it). Cells merged back
  // from a remote worker (src/net/) carry no strategy object.
  std::unique_ptr<InjectionStrategy> strategy;
  double wall_seconds = 0.0;

  // Execution provenance (distributed campaigns, docs/DISTRIBUTED.md). A
  // single-process run is one local attempt; the coordinator counts every
  // assignment — including a degraded-mode in-process completion — and
  // records which workers lost the cell before it finished. Like wall
  // clocks, these fields vary run to run and are masked out of report
  // identity comparisons.
  int attempts = 1;
  std::string completed_by = "local";
  std::vector<std::string> reassigned_from;

  // Position in the requested grid (-1 = "my position in the results
  // vector", the single-process default). A resumed or interrupted campaign
  // reports a subset or reordering of the grid, so the report writer needs
  // the original index to keep cell identity stable across runs.
  int grid_index = -1;

  double experiments_per_sec() const {
    return wall_seconds > 0.0 ? report.experiments / wall_seconds : 0.0;
  }
};

struct CampaignResult {
  util::WorkerBudget split;       // worker split the campaign actually ran with
  int batch_width = 0;            // resolved lockstep width the cells ran with
  // Checkpoint knobs the cells ran with, echoed into the report JSON next
  // to batch_width so an archived report is self-describing.
  bool checkpoints_enabled = true;
  bool checkpoint_trees = true;
  std::size_t checkpoint_budget_bytes = 0;
  double wall_seconds = 0.0;      // whole-campaign wall time
  // True when the campaign was stopped early (SIGINT/SIGTERM): cells holds
  // only what completed, and the report is a valid partial — the journal
  // plus --resume turns it into the full report later.
  bool interrupted = false;
  std::vector<CampaignCellResult> cells;  // deterministic grid order

  int total_experiments() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.experiments;
    return total;
  }

  // Campaign-wide checkpoint accounting, summed over cells in grid order.
  // Part of the deterministic report contract: the distributed merge path
  // must reproduce the single-process totals exactly (tests/test_campaign.cc,
  // tests/test_distributed.cc).
  int total_checkpoint_hits() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.checkpoint_hits;
    return total;
  }
  int total_checkpoint_misses() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.checkpoint_misses;
    return total;
  }
  int total_checkpoint_evicted() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.checkpoint_evicted;
    return total;
  }
  sim::SimTimeMs total_checkpoint_skipped_ms() const {
    sim::SimTimeMs total = 0;
    for (const auto& cell : cells) total += cell.report.checkpoint_skipped_ms;
    return total;
  }
  int total_checkpoint_tree_evicted() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.checkpoint_tree_evicted;
    return total;
  }
  int total_stalled_runs() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.stalled_runs;
    return total;
  }

  // Campaign-wide (mode-graph edge x injection-window) coverage union, counts
  // summed over cells in grid order (core/coverage.h). Deterministic like the
  // per-cell maps it merges, so the distributed merge path must reproduce it
  // exactly; the report header carries its key count.
  CoverageMap coverage_union() const {
    CoverageMap unioned;
    for (const auto& cell : cells) merge_coverage(unioned, cell.report.edge_coverage);
    return unioned;
  }
};

// One cell, end to end, on the calling thread (plus the cell's experiment
// pool): resolve the scenario through the registries, calibrate, build the
// strategy, run the checker loop. This is the unit the campaign pool — and a
// distributed worker process (src/net/worker.h) — executes; cells touch
// nothing shared, so it is safe to call concurrently.
// `batch_width` is the lockstep simulation width handed to the cell's
// Checker (0 = auto; reports are bit-identical at any width).
CampaignCellResult run_cell(const CampaignCellSpec& spec, int experiment_workers,
                            const CheckpointConfig& checkpoints, int batch_width = 0);

struct CampaignOptions {
  // Hardware budget divided between the two pool levels via
  // util::split_worker_budget; an explicit cell_workers / experiment_workers
  // (> 0) overrides the corresponding half of the split.
  int total_workers = util::default_worker_count();
  int cell_workers = 0;
  int experiment_workers = 0;
  // Checkpointed prefix forking, per cell (each cell's Checker records its
  // own fault-free prefix). On by default; the CLI's --no-checkpoints and
  // parity tests turn it off.
  CheckpointConfig checkpoints;
  // Lockstep batch width per cell (core::BatchHarness). 0 = auto
  // (Checker::kAutoBatchWidth). Like the worker split, a wall-clock-only
  // knob: reports are bit-identical at any width.
  int batch_width = 0;

  // Crash safety (core/journal.h; docs/DISTRIBUTED.md). When `journal` is
  // set, every completed cell is appended (write + fsync) as soon as it is
  // collected, in grid order. When `resume` is set, the listed cells are
  // not re-run: their journaled reports are merged into the result at their
  // grid positions. Both are borrowed, not owned; the caller (the CLI)
  // keeps them alive across run().
  CampaignJournal* journal = nullptr;
  const std::vector<JournalCellRecord>* resume = nullptr;

  // Cooperative interrupt (SIGINT/SIGTERM): polled between cells. When it
  // returns true the runner stops starting new cells, finishes (and
  // journals) the ones already running, and returns a partial result with
  // interrupted = true.
  std::function<bool()> should_stop;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(options) {}

  // Runs every cell of the grid and returns their results in grid order.
  // Exceptions thrown inside a cell (propagated through the pool's futures)
  // surface on the calling thread; unregistered scenario names throw
  // util::UnknownNameError before any simulation starts.
  CampaignResult run(const std::vector<CampaignCellSpec>& grid) const;

  // Convenience: expand a scenario grid and run it.
  CampaignResult run(const ScenarioGrid& grid) const { return run(expand_to_cells(grid)); }

  // The worker split `run` would use for a grid of this size.
  util::WorkerBudget worker_split(std::size_t cells) const;

 private:
  CampaignOptions options_;
};

// Machine-readable campaign report for the bench trajectory: one object per
// cell in grid order with its scenario identity (registry names), throughput
// (experiments/sec), unsafe counts, and bug-first-found simulation indices.
std::string campaign_report_json(const CampaignResult& result);

// Full CheckerReport serialization — the payload of the distributed
// protocol's CellReport frame (src/net/protocol.h). Unlike the campaign
// report above (which carries derived aggregates), this is a lossless round
// trip: plans, violations, transitions and checkpoint counters all survive,
// so a report merged from a remote worker is field-identical to one computed
// in-process. from_json throws util::JsonError on malformed or out-of-range
// input (the peer may be a mismatched binary).
std::string checker_report_json(const CheckerReport& report, int indent = 0);
CheckerReport checker_report_from_json(const util::Json& json);

}  // namespace avis::core
