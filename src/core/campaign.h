// Campaign-level parallel execution (ROADMAP: "shard whole campaigns").
//
// A campaign is a grid of independent cells — (approach, personality,
// workload) triples, each owning its own Checker (and therefore its own
// profiling runs and monitor model), its own strategy, and its own
// BudgetClock. Cells share nothing mutable, so the runner executes them
// concurrently on a cell-level ThreadPool layered on top of each cell's
// in-process experiment pool, and collects results in deterministic grid
// order. Every cell report is bit-identical to a serial run of the same
// cell regardless of either worker count (tests/test_campaign.cc;
// docs/PERFORMANCE.md has the full contract).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checker.h"
#include "util/concurrency.h"

namespace avis::core {

// Builds a cell's strategy once its monitor model is calibrated. The second
// argument is the cell's strategy seed.
using StrategyFactory =
    std::function<std::unique_ptr<InjectionStrategy>(const MonitorModel&, std::uint64_t)>;

struct CampaignCellSpec {
  std::string approach;  // display label, e.g. "Avis"
  fw::Personality personality = fw::Personality::kArduPilotLike;
  workload::WorkloadId workload = workload::WorkloadId::kAuto;
  fw::BugRegistry bugs = fw::BugRegistry::current_code_base();
  sim::SimTimeMs budget_ms = 7200 * 1000;  // the paper's per-workload budget
  std::uint64_t seed = 100;                // checker seed (profiling + experiments)
  std::uint64_t strategy_seed = 107;
  StrategyFactory make_strategy;
};

struct CampaignCellResult {
  CampaignCellSpec spec;
  CheckerReport report;
  // The cell's strategy, kept alive for post-run inspection (the ablation
  // benches read SABRE's pruning counters through it).
  std::unique_ptr<InjectionStrategy> strategy;
  double wall_seconds = 0.0;

  double experiments_per_sec() const {
    return wall_seconds > 0.0 ? report.experiments / wall_seconds : 0.0;
  }
};

struct CampaignResult {
  util::WorkerBudget split;       // worker split the campaign actually ran with
  double wall_seconds = 0.0;      // whole-campaign wall time
  std::vector<CampaignCellResult> cells;  // deterministic grid order

  int total_experiments() const {
    int total = 0;
    for (const auto& cell : cells) total += cell.report.experiments;
    return total;
  }
};

struct CampaignOptions {
  // Hardware budget divided between the two pool levels via
  // util::split_worker_budget; an explicit cell_workers / experiment_workers
  // (> 0) overrides the corresponding half of the split.
  int total_workers = util::default_worker_count();
  int cell_workers = 0;
  int experiment_workers = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {}) : options_(options) {}

  // Runs every cell of the grid and returns their results in grid order.
  // Exceptions thrown inside a cell (propagated through the pool's futures)
  // surface on the calling thread.
  CampaignResult run(const std::vector<CampaignCellSpec>& grid) const;

  // The worker split `run` would use for a grid of this size.
  util::WorkerBudget worker_split(std::size_t cells) const;

 private:
  CampaignOptions options_;
};

// Machine-readable campaign report for the bench trajectory: one object per
// cell in grid order with throughput (experiments/sec), unsafe counts, and
// bug-first-found simulation indices.
std::string campaign_report_json(const CampaignResult& result);

}  // namespace avis::core
