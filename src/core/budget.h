// Test-budget accounting (paper §VI: "we ran each approach for 2 hours per
// workload").
//
// The paper's budget is wall-clock on the authors' testbed. This repo runs
// on a deterministic simulator, so the budget is counted in *simulated cost*
// instead: every experiment costs its mission duration, and a BFI model
// label costs the 10 seconds the paper measured for it. Relative throughput
// across strategies — the quantity Tables III-V compare — is preserved.
#pragma once

#include <cstdint>

#include "sim/simulator.h"

namespace avis::core {

class BudgetClock {
 public:
  explicit BudgetClock(sim::SimTimeMs total_ms) : total_ms_(total_ms) {}

  // Two hours, the paper's per-workload budget.
  static BudgetClock two_hours() { return BudgetClock(7200 * 1000); }

  void charge_experiment(sim::SimTimeMs duration_ms) {
    used_ms_ += duration_ms;
    ++experiments_;
  }

  // A BFI model inference (paper §VI-B: "BFI's model took ~10 seconds to
  // label an injection scenario").
  void charge_label() {
    used_ms_ += kLabelCostMs;
    ++labels_;
  }

  bool exhausted() const { return used_ms_ >= total_ms_; }
  sim::SimTimeMs remaining_ms() const {
    return used_ms_ >= total_ms_ ? 0 : total_ms_ - used_ms_;
  }
  sim::SimTimeMs used_ms() const { return used_ms_; }
  sim::SimTimeMs total_ms() const { return total_ms_; }
  int experiments() const { return experiments_; }
  int labels() const { return labels_; }

  static constexpr sim::SimTimeMs kLabelCostMs = 10 * 1000;

 private:
  sim::SimTimeMs total_ms_;
  sim::SimTimeMs used_ms_ = 0;
  int experiments_ = 0;
  int labels_ = 0;
};

}  // namespace avis::core
