// The mode graph (paper §IV-C).
//
// "A mode graph is a directed graph, where each node represents a mode and
// each edge represents a mode-change event. The mode graph is constructed
// from the observed transitions between modes in the profiling runs." The
// distance between modes is the shortest-path length; D is the longest such
// distance, used to normalize the position/acceleration components of the
// state distance.
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "core/experiment.h"

namespace avis::core {

class ModeGraph {
 public:
  ModeGraph() = default;

  // Build from observed transitions across all profiling runs. The starting
  // mode of each run is a node even if it never transitions.
  static ModeGraph from_profiling(const std::vector<std::vector<ModeTransition>>& runs) {
    ModeGraph g;
    for (const auto& run : runs) {
      std::uint16_t prev_valid = 0;
      bool have_prev = false;
      for (const auto& t : run) {
        g.nodes_.insert(t.mode_id);
        if (have_prev && prev_valid != t.mode_id) {
          g.edges_[prev_valid].insert(t.mode_id);
        }
        prev_valid = t.mode_id;
        have_prev = true;
      }
    }
    g.p_compute_distances();
    return g;
  }

  bool contains(std::uint16_t mode) const { return nodes_.contains(mode); }

  // Shortest directed path length between modes; modes outside the graph or
  // unreachable pairs score the maximum distance D (the test run is doing
  // something no profiling run ever did).
  int distance(std::uint16_t from, std::uint16_t to) const {
    if (from == to) return 0;
    const auto it = dist_.find({from, to});
    if (it == dist_.end()) return diameter_;
    return it->second;
  }

  // D: the longest shortest-path in the graph (paper's normalization scale).
  int diameter() const { return diameter_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const {
    std::size_t n = 0;
    for (const auto& [from, tos] : edges_) n += tos.size();
    return n;
  }

 private:
  void p_compute_distances() {
    diameter_ = 1;
    for (std::uint16_t src : nodes_) {
      std::map<std::uint16_t, int> dist;
      std::deque<std::uint16_t> queue{src};
      dist[src] = 0;
      while (!queue.empty()) {
        const std::uint16_t u = queue.front();
        queue.pop_front();
        const auto it = edges_.find(u);
        if (it == edges_.end()) continue;
        for (std::uint16_t v : it->second) {
          if (dist.contains(v)) continue;
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
      for (const auto& [node, d] : dist) {
        if (d > 0) {
          dist_[{src, node}] = d;
          diameter_ = std::max(diameter_, d);
        }
      }
    }
  }

  std::set<std::uint16_t> nodes_;
  std::map<std::uint16_t, std::set<std::uint16_t>> edges_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, int> dist_;
  int diameter_ = 1;
};

}  // namespace avis::core
