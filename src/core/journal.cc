#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace avis::core {
namespace {

// checker_report_json emits pretty-printed JSON; JSONL needs one record per
// line. Every raw newline in the emitter is inter-token whitespace (strings
// escape \n as \\n via json_escape), so stripping them is loss-free.
std::string p_single_line(std::string text) {
  text.erase(std::remove(text.begin(), text.end(), '\n'), text.end());
  return text;
}

std::string p_hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

[[noreturn]] void p_throw_errno(const std::string& what, const std::string& path) {
  throw JournalError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string cell_identity_hash(const CampaignCellSpec& cell) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  const auto mix = [&hash](std::string_view text) {
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
  };
  mix(cell.label);
  mix("\x1f");  // unit separator: "a"+"bc" must not collide with "ab"+"c"
  mix(cell.scenario.to_json());
  return p_hex64(hash);
}

CampaignJournal::Header CampaignJournal::bind(const std::vector<CampaignCellSpec>& grid,
                                              const CheckpointConfig& checkpoints,
                                              int batch_width) {
  Header header;
  header.cells = grid.size();
  header.checkpoints_enabled = checkpoints.enabled;
  header.checkpoint_trees = checkpoints.enabled && checkpoints.trees;
  header.checkpoint_interval_ms = checkpoints.interval_ms;
  header.checkpoint_budget_bytes = checkpoints.byte_budget;
  header.batch_width = batch_width;
  header.cell_hashes.reserve(grid.size());
  for (const CampaignCellSpec& cell : grid) {
    header.cell_hashes.push_back(cell_identity_hash(cell));
  }
  return header;
}

std::string CampaignJournal::header_diff(const Header& journal, const Header& requested,
                                         const std::vector<CampaignCellSpec>& grid) {
  std::ostringstream os;
  os << std::boolalpha;
  const auto field = [&os](const char* name, const auto& from_journal, const auto& from_flags) {
    if (!(from_journal == from_flags)) {
      os << "  " << name << ": journal has " << from_journal << ", requested " << from_flags
         << "\n";
    }
  };
  field("journal version", journal.version, requested.version);
  field("cells", journal.cells, requested.cells);
  field("checkpoints_enabled", journal.checkpoints_enabled, requested.checkpoints_enabled);
  field("checkpoint_trees", journal.checkpoint_trees, requested.checkpoint_trees);
  field("checkpoint_interval_ms", journal.checkpoint_interval_ms,
        requested.checkpoint_interval_ms);
  field("checkpoint_budget_bytes", journal.checkpoint_budget_bytes,
        requested.checkpoint_budget_bytes);
  field("batch_width", journal.batch_width, requested.batch_width);
  const std::size_t common = std::min(journal.cell_hashes.size(), requested.cell_hashes.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (journal.cell_hashes[i] == requested.cell_hashes[i]) continue;
    os << "  cell " << i << ": journal has " << journal.cell_hashes[i] << ", requested "
       << requested.cell_hashes[i];
    if (i < grid.size()) {
      const ScenarioSpec& spec = grid[i].scenario;
      os << " (" << spec.approach << " / " << spec.personality << " / " << spec.workload << " / "
         << spec.environment << ")";
    }
    os << "\n";
  }
  return os.str();
}

CampaignJournal CampaignJournal::start(const std::string& path, const Header& header) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) p_throw_errno("cannot create journal", path);
  CampaignJournal journal(path, fd);
  std::ostringstream os;
  os << std::boolalpha;
  os << "{\"type\": \"avis_campaign_journal\", \"version\": " << header.version
     << ", \"cells\": " << header.cells
     << ", \"checkpoints_enabled\": " << header.checkpoints_enabled
     << ", \"checkpoint_trees\": " << header.checkpoint_trees
     << ", \"checkpoint_interval_ms\": " << header.checkpoint_interval_ms
     << ", \"checkpoint_budget_bytes\": " << header.checkpoint_budget_bytes
     << ", \"batch_width\": " << header.batch_width << ", \"cell_hashes\": [";
  for (std::size_t i = 0; i < header.cell_hashes.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << header.cell_hashes[i] << "\"";
  }
  os << "]}";
  journal.p_write_line(os.str());
  return journal;
}

CampaignJournal CampaignJournal::append_to(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) p_throw_errno("cannot reopen journal", path);
  return CampaignJournal(path, fd);
}

CampaignJournal::Loaded CampaignJournal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError("cannot open journal " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<std::string_view> lines;
  const std::string_view view(content);
  std::size_t start = 0;
  while (start < view.size()) {
    const std::size_t end = view.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(view.substr(start));  // final line missing its \n: torn
      break;
    }
    lines.push_back(view.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty()) throw JournalError(path + ": empty file, not a campaign journal");

  Loaded loaded;
  try {
    const util::Json json = util::Json::parse(lines[0]);
    if (json.get_string("type", "") != "avis_campaign_journal") {
      throw util::JsonError("missing journal header tag");
    }
    Header& header = loaded.header;
    header.version = static_cast<int>(json.at("version").as_int64());
    header.cells = static_cast<std::size_t>(json.at("cells").as_int64());
    header.checkpoints_enabled = json.at("checkpoints_enabled").as_bool();
    header.checkpoint_trees = json.at("checkpoint_trees").as_bool();
    header.checkpoint_interval_ms = json.at("checkpoint_interval_ms").as_int64();
    header.checkpoint_budget_bytes =
        static_cast<std::size_t>(json.at("checkpoint_budget_bytes").as_uint64());
    header.batch_width = static_cast<int>(json.at("batch_width").as_int64());
    for (const util::Json& hash : json.at("cell_hashes").as_array()) {
      header.cell_hashes.push_back(hash.as_string());
    }
  } catch (const util::JsonError& err) {
    // A header can only be torn if the campaign crashed before journaling a
    // single cell — nothing to resume either way, so unreadable headers are
    // always fatal rather than silently treated as an empty journal.
    throw JournalError(path + ": unreadable journal header: " + err.what());
  }

  std::vector<bool> seen(loaded.header.cells, false);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const bool is_final_line = i + 1 == lines.size();
    try {
      const util::Json json = util::Json::parse(lines[i]);
      if (json.get_string("type", "") != "cell") throw util::JsonError("unexpected record type");
      JournalCellRecord record;
      record.index = static_cast<int>(json.at("index").as_int64());
      record.spec_hash = json.at("spec_hash").as_string();
      record.attempts = static_cast<int>(json.get_int64("attempts", 1));
      record.completed_by = json.get_string("completed_by", "local");
      record.reassigned_from = json.get_string_array("reassigned_from", {});
      const util::Json* wall = json.find("wall_seconds");
      record.wall_seconds = wall != nullptr ? wall->as_double() : 0.0;
      record.report = checker_report_from_json(json.at("report"));
      if (record.index < 0 || static_cast<std::size_t>(record.index) >= loaded.header.cells) {
        throw util::JsonError("cell index " + std::to_string(record.index) +
                              " outside the journaled grid");
      }
      if (record.spec_hash != loaded.header.cell_hashes[static_cast<std::size_t>(record.index)]) {
        throw util::JsonError("record spec_hash disagrees with the journal header");
      }
      const auto slot = static_cast<std::size_t>(record.index);
      if (seen[slot]) continue;  // re-journaled after a crashed resume; copies are identical
      seen[slot] = true;
      loaded.cells.push_back(std::move(record));
    } catch (const util::JsonError& err) {
      if (is_final_line) {
        // The torn-record rule: a crash mid-append leaves exactly one
        // partial final line. Drop it — its cell re-runs deterministically.
        loaded.dropped_torn_record = true;
        break;
      }
      throw JournalError(path + " line " + std::to_string(i + 1) +
                         ": corrupt journal record (only the final line may be torn): " +
                         err.what());
    }
  }
  return loaded;
}

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : path_(std::move(other.path_)), fd_(std::exchange(other.fd_, -1)) {}

CampaignJournal& CampaignJournal::operator=(CampaignJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CampaignJournal::append(const JournalCellRecord& record) {
  std::ostringstream os;
  os << "{\"type\": \"cell\", \"index\": " << record.index << ", \"spec_hash\": \""
     << record.spec_hash << "\", \"attempts\": " << record.attempts << ", \"completed_by\": \""
     << util::json_escape(record.completed_by) << "\", \"reassigned_from\": [";
  for (std::size_t i = 0; i < record.reassigned_from.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << util::json_escape(record.reassigned_from[i]) << "\"";
  }
  os << "], \"wall_seconds\": " << record.wall_seconds
     << ", \"report\": " << p_single_line(checker_report_json(record.report)) << "}";
  p_write_line(os.str());
}

void CampaignJournal::p_write_line(std::string line) {
  line.push_back('\n');
  // One write() per record keeps crash states simple: the kernel may still
  // tear it (write is not atomic across power loss), but a single partial
  // final line is the *only* torn shape load() ever has to handle.
  std::size_t offset = 0;
  while (offset < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + offset, line.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      p_throw_errno("journal write failed for", path_);
    }
    offset += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) p_throw_errno("journal fsync failed for", path_);
}

}  // namespace avis::core
