// Sensor-instance symmetry (paper §IV-B-1, Fig. 6).
//
// "When handling sensor failures, the UAV's behavior depends on the role of
// the failed sensors instead of which instances fail." A canonical failure
// set per type is therefore (fail primary?, how many backups), expanded to
// concrete instances as primary = #0 and backups = #1..#b. For a type with
// N instances this reduces the N x (2^N - 1) instance subsets to 2N - 1
// role-distinct ones.
#pragma once

#include <functional>
#include <vector>

#include "sensors/sensor_models.h"
#include "sensors/sensor_types.h"

namespace avis::core {

// One type's canonical contribution to a failure set.
struct TypeFailure {
  sensors::SensorType type = sensors::SensorType::kGyroscope;
  bool primary = false;
  int backups = 0;

  int size() const { return (primary ? 1 : 0) + backups; }

  std::vector<sensors::SensorId> instances() const {
    std::vector<sensors::SensorId> ids;
    if (primary) ids.push_back({type, 0});
    for (int b = 1; b <= backups; ++b) {
      ids.push_back({type, static_cast<std::uint8_t>(b)});
    }
    return ids;
  }
};

// Number of role-distinct non-empty failure sets for one type with N
// instances: 2N - 1 (paper §IV-B-1).
inline int canonical_count(int instances) { return instances > 0 ? 2 * instances - 1 : 0; }

// Number of non-empty instance subsets the symmetry policy replaces. The
// paper quotes N x (2^N - 1) for its running example (N = 3 gives 21).
inline long long unreduced_count(int instances) {
  return instances > 0 ? static_cast<long long>(instances) * ((1LL << instances) - 1) : 0;
}

// Enumerate every canonical failure set of exactly `size` concrete failures
// across the suite, in deterministic order. Callers receive the concrete
// SensorIds (primary first).
inline std::vector<std::vector<sensors::SensorId>> canonical_sets_of_size(
    const sensors::SuiteConfig& suite, int size) {
  std::vector<std::vector<sensors::SensorId>> out;
  std::vector<TypeFailure> current;

  std::function<void(std::size_t, int)> recurse = [&](std::size_t type_index, int remaining) {
    if (remaining == 0) {
      std::vector<sensors::SensorId> ids;
      for (const auto& tf : current) {
        auto inst = tf.instances();
        ids.insert(ids.end(), inst.begin(), inst.end());
      }
      out.push_back(std::move(ids));
      return;
    }
    if (type_index >= sensors::kAllSensorTypes.size()) return;
    const sensors::SensorType type = sensors::kAllSensorTypes[type_index];
    const int count = suite.count(type);
    // Option 1: this type contributes nothing.
    recurse(type_index + 1, remaining);
    // Option 2: every role-distinct non-empty contribution that fits.
    for (int primary = 0; primary <= (count > 0 ? 1 : 0); ++primary) {
      for (int backups = 0; backups <= count - 1; ++backups) {
        if (primary + backups == 0 || primary + backups > remaining) continue;
        current.push_back({type, primary != 0, backups});
        recurse(type_index + 1, remaining - primary - backups);
        current.pop_back();
      }
    }
  };
  recurse(0, size);
  return out;
}

// All instance subsets of one type of the given size — the unreduced space,
// used by the no-symmetry ablation and the Fig. 6 bench.
inline std::vector<std::vector<sensors::SensorId>> all_instance_sets_of_size(
    const sensors::SuiteConfig& suite, int size) {
  std::vector<sensors::SensorId> all;
  for (sensors::SensorType t : sensors::kAllSensorTypes) {
    for (int i = 0; i < suite.count(t); ++i) {
      all.push_back({t, static_cast<std::uint8_t>(i)});
    }
  }
  std::vector<std::vector<sensors::SensorId>> out;
  std::vector<sensors::SensorId> current;
  std::function<void(std::size_t, int)> recurse = [&](std::size_t index, int remaining) {
    if (remaining == 0) {
      out.push_back(current);
      return;
    }
    if (index >= all.size()) return;
    recurse(index + 1, remaining);
    current.push_back(all[index]);
    recurse(index + 1, remaining - 1);
    current.pop_back();
  };
  recurse(0, size);
  return out;
}

}  // namespace avis::core
