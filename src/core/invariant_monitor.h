// The invariant monitor (paper §IV-C).
//
// Two rules:
//  * Safety  — no collisions and the firmware process stays alive. Crash
//    events come from the simulator's contact classifier; a thrown
//    InvariantError in firmware code is a process death.
//  * Liveliness — Eq. 1: the run's state (P, alpha, M) must stay within tau
//    of at least one profiling run at the same time offset, where tau is the
//    largest state distance observed between any two profiling runs.
//
// Safe modes: liveliness may be sacrificed to preserve safety. A run inside
// a safe mode is exempt from Eq. 1 but must satisfy that mode's own
// invariant (landing must descend, RTL must make progress home, a disarmed
// vehicle must be stationary on the ground).
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/mode_graph.h"
#include "fw/modes.h"
#include "geo/vec3.h"

namespace avis::core {

// Calibrated profiling data: traces, the mode graph, and the normalization
// constants P-bar, A-bar, D and threshold tau from §IV-C.
class MonitorModel {
 public:
  // Build from N profiling (fault-free) runs of the same workload. Shorter
  // runs are padded by repeating their last state, per the paper.
  static MonitorModel calibrate(std::vector<ExperimentResult> profiling_runs);

  // State distance d(S_i, S_j) per the paper's formula.
  double state_distance(const StateSample& a, const StateSample& b) const;

  double tau() const { return tau_; }
  double max_position_spread() const { return p_bar_; }
  double max_accel_spread() const { return a_bar_; }
  const ModeGraph& mode_graph() const { return graph_; }
  std::size_t profiling_run_count() const { return traces_.size(); }
  sim::SimTimeMs profiling_duration_ms() const { return duration_ms_; }
  double max_home_distance() const { return max_home_distance_; }

  // Profiling state of run i at time t (padded).
  const StateSample& profiling_state(std::size_t run, sim::SimTimeMs t) const;

  // The golden run's transitions; SABRE seeds its queue from these.
  const std::vector<ModeTransition>& golden_transitions() const { return golden_transitions_; }
  const ExperimentResult& golden_run() const { return golden_; }

  // Eq. 1: liveliness is violated at t if the state is farther than tau
  // from every profiling run.
  bool liveliness_violated(const StateSample& s) const;

 private:
  std::vector<std::vector<StateSample>> traces_;
  std::vector<ModeTransition> golden_transitions_;
  ExperimentResult golden_;
  ModeGraph graph_;
  double p_bar_ = 1.0;
  double a_bar_ = 1.0;
  double tau_ = 0.0;
  sim::SimTimeMs duration_ms_ = 0;
  double max_home_distance_ = 0.0;
};

// Per-run monitor: consumes one StateSample per monitor tick and reports the
// first violation.
class MonitorSession {
 public:
  explicit MonitorSession(const MonitorModel& model) : model_(&model) {}

  // Rebind to a model and forget the previous run, keeping the history
  // buffer's capacity — the arena-reuse path (core::ExperimentContext)
  // restarts one session per run instead of growing a fresh history vector.
  void restart(const MonitorModel& model) {
    model_ = &model;
    history_.clear();
    violation_.reset();
    consecutive_eq1_ = 0;
    eq1_started_ms_ = 0;
    eq1_mode_ = 0;
  }

  // Feed the sample taken at the end of a simulation step window. `crashed`
  // and `crash_cause` reflect the simulator's safety state; `firmware_dead`
  // is true if firmware raised an InvariantError this run; `workload_failed`
  // is true once the workload has timed out or been rejected — "the UAV must
  // always make progress towards its goal", so a stalled mission outside a
  // safe state is itself a liveliness violation.
  std::optional<Violation> on_sample(const StateSample& sample, bool crashed,
                                     sim::CrashCause crash_cause, bool firmware_dead,
                                     bool workload_failed = false);

  const std::optional<Violation>& violation() const { return violation_; }

  // Mid-run monitor state for experiment checkpointing. The sample history
  // is not duplicated into the capsule: every sample the session has seen is
  // a prefix of the recorded prefix-run trace (on_sample is fed exactly the
  // samples the harness appends to the trace, and stops appending once a
  // violation latches), so the capsule stores only the length and restore()
  // re-slices the shared trace.
  struct Snapshot {
    std::size_t history_len = 0;
    std::optional<Violation> violation;
    int consecutive_eq1 = 0;
    sim::SimTimeMs eq1_started_ms = 0;
    std::uint16_t eq1_mode = 0;
  };

  Snapshot save() const {
    return {history_.size(), violation_, consecutive_eq1_, eq1_started_ms_, eq1_mode_};
  }

  // `prefix_trace` is the prefix run's sampled trace; the first
  // `s.history_len` samples of it are exactly the history this session had
  // at capture time.
  void restore(const MonitorModel& model, const std::vector<StateSample>& prefix_trace,
               const Snapshot& s) {
    restart(model);
    history_.assign(prefix_trace.begin(),
                    prefix_trace.begin() + static_cast<std::ptrdiff_t>(s.history_len));
    violation_ = s.violation;
    consecutive_eq1_ = s.consecutive_eq1;
    eq1_started_ms_ = s.eq1_started_ms;
    eq1_mode_ = s.eq1_mode;
  }

 private:
  bool p_safe_mode_ok(const StateSample& sample);

  const MonitorModel* model_;
  std::vector<StateSample> history_;
  std::optional<Violation> violation_;
  // Eq. 1 must hold for several consecutive samples before a liveliness
  // violation is reported: physical divergences (fly-away, stall, ground
  // idle) persist, while mode-change transients last a sample or two.
  int consecutive_eq1_ = 0;
  sim::SimTimeMs eq1_started_ms_ = 0;
  std::uint16_t eq1_mode_ = 0;
};

}  // namespace avis::core
