#include "core/campaign.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>

#include "util/checked.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace avis::core {

namespace {

// One cell, end to end: resolve the scenario through the registries,
// calibrate, build the strategy, run the campaign loop. Everything the cell
// touches is constructed here, so cells are safe to run on pool threads.
CampaignCellResult p_run_cell(const CampaignCellSpec& spec, int experiment_workers,
                              const CheckpointConfig& checkpoints) {
  CampaignCellResult result;
  result.spec = spec;
  const auto start = std::chrono::steady_clock::now();
  // Resolve the approach name before calibration: a typo must throw before
  // the cell burns its three profiling simulations (the header's "before
  // any simulation starts" promise). Cells with a pinned factory skip the
  // registry entirely.
  if (!spec.make_strategy) approach_registry().at(spec.scenario.approach);
  ExperimentSpec prototype = scenario_prototype(spec.scenario);
  if (spec.bugs_override) prototype.bugs = *spec.bugs_override;
  Checker checker(std::move(prototype), checkpoints);
  const MonitorModel& model = checker.model();
  result.strategy = spec.make_strategy
                        ? spec.make_strategy(model, spec.scenario.strategy_seed)
                        : make_scenario_strategy(spec.scenario, model);
  util::expects(result.strategy != nullptr, "campaign cell produced no strategy");
  BudgetClock budget(spec.scenario.budget_ms);
  result.report = checker.run_parallel(*result.strategy, budget, experiment_workers);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace

std::vector<CampaignCellSpec> expand_to_cells(const ScenarioGrid& grid) {
  std::vector<CampaignCellSpec> cells;
  for (ScenarioSpec& scenario : grid.expand()) {
    // Resolve every name up front so a typo fails before any cell has
    // burned budget.
    scenario.validate();
    CampaignCellSpec cell;
    cell.scenario = std::move(scenario);
    cells.push_back(std::move(cell));
  }
  util::expects(!cells.empty(), "scenario grid expands to an empty campaign");
  return cells;
}

util::WorkerBudget CampaignRunner::worker_split(std::size_t cells) const {
  const int total = std::max(1, options_.total_workers);
  util::WorkerBudget split = util::split_worker_budget(total, static_cast<int>(cells));
  if (options_.cell_workers > 0 && options_.experiment_workers > 0) {
    // Both halves pinned: the caller explicitly owns the thread count.
    split.campaign_workers = options_.cell_workers;
    split.experiment_workers = options_.experiment_workers;
  } else if (options_.cell_workers > 0) {
    // Re-derive the free half from the pinned one so a single-sided
    // override still honours the no-oversubscription budget.
    split.campaign_workers = options_.cell_workers;
    split.experiment_workers = std::max(1, total / options_.cell_workers);
  } else if (options_.experiment_workers > 0) {
    split.experiment_workers = options_.experiment_workers;
    split.campaign_workers = std::max(
        1, std::min(static_cast<int>(std::max<std::size_t>(cells, 1)),
                    total / options_.experiment_workers));
  }
  return split;
}

CampaignResult CampaignRunner::run(const std::vector<CampaignCellSpec>& grid) const {
  CampaignResult result;
  result.split = worker_split(grid.size());
  result.cells.reserve(grid.size());
  const auto start = std::chrono::steady_clock::now();
  if (result.split.campaign_workers <= 1 || grid.size() <= 1) {
    for (const auto& spec : grid) {
      result.cells.push_back(
          p_run_cell(spec, result.split.experiment_workers, options_.checkpoints));
    }
  } else {
    util::ThreadPool pool(result.split.campaign_workers);
    std::vector<std::future<CampaignCellResult>> in_flight;
    in_flight.reserve(grid.size());
    for (const auto& spec : grid) {
      in_flight.push_back(pool.submit([&spec, workers = result.split.experiment_workers,
                                       checkpoints = options_.checkpoints] {
        return p_run_cell(spec, workers, checkpoints);
      }));
    }
    // Collection in submission order keeps the result vector in grid order
    // no matter which cell finishes first.
    for (auto& future : in_flight) result.cells.push_back(future.get());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

std::string campaign_report_json(const CampaignResult& result) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"campaign\": {\n";
  os << "    \"cells\": " << result.cells.size() << ",\n";
  os << "    \"cell_workers\": " << result.split.campaign_workers << ",\n";
  os << "    \"experiment_workers\": " << result.split.experiment_workers << ",\n";
  os << "    \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "    \"total_experiments\": " << result.total_experiments() << "\n";
  os << "  },\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CampaignCellResult& cell = result.cells[i];
    const CheckerReport& report = cell.report;
    const ScenarioSpec& scenario = cell.spec.scenario;
    os << "    {\n";
    os << "      \"index\": " << i << ",\n";
    os << "      \"approach\": \"" << util::json_escape(cell.spec.display_label()) << "\",\n";
    os << "      \"approach_key\": \"" << util::json_escape(scenario.approach) << "\",\n";
    os << "      \"strategy\": \"" << util::json_escape(report.strategy_name) << "\",\n";
    os << "      \"personality\": \"" << util::json_escape(scenario.personality) << "\",\n";
    os << "      \"workload\": \"" << util::json_escape(scenario.workload) << "\",\n";
    os << "      \"environment\": \"" << util::json_escape(scenario.environment) << "\",\n";
    // A bugs_override replaced the scenario's named population with an
    // ad-hoc one (table 5's re-inserted bugs); don't misreport it as the
    // selector name.
    os << "      \"bugs\": \""
       << util::json_escape(cell.spec.bugs_override ? std::string("custom") : scenario.bugs)
       << "\",\n";
    os << "      \"budget_ms\": " << scenario.budget_ms << ",\n";
    os << "      \"budget_used_ms\": " << report.budget_used_ms << ",\n";
    os << "      \"seed\": " << scenario.seed << ",\n";
    os << "      \"experiments\": " << report.experiments << ",\n";
    os << "      \"labels\": " << report.labels << ",\n";
    os << "      \"unsafe_count\": " << report.unsafe_count() << ",\n";
    const auto buckets = report.unsafe_by_bucket();
    os << "      \"unsafe_by_bucket\": [" << buckets[0] << ", " << buckets[1] << ", "
       << buckets[2] << ", " << buckets[3] << "],\n";
    os << "      \"bug_first_found\": {";
    bool first = true;
    for (const auto& [bug, index] : report.bug_first_found) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << fw::bug_info(bug).report_name << "\": " << index;
    }
    os << "},\n";
    // Checkpointed prefix forking: the bench-trajectory consumer should see
    // the hit rate and skipped sim time, not just wall time.
    os << "      \"checkpoint_hits\": " << report.checkpoint_hits << ",\n";
    os << "      \"checkpoint_misses\": " << report.checkpoint_misses << ",\n";
    os << "      \"checkpoint_hit_rate\": " << report.checkpoint_hit_rate() << ",\n";
    os << "      \"checkpoint_evicted\": " << report.checkpoint_evicted << ",\n";
    os << "      \"checkpoint_skipped_ms\": " << report.checkpoint_skipped_ms << ",\n";
    os << "      \"wall_seconds\": " << cell.wall_seconds << ",\n";
    os << "      \"experiments_per_sec\": " << cell.experiments_per_sec() << "\n";
    os << "    }" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace avis::core
