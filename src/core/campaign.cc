#include "core/campaign.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <sstream>

#include "core/journal.h"
#include "util/checked.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace avis::core {

// One cell, end to end: resolve the scenario through the registries,
// calibrate, build the strategy, run the campaign loop. Everything the cell
// touches is constructed here, so cells are safe to run on pool threads —
// or in a worker process on the other end of a socket (src/net/).
CampaignCellResult run_cell(const CampaignCellSpec& spec, int experiment_workers,
                            const CheckpointConfig& checkpoints, int batch_width) {
  CampaignCellResult result;
  result.spec = spec;
  const auto start = std::chrono::steady_clock::now();
  // Resolve the approach name before calibration: a typo must throw before
  // the cell burns its three profiling simulations (the header's "before
  // any simulation starts" promise). Cells with a pinned factory skip the
  // registry entirely.
  if (!spec.make_strategy) approach_registry().at(spec.scenario.approach);
  ExperimentSpec prototype = scenario_prototype(spec.scenario);
  if (spec.bugs_override) prototype.bugs = *spec.bugs_override;
  Checker checker(std::move(prototype), checkpoints);
  checker.set_batch_width(batch_width);
  const MonitorModel& model = checker.model();
  result.strategy = spec.make_strategy
                        ? spec.make_strategy(model, spec.scenario.strategy_seed)
                        : make_scenario_strategy(spec.scenario, model);
  util::expects(result.strategy != nullptr, "campaign cell produced no strategy");
  BudgetClock budget(spec.scenario.budget_ms);
  result.report = checker.run_parallel(*result.strategy, budget, experiment_workers);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

std::vector<CampaignCellSpec> expand_to_cells(const ScenarioGrid& grid) {
  std::vector<CampaignCellSpec> cells;
  for (ScenarioSpec& scenario : grid.expand()) {
    // Resolve every name up front so a typo fails before any cell has
    // burned budget.
    scenario.validate();
    CampaignCellSpec cell;
    cell.scenario = std::move(scenario);
    cells.push_back(std::move(cell));
  }
  util::expects(!cells.empty(), "scenario grid expands to an empty campaign");
  return cells;
}

util::WorkerBudget CampaignRunner::worker_split(std::size_t cells) const {
  const int total = std::max(1, options_.total_workers);
  util::WorkerBudget split = util::split_worker_budget(total, static_cast<int>(cells));
  if (options_.cell_workers > 0 && options_.experiment_workers > 0) {
    // Both halves pinned: the caller explicitly owns the thread count.
    split.campaign_workers = options_.cell_workers;
    split.experiment_workers = options_.experiment_workers;
  } else if (options_.cell_workers > 0) {
    // Re-derive the free half from the pinned one so a single-sided
    // override still honours the no-oversubscription budget.
    split.campaign_workers = options_.cell_workers;
    split.experiment_workers = std::max(1, total / options_.cell_workers);
  } else if (options_.experiment_workers > 0) {
    split.experiment_workers = options_.experiment_workers;
    split.campaign_workers = std::max(
        1, std::min(static_cast<int>(std::max<std::size_t>(cells, 1)),
                    total / options_.experiment_workers));
  }
  return split;
}

CampaignResult CampaignRunner::run(const std::vector<CampaignCellSpec>& grid) const {
  CampaignResult result;
  result.split = worker_split(grid.size());
  result.batch_width =
      options_.batch_width > 0 ? options_.batch_width : Checker::kAutoBatchWidth;
  result.checkpoints_enabled = options_.checkpoints.enabled;
  result.checkpoint_trees = options_.checkpoints.enabled && options_.checkpoints.trees;
  result.checkpoint_budget_bytes = options_.checkpoints.byte_budget;
  result.cells.reserve(grid.size());
  const auto start = std::chrono::steady_clock::now();

  // Resume bookkeeping: a journaled cell is merged at its grid position
  // instead of re-running (cells are pure functions of their spec, so the
  // journaled report equals what the re-run would have produced).
  std::vector<const JournalCellRecord*> resumed(grid.size(), nullptr);
  if (options_.resume != nullptr) {
    for (const JournalCellRecord& record : *options_.resume) {
      if (record.index >= 0 && static_cast<std::size_t>(record.index) < grid.size()) {
        resumed[static_cast<std::size_t>(record.index)] = &record;
      }
    }
  }
  const auto from_journal = [&grid](const JournalCellRecord& record) {
    CampaignCellResult cell;
    cell.spec = grid[static_cast<std::size_t>(record.index)];
    cell.report = record.report;
    cell.attempts = record.attempts;
    cell.completed_by = record.completed_by;
    cell.reassigned_from = record.reassigned_from;
    cell.wall_seconds = record.wall_seconds;
    cell.grid_index = record.index;
    return cell;
  };
  const auto stopped = [this] { return options_.should_stop && options_.should_stop(); };
  // Journal at collection time: the calling thread collects in grid order,
  // so the journal is written in grid order and fsync'd before the result
  // becomes visible to the caller.
  const auto journal_cell = [this, &grid](const CampaignCellResult& cell, std::size_t index) {
    if (options_.journal == nullptr) return;
    JournalCellRecord record;
    record.index = static_cast<int>(index);
    record.spec_hash = cell_identity_hash(grid[index]);
    record.attempts = cell.attempts;
    record.completed_by = cell.completed_by;
    record.reassigned_from = cell.reassigned_from;
    record.wall_seconds = cell.wall_seconds;
    record.report = cell.report;
    options_.journal->append(record);
  };

  if (result.split.campaign_workers <= 1 || grid.size() <= 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (resumed[i] != nullptr) {
        result.cells.push_back(from_journal(*resumed[i]));
        continue;
      }
      if (stopped()) {
        result.interrupted = true;
        break;
      }
      CampaignCellResult cell = run_cell(grid[i], result.split.experiment_workers,
                                         options_.checkpoints, options_.batch_width);
      cell.grid_index = static_cast<int>(i);
      journal_cell(cell, i);
      result.cells.push_back(std::move(cell));
    }
  } else {
    util::ThreadPool pool(result.split.campaign_workers);
    // One future per *fresh* cell, keyed by grid index. A task that finds
    // the stop flag raised before it starts returns nullopt — that is the
    // "stop assigning new cells" semantics; cells already simulating run to
    // completion (and get journaled).
    std::vector<std::pair<std::size_t, std::future<std::optional<CampaignCellResult>>>> in_flight;
    in_flight.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (resumed[i] != nullptr) continue;
      in_flight.emplace_back(
          i, pool.submit([&spec = grid[i], workers = result.split.experiment_workers,
                          checkpoints = options_.checkpoints,
                          batch_width = options_.batch_width,
                          &stopped]() -> std::optional<CampaignCellResult> {
            if (stopped()) return std::nullopt;
            return run_cell(spec, workers, checkpoints, batch_width);
          }));
    }
    // Collection in submission order keeps the result vector in grid order
    // no matter which cell finishes first.
    std::size_t next_fresh = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (resumed[i] != nullptr) {
        result.cells.push_back(from_journal(*resumed[i]));
        continue;
      }
      std::optional<CampaignCellResult> cell = in_flight[next_fresh++].second.get();
      if (!cell) {
        result.interrupted = true;
        continue;
      }
      cell->grid_index = static_cast<int>(i);
      journal_cell(*cell, i);
      result.cells.push_back(std::move(*cell));
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

namespace {

// {"12->34@w3": 2, ...} — one line, deterministic (CoverageMap iterates in
// key order).
void p_append_coverage_object(std::ostream& os, const CoverageMap& coverage) {
  os << "{";
  bool first = true;
  for (const auto& [key, count] : coverage) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << coverage_key_string(key) << "\": " << count;
  }
  os << "}";
}

}  // namespace

std::string campaign_report_json(const CampaignResult& result) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"campaign\": {\n";
  os << "    \"cells\": " << result.cells.size() << ",\n";
  // Emitted only for partial reports so complete runs — resumed or not —
  // stay byte-identical to the pre-journal format.
  if (result.interrupted) os << "    \"interrupted\": true,\n";
  os << "    \"cell_workers\": " << result.split.campaign_workers << ",\n";
  os << "    \"experiment_workers\": " << result.split.experiment_workers << ",\n";
  os << "    \"batch_width\": " << result.batch_width << ",\n";
  // The checkpoint knobs the campaign ran with (CLI: --no-checkpoints,
  // --no-checkpoint-trees, --checkpoint-budget-mb). Deliberately inside the
  // checkpoint_* prefix: the smoke diff masks that prefix when comparing
  // checkpoint modes, and these keys (like the counters) legitimately
  // differ across modes.
  os << "    \"checkpoint_enabled\": " << (result.checkpoints_enabled ? "true" : "false")
     << ",\n";
  os << "    \"checkpoint_trees\": " << (result.checkpoint_trees ? "true" : "false") << ",\n";
  os << "    \"checkpoint_budget_bytes\": " << result.checkpoint_budget_bytes << ",\n";
  os << "    \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "    \"total_experiments\": " << result.total_experiments() << ",\n";
  os << "    \"stalled_runs\": " << result.total_stalled_runs() << ",\n";
  // Campaign-wide edge-coverage union (core/coverage.h). Derived from
  // transitions, so — unlike the checkpoint block below — it is part of the
  // report-identity contract across worker counts and checkpoint modes, and
  // the fuzzer's "does this mutant reach anything new" reference.
  const CoverageMap coverage_union = result.coverage_union();
  os << "    \"edge_coverage_keys\": " << coverage_union.size() << ",\n";
  os << "    \"edge_coverage\": ";
  p_append_coverage_object(os, coverage_union);
  os << ",\n";
  // Campaign-wide checkpoint totals: the merge path (distributed runs) must
  // reproduce the single-process sums exactly, so they are part of the
  // report-identity contract rather than derived downstream.
  os << "    \"checkpoint_hits\": " << result.total_checkpoint_hits() << ",\n";
  os << "    \"checkpoint_misses\": " << result.total_checkpoint_misses() << ",\n";
  os << "    \"checkpoint_evicted\": " << result.total_checkpoint_evicted() << ",\n";
  os << "    \"checkpoint_tree_evicted\": " << result.total_checkpoint_tree_evicted() << ",\n";
  os << "    \"checkpoint_skipped_ms\": " << result.total_checkpoint_skipped_ms() << "\n";
  os << "  },\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CampaignCellResult& cell = result.cells[i];
    const CheckerReport& report = cell.report;
    const ScenarioSpec& scenario = cell.spec.scenario;
    os << "    {\n";
    // grid_index keeps cell identity stable when the result is a partial
    // (interrupted) subset of the grid; -1 (single-process full runs)
    // falls back to the vector position, which is the grid position.
    os << "      \"index\": " << (cell.grid_index >= 0 ? cell.grid_index : static_cast<int>(i))
       << ",\n";
    os << "      \"approach\": \"" << util::json_escape(cell.spec.display_label()) << "\",\n";
    os << "      \"approach_key\": \"" << util::json_escape(scenario.approach) << "\",\n";
    os << "      \"strategy\": \"" << util::json_escape(report.strategy_name) << "\",\n";
    os << "      \"personality\": \"" << util::json_escape(scenario.personality) << "\",\n";
    os << "      \"workload\": \"" << util::json_escape(scenario.workload) << "\",\n";
    os << "      \"environment\": \"" << util::json_escape(scenario.environment) << "\",\n";
    // A bugs_override replaced the scenario's named population with an
    // ad-hoc one (table 5's re-inserted bugs); don't misreport it as the
    // selector name.
    os << "      \"bugs\": \""
       << util::json_escape(cell.spec.bugs_override ? std::string("custom") : scenario.bugs)
       << "\",\n";
    os << "      \"budget_ms\": " << scenario.budget_ms << ",\n";
    os << "      \"budget_used_ms\": " << report.budget_used_ms << ",\n";
    os << "      \"seed\": " << scenario.seed << ",\n";
    os << "      \"experiments\": " << report.experiments << ",\n";
    os << "      \"labels\": " << report.labels << ",\n";
    os << "      \"unsafe_count\": " << report.unsafe_count() << ",\n";
    const auto buckets = report.unsafe_by_bucket();
    os << "      \"unsafe_by_bucket\": [" << buckets[0] << ", " << buckets[1] << ", "
       << buckets[2] << ", " << buckets[3] << "],\n";
    os << "      \"bug_first_found\": {";
    bool first = true;
    for (const auto& [bug, index] : report.bug_first_found) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << fw::bug_info(bug).report_name << "\": " << index;
    }
    os << "},\n";
    // Checkpointed prefix forking: the bench-trajectory consumer should see
    // the hit rate and skipped sim time, not just wall time.
    os << "      \"edge_coverage_keys\": " << report.edge_coverage.size() << ",\n";
    os << "      \"edge_coverage\": ";
    p_append_coverage_object(os, report.edge_coverage);
    os << ",\n";
    os << "      \"checkpoint_hits\": " << report.checkpoint_hits << ",\n";
    os << "      \"checkpoint_misses\": " << report.checkpoint_misses << ",\n";
    os << "      \"checkpoint_hit_rate\": " << report.checkpoint_hit_rate() << ",\n";
    os << "      \"checkpoint_hits_by_level\": [";
    for (std::size_t j = 0; j < report.checkpoint_hits_by_level.size(); ++j) {
      if (j) os << ", ";
      os << report.checkpoint_hits_by_level[j];
    }
    os << "],\n";
    os << "      \"checkpoint_evicted\": " << report.checkpoint_evicted << ",\n";
    os << "      \"checkpoint_tree_evicted\": " << report.checkpoint_tree_evicted << ",\n";
    os << "      \"checkpoint_skipped_ms\": " << report.checkpoint_skipped_ms << ",\n";
    os << "      \"stalled_runs\": " << report.stalled_runs << ",\n";
    // Execution provenance (docs/DISTRIBUTED.md): how many assignments the
    // cell took and which workers lost it. Wall-clock-class fields — masked
    // alongside wall_seconds in report identity comparisons.
    os << "      \"attempts\": " << cell.attempts << ",\n";
    os << "      \"completed_by\": \"" << util::json_escape(cell.completed_by) << "\",\n";
    os << "      \"reassigned_from\": [";
    for (std::size_t j = 0; j < cell.reassigned_from.size(); ++j) {
      if (j) os << ", ";
      os << "\"" << util::json_escape(cell.reassigned_from[j]) << "\"";
    }
    os << "],\n";
    os << "      \"wall_seconds\": " << cell.wall_seconds << ",\n";
    os << "      \"experiments_per_sec\": " << cell.experiments_per_sec() << "\n";
    os << "    }" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

// --- CheckerReport wire serialization --------------------------------------
//
// Lossless: every field expect_reports_equal compares survives the round
// trip, so the coordinator's merged cells are indistinguishable from cells
// it ran itself. Enum-valued fields travel as integers and are range-checked
// on the way back in — the sender may be a mismatched binary.

namespace {

// Range-checked narrowing for wire integers; JsonError (not InvariantError)
// so the net layer's "malformed peer frame" handling catches it.
std::int64_t p_wire_int(const util::Json& json, std::int64_t lo, std::int64_t hi,
                        const char* what) {
  const std::int64_t v = json.as_int64();
  if (v < lo || v > hi) {
    throw util::JsonError(std::string(what) + " out of range: " + std::to_string(v));
  }
  return v;
}

fw::BugId p_bug_from_wire(const util::Json& json) {
  return static_cast<fw::BugId>(
      p_wire_int(json, 0, static_cast<std::int64_t>(fw::kAllBugs.size()) - 1, "bug id"));
}

ModeTransition p_transition_from_wire(const util::Json& json) {
  ModeTransition t;
  t.time_ms = json.at("time_ms").as_int64();
  t.mode_id = static_cast<std::uint16_t>(p_wire_int(json.at("mode_id"), 0, 0xffff, "mode id"));
  t.mode_name = json.at("name").as_string();
  return t;
}

void p_append_transition(std::ostream& os, const ModeTransition& t) {
  os << "{\"time_ms\": " << t.time_ms << ", \"mode_id\": " << t.mode_id << ", \"name\": \""
     << util::json_escape(t.mode_name) << "\"}";
}

}  // namespace

std::string checker_report_json(const CheckerReport& report, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << pad << "  \"strategy\": \"" << util::json_escape(report.strategy_name) << "\",\n";
  os << pad << "  \"experiments\": " << report.experiments << ",\n";
  os << pad << "  \"labels\": " << report.labels << ",\n";
  os << pad << "  \"budget_used_ms\": " << report.budget_used_ms << ",\n";
  os << pad << "  \"checkpoint_hits\": " << report.checkpoint_hits << ",\n";
  os << pad << "  \"checkpoint_misses\": " << report.checkpoint_misses << ",\n";
  os << pad << "  \"checkpoint_hits_by_level\": [";
  for (std::size_t i = 0; i < report.checkpoint_hits_by_level.size(); ++i) {
    if (i) os << ", ";
    os << report.checkpoint_hits_by_level[i];
  }
  os << "],\n";
  os << pad << "  \"checkpoint_evicted\": " << report.checkpoint_evicted << ",\n";
  os << pad << "  \"checkpoint_tree_evicted\": " << report.checkpoint_tree_evicted << ",\n";
  os << pad << "  \"checkpoint_skipped_ms\": " << report.checkpoint_skipped_ms << ",\n";
  os << pad << "  \"stalled_runs\": " << report.stalled_runs << ",\n";
  os << pad << "  \"edge_coverage\": [";
  {
    bool first = true;
    for (const auto& [key, count] : report.edge_coverage) {
      if (!first) os << ", ";
      first = false;
      os << "{\"from\": " << key.from_mode << ", \"to\": " << key.to_mode
         << ", \"window\": " << key.window << ", \"count\": " << count << "}";
    }
  }
  os << "],\n";
  os << pad << "  \"bug_first_found\": [";
  bool first = true;
  for (const auto& [bug, index] : report.bug_first_found) {
    if (!first) os << ", ";
    first = false;
    os << "{\"bug\": " << static_cast<int>(bug) << ", \"experiment\": " << index << "}";
  }
  os << "],\n";
  os << pad << "  \"unsafe\": [";
  for (std::size_t i = 0; i < report.unsafe.size(); ++i) {
    const UnsafeRecord& record = report.unsafe[i];
    os << (i ? "," : "") << "\n" << pad << "    {\n";
    os << pad << "      \"seed\": " << record.seed << ",\n";
    os << pad << "      \"experiment_index\": " << record.experiment_index << ",\n";
    os << pad << "      \"plan\": [";
    for (std::size_t j = 0; j < record.plan.events.size(); ++j) {
      const FaultEvent& e = record.plan.events[j];
      if (j) os << ", ";
      os << "{\"time_ms\": " << e.time_ms
         << ", \"type\": " << static_cast<int>(e.sensor.type)
         << ", \"instance\": " << static_cast<int>(e.sensor.instance) << "}";
    }
    os << "],\n";
    os << pad << "      \"violation\": {\"type\": " << static_cast<int>(record.violation.type)
       << ", \"time_ms\": " << record.violation.time_ms
       << ", \"mode_id\": " << record.violation.mode_id << ", \"details\": \""
       << util::json_escape(record.violation.details) << "\"},\n";
    os << pad << "      \"fired_bugs\": [";
    for (std::size_t j = 0; j < record.fired_bugs.size(); ++j) {
      if (j) os << ", ";
      os << static_cast<int>(record.fired_bugs[j]);
    }
    os << "],\n";
    os << pad << "      \"transitions\": [";
    for (std::size_t j = 0; j < record.transitions.size(); ++j) {
      if (j) os << ", ";
      p_append_transition(os, record.transitions[j]);
    }
    os << "]\n";
    os << pad << "    }";
  }
  if (!report.unsafe.empty()) os << "\n" << pad << "  ";
  os << "]\n";
  os << pad << "}";
  return os.str();
}

CheckerReport checker_report_from_json(const util::Json& json) {
  CheckerReport report;
  report.strategy_name = json.at("strategy").as_string();
  report.experiments = static_cast<int>(json.at("experiments").as_int64());
  report.labels = static_cast<int>(json.at("labels").as_int64());
  report.budget_used_ms = json.at("budget_used_ms").as_int64();
  report.checkpoint_hits = static_cast<int>(json.at("checkpoint_hits").as_int64());
  report.checkpoint_misses = static_cast<int>(json.at("checkpoint_misses").as_int64());
  for (const util::Json& level : json.at("checkpoint_hits_by_level").as_array()) {
    report.checkpoint_hits_by_level.push_back(static_cast<int>(level.as_int64()));
  }
  report.checkpoint_evicted = static_cast<int>(json.at("checkpoint_evicted").as_int64());
  report.checkpoint_tree_evicted =
      static_cast<int>(json.at("checkpoint_tree_evicted").as_int64());
  report.checkpoint_skipped_ms = json.at("checkpoint_skipped_ms").as_int64();
  report.stalled_runs = static_cast<int>(json.at("stalled_runs").as_int64());
  for (const util::Json& entry : json.at("edge_coverage").as_array()) {
    CoverageKey key;
    key.from_mode =
        static_cast<std::uint16_t>(p_wire_int(entry.at("from"), 0, 0xffff, "mode id"));
    key.to_mode = static_cast<std::uint16_t>(p_wire_int(entry.at("to"), 0, 0xffff, "mode id"));
    key.window = static_cast<std::int32_t>(
        p_wire_int(entry.at("window"), -1, std::numeric_limits<std::int32_t>::max(),
                   "coverage window"));
    report.edge_coverage[key] =
        static_cast<int>(p_wire_int(entry.at("count"), 0, std::numeric_limits<int>::max(),
                                    "coverage count"));
  }
  for (const util::Json& entry : json.at("bug_first_found").as_array()) {
    report.bug_first_found[p_bug_from_wire(entry.at("bug"))] =
        static_cast<int>(entry.at("experiment").as_int64());
  }
  for (const util::Json& entry : json.at("unsafe").as_array()) {
    UnsafeRecord record;
    record.seed = entry.at("seed").as_uint64();
    record.experiment_index = static_cast<int>(entry.at("experiment_index").as_int64());
    for (const util::Json& event : entry.at("plan").as_array()) {
      FaultEvent e;
      e.time_ms = event.at("time_ms").as_int64();
      e.sensor.type = static_cast<sensors::SensorType>(
          p_wire_int(event.at("type"), 0,
                     static_cast<std::int64_t>(sensors::kAllSensorTypes.size()) - 1,
                     "sensor type"));
      e.sensor.instance =
          static_cast<std::uint8_t>(p_wire_int(event.at("instance"), 0, 0xff, "instance"));
      // Events were emitted in normalized order; append verbatim to keep the
      // plan signature byte-identical.
      record.plan.events.push_back(e);
    }
    const util::Json& violation = entry.at("violation");
    record.violation.type =
        static_cast<ViolationType>(p_wire_int(violation.at("type"), 0, 3, "violation type"));
    record.violation.time_ms = violation.at("time_ms").as_int64();
    record.violation.mode_id =
        static_cast<std::uint16_t>(p_wire_int(violation.at("mode_id"), 0, 0xffff, "mode id"));
    record.violation.details = violation.at("details").as_string();
    for (const util::Json& bug : entry.at("fired_bugs").as_array()) {
      record.fired_bugs.push_back(p_bug_from_wire(bug));
    }
    for (const util::Json& transition : entry.at("transitions").as_array()) {
      record.transitions.push_back(p_transition_from_wire(transition));
    }
    report.unsafe.push_back(std::move(record));
  }
  return report;
}

}  // namespace avis::core
