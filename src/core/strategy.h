// Search-strategy interface.
//
// Avis (SABRE), Random, BFI, and Stratified BFI all drive the same checker
// loop: propose a fault plan, observe the experiment result. Strategies may
// charge the budget themselves (BFI's model labels cost 10 s each); the
// checker charges experiment durations.
#pragma once

#include <optional>

#include "core/budget.h"
#include "core/experiment.h"
#include "core/fault_plan.h"

namespace avis::core {

class InjectionStrategy {
 public:
  virtual ~InjectionStrategy() = default;

  // Propose the next fault plan. May consume budget (model labeling); must
  // return nullopt when out of candidates or when the budget is exhausted.
  virtual std::optional<FaultPlan> next(BudgetClock& budget) = 0;

  // Result of simulating the proposed plan.
  virtual void feedback(const FaultPlan& plan, const ExperimentResult& result) = 0;

  virtual const char* name() const = 0;
};

}  // namespace avis::core
