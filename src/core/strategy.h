// Search-strategy interface.
//
// Avis (SABRE), Random, BFI, and Stratified BFI all drive the same checker
// loop: propose a fault plan, observe the experiment result. Strategies may
// charge the budget themselves (BFI's model labels cost 10 s each); the
// checker charges experiment durations.
#pragma once

#include <optional>
#include <vector>

#include "core/budget.h"
#include "core/experiment.h"
#include "core/fault_plan.h"

namespace avis::core {

class InjectionStrategy {
 public:
  virtual ~InjectionStrategy() = default;

  // Propose the next fault plan. May consume budget (model labeling); must
  // return nullopt when out of candidates or when the budget is exhausted.
  virtual std::optional<FaultPlan> next(BudgetClock& budget) = 0;

  // Propose up to `max_plans` plans that may be simulated concurrently,
  // i.e. without feedback from one influencing the generation of the next.
  // The default falls back to repeated next(), which is exact for
  // strategies that neither learn from feedback nor charge the budget while
  // proposing (Random). SABRE overrides it to stop at its expansion-wave
  // boundary so pruning decisions never straddle an in-flight batch; the
  // BFI variants cap batches at one plan because labeling charges the
  // budget inside next().
  virtual std::vector<FaultPlan> next_batch(BudgetClock& budget, int max_plans) {
    std::vector<FaultPlan> plans;
    plans.reserve(max_plans > 0 ? static_cast<std::size_t>(max_plans) : 0);
    for (int i = 0; i < max_plans; ++i) {
      auto plan = next(budget);
      if (!plan) break;
      plans.push_back(std::move(*plan));
    }
    return plans;
  }

  // Result of simulating the proposed plan.
  virtual void feedback(const FaultPlan& plan, const ExperimentResult& result) = 0;

  // Plan-aware scheduling contract (checkpoint trees, core/checkpoint.h):
  // the checker records directed runs whose plans this strategy may later
  // extend into longer chains, so descendants fork from the recorded faulty
  // prefix instead of re-simulating it. A strategy that extends chains
  // must return the maximum number of events a recorded plan can grow by
  // (the checker records plans with size in [1, limit]); 0 = this strategy
  // never extends a submitted plan, record nothing. Implied ordering
  // contract on next()/next_batch(): a chain's parent is proposed in an
  // earlier wave than its children (feedback-driven strategies get this for
  // free), and plans sharing a signature prefix should be grouped into the
  // same wave so their shared parent recording is still resident when they
  // resolve.
  virtual int chain_extension_limit() const { return 0; }

  virtual const char* name() const = 0;
};

}  // namespace avis::core
