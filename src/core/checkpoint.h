// Checkpointed fault-free prefix forking.
//
// Every experiment in a checker campaign shares its spec with every other
// experiment except for the fault plan, and `ScheduledDirector` makes a run
// plan-independent strictly before the plan's earliest activation time. So
// the harness runs the fault-free "prefix run" once, capturing complete
// world-state snapshots at a fixed cadence, and every subsequent experiment
// restores the latest snapshot at-or-before its plan's first injection time,
// splices the recorded trace/transition prefix into its result, and
// simulates only the suffix. The contract is strict parity: a
// restored-and-resumed run is bit-identical (trace, transitions, outcome,
// unsafe records) to the same spec simulated from scratch — the same spirit
// as the arena reset contract (docs/PERFORMANCE.md has the full argument;
// tests/test_checkpoint.cc is the tripwire).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/experiment.h"
#include "core/invariant_monitor.h"
#include "fw/firmware.h"
#include "mavlink/channel.h"
#include "sensors/sensor_models.h"
#include "sim/simulator.h"
#include "util/checked.h"
#include "workload/context.h"
#include "workload/workload.h"

namespace avis::core {

struct CheckpointConfig {
  bool enabled = true;
  // Snapshot cadence in simulated milliseconds. Finer cadence means less
  // suffix to re-simulate per experiment but more capture cost and memory;
  // 1000 ms measured best on SABRE campaigns (the offset crawls inject a
  // few hundred ms around each transition, so a 5000 ms grid strands them).
  sim::SimTimeMs interval_ms = 1000;
  // Extra exact capture times merged into the cadence grid. The search
  // strategies overwhelmingly inject at (or just after) the golden run's
  // mode-transition timestamps — SABRE seeds its queue from them — so
  // core::Checker adds those times here and the dominant injection sites
  // restore with zero re-simulated prefix.
  std::vector<sim::SimTimeMs> capture_at;
  // Upper bound on retained snapshot bytes (approximate, deterministic).
  // When the prefix run's snapshots exceed it, the store thins itself to
  // every other snapshot until it fits — coverage degrades to a coarser
  // cadence instead of disappearing. 0 means unbounded.
  std::size_t byte_budget = 64ull * 1024 * 1024;
};

// Complete world state at the top of one harness loop iteration: every
// stateful layer of Fig. 7 plus the harness's own loop bookkeeping. The
// prefix run's sampled trace and mode transitions are shared store-wide
// (each snapshot stores only its prefix lengths), so a snapshot costs
// kilobytes, not the O(run-length) trace.
struct ExperimentSnapshot {
  sim::SimTimeMs time_ms = 0;  // loop iteration this snapshot resumes at

  sim::Simulator::Snapshot simulator;
  sensors::SuiteSnapshot suite;
  fw::Firmware::Snapshot firmware;
  mavlink::Channel::Snapshot channel;
  workload::Workload::Progress workload;
  workload::GcsContext::Snapshot gcs;
  MonitorSession::Snapshot monitor;  // meaningful only for monitored prefixes

  // RecordingDirector splice state: how much of the shared prefix
  // transition list had been recorded, and the latched heartbeat/mode.
  std::size_t transitions_len = 0;
  std::uint16_t current_mode = 0;
  sim::SimTimeMs last_heartbeat_ms = 0;

  // Harness loop state.
  sim::SimTimeMs next_workload_ms = 0;
  sim::SimTimeMs next_sample_ms = 0;
  sim::SimTimeMs workload_done_at = -1;
  bool workload_passed = false;
  bool firmware_dead = false;
  std::size_t trace_len = 0;  // samples already in the shared prefix trace
  std::optional<Violation> violation;  // non-empty only without stop_on_violation

  // Deterministic size estimate for the store's byte budget: the struct
  // itself plus the dynamically sized payloads worth counting.
  std::size_t approx_bytes() const {
    std::size_t bytes = sizeof(ExperimentSnapshot);
    bytes += (firmware.mission.size() * 2) * sizeof(mavlink::MissionItem);
    bytes += firmware.fired_bugs.capacity() * sizeof(fw::BugId);
    for (const auto& frame : channel.to_vehicle) bytes += frame.size() + sizeof(frame);
    for (const auto& frame : channel.to_gcs) bytes += frame.size() + sizeof(frame);
    bytes += gcs.uploader.items.size() * sizeof(mavlink::MissionItem);
    for (const auto& text : gcs.status_texts) bytes += text.size() + sizeof(text);
    const std::size_t per_instance = sizeof(sensors::InstanceState<sensors::GpsSample>);
    bytes += (suite.gyros.size() + suite.accels.size() + suite.baros.size() +
              suite.gpses.size() + suite.compasses.size() + suite.batteries.size()) *
             per_instance;
    return bytes;
  }
};

// One scenario's checkpoint set: the prefix run's shared trace/transitions
// plus the cadenced snapshots, recorded once by
// `SimulationHarness::record_prefix` and then shared read-only across pool
// workers (core::Checker builds it on the caller thread before dispatching
// batches, so no synchronization is needed).
class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(CheckpointConfig config) : config_(config) {}

  const CheckpointConfig& config() const { return config_; }
  bool empty() const { return snapshots_.empty(); }
  std::size_t size() const { return snapshots_.size(); }
  int evicted() const { return evicted_; }
  std::size_t total_bytes() const { return total_bytes_; }

  const std::vector<StateSample>& prefix_trace() const { return prefix_trace_; }
  const std::vector<ModeTransition>& prefix_transitions() const { return prefix_transitions_; }

  // The prefix run is one spec with its plan cleared; a store only
  // accelerates specs that differ from it by plan alone. The factory fields
  // (workload, environment) are not comparable, so the checkable identity
  // is asserted here and the factory identity is the caller's contract —
  // core::Checker builds every spec from one prototype, which satisfies it
  // by construction.
  void require_matches(const ExperimentSpec& spec, bool monitored) const {
    util::expects(spec.seed == seed_ && spec.max_duration_ms == max_duration_ms_ &&
                      spec.stop_on_violation == stop_on_violation_ &&
                      spec.personality == personality_ && monitored == monitored_,
                  "checkpoint store used with a spec from a different scenario");
  }

  // Latest snapshot usable for a plan whose earliest injection is at
  // `first_injection_ms`: state at the top of iteration t is
  // plan-independent iff every injection activates at >= t, so any snapshot
  // with time_ms <= first_injection_ms is exact. nullptr = cold start.
  const ExperimentSnapshot* best_for(sim::SimTimeMs first_injection_ms) const {
    const ExperimentSnapshot* best = nullptr;
    for (const auto& snap : snapshots_) {
      if (snap.time_ms > first_injection_ms) break;
      best = &snap;
    }
    return best;
  }

  // --- Recording interface (SimulationHarness::record_prefix) -------------
  void begin(const ExperimentSpec& spec, bool monitored) {
    snapshots_.clear();
    prefix_trace_.clear();
    prefix_transitions_.clear();
    evicted_ = 0;
    total_bytes_ = 0;
    seed_ = spec.seed;
    max_duration_ms_ = spec.max_duration_ms;
    stop_on_violation_ = spec.stop_on_violation;
    personality_ = spec.personality;
    monitored_ = monitored;
  }

  void add(ExperimentSnapshot snapshot) {
    total_bytes_ += snapshot.approx_bytes();
    snapshots_.push_back(std::move(snapshot));
  }

  // Install the finished prefix run's shared trace/transitions and enforce
  // the byte budget by thinning to every other snapshot (coarser cadence,
  // same coverage span) until the set fits.
  void finish(const ExperimentResult& prefix) {
    prefix_trace_ = prefix.trace;
    prefix_transitions_ = prefix.transitions;
    while (config_.byte_budget > 0 && total_bytes_ > config_.byte_budget &&
           snapshots_.size() > 1) {
      std::vector<ExperimentSnapshot> kept;
      kept.reserve(snapshots_.size() / 2 + 1);
      total_bytes_ = 0;
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        if (i % 2 == 0) {
          total_bytes_ += snapshots_[i].approx_bytes();
          kept.push_back(std::move(snapshots_[i]));
        } else {
          ++evicted_;
        }
      }
      snapshots_ = std::move(kept);
    }
  }

 private:
  CheckpointConfig config_;
  std::vector<ExperimentSnapshot> snapshots_;  // ascending time_ms
  std::vector<StateSample> prefix_trace_;
  std::vector<ModeTransition> prefix_transitions_;
  int evicted_ = 0;
  std::size_t total_bytes_ = 0;

  // Prefix-run identity (require_matches).
  std::uint64_t seed_ = 0;
  sim::SimTimeMs max_duration_ms_ = 0;
  bool stop_on_violation_ = true;
  fw::Personality personality_ = fw::Personality::kArduPilotLike;
  bool monitored_ = false;
};

}  // namespace avis::core
