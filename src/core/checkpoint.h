// Checkpointed prefix forking: the fault-free root and the checkpoint tree.
//
// Every experiment in a checker campaign shares its spec with every other
// experiment except for the fault plan, and `ScheduledDirector` makes a run
// plan-independent strictly before the plan's earliest activation time. So
// the harness runs the fault-free "prefix run" once, capturing complete
// world-state snapshots at a fixed cadence, and every subsequent experiment
// restores the latest snapshot at-or-before its plan's first injection time,
// splices the recorded trace/transition prefix into its result, and
// simulates only the suffix.
//
// The checkpoint tree generalizes this to *faulty* prefixes: directed runs
// the strategy may later extend into chains ({A@t0} -> {A@t0, B@t1}) are
// themselves recorded — snapshots keyed by the exact signature of the
// injections activated strictly before the capture time — and a plan that
// extends a previously-run chain restores the deepest ancestor snapshot
// whose signature matches a prefix of its own plan and whose time is at or
// before its next un-replayed injection, falling back to the fault-free
// root. The contract is strict parity either way: a restored-and-resumed
// run is bit-identical (trace, transitions, outcome, unsafe records) to the
// same spec simulated from scratch — the same spirit as the arena reset
// contract (docs/PERFORMANCE.md has the full argument;
// tests/test_checkpoint.cc and tests/test_checkpoint_tree.cc are the
// tripwires).
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/invariant_monitor.h"
#include "fw/firmware.h"
#include "mavlink/channel.h"
#include "sensors/sensor_models.h"
#include "sim/simulator.h"
#include "util/checked.h"
#include "workload/context.h"
#include "workload/workload.h"

namespace avis::core {

struct CheckpointConfig {
  bool enabled = true;
  // Checkpoint trees: record qualifying directed (faulty) runs so plans
  // that extend a previously-run chain restore the shared faulty prefix
  // instead of re-simulating it. A wall-clock-only knob like `enabled`:
  // reports are identical with trees on or off modulo the checkpoint
  // counters themselves (the CLI's --no-checkpoint-trees A/B switch).
  bool trees = true;
  // Snapshot cadence in simulated milliseconds. Finer cadence means less
  // suffix to re-simulate per experiment but more capture cost and memory;
  // 1000 ms measured best on SABRE campaigns (the offset crawls inject a
  // few hundred ms around each transition, so a 5000 ms grid strands them).
  sim::SimTimeMs interval_ms = 1000;
  // Tree recording stop rule: once this many mode transitions after the
  // run's first injection have been observed, recording stops. SABRE's
  // augmented frontier schedules every child chain at one of the first two
  // post-injection transition timestamps, so later snapshots could never be
  // restored by any plan the strategy can still produce.
  int tree_transition_horizon = 2;
  // Extra exact capture times merged into the cadence grid. The search
  // strategies overwhelmingly inject at (or just after) the golden run's
  // mode-transition timestamps — SABRE seeds its queue from them — so
  // core::Checker adds those times here and the dominant injection sites
  // restore with zero re-simulated prefix.
  std::vector<sim::SimTimeMs> capture_at;
  // Upper bound on retained snapshot bytes (approximate, deterministic),
  // shared between the fault-free root and the tree. When the prefix run's
  // snapshots exceed it, the store thins itself to every other snapshot
  // until it fits — coverage degrades to a coarser cadence instead of
  // disappearing. Tree recordings are evicted whole, oldest first, whenever
  // root + tree exceed the budget; the root is never evicted to make room
  // for faulty descendants (it accelerates every experiment, a recording
  // only its own chain's children). 0 means unbounded.
  std::size_t byte_budget = 64ull * 1024 * 1024;
};

// Complete world state at the top of one harness loop iteration: every
// stateful layer of Fig. 7 plus the harness's own loop bookkeeping. The
// prefix run's sampled trace and mode transitions are shared store-wide
// (each snapshot stores only its prefix lengths), so a snapshot costs
// kilobytes, not the O(run-length) trace.
struct ExperimentSnapshot {
  sim::SimTimeMs time_ms = 0;  // loop iteration this snapshot resumes at

  sim::Simulator::Snapshot simulator;
  sensors::SuiteSnapshot suite;
  fw::Firmware::Snapshot firmware;
  mavlink::Channel::Snapshot channel;
  workload::Workload::Progress workload;
  workload::GcsContext::Snapshot gcs;
  MonitorSession::Snapshot monitor;  // meaningful only for monitored prefixes

  // RecordingDirector splice state: how much of the shared prefix
  // transition list had been recorded, and the latched heartbeat/mode.
  std::size_t transitions_len = 0;
  std::uint16_t current_mode = 0;
  sim::SimTimeMs last_heartbeat_ms = 0;

  // Harness loop state.
  sim::SimTimeMs next_workload_ms = 0;
  sim::SimTimeMs next_sample_ms = 0;
  sim::SimTimeMs workload_done_at = -1;
  bool workload_passed = false;
  bool firmware_dead = false;
  std::size_t trace_len = 0;  // samples already in the shared prefix trace
  std::optional<Violation> violation;  // non-empty only without stop_on_violation

  // Deterministic size estimate for the store's byte budget: the struct
  // itself plus the dynamically sized payloads worth counting.
  std::size_t approx_bytes() const {
    std::size_t bytes = sizeof(ExperimentSnapshot);
    bytes += (firmware.mission.size() * 2) * sizeof(mavlink::MissionItem);
    bytes += firmware.fired_bugs.capacity() * sizeof(fw::BugId);
    for (const auto& frame : channel.to_vehicle) bytes += frame.size() + sizeof(frame);
    for (const auto& frame : channel.to_gcs) bytes += frame.size() + sizeof(frame);
    bytes += gcs.uploader.items.size() * sizeof(mavlink::MissionItem);
    for (const auto& text : gcs.status_texts) bytes += text.size() + sizeof(text);
    const std::size_t per_instance = sizeof(sensors::InstanceState<sensors::GpsSample>);
    bytes += (suite.gyros.size() + suite.accels.size() + suite.baros.size() +
              suite.gpses.size() + suite.compasses.size() + suite.batteries.size()) *
             per_instance;
    return bytes;
  }
};

// A directed (faulty) run recorded into the checkpoint tree. Unlike the
// fault-free prefix — whose trace/transitions are shared store-wide — each
// recording owns its full from-t=0 trace and transition list: the recorded
// run may itself have been restored from the root, in which case its result
// already contains the spliced root prefix, and descendants splice their
// prefixes from here.
struct TreeRecording {
  std::vector<StateSample> trace;
  std::vector<ModeTransition> transitions;
};

// One snapshot of a recorded faulty run. `depth` is the number of plan
// events activated strictly before the capture time (the events baked into
// `state`); the snapshot is filed under the exact FaultPlan signature of
// that activated set.
struct TreeSnapshot {
  ExperimentSnapshot state;
  std::shared_ptr<const TreeRecording> recording;
  int depth = 1;
};

// A resolved restore point: the snapshot plus the trace/transition prefix
// to splice into the resumed run's result (the store's shared prefix for a
// root restore, the ancestor recording's own for a tree restore).
// `keepalive` pins a tree snapshot — and the recording its pointers reach
// into — across store eviction for as long as the resume is in flight.
// Default-constructed means cold start.
struct CheckpointResume {
  const ExperimentSnapshot* snapshot = nullptr;
  const std::vector<StateSample>* trace = nullptr;
  const std::vector<ModeTransition>* transitions = nullptr;
  std::shared_ptr<const TreeSnapshot> keepalive;
  int depth = 0;  // 0 = fault-free root

  explicit operator bool() const { return snapshot != nullptr; }
};

// Capture sink for recording a directed run into the tree while it runs
// (SimulationHarness::p_loop): the capture grid — all times strictly after
// the plan's first injection — and the transition-horizon stop rule. The
// filled snapshots are merged into a store afterwards (merge_run), never
// during the run, so batch engines on other threads can keep reading the
// store while the run simulates.
struct TreeCapture {
  std::vector<sim::SimTimeMs> times;  // ascending, deduplicated
  sim::SimTimeMs first_injection = 0;
  int transition_horizon = 2;
  bool done = false;
  std::vector<ExperimentSnapshot> snapshots;
};

// A run whose post-injection transitions never arrive would otherwise keep
// assembling snapshots on the cadence grid all the way to max_duration —
// pure waste, since such a run has no extension points and spawns no
// children. Cap the cadence grid per recording: chains extend at the first
// couple of post-injection transitions, which in practice land within a few
// intervals of the injection, so a bounded grid loses nothing real (a child
// past the cap still restores the root and stays bit-identical).
inline constexpr std::size_t kTreeCaptureGridCap = 32;

// The tree capture schedule for one directed run: the store's cadence grid
// restricted to times after the first injection (bounded by
// kTreeCaptureGridCap), the plan's own later activation times (a
// multi-event run's state changes exactly there), and the config's exact
// extra times (golden transition timestamps). Children inject at the
// parent run's observed post-injection transitions, so the cadence grid
// bounds their re-simulated prefix to one interval.
inline TreeCapture plan_tree_capture(const ExperimentSpec& spec,
                                     const CheckpointConfig& config) {
  TreeCapture capture;
  capture.first_injection = spec.plan.first_injection_ms();
  capture.transition_horizon = config.tree_transition_horizon;
  const sim::SimTimeMs s1 = capture.first_injection;
  for (sim::SimTimeMs t = (s1 / config.interval_ms + 1) * config.interval_ms;
       t < spec.max_duration_ms && capture.times.size() < kTreeCaptureGridCap;
       t += config.interval_ms) {
    capture.times.push_back(t);
  }
  for (const auto& e : spec.plan.events) {
    if (e.time_ms > s1 && e.time_ms < spec.max_duration_ms) capture.times.push_back(e.time_ms);
  }
  for (sim::SimTimeMs t : config.capture_at) {
    if (t > s1 && t < spec.max_duration_ms) capture.times.push_back(t);
  }
  std::sort(capture.times.begin(), capture.times.end());
  capture.times.erase(std::unique(capture.times.begin(), capture.times.end()),
                      capture.times.end());
  return capture;
}

// One scenario's checkpoint set: the prefix run's shared trace/transitions
// plus the cadenced snapshots, recorded once by
// `SimulationHarness::record_prefix`, and the checkpoint tree of recorded
// faulty runs. Shared read-only across pool workers during a dispatch wave;
// all mutation (merge_run, clear_tree) happens on the checker's caller
// thread strictly between waves, so no synchronization is needed.
class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(CheckpointConfig config) : config_(config) {}

  const CheckpointConfig& config() const { return config_; }
  bool empty() const { return snapshots_.empty(); }
  std::size_t size() const { return snapshots_.size(); }
  int evicted() const { return evicted_; }
  std::size_t total_bytes() const { return total_bytes_; }

  // Tree observability.
  bool trees_enabled() const { return config_.trees; }
  std::size_t tree_recordings() const { return tree_fifo_.size(); }
  std::size_t tree_size() const {
    std::size_t count = 0;
    for (const auto& [key, bucket] : tree_) count += bucket.size();
    return count;
  }
  int tree_evicted() const { return tree_evicted_; }
  std::size_t tree_bytes() const { return tree_bytes_; }

  // True when resolve() can return anything at all.
  bool has_restore_points() const { return !snapshots_.empty() || !tree_.empty(); }

  const std::vector<StateSample>& prefix_trace() const { return prefix_trace_; }
  const std::vector<ModeTransition>& prefix_transitions() const { return prefix_transitions_; }

  // The prefix run is one spec with its plan cleared; a store only
  // accelerates specs that differ from it by plan alone. The factory fields
  // (workload, environment) are not comparable, so the checkable identity
  // is asserted here and the factory identity is the caller's contract —
  // core::Checker builds every spec from one prototype, which satisfies it
  // by construction.
  void require_matches(const ExperimentSpec& spec, bool monitored) const {
    util::expects(spec.seed == seed_ && spec.max_duration_ms == max_duration_ms_ &&
                      spec.stop_on_violation == stop_on_violation_ &&
                      spec.personality == personality_ && monitored == monitored_,
                  "checkpoint store used with a spec from a different scenario");
  }

  // Latest root snapshot usable for a plan whose earliest injection is at
  // `first_injection_ms`: state at the top of iteration t is
  // plan-independent iff every injection activates at >= t, so any snapshot
  // with time_ms <= first_injection_ms is exact. Snapshots are kept
  // ascending by time, so this is a binary search: the first snapshot past
  // the injection bounds the usable range from above, and its predecessor
  // (if any) is the latest usable one. nullptr = cold start.
  const ExperimentSnapshot* best_for(sim::SimTimeMs first_injection_ms) const {
    const auto past = std::upper_bound(
        snapshots_.begin(), snapshots_.end(), first_injection_ms,
        [](sim::SimTimeMs t, const ExperimentSnapshot& snap) { return t < snap.time_ms; });
    if (past == snapshots_.begin()) return nullptr;
    return &*(past - 1);
  }

  // Deepest usable restore point for `plan`, tree first. For each proper
  // prefix of the plan's distinct activation times (deepest first), the
  // bucket keyed by that prefix's exact signature holds snapshots of
  // recorded runs whose activated injections match the prefix exactly; the
  // latest one at-or-before the plan's next un-replayed activation resumes
  // the run bit-identically (same argument as best_for, with the shared
  // faulty prefix already simulated). A deeper prefix's snapshots all
  // postdate a shallower prefix's usable window, so the first level with a
  // usable snapshot is the global optimum. Falls back to the fault-free
  // root, then to a cold start.
  CheckpointResume resolve(const FaultPlan& plan) const {
    if (config_.trees && !tree_.empty() && !plan.events.empty()) {
      std::vector<sim::SimTimeMs> times;
      times.reserve(plan.events.size());
      for (const auto& e : plan.events) times.push_back(e.time_ms);
      std::sort(times.begin(), times.end());
      times.erase(std::unique(times.begin(), times.end()), times.end());
      for (std::size_t level = times.size() - 1; level >= 1; --level) {
        const auto bucket_it = tree_.find(p_prefix_signature(plan, times[level - 1]));
        if (bucket_it == tree_.end()) continue;
        const auto& bucket = bucket_it->second;  // ascending by snapshot time
        const auto past = std::upper_bound(
            bucket.begin(), bucket.end(), times[level],
            [](sim::SimTimeMs t, const std::shared_ptr<const TreeSnapshot>& snap) {
              return t < snap->state.time_ms;
            });
        if (past == bucket.begin()) continue;
        const std::shared_ptr<const TreeSnapshot>& snap = *(past - 1);
        CheckpointResume resume;
        resume.snapshot = &snap->state;
        resume.trace = &snap->recording->trace;
        resume.transitions = &snap->recording->transitions;
        resume.keepalive = snap;
        resume.depth = snap->depth;
        return resume;
      }
    }
    if (const ExperimentSnapshot* root = best_for(plan.first_injection_ms())) {
      CheckpointResume resume;
      resume.snapshot = root;
      resume.trace = &prefix_trace_;
      resume.transitions = &prefix_transitions_;
      resume.depth = 0;
      return resume;
    }
    return {};
  }

  // --- Recording interface (SimulationHarness::record_prefix) -------------
  void begin(const ExperimentSpec& spec, bool monitored) {
    snapshots_.clear();
    prefix_trace_.clear();
    prefix_transitions_.clear();
    clear_tree();  // a re-recorded root invalidates every descendant
    evicted_ = 0;
    total_bytes_ = 0;
    seed_ = spec.seed;
    max_duration_ms_ = spec.max_duration_ms;
    stop_on_violation_ = spec.stop_on_violation;
    personality_ = spec.personality;
    monitored_ = monitored;
  }

  void add(ExperimentSnapshot snapshot) {
    total_bytes_ += snapshot.approx_bytes();
    snapshots_.push_back(std::move(snapshot));
  }

  // Install the finished prefix run's shared trace/transitions and enforce
  // the byte budget by thinning to every other snapshot (coarser cadence,
  // same coverage span) until the set fits.
  void finish(const ExperimentResult& prefix) {
    prefix_trace_ = prefix.trace;
    prefix_transitions_ = prefix.transitions;
    while (config_.byte_budget > 0 && total_bytes_ > config_.byte_budget &&
           snapshots_.size() > 1) {
      std::vector<ExperimentSnapshot> kept;
      kept.reserve(snapshots_.size() / 2 + 1);
      total_bytes_ = 0;
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        if (i % 2 == 0) {
          total_bytes_ += snapshots_[i].approx_bytes();
          kept.push_back(std::move(snapshots_[i]));
        } else {
          ++evicted_;
        }
      }
      snapshots_ = std::move(kept);
    }
  }

  // --- Tree recording interface (checker apply loop) -----------------------
  // Files one finished directed run into the tree: each captured snapshot
  // under the exact signature of the plan events activated strictly before
  // its capture time, all sharing one recording of the run's full trace and
  // transitions. Deduplicated by full plan signature (re-running a plan
  // re-derives identical snapshots). Callers merge only between dispatch
  // waves — never while an engine may be resolving — and only bug-free
  // runs: an unsafe parent gets no children, so its snapshots could never
  // be restored.
  void merge_run(const FaultPlan& plan, std::vector<ExperimentSnapshot> snapshots,
                 std::vector<StateSample> trace, std::vector<ModeTransition> transitions) {
    if (!config_.trees || plan.events.empty() || snapshots.empty()) return;
    std::string full_signature = plan.signature();
    if (!tree_plans_.insert(full_signature).second) return;

    auto recording = std::make_shared<TreeRecording>();
    recording->trace = std::move(trace);
    recording->transitions = std::move(transitions);

    TreeEntry entry;
    entry.plan_signature = std::move(full_signature);
    entry.bytes = recording->trace.capacity() * sizeof(StateSample);
    for (const auto& t : recording->transitions) entry.bytes += sizeof(t) + t.mode_name.size();

    for (ExperimentSnapshot& state : snapshots) {
      // A snapshot reflects exactly the injections activated strictly
      // before its capture time (an injection at the capture time itself
      // first acts in the iteration after the capture); one with none
      // activated is root coverage, not tree state.
      FaultPlan activated;
      for (const auto& e : plan.events) {
        if (e.time_ms < state.time_ms) activated.events.push_back(e);
      }
      if (activated.events.empty()) continue;
      activated.normalize();
      auto snap = std::make_shared<TreeSnapshot>();
      snap->depth = static_cast<int>(activated.events.size());
      snap->state = std::move(state);
      snap->recording = recording;
      entry.bytes += snap->state.approx_bytes();
      auto& bucket = tree_[activated.signature()];
      // Captures arrive in time order, so this is an append in practice;
      // the insert keeps the bucket ascending for hand-built merges too.
      const auto pos = std::upper_bound(
          bucket.begin(), bucket.end(), snap->state.time_ms,
          [](sim::SimTimeMs t, const std::shared_ptr<const TreeSnapshot>& s) {
            return t < s->state.time_ms;
          });
      entry.snaps.emplace_back(activated.signature(), *bucket.insert(pos, std::move(snap)));
    }
    if (entry.snaps.empty()) return;
    tree_bytes_ += entry.bytes;
    tree_fifo_.push_back(std::move(entry));
    // Shared byte budget, tree side only: evict whole recordings oldest
    // first until root + tree fit. The fault-free root is never evicted to
    // make room for faulty descendants — with a budget smaller than the
    // root alone, the tree simply stays empty.
    while (config_.byte_budget > 0 && total_bytes_ + tree_bytes_ > config_.byte_budget &&
           !tree_fifo_.empty()) {
      p_evict_oldest_recording();
    }
  }

  // Forget every tree recording (root snapshots stay). The checker calls
  // this at the start of each campaign so a store reused across strategies
  // gives every campaign the same (empty) starting tree — hit counters are
  // then a per-campaign quantity, not a function of run order.
  void clear_tree() {
    tree_.clear();
    tree_fifo_.clear();
    tree_plans_.clear();
    tree_bytes_ = 0;
    tree_evicted_ = 0;
  }

 private:
  struct TreeEntry {
    std::string plan_signature;
    std::vector<std::pair<std::string, std::shared_ptr<const TreeSnapshot>>> snaps;
    std::size_t bytes = 0;
  };

  static std::string p_prefix_signature(const FaultPlan& plan, sim::SimTimeMs cutoff) {
    FaultPlan prefix;
    for (const auto& e : plan.events) {
      if (e.time_ms <= cutoff) prefix.events.push_back(e);
    }
    prefix.normalize();
    return prefix.signature();
  }

  void p_evict_oldest_recording() {
    TreeEntry entry = std::move(tree_fifo_.front());
    tree_fifo_.pop_front();
    for (const auto& [key, snap] : entry.snaps) {
      const auto bucket_it = tree_.find(key);
      if (bucket_it == tree_.end()) continue;
      auto& bucket = bucket_it->second;
      const auto pos = std::find(bucket.begin(), bucket.end(), snap);
      if (pos != bucket.end()) bucket.erase(pos);
      if (bucket.empty()) tree_.erase(bucket_it);
      ++tree_evicted_;
    }
    tree_bytes_ -= entry.bytes;
    // The plan signature stays in tree_plans_: the run already happened and
    // re-merging it is impossible within a campaign (the strategies never
    // repeat a plan), so un-blocking it would only mask a caller bug.
  }

  CheckpointConfig config_;
  std::vector<ExperimentSnapshot> snapshots_;  // ascending time_ms
  std::vector<StateSample> prefix_trace_;
  std::vector<ModeTransition> prefix_transitions_;
  int evicted_ = 0;
  std::size_t total_bytes_ = 0;

  // The checkpoint tree: snapshot buckets keyed by activated-injection
  // signature (each ascending by time), the FIFO eviction ledger, and the
  // merged-plan dedup set.
  std::unordered_map<std::string, std::vector<std::shared_ptr<const TreeSnapshot>>> tree_;
  std::deque<TreeEntry> tree_fifo_;
  std::unordered_set<std::string> tree_plans_;
  std::size_t tree_bytes_ = 0;
  int tree_evicted_ = 0;

  // Prefix-run identity (require_matches).
  std::uint64_t seed_ = 0;
  sim::SimTimeMs max_duration_ms_ = 0;
  bool stop_on_violation_ = true;
  fw::Personality personality_ = fw::Personality::kArduPilotLike;
  bool monitored_ = false;
};

}  // namespace avis::core
