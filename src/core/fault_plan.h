// Fault plans: the unit of work for every search strategy.
//
// A plan is a set of (timestamp, sensor instance) clean-failure injections
// (paper §V-B: "a fault injection scenario as a set of tuples (Timestamp,
// Fault)"). Plans are value types with a canonical signature used for the
// scheduler's already-explored hash-set, and a role signature that folds
// together instance-symmetric plans (§IV-B's sensor instance symmetry).
#pragma once

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sensors/sensor_types.h"
#include "sim/simulator.h"

namespace avis::core {

struct FaultEvent {
  sim::SimTimeMs time_ms = 0;
  sensors::SensorId sensor;

  constexpr bool operator==(const FaultEvent&) const = default;
  constexpr auto operator<=>(const FaultEvent&) const = default;
};

struct FaultPlan {
  // "This plan never injects anything before t": the sentinel
  // first_injection_ms() returns for an empty plan, and the activation
  // sentinel ScheduledDirector seeds its table with.
  static constexpr sim::SimTimeMs kNever = std::numeric_limits<sim::SimTimeMs>::max();

  std::vector<FaultEvent> events;

  void add(sim::SimTimeMs time_ms, sensors::SensorId sensor) {
    events.push_back({time_ms, sensor});
    normalize();
  }

  void normalize() {
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());
  }

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  // Earliest injection timestamp, kNever for an empty plan. The run is
  // plan-independent strictly before this time — checkpointed prefix
  // forking (core/checkpoint.h) restores up to here. A min scan rather than
  // events.front() so it stays correct for callers that fill `events` by
  // hand without normalize().
  sim::SimTimeMs first_injection_ms() const {
    sim::SimTimeMs first = kNever;
    for (const auto& e : events) first = std::min(first, e.time_ms);
    return first;
  }

  // Exact identity: timestamps + concrete instances.
  std::string signature() const {
    std::ostringstream os;
    for (const auto& e : events) {
      os << e.time_ms << ":" << static_cast<int>(e.sensor.type) << "."
         << static_cast<int>(e.sensor.instance) << ";";
    }
    return os.str();
  }

  // Instance-symmetric identity: per timestamp and type, only the role
  // multiset matters (primary yes/no + number of backups). Two plans that
  // fail different backup instances of the same type at the same times have
  // equal role signatures and only one of them is simulated.
  std::string role_signature() const {
    // (time, type) -> (primary_failed, backup_count)
    std::map<std::pair<sim::SimTimeMs, sensors::SensorType>, std::pair<bool, int>> roles;
    for (const auto& e : events) {
      auto& slot = roles[{e.time_ms, e.sensor.type}];
      if (e.sensor.role() == sensors::SensorRole::kPrimary) {
        slot.first = true;
      } else {
        slot.second += 1;
      }
    }
    std::ostringstream os;
    for (const auto& [key, value] : roles) {
      os << key.first << ":" << static_cast<int>(key.second) << ":" << (value.first ? "P" : "-")
         << value.second << ";";
    }
    return os.str();
  }

  std::string to_string() const {
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i) os << ", ";
      os << events[i].sensor.to_string() << "@" << events[i].time_ms << "ms";
    }
    os << "}";
    return os.str();
  }
};

}  // namespace avis::core
