// The simulation harness: wires simulator, sensors, hinj, firmware, MAVLink
// and workload into one experiment (the full loop of the paper's Fig. 7).
//
// "At the start of each test, Avis provisions a new instance of the
// simulator and firmware" — every run() starts from a state that is a pure
// function of its spec. Callers that run many experiments back to back hand
// run() a reusable ExperimentContext: the same provisioning happens by
// resetting retained storage in place instead of reallocating it, with
// bit-identical results (the arena reset contract, docs/PERFORMANCE.md).
#pragma once

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/invariant_monitor.h"
#include "fw/firmware.h"
#include "hinj/hinj.h"
#include "mavlink/channel.h"
#include "sensors/sensor_models.h"
#include "sim/simulator.h"
#include "util/checked.h"
#include "workload/context.h"
#include "workload/default_workloads.h"

namespace avis::core {

// Engine-side fault director: injects the plan's failures at their
// scheduled timestamps. should_fail is called for every sensor read of
// every simulation step, so the plan is flattened at construction into a
// per-instance earliest-activation table and each query is one array load
// instead of a scan over the plan's events.
class ScheduledDirector final : public hinj::FaultDirector {
 public:
  explicit ScheduledDirector(const FaultPlan& plan) {
    for (auto& per_type : activation_) per_type.fill(FaultPlan::kNever);
    for (const auto& event : plan.events) {
      util::expects(event.sensor.instance < kMaxInstances,
                    "fault plan names a sensor instance beyond the suite limit");
      auto& slot = activation_[static_cast<std::size_t>(event.sensor.type)][event.sensor.instance];
      slot = std::min(slot, static_cast<std::int64_t>(event.time_ms));
    }
  }

  bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) override {
    if (sensor.instance >= kMaxInstances) return false;
    return time_ms >= activation_[static_cast<std::size_t>(sensor.type)][sensor.instance];
  }

  void on_mode_update(std::uint16_t, std::string_view, std::int64_t) override {}

 private:
  static constexpr std::uint8_t kMaxInstances = 8;
  std::array<std::array<std::int64_t, kMaxInstances>, sensors::kAllSensorTypes.size()>
      activation_;
};

// Wraps any director and records the mode trace and heartbeats the firmware
// reports through hinj; the harness always interposes one of these so every
// experiment result carries its transition list. The wire hands mode names
// over as views into the frame buffer; the recorded transitions own their
// copies.
class RecordingDirector final : public hinj::FaultDirector {
 public:
  explicit RecordingDirector(hinj::FaultDirector& inner) : inner_(&inner) {
    // A mission's mode trace is a few dozen transitions; one up-front block
    // keeps the recording path allocation-free in the common case.
    transitions_.reserve(32);
  }

  bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) override {
    return inner_->should_fail(sensor, time_ms);
  }

  void on_mode_update(std::uint16_t mode_id, std::string_view mode_name,
                      std::int64_t time_ms) override {
    transitions_.push_back({time_ms, mode_id, std::string(mode_name)});
    current_mode_ = mode_id;
    inner_->on_mode_update(mode_id, mode_name, time_ms);
  }

  void on_heartbeat(std::int64_t time_ms) override {
    last_heartbeat_ms_ = time_ms;
    inner_->on_heartbeat(time_ms);
  }

  const std::vector<ModeTransition>& transitions() const { return transitions_; }
  // Move the trace out into the experiment result instead of copying a
  // vector of strings; the director is done once its run ends.
  std::vector<ModeTransition> take_transitions() { return std::move(transitions_); }
  std::uint16_t current_mode() const { return current_mode_; }
  std::int64_t last_heartbeat_ms() const { return last_heartbeat_ms_; }

  // Checkpoint restore: preload the transitions the prefix run recorded up
  // to the snapshot, so the spliced trace reads exactly like a from-scratch
  // recording.
  void restore(std::vector<ModeTransition> transitions, std::uint16_t current_mode,
               std::int64_t last_heartbeat_ms) {
    transitions_ = std::move(transitions);
    current_mode_ = current_mode;
    last_heartbeat_ms_ = last_heartbeat_ms;
  }

 private:
  hinj::FaultDirector* inner_;
  std::vector<ModeTransition> transitions_;
  std::uint16_t current_mode_ = 0;
  std::int64_t last_heartbeat_ms_ = 0;
};

// The storage for one provisioned world: simulator, sensor suite, hinj
// connection, MAVLink channel, firmware, monitor session. A world hosts one
// experiment at a time; the harness owns the provisioning/reset protocol
// that makes reuse bit-identical to fresh construction. Plain public
// storage on purpose: SimulationHarness provisions into it, BatchHarness
// keeps one per lane, and a future multi-vehicle arena keeps several per
// experiment — the world is no longer welded to the context that pools it.
struct ExperimentWorld {
  ExperimentWorld() = default;
  ExperimentWorld(const ExperimentWorld&) = delete;
  ExperimentWorld& operator=(const ExperimentWorld&) = delete;

  std::optional<sim::Simulator> simulator;
  std::optional<sensors::SensorSuite> suite;
  // Between runs the server is parked on this inert director, so a pooled
  // world never holds a pointer to a finished run's stack-local
  // RecordingDirector.
  hinj::NullDirector parked_director;
  std::optional<hinj::Server> server;
  std::optional<hinj::Client> client;  // owns the warmed-up hinj frame buffers
  mavlink::Channel channel;            // owns the warmed-up frame freelist
  std::optional<fw::SensorBus> bus;
  std::optional<fw::Firmware> firmware;
  std::optional<MonitorSession> monitor;
};

// Reusable per-worker experiment arena (ROADMAP: "per-worker experiment
// arenas"). Wraps one ExperimentWorld so consecutive runs on the same
// worker reset state in place instead of rebuilding it on the heap; callers
// just keep the context alive and pass it back in. One context serves one
// run at a time (it is a worker's scratch space, not shared state).
class ExperimentContext {
 public:
  ExperimentContext() = default;
  ExperimentContext(const ExperimentContext&) = delete;
  ExperimentContext& operator=(const ExperimentContext&) = delete;

  ExperimentWorld& world() { return world_; }

 private:
  ExperimentWorld world_;
};

// Hands contexts to pool workers: a worker checks one out per experiment
// and returns it afterwards, and each context is reused by whichever worker
// runs the next one. The free list is capped at the pool's high-water
// concurrent-checkout mark: a release that would retain more idle contexts
// than were ever simultaneously in use frees the context instead, so a wide
// campaign cannot pin arena memory beyond its actual peak concurrency. The
// lock is per experiment (hundreds of milliseconds of simulation), so
// contention is irrelevant.
class ExperimentContextPool {
 public:
  std::unique_ptr<ExperimentContext> acquire() {
    std::lock_guard lock(mutex_);
    ++checked_out_;
    high_water_ = std::max(high_water_, checked_out_);
    if (!free_.empty()) {
      std::unique_ptr<ExperimentContext> ctx = std::move(free_.back());
      free_.pop_back();
      return ctx;
    }
    return std::make_unique<ExperimentContext>();
  }

  void release(std::unique_ptr<ExperimentContext> ctx) {
    std::lock_guard lock(mutex_);
    if (checked_out_ > 0) --checked_out_;
    if (free_.size() + checked_out_ < high_water_) {
      free_.push_back(std::move(ctx));
    }
    // else: retaining it would exceed the peak-concurrency cap; let it die.
  }

  // Observability for tests: peak concurrent checkouts and current idles.
  std::size_t high_water_mark() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }
  std::size_t idle_count() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ExperimentContext>> free_;
  std::size_t checked_out_ = 0;
  std::size_t high_water_ = 0;
};

// Harness cadences, shared with the batch engine (core/batch_harness.h): a
// batched lane must pump its workload and sample its monitor on exactly the
// scalar schedule or the parity contract breaks.
// The workload (ground station) is pumped at 20 ms — a realistic GCS loop
// rate, and far slower than the 1 kHz firmware loop.
inline constexpr sim::SimTimeMs kWorkloadPeriodMs = 20;
// After the workload passes or fails, let the vehicle settle briefly so
// late-manifesting violations (e.g. ground impact) are still observed.
inline constexpr sim::SimTimeMs kGraceMs = 4000;

// The per-run loop state one experiment threads through provisioning, the
// step loop and finalization. The scalar path keeps one on the stack; the
// batch engine keeps one per lane, mirrors its fields while the lane steps
// in lockstep, and hands it (with the lane's world) back to the scalar loop
// when the lane diverges — the experiment finishes on the identical code
// path either way.
struct RunState {
  ExperimentResult result;
  std::unique_ptr<workload::Workload> workload;
  std::optional<workload::GcsContext> gcs;
  MonitorSession* monitor = nullptr;  // points into the world; null = unmonitored
  bool firmware_dead = false;
  sim::SimTimeMs workload_done_at = -1;
  sim::SimTimeMs next_workload_ms = 0;
  sim::SimTimeMs next_sample_ms = 0;
  sim::SimTimeMs start_ms = 0;
};

class SimulationHarness {
 public:
  SimulationHarness() = default;

  // The vehicle's sensor complement (paper §VI: the 3DR Iris / Pixhawk
  // stack): dual-redundant IMU (gyro + accel), triple-redundant compass
  // (the paper's Fig. 6 example), single baro/GPS/battery. Search
  // strategies must enumerate over this.
  static sensors::SuiteConfig iris_suite() {
    sensors::SuiteConfig config;
    config.gyroscopes = 2;
    config.accelerometers = 2;
    config.barometers = 1;
    config.gpses = 1;
    config.compasses = 3;
    config.batteries = 1;
    return config;
  }

  // Run one experiment. If `monitor_model` is non-null the invariant monitor
  // runs alongside and, when spec.stop_on_violation, ends the run at the
  // first violation. Profiling runs pass nullptr. `context`, when given, is
  // the worker's reusable arena; nullptr provisions (and discards) a fresh
  // one, which is bit-identical but pays the allocations. `checkpoints`,
  // when given, must have been recorded from the same scenario (same spec
  // minus the plan, same monitored-ness — record_prefix below): the run
  // then restores the latest snapshot at-or-before the plan's first
  // injection and simulates only the suffix, bit-identical to a cold run
  // (result.resumed_from_ms records the skip).
  ExperimentResult run(const ExperimentSpec& spec, const MonitorModel* monitor_model = nullptr,
                       ExperimentContext* context = nullptr,
                       const CheckpointStore* checkpoints = nullptr) const;

  // Same, but with a caller-supplied fault director (the replayer injects
  // relative to observed mode transitions rather than absolute timestamps).
  // Custom directors carry no declared first-injection time, so this path
  // never restores checkpoints.
  ExperimentResult run_with_director(const ExperimentSpec& spec,
                                     hinj::FaultDirector& director,
                                     const MonitorModel* monitor_model,
                                     ExperimentContext* context = nullptr) const;

  // The checkpointing prefix run: simulates `spec` with its plan cleared,
  // capturing a snapshot of complete world state every
  // `config.interval_ms` of sim time, and returns the filled store. The
  // prefix must run under the same monitor the accelerated experiments will
  // use (the monitor session's history is part of world state).
  CheckpointStore record_prefix(const ExperimentSpec& spec,
                                const MonitorModel* monitor_model,
                                const CheckpointConfig& config,
                                ExperimentContext* context = nullptr) const;

  // Checkpoint-tree building block: run one *directed* experiment, restoring
  // from the deepest usable snapshot in `store` (tree or root), while
  // recording tree snapshots on the store's cadence + at the plan's later
  // activations; if the run stays safe, merge the captures back into the
  // store so deeper chains can fork from them. This is the scalar form of
  // what Checker/BatchHarness do across a campaign — tests use it to grow a
  // tree without standing up a checker.
  ExperimentResult run_recording(const ExperimentSpec& spec, const MonitorModel* monitor_model,
                                 ExperimentContext* context, CheckpointStore& store) const;

  // Convenience: N fault-free profiling runs with distinct seeds, then
  // monitor calibration (paper: "We assume runs without sensor failures are
  // correct"). The prototype overload carries the full experiment identity
  // — personality, workload (enum or factory), environment, bugs — so
  // registry-named scenarios profile the exact world they search in; the
  // prototype's plan and seed are ignored.
  MonitorModel profile(const ExperimentSpec& prototype, int runs = 3,
                       std::uint64_t seed_base = 1, ExperimentContext* context = nullptr) const;
  MonitorModel profile(fw::Personality personality, workload::WorkloadId workload,
                       const fw::BugRegistry& bugs, int runs = 3,
                       std::uint64_t seed_base = 1, ExperimentContext* context = nullptr) const;

  // Per-run step hook for benches that need full-rate traces (Fig. 9/10).
  using StepHook = std::function<void(sim::SimTimeMs, const sim::VehicleState&,
                                      const fw::Firmware&)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }

 private:
  friend class BatchHarness;

  // The one experiment loop behind run/run_with_director/record_prefix.
  // `restore_from` resumes from the best usable snapshot — tree or root —
  // via CheckpointStore::resolve (nullptr = cold); `capture_into` records
  // cadenced snapshots while running (the prefix run); `tree_capture`
  // records tree snapshots while running a *directed* experiment (planned
  // by plan_tree_capture; the caller merges the captures into a store if
  // the run stays safe). capture_into and tree_capture are mutually
  // exclusive by construction.
  ExperimentResult p_run(const ExperimentSpec& spec, hinj::FaultDirector& custom_director,
                         const MonitorModel* monitor_model, ExperimentContext* context,
                         const CheckpointStore* restore_from,
                         CheckpointStore* capture_into,
                         TreeCapture* tree_capture = nullptr) const;

  // The three phases of p_run, split out so the batch engine can run them
  // per lane: provision the world (cold, or restored from `resume`, whose
  // pointers must stay valid through the call), run the step loop from
  // rs.start_ms, and finalize the result. p_loop/p_finalize assume
  // p_provision's wiring.
  RunState p_provision(const ExperimentSpec& spec, RecordingDirector& director,
                       const MonitorModel* monitor_model, ExperimentWorld& world,
                       const CheckpointResume& resume) const;
  void p_loop(const ExperimentSpec& spec, ExperimentWorld& world, RecordingDirector& director,
              RunState& rs, CheckpointStore* capture_into,
              TreeCapture* tree_capture = nullptr) const;
  ExperimentResult p_finalize(const ExperimentSpec& spec, ExperimentWorld& world,
                              RecordingDirector& director, RunState& rs) const;

  StepHook step_hook_;
};

}  // namespace avis::core
