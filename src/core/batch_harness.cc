#include "core/batch_harness.h"

#include "fw/cascade_batch.h"
#include "fw/estimator_batch.h"
#include "sensors/suite_batch.h"
#include "sim/quadcopter_batch.h"
#include "util/checked.h"
#include "util/log.h"

namespace avis::core {

// Simulated milliseconds a lane runs consecutively before the group moves
// to its next lane (coarse lockstep). Large enough to amortize the cross-
// lane switch (cold caches, cold predictors) over hundreds of steps; small
// enough that a group's lanes stay within one tile of each other, keeping
// peak live state bounded the way strict lockstep does. A multiple of both
// the 20 ms workload and 100 ms sample cadences, though nothing requires
// that — every cadence check is per-lane and exact.
constexpr sim::SimTimeMs kTileMs = 400;

// One experiment's seat in the batch: its pooled world, per-run directors,
// and the scalar loop state the lane mirrors while stepping in lockstep.
// Heap-allocated (stable address) because the world's hinj server holds a
// reference to the recording director across the run.
struct BatchHarness::Lane {
  ExperimentWorld world;
  std::optional<ScheduledDirector> scheduled;
  std::optional<RecordingDirector> recording;
  RunState rs;
  const ExperimentSpec* spec = nullptr;
  const sim::Environment* env = nullptr;
  sim::SimTimeMs first_injection = 0;
  std::size_t result_slot = 0;
  // Checkpoint-tree recording sink for this lane's run (engaged when the
  // checker wants the plan recorded); filled by the scalar loop after the
  // lane diverges — every capture time is past the first injection, so the
  // batch stretch never captures.
  std::optional<TreeCapture> tree_capture;
};

BatchHarness::BatchHarness(const SimulationHarness& harness) : harness_(&harness) {}
BatchHarness::~BatchHarness() = default;

std::vector<ExperimentResult> BatchHarness::run(const std::vector<ExperimentSpec>& specs,
                                                const MonitorModel* monitor_model,
                                                const CheckpointStore* checkpoints,
                                                sim::SimTimeMs budget_remaining_ms,
                                                int tree_capture_limit,
                                                std::vector<std::vector<ExperimentSnapshot>>*
                                                    tree_captures) {
  std::vector<ExperimentResult> results(specs.size());
  if (tree_captures != nullptr) tree_captures->assign(specs.size(), {});
  if (specs.empty()) return results;
  while (lanes_.size() < specs.size()) lanes_.push_back(std::make_unique<Lane>());

  budget_limit_ms_ = budget_remaining_ms;
  done_ms_.assign(specs.size(), -1);
  done_prefix_ = 0;
  done_prefix_sum_ = 0;
  abort_ = false;

  // Provision every lane exactly as the scalar path would (including its
  // own best-fit checkpoint restore). Lanes carry independent clocks — a
  // cold lane starts at 0, a restored one at its snapshot time — so one
  // batch holds any mix of resume points; nothing requires lanes to share a
  // start, only that each lane's own step sequence is the scalar one.
  std::vector<Lane*> group;
  group.reserve(specs.size());
  for (std::size_t idx = 0; idx < specs.size(); ++idx) {
    Lane& lane = *lanes_[idx];
    const ExperimentSpec& spec = specs[idx];
    lane.spec = &spec;
    lane.result_slot = idx;
    lane.first_injection = spec.plan.first_injection_ms();
    CheckpointResume resume;
    if (checkpoints != nullptr && checkpoints->has_restore_points()) {
      checkpoints->require_matches(spec, monitor_model != nullptr);
      resume = checkpoints->resolve(spec.plan);
    }
    lane.scheduled.emplace(spec.plan);
    lane.recording.emplace(*lane.scheduled);
    lane.rs = harness_->p_provision(spec, *lane.recording, monitor_model, lane.world, resume);
    lane.env = &lane.world.simulator->environment();
    lane.tree_capture.reset();
    if (tree_capture_limit > 0 && checkpoints != nullptr && checkpoints->trees_enabled() &&
        !spec.plan.events.empty() &&
        static_cast<int>(spec.plan.events.size()) <= tree_capture_limit) {
      lane.tree_capture.emplace(plan_tree_capture(spec, checkpoints->config()));
    }
    // A lane that resumes at or past its first injection (a tree restore,
    // or a root snapshot landing exactly on the injection) has no
    // plan-independent stretch for the batched fast path to cover — its
    // very first batch step would diverge it. Run it straight through the
    // scalar loop instead; the batch blocks never see it.
    if (lane.rs.start_ms >= lane.first_injection ||
        lane.rs.start_ms >= spec.max_duration_ms) {
      if (!abort_) {
        harness_->p_loop(spec, lane.world, *lane.recording, lane.rs, nullptr,
                         lane.tree_capture ? &*lane.tree_capture : nullptr);
        results[idx] = harness_->p_finalize(spec, lane.world, *lane.recording, lane.rs);
        p_note_done(idx, results[idx].duration_ms);
      }
      continue;
    }
    group.push_back(&lane);
  }

  if (!group.empty() && !abort_) p_run_group(group, monitor_model, results);

  if (tree_captures != nullptr) {
    for (std::size_t idx = 0; idx < specs.size(); ++idx) {
      Lane& lane = *lanes_[idx];
      if (lane.tree_capture) (*tree_captures)[idx] = std::move(lane.tree_capture->snapshots);
    }
  }
  return results;
}

void BatchHarness::p_note_done(std::size_t slot, sim::SimTimeMs duration_ms) {
  if (budget_limit_ms_ < 0) return;
  done_ms_[slot] = duration_ms;
  while (done_prefix_ < done_ms_.size() && done_ms_[done_prefix_] >= 0) {
    done_prefix_sum_ += done_ms_[done_prefix_];
    ++done_prefix_;
  }
  // The checker applies results in slot order and discards everything after
  // the first slot whose cumulative charge exhausts the budget. Everything
  // still running sits after the done prefix, so once the prefix alone
  // crosses the limit, no unfinished lane's result can ever be applied.
  // Conservative by construction: extra apply-side charges only move the
  // checker's discard boundary earlier, never later.
  if (done_prefix_sum_ >= budget_limit_ms_) abort_ = true;
}

void BatchHarness::p_run_group(const std::vector<Lane*>& group,
                               const MonitorModel* monitor_model,
                               std::vector<ExperimentResult>& results) {
  (void)monitor_model;
  const int n = static_cast<int>(group.size());

  // The batch blocks, loaded from each lane's provisioned world. Everything
  // mutable per step lives here (SoA) or in the lane's own
  // firmware/workload/monitor objects (stepped scalar per lane).
  sim::QuadcopterBatch world_batch(n);
  sensors::SuiteBatch suite_batch(group[0]->world.suite->config(), n);
  fw::EstimatorBatch est_batch(n);
  fw::CascadeBatch cascade_batch(n);
  std::vector<sim::VehicleState> truth(static_cast<std::size_t>(n));
  std::vector<const sim::Environment*> envs(static_cast<std::size_t>(n));

  for (int k = 0; k < n; ++k) {
    Lane& lane = *group[static_cast<std::size_t>(k)];
    world_batch.pack(k, lane.world.simulator->save());
    suite_batch.pack(k, lane.world.suite->save());
    est_batch.pack(k, lane.world.firmware->estimator().save());
    cascade_batch.pack(k, lane.world.firmware->cascade().save());
    envs[static_cast<std::size_t>(k)] = lane.env;
  }

  // Write a lane's batch state back into its scalar world so the lane can
  // continue (divergence) or finalize (retirement) on the scalar path.
  // `sim_time` is the lane's simulator clock: `now` at the top of an
  // iteration, `now + 1` after physics ran.
  const auto leave_batch = [&](int k, sim::SimTimeMs sim_time) {
    Lane& lane = *group[static_cast<std::size_t>(k)];
    lane.world.simulator->load(world_batch.unpack(k, sim_time));
    lane.world.suite->load(suite_batch.unpack(k));
    lane.world.firmware->estimator().load(est_batch.unpack(k));
    lane.world.firmware->cascade().load(cascade_batch.unpack(k));
  };

  std::vector<int> active;
  active.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) active.push_back(k);

  // Lanes advance in coarse lockstep: rounds of kTileMs simulated
  // milliseconds, each lane stepped through its whole tile before the next
  // lane starts one. Lanes never observe each other, so cross-lane
  // execution order is free — and per-lane-consecutive stepping is the one
  // that keeps a lane's simulator/firmware working set hot in L1 across its
  // steps instead of evicting it width-1 times per simulated millisecond.
  // Each lane runs on its own clock from its own resume point (restored
  // lanes start at their snapshot time, cold lanes at 0). The per-lane
  // operation order inside a step (pump, fuse, control, physics, sample) is
  // exactly the scalar loop's, which is what bit-identity needs; the tile
  // size only moves cache behavior (bench/perf_micro.cpp's BM_BatchStep and
  // BM_SingleExperiment quantify it).
  std::vector<sim::SimTimeMs> clock(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) clock[static_cast<std::size_t>(k)] = group[static_cast<std::size_t>(k)]->rs.start_ms;

  while (!active.empty() && !abort_) {
    for (std::size_t a = 0; a < active.size();) {
      if (abort_) break;  // unfinished slots are past the discard boundary
      const int k = active[a];
      Lane& lane = *group[static_cast<std::size_t>(k)];
      sim::VehicleState& lane_truth = truth[static_cast<std::size_t>(k)];
      const sim::SimTimeMs tile_end = clock[static_cast<std::size_t>(k)] + kTileMs;
      bool gone = false;

      for (sim::SimTimeMs now = clock[static_cast<std::size_t>(k)]; now < tile_end; ++now) {
        // Top of the step: a lane whose plan can act from here on leaves
        // the batch BEFORE stepping — the batch covers
        // [start, first_injection) and the scalar loop covers the rest,
        // re-entering at exactly this point (the same seam the checkpoint
        // restore uses). A lane at its max duration leaves the loop the way
        // the scalar `for` bound would.
        if (now >= lane.spec->max_duration_ms || now >= lane.first_injection) {
          leave_batch(k, now);
          lane.rs.start_ms = now;
          harness_->p_loop(*lane.spec, lane.world, *lane.recording, lane.rs, nullptr,
                           lane.tree_capture ? &*lane.tree_capture : nullptr);
          results[lane.result_slot] =
              harness_->p_finalize(*lane.spec, lane.world, *lane.recording, lane.rs);
          p_note_done(lane.result_slot, results[lane.result_slot].duration_ms);
          gone = true;
          break;
        }

        // Step 1: workload pump at the scalar cadence.
        const bool workload_due = now == lane.rs.next_workload_ms;
        if (workload_due) lane.rs.next_workload_ms += kWorkloadPeriodMs;
        if (workload_due && !lane.rs.firmware_dead) {
          lane.rs.gcs->pump(now);
          const workload::WorkloadStatus ws = lane.rs.workload->step(*lane.rs.gcs);
          if (ws != workload::WorkloadStatus::kRunning && lane.rs.workload_done_at < 0) {
            lane.rs.workload_done_at = now;
            lane.rs.result.workload_passed = ws == workload::WorkloadStatus::kPassed;
          }
        }

        // Refresh the ground-truth work register (pre-physics state: what
        // the scalar firmware sees this step).
        world_batch.unpack_state(k, lane_truth);

        // Steps 3-4: the fused sensor/estimator pass (a dead firmware stops
        // reading sensors scalar too).
        sim::MotorCommands motors;
        if (!lane.rs.firmware_dead) {
          est_batch.step(now, suite_batch, truth.data(), envs.data(), &k, 1);

          // Step 5: control phase + cascade. The lane firmware's own
          // estimator receives this step's fused solution first, so mode
          // logic/failsafes/telemetry read exactly what a scalar update
          // would have published.
          fw::Firmware& firmware = *lane.world.firmware;
          const fw::EstimatedState fused = est_batch.fused(k);
          firmware.estimator().adopt_fused(fused, fused);
          cascade_batch.load_into(k, firmware.cascade());
          try {
            const fw::Firmware::ControlPhase phase =
                firmware.step_control_phase(now, lane_truth);
            if (phase.armed) {
              motors = firmware.cascade().update(phase.setpoint, firmware.estimator().state(),
                                                 sim::kStepSeconds);
            }
          } catch (const util::InvariantError& err) {
            lane.rs.firmware_dead = true;
            util::log_warn() << "firmware aborted: " << err.what();
          }
          cascade_batch.store_from(k, firmware.cascade());
        }

        // Step 6: physics on the work register, written back to the lanes.
        world_batch.step(k, lane_truth, motors, *envs[static_cast<std::size_t>(k)]);
        if (harness_->step_hook_) {
          harness_->step_hook_(now + 1, lane_truth, *lane.world.firmware);
        }

        // Sample/monitor + end conditions. Mirrors the tail of
        // SimulationHarness::p_loop including its break order: a stop-on-
        // violation or grace-expiry break skips the checks after it.
        bool retired = false;
        if (now == lane.rs.next_sample_ms) {
          lane.rs.next_sample_ms += kSamplePeriodMs;
          StateSample sample;
          sample.time_ms = now;
          sample.position = lane_truth.position;
          sample.acceleration = lane_truth.acceleration;
          sample.mode_id = lane.world.firmware->composite_mode().id();
          sample.on_ground = lane_truth.on_ground;
          sample.armed = lane.world.firmware->armed();
          lane.rs.result.trace.push_back(sample);

          if (lane.rs.monitor != nullptr) {
            const bool workload_failed =
                lane.rs.workload_done_at >= 0 &&
                lane.rs.workload->status() == workload::WorkloadStatus::kFailed;
            const auto violation =
                lane.rs.monitor->on_sample(sample, lane_truth.crashed, world_batch.last_crash(k),
                                           lane.rs.firmware_dead, workload_failed);
            if (violation && !lane.rs.result.violation) {
              lane.rs.result.violation = violation;
              if (lane.spec->stop_on_violation) {
                lane.rs.result.duration_ms = now + 1;
                retired = true;
              }
            }
          }
        }

        if (!retired && lane.rs.workload_done_at >= 0 &&
            now - lane.rs.workload_done_at >= kGraceMs) {
          lane.rs.result.duration_ms = now + 1;
          retired = true;
        }
        if (!retired && lane_truth.crashed && lane.rs.workload_done_at < 0) {
          lane.rs.workload_done_at = now;  // nothing more will happen; start grace
          lane.rs.result.workload_passed = false;
        }

        if (retired) {
          leave_batch(k, now + 1);
          results[lane.result_slot] =
              harness_->p_finalize(*lane.spec, lane.world, *lane.recording, lane.rs);
          p_note_done(lane.result_slot, results[lane.result_slot].duration_ms);
          gone = true;
          break;
        }
      }

      if (gone) {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(a));
      } else {
        clock[static_cast<std::size_t>(k)] = tile_end;
        ++a;
      }
    }
  }
}

}  // namespace avis::core
