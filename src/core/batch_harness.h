// Batched lockstep simulation (ROADMAP: "Batched lockstep simulation").
//
// A checker campaign's experiments share their entire spec except the fault
// plan, and a run is plan-independent strictly before the plan's earliest
// activation. BatchHarness exploits that: it takes a batch of specs, packs
// each one's freshly provisioned (or checkpoint-restored) world into
// structure-of-arrays lanes — sim::QuadcopterBatch, sensors::SuiteBatch,
// fw::EstimatorBatch, fw::CascadeBatch — and advances the lanes in coarse
// lockstep, tiles of a few hundred 1 ms steps per lane per round, each lane
// on its own clock from its own resume point. The batched step runs the
// pre-injection fast path: sensor reads and fusion straight out of the SoA
// blocks, skipping the hinj indirection and fail-over scans the scalar
// estimator pays per step. A lane leaves the batch ("diverges") at the top
// of the first step where its plan can act, and finishes on the ordinary
// scalar path (SimulationHarness::p_loop / p_finalize); it never rejoins.
// Lanes whose run ends inside the batch (workload grace, stop-on-violation)
// retire in place through the same scalar finalize.
//
// Parity contract: per-lane operation order is exactly the scalar order —
// sensor reads per instance ascending, the same RNG streams, the same
// workload/sample cadences (kWorkloadPeriodMs / kSamplePeriodMs), physics
// through the same QuadcopterDynamics — so the ExperimentResults are
// bit-identical to running each spec through SimulationHarness::run
// (tests/test_batch.cc sweeps the parity matrix).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/harness.h"
#include "core/invariant_monitor.h"

namespace avis::core {

class BatchHarness {
 public:
  explicit BatchHarness(const SimulationHarness& harness);
  ~BatchHarness();

  BatchHarness(const BatchHarness&) = delete;
  BatchHarness& operator=(const BatchHarness&) = delete;

  // Run `specs` in lockstep; results in spec order, each bit-identical to
  // the scalar path. All specs must share the checkpoint store's scenario
  // when one is given (same contract as SimulationHarness::run). Lane worlds
  // are pooled across calls (the arena-reuse contract), so a long campaign
  // provisions by resetting retained storage, exactly like the scalar pool.
  //
  // `budget_remaining_ms` >= 0 enables discard-aware early abort for a
  // budgeted caller (Checker::run): once every lane before slot j has
  // finished and their summed durations reach the remaining budget, the
  // checker's mid-batch discard rule is guaranteed to throw away every
  // later result, so the engine stops simulating those lanes. Aborted slots
  // return a default ExperimentResult — callers that pass a budget must not
  // read past the discard boundary (the checker's apply loop never does).
  // The default (-1) runs every lane to completion.
  //
  // Checkpoint-tree recording: `tree_capture_limit` > 0 records lanes whose
  // plan has at most that many events (the strategy's chain_extension_limit
  // — plans it may later extend); the captured snapshots land in
  // `tree_captures` (resized to specs.size(); empty for unrecorded lanes).
  // The caller merges them into the store between waves — this engine only
  // ever reads the store.
  std::vector<ExperimentResult> run(const std::vector<ExperimentSpec>& specs,
                                    const MonitorModel* monitor_model = nullptr,
                                    const CheckpointStore* checkpoints = nullptr,
                                    sim::SimTimeMs budget_remaining_ms = -1,
                                    int tree_capture_limit = 0,
                                    std::vector<std::vector<ExperimentSnapshot>>* tree_captures =
                                        nullptr);

  // Pool support: a reused BatchHarness may be handed to a different (but
  // equivalent) harness instance.
  void rebind(const SimulationHarness& harness) { harness_ = &harness; }

 private:
  struct Lane;

  void p_run_group(const std::vector<Lane*>& group, const MonitorModel* monitor_model,
                   std::vector<ExperimentResult>& results);
  // Records a finished lane's duration and advances the contiguous done
  // prefix; flips abort_ once the prefix alone exhausts the caller's budget.
  void p_note_done(std::size_t slot, sim::SimTimeMs duration_ms);

  const SimulationHarness* harness_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // pooled lane worlds

  // Per-run early-abort bookkeeping (see run()'s budget_remaining_ms).
  sim::SimTimeMs budget_limit_ms_ = -1;
  std::vector<sim::SimTimeMs> done_ms_;  // -1 = slot still running
  std::size_t done_prefix_ = 0;          // slots [0, done_prefix_) all finished
  sim::SimTimeMs done_prefix_sum_ = 0;
  bool abort_ = false;
};

// Hands batch engines to pool workers, mirroring ExperimentContextPool: one
// engine per in-flight batch, reused by whichever worker runs the next one,
// free list capped at the peak concurrent checkout so idle engines (and the
// lane worlds they retain) cannot outlive the pool's actual concurrency.
class BatchHarnessPool {
 public:
  std::unique_ptr<BatchHarness> acquire(const SimulationHarness& harness) {
    std::lock_guard lock(mutex_);
    ++checked_out_;
    high_water_ = std::max(high_water_, checked_out_);
    if (!free_.empty()) {
      std::unique_ptr<BatchHarness> engine = std::move(free_.back());
      free_.pop_back();
      engine->rebind(harness);
      return engine;
    }
    return std::make_unique<BatchHarness>(harness);
  }

  void release(std::unique_ptr<BatchHarness> engine) {
    std::lock_guard lock(mutex_);
    if (checked_out_ > 0) --checked_out_;
    if (free_.size() + checked_out_ < high_water_) {
      free_.push_back(std::move(engine));
    }
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<BatchHarness>> free_;
  std::size_t checked_out_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace avis::core
