// Declarative scenario specifications (docs/SCENARIOS.md).
//
// A ScenarioSpec is the JSON-serializable description of one campaign cell:
// every field is a string key into a registry (approach, personality,
// workload, environment preset, bug population) or a plain number (budget,
// seeds, fault-plan constraints). The spec — not C++ code — is the unit of
// experiment construction: `avis_campaign --scenario-file grid.json` runs a
// grid of them, `--dump-scenario` writes one out, and a future cross-process
// sharder can mail them between hosts (ROADMAP: the spec is the wire
// format). from_json(to_json(spec)) == spec, and a campaign built from a
// dumped file is report-identical to the same grid built via CSV flags
// (tests/test_scenario.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/invariant_monitor.h"
#include "core/strategy.h"
#include "util/json.h"
#include "util/registry.h"

namespace avis::baselines {
class NaiveBayesModel;
}  // namespace avis::baselines

namespace avis::core {

// Constraints every injected fault plan must respect. They parameterize the
// search strategies at construction (SABRE's set enumeration, injection
// window and chain growth, Random's sampling range and type pool, BFI's set
// enumeration); the defaults reproduce the paper's configuration exactly.
// BFI proposes from its Bayes model's training timeline and ignores the
// window/type restrictions (documented in docs/FUZZING.md).
struct FaultPlanConstraints {
  int max_set_size = 2;     // largest failure set added at one timestamp
  int max_plan_events = 3;  // total concurrent failures per plan

  // Injection window: strategies only inject at timestamps t with
  // window_start_ms <= t (and t <= window_end_ms when window_end_ms > 0;
  // 0 = unbounded). The scenario fuzzer mutates these to steer coverage
  // into specific (mode-graph edge x window) buckets.
  sim::SimTimeMs window_start_ms = 0;
  sim::SimTimeMs window_end_ms = 0;

  // Sensor-type names ("GPS", "battery", ... — sensors::to_string) the
  // strategies may fail; empty = all types. Validated against the known
  // types (resolve_fault_type).
  std::vector<std::string> fault_types;

  bool operator==(const FaultPlanConstraints&) const = default;
};

// The sensor type a constraints fault-type name refers to; throws
// util::UnknownNameError (with the known-name listing) otherwise.
sensors::SensorType resolve_fault_type(std::string_view name);

// Bitmask over sensors::SensorType for a constraints type list (bit i =
// type i allowed); the empty list means every type.
std::uint32_t fault_type_mask(const std::vector<std::string>& fault_types);

struct ScenarioSpec {
  std::string approach = "avis";          // approach_registry()
  std::string personality = "ardupilot";  // personality_registry()
  std::string workload = "box-manual";    // workload::workload_registry()
  std::string environment = "calm";       // sim::environment_registry()
  std::string bugs = "current";           // bug_selector_registry()
  sim::SimTimeMs budget_ms = 7200 * 1000;  // the paper's per-workload budget
  std::uint64_t seed = 100;                // checker seed (profiling + experiments)
  std::uint64_t strategy_seed = 107;
  FaultPlanConstraints constraints;

  bool operator==(const ScenarioSpec&) const = default;

  // Every registry name resolves; throws util::UnknownNameError (carrying
  // the registered-name listing) or util::InvariantError otherwise.
  void validate() const;

  // Serialization: stable key order, `indent` spaces before every line so a
  // spec can be embedded in a grid or report document.
  std::string to_json(int indent = 0) const;
  static ScenarioSpec from_json(const util::Json& json);
  static ScenarioSpec from_json(std::string_view text);
};

// A cartesian scenario grid plus optional explicit extra scenarios — the
// shape of a `--scenario-file`. expand() yields the product in
// (approach, personality, workload, environment) order — the deterministic
// grid order the table benches and the campaign runner preserve — followed
// by `scenarios` verbatim.
struct ScenarioGrid {
  std::vector<std::string> approaches = {"avis", "stratified-bfi", "bfi", "random"};
  std::vector<std::string> personalities = {"ardupilot", "px4"};
  std::vector<std::string> workloads = {"box-manual", "fence-mission"};
  std::vector<std::string> environments = {"calm"};
  std::string bugs = "current";
  sim::SimTimeMs budget_ms = 7200 * 1000;
  std::uint64_t seed = 100;
  std::uint64_t strategy_seed = 0;  // 0 = derive as seed + 7
  FaultPlanConstraints constraints;
  std::vector<ScenarioSpec> scenarios;

  bool operator==(const ScenarioGrid&) const = default;

  std::vector<ScenarioSpec> expand() const;
  void validate() const;  // validates the expansion

  std::string to_json() const;
  static ScenarioGrid from_json(const util::Json& json);
  static ScenarioGrid from_json(std::string_view text);
};

// --- Registries -----------------------------------------------------------

// An approach builds the cell's injection strategy once the monitor model
// is calibrated. `label` is the display name reports use ("Avis"); the
// factory reads the scenario's strategy seed and fault-plan constraints.
struct ApproachInfo {
  std::string label;
  std::function<std::unique_ptr<InjectionStrategy>(const MonitorModel&, const ScenarioSpec&)>
      make;
};

util::Registry<ApproachInfo>& approach_registry();
util::Registry<fw::Personality>& personality_registry();

using BugSelector = std::function<fw::BugRegistry()>;
util::Registry<BugSelector>& bug_selector_registry();

// --- Resolution -----------------------------------------------------------

fw::Personality resolve_personality(std::string_view name);
fw::BugRegistry resolve_bugs(std::string_view name);

// Display label for an approach name; falls back to the name itself for
// non-registry approaches (compatibility cells with custom factories).
std::string approach_label(std::string_view name);

// ExperimentSpec prototype for a scenario: personality, workload factory,
// environment factory, and bug population resolved through the registries,
// seed = scenario.seed, empty plan. Feed it to Checker's prototype
// constructor. Throws util::UnknownNameError on any unregistered name.
ExperimentSpec scenario_prototype(const ScenarioSpec& spec);

// The scenario's strategy, built through the approach registry.
std::unique_ptr<InjectionStrategy> make_scenario_strategy(const ScenarioSpec& spec,
                                                          const MonitorModel& model);

// One process-wide Bayes model shared by every BFI-family cell. Immutable
// after construction (scoring is the only API), so concurrent campaign
// cells read it without synchronization; the magic static guarantees
// thread-safe initialization when the first two cells race to construct it.
const baselines::NaiveBayesModel& shared_bayes();

}  // namespace avis::core
