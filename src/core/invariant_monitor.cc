#include "core/invariant_monitor.h"

#include <algorithm>

#include "util/checked.h"
#include "util/log.h"

namespace avis::core {

namespace {
// Safe-mode progress checks look this far back in the sampled history.
constexpr sim::SimTimeMs kProgressWindowMs = 4000;
constexpr std::size_t kProgressWindowSamples = kProgressWindowMs / kSamplePeriodMs;
// Fly-away backstop margin beyond the profiled flight volume.
constexpr double kFlyAwayMarginM = 25.0;
// Eq. 1 must hold for this many consecutive samples (0.6 s) to count.
constexpr int kEq1PersistenceSamples = 6;
}  // namespace

MonitorModel MonitorModel::calibrate(std::vector<ExperimentResult> profiling_runs) {
  util::expects(!profiling_runs.empty(), "monitor calibration needs profiling runs");
  MonitorModel m;
  m.golden_ = profiling_runs.front();
  m.golden_transitions_ = m.golden_.transitions;

  std::vector<std::vector<ModeTransition>> transition_sets;
  for (auto& run : profiling_runs) {
    util::expects(!run.trace.empty(), "profiling run has an empty trace");
    transition_sets.push_back(run.transitions);
    m.traces_.push_back(std::move(run.trace));
  }
  m.graph_ = ModeGraph::from_profiling(transition_sets);

  // Pad all traces to the longest duration by repeating the last state.
  std::size_t max_len = 0;
  for (const auto& t : m.traces_) max_len = std::max(max_len, t.size());
  for (auto& t : m.traces_) {
    while (t.size() < max_len) {
      StateSample s = t.back();
      s.time_ms += kSamplePeriodMs;
      t.push_back(s);
    }
  }
  m.duration_ms_ = static_cast<sim::SimTimeMs>(max_len) * kSamplePeriodMs;

  // P-bar and A-bar: the largest pairwise position/acceleration distances at
  // equal time offsets; floors keep the normalization sane when profiling
  // runs are nearly identical.
  double p_bar = 0.0;
  double a_bar = 0.0;
  for (std::size_t i = 0; i < m.traces_.size(); ++i) {
    for (std::size_t j = i + 1; j < m.traces_.size(); ++j) {
      for (std::size_t k = 0; k < max_len; ++k) {
        p_bar = std::max(p_bar, geo::euclidean_distance(m.traces_[i][k].position,
                                                        m.traces_[j][k].position));
        a_bar = std::max(a_bar, geo::euclidean_distance(m.traces_[i][k].acceleration,
                                                        m.traces_[j][k].acceleration));
      }
    }
  }
  m.p_bar_ = std::max(p_bar, 0.75);
  m.a_bar_ = std::max(a_bar, 0.75);

  // tau: the largest state distance between any two profiling runs at the
  // same offset.
  double tau = 0.0;
  for (std::size_t i = 0; i < m.traces_.size(); ++i) {
    for (std::size_t j = i + 1; j < m.traces_.size(); ++j) {
      for (std::size_t k = 0; k < max_len; ++k) {
        tau = std::max(tau, m.state_distance(m.traces_[i][k], m.traces_[j][k]));
      }
    }
  }
  // With a single profiling run there is no pairwise spread; fall back to a
  // conservative fraction of the normalization scale.
  m.tau_ = m.traces_.size() > 1 ? tau : 0.5 * m.graph_.diameter();

  for (const auto& trace : m.traces_) {
    for (const auto& s : trace) {
      m.max_home_distance_ = std::max(m.max_home_distance_, s.position.norm());
    }
  }
  util::log_info() << "monitor calibrated: tau=" << m.tau_ << " P=" << m.p_bar_
                   << " A=" << m.a_bar_ << " D=" << m.graph_.diameter()
                   << " modes=" << m.graph_.node_count();
  return m;
}

const StateSample& MonitorModel::profiling_state(std::size_t run, sim::SimTimeMs t) const {
  const auto& trace = traces_[run];
  std::size_t index = static_cast<std::size_t>(t / kSamplePeriodMs);
  if (index >= trace.size()) index = trace.size() - 1;
  return trace[index];
}

double MonitorModel::state_distance(const StateSample& a, const StateSample& b) const {
  const double d_len = static_cast<double>(graph_.diameter());
  const double dp = geo::euclidean_distance(a.position, b.position) * d_len / p_bar_;
  const double da = geo::euclidean_distance(a.acceleration, b.acceleration) * d_len / a_bar_;
  const double dm = static_cast<double>(graph_.distance(a.mode_id, b.mode_id));
  return std::sqrt(dp * dp + da * da + dm * dm);
}

bool MonitorModel::liveliness_violated(const StateSample& s) const {
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    if (state_distance(s, profiling_state(i, s.time_ms)) <= tau_) return false;
  }
  return true;
}

std::optional<Violation> MonitorSession::on_sample(const StateSample& sample, bool crashed,
                                                   sim::CrashCause crash_cause,
                                                   bool firmware_dead, bool workload_failed) {
  if (violation_) return violation_;
  history_.push_back(sample);

  // Mission progress lost entirely (workload timed out / was rejected): a
  // liveliness violation unless the vehicle reached a safe state.
  if (workload_failed && !p_safe_mode_ok(sample)) {
    violation_ = Violation{ViolationType::kLiveliness, sample.time_ms, sample.mode_id,
                           "mission stopped making progress (workload failed)"};
    return violation_;
  }

  // Safety first.
  if (firmware_dead) {
    violation_ = Violation{ViolationType::kFirmwareDead, sample.time_ms, sample.mode_id,
                           "firmware process aborted"};
    return violation_;
  }
  if (crashed) {
    violation_ = Violation{ViolationType::kCrash, sample.time_ms, sample.mode_id,
                           std::string("collision: ") + sim::to_string(crash_cause)};
    return violation_;
  }

  // Fly-away backstop: outside the profiled flight volume entirely. Safe
  // modes that are demonstrably making progress (e.g. a no-position landing
  // that drifted while descending) are exempt, like Eq. 1.
  if (sample.position.norm() > model_->max_home_distance() + kFlyAwayMarginM &&
      !p_safe_mode_ok(sample)) {
    violation_ = Violation{ViolationType::kFlyAway, sample.time_ms, sample.mode_id,
                           "left profiled flight volume"};
    return violation_;
  }

  // Liveliness (Eq. 1), with the safe-mode exemption and a short
  // persistence filter.
  if (model_->liveliness_violated(sample) && !p_safe_mode_ok(sample)) {
    if (consecutive_eq1_ == 0) {
      eq1_started_ms_ = sample.time_ms;
      eq1_mode_ = sample.mode_id;
    }
    ++consecutive_eq1_;
    if (consecutive_eq1_ >= kEq1PersistenceSamples) {
      violation_ = Violation{ViolationType::kLiveliness, eq1_started_ms_, eq1_mode_,
                             "state diverged from all profiling runs (Eq. 1)"};
      return violation_;
    }
  } else {
    consecutive_eq1_ = 0;
  }
  return std::nullopt;
}

bool MonitorSession::p_safe_mode_ok(const StateSample& sample) {
  const fw::Mode mode = fw::CompositeMode::from_id(sample.mode_id).mode;

  // Disarmed on the ground (pre-arm refusal or mission already completed):
  // stationary is safe.
  if (mode == fw::Mode::kPreFlight) {
    return !sample.armed && sample.on_ground;
  }

  // Landing modes must descend (or already be down). Two trends are
  // accepted: net descent over the full window, or steady descent over the
  // last 1.5 s (a landing engaged mid-climb carries upward momentum briefly,
  // which the long window would misread as "not landing").
  if (mode == fw::Mode::kLand || mode == fw::Mode::kEmergencyLand) {
    if (sample.on_ground) return true;
    if (history_.size() < kProgressWindowSamples) return true;  // grace period
    const StateSample& past = history_[history_.size() - kProgressWindowSamples];
    if (fw::CompositeMode::from_id(past.mode_id).mode != mode) return true;  // just entered
    const double altitude_now = -sample.position.z;
    const double altitude_then = -past.position.z;
    constexpr std::size_t kShortSamples = 15;  // 1.5 s
    const StateSample& recent = history_[history_.size() - kShortSamples];
    const double altitude_recent = -recent.position.z;
    // Long window: a degraded-sensor descent can oscillate for seconds, but
    // net progress over 8 s still distinguishes it from a genuine stall.
    constexpr std::size_t kLongSamples = 80;
    bool long_window_descending = false;
    if (history_.size() >= kLongSamples) {
      const StateSample& old = history_[history_.size() - kLongSamples];
      if (fw::CompositeMode::from_id(old.mode_id).mode == mode) {
        long_window_descending = (-old.position.z) - altitude_now > 0.6;
      }
    }
    const bool descending = altitude_then - altitude_now > 0.4 ||
                            altitude_recent - altitude_now > 0.25 || long_window_descending;
    if (!descending) {
      util::log_debug() << "land progress failed at t=" << sample.time_ms
                        << "ms alt_then=" << altitude_then << " alt_now=" << altitude_now;
    }
    return descending;
  }

  // Return-to-launch must make progress toward home (its supplied invariant,
  // per the paper's example of a safe mode).
  if (mode == fw::Mode::kReturnToLaunch) {
    if (history_.size() < kProgressWindowSamples) return true;
    const StateSample& past = history_[history_.size() - kProgressWindowSamples];
    if (fw::CompositeMode::from_id(past.mode_id).mode != mode) return true;
    constexpr std::size_t kShortSamples = 15;
    const StateSample& recent = history_[history_.size() - kShortSamples];
    const double home_then = std::hypot(past.position.x, past.position.y);
    const double home_recent = std::hypot(recent.position.x, recent.position.y);
    const double home_now = std::hypot(sample.position.x, sample.position.y);
    const double climb = (-sample.position.z) - (-past.position.z);
    return home_then - home_now > 0.4 || home_recent - home_now > 0.25 ||
           climb > 0.4;  // returning or climbing out
  }

  return false;  // every other mode is bound by Eq. 1
}

}  // namespace avis::core
