// SABRE: Stratified Breadth-first search (paper §IV-B, Algorithm 1).
//
// The queue is seeded with the mode transitions discovered by a profiling
// run. Each dequeued (timestamp, injectedFailures) entry expands into the
// canonical (instance-symmetric) failure sets applied at that timestamp on
// top of the already-injected failures. Bug-free runs re-enqueue their own
// mode transitions with the accumulated plan (Algorithm 1 lines 11-14), and
// each entry re-enqueues shifted timestamps (line 20) so the neighbourhood
// of every transition is explored exhaustively — the paper's key feature:
// Avis "exhaustively target[s] the critical periods where the UAV
// transitioned between operating modes". The crawl is bidirectional: bugs
// manifest both just before and just after a transition (e.g. a fault in the
// last metres of a climb vs. the first metres of the next leg).
//
// Two redundancy-elimination policies (§IV-B-1):
//  * found-bug pruning    — once failure set F at timestamp t triggers a
//    bug, no superset of F is injected at t again;
//  * sensor-instance symmetry — failure sets are enumerated over roles, not
//    instances (see core/canonical.h).
//
// Scheduling note (documented deviation): Algorithm 1 as printed runs the
// entire power set at a dequeued timestamp before moving on. With real
// mission durations that would spend the whole 2-hour budget inside the
// first transition, so this implementation runs the single-failure stratum
// across all transitions and offsets first and services the same-timestamp
// multi-failure stratum from a secondary queue at a fixed interleave ratio.
// Multi-fault scenarios across *different* timestamps still arise the way
// Algorithm 1 creates them: bug-free runs re-enqueue their transitions with
// the accumulated plan. The Fig. 5 bench runs `full_powerset_batches`, which
// reproduces the printed algorithm's order exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/canonical.h"
#include "core/strategy.h"
#include "sensors/sensor_models.h"

namespace avis::core {

struct SabreConfig {
  bool symmetry_pruning = true;
  bool found_bug_pruning = true;
  int max_set_size = 2;                 // largest failure set added at one timestamp
  sim::SimTimeMs offset_step_ms = 200;  // Algorithm 1's "timestamp + 1" granularity
  int max_offsets = 12;                 // crawl depth per direction per transition
  int pair_interleave = 3;              // primary batches per multi-failure batch
  int pair_chunk = 10;                  // scenarios per multi-failure batch (covers a
                                        // full singleton stratum on an augmented base)
  int augmented_interleave = 2;         // primary waves between augmented-frontier waves:
                                        // chains surface within tens of simulations while
                                        // the seeded-transition breadth pass still
                                        // completes within the 2 h budget
  bool full_powerset_batches = false;   // Fig. 5 mode: whole power set per dequeue
  int max_plan_events = 3;              // total concurrent failures per plan

  // Injection-window restriction (FaultPlanConstraints): scenarios are only
  // emitted at timestamps t >= window_start_ms and (when window_end_ms > 0)
  // t <= window_end_ms. The queue still crawls through out-of-window
  // timestamps — an offset walk may re-enter the window — it just emits
  // nothing there. Defaults leave the schedule untouched.
  sim::SimTimeMs window_start_ms = 0;
  sim::SimTimeMs window_end_ms = 0;  // 0 = unbounded

  // Sensor types the scheduler may fail, bit i = sensors::SensorType i
  // (core::fault_type_mask builds this from constraint names). Failure sets
  // containing a disallowed type are excluded from the enumeration — not
  // counted as pruned, they were never part of the search space.
  std::uint32_t allowed_type_mask = 0xffffffffu;
};

class SabreScheduler final : public InjectionStrategy {
 public:
  SabreScheduler(sensors::SuiteConfig suite, std::vector<ModeTransition> golden_transitions,
                 SabreConfig config = {});

  std::optional<FaultPlan> next(BudgetClock& budget) override;
  // Hands out plans from the current expansion wave only: scenarios inside
  // one wave were emitted together and are independent, while the next wave
  // may depend on this wave's feedback (found-bug pruning, augmented
  // frontier). Stopping at the wave boundary keeps a parallel checker's
  // plan sequence identical to serial execution.
  std::vector<FaultPlan> next_batch(BudgetClock& budget, int max_plans) override;
  void feedback(const FaultPlan& plan, const ExperimentResult& result) override;
  // Checkpoint-tree recording contract: the augmented frontier extends
  // bug-free plans by one event at a time, and feedback() caps the lane at
  // plan.size() >= 2, so only size-1 plans ever grow — recording singleton
  // runs captures every possible parent.
  int chain_extension_limit() const override { return 1; }
  const char* name() const override { return "Avis (SABRE)"; }

  // Statistics for the ablation benches.
  int pruned_by_symmetry() const { return pruned_symmetry_; }
  int pruned_by_found_bug() const { return pruned_found_bug_; }
  int pruned_as_duplicate() const { return pruned_duplicate_; }

 private:
  struct QueueEntry {
    sim::SimTimeMs timestamp = 0;
    FaultPlan base;   // injectedFailures accumulated from earlier runs
    int direction = 0;  // 0 = seed, +1/-1 = crawl direction from a transition
    int offset_k = 0;   // how many steps from the transition
  };
  struct PairEntry {
    sim::SimTimeMs timestamp = 0;
    FaultPlan base;
    int size = 2;
    std::size_t cursor = 0;  // continuation point into the canonical set list
  };

  void p_expand_primary(const QueueEntry& entry);
  void p_expand_pairs(PairEntry entry);
  bool p_in_window(sim::SimTimeMs timestamp) const {
    return timestamp >= config_.window_start_ms &&
           (config_.window_end_ms <= 0 || timestamp <= config_.window_end_ms);
  }
  bool p_set_allowed(const std::vector<sensors::SensorId>& set) const {
    for (const auto& id : set) {
      if ((config_.allowed_type_mask &
           (std::uint32_t{1} << static_cast<unsigned>(id.type))) == 0) {
        return false;
      }
    }
    return true;
  }
  std::optional<FaultPlan> p_pop_batch();
  void p_emit(sim::SimTimeMs timestamp, const FaultPlan& base,
              const std::vector<sensors::SensorId>& set);
  bool p_can_prune(sim::SimTimeMs timestamp, const std::vector<sensors::SensorId>& set,
                   const FaultPlan& base);

  sensors::SuiteConfig suite_;
  SabreConfig config_;
  std::deque<QueueEntry> queue_;       // singleton stratum (transitions + crawls)
  // High-priority lane for a bug-free run's post-injection transitions
  // (Algorithm 1 lines 11-14): serviced ahead of `queue_` at the
  // `augmented_interleave` rate so multi-fault chains are reached early
  // without starving the seeded breadth pass.
  std::deque<QueueEntry> augmented_queue_;
  std::deque<PairEntry> pair_queue_;   // same-timestamp multi-failure stratum
  std::deque<FaultPlan> batch_;
  int batches_since_pairs_ = 0;
  int primary_since_augmented_ = 0;

  struct Pending {
    sim::SimTimeMs timestamp = 0;
    std::string role_sig;  // role signature of the set added at `timestamp`
  };
  // In-flight plans, keyed by exact plan signature: feedback() and
  // proposal-time pruning look plans up by identity, and `explored_` blocks
  // re-emission, so signatures are unique while a plan is in flight.
  std::unordered_map<std::string, Pending> pending_;

  bool p_superset_of_seen_bug(sim::SimTimeMs timestamp, const std::string& sig) const;

  std::unordered_set<std::string> explored_;
  std::set<std::pair<sim::SimTimeMs, std::string>> seen_bugs_;

  int pruned_symmetry_ = 0;
  int pruned_found_bug_ = 0;
  int pruned_duplicate_ = 0;
};

// Role signature of a concrete failure set (no timestamps).
std::string role_signature_of_set(const std::vector<sensors::SensorId>& set);

// Non-empty ';'-separated tokens of a (role or plan) signature.
std::vector<std::string> signature_tokens(const std::string& sig);

// True when every token of `subset_sig` appears in `superset_sig`,
// compared token-exactly (a substring match would conflate tokens that are
// suffixes of one another). Found-bug pruning uses this to test whether a
// candidate set contains a set that already triggered a bug; the token-set
// overload lets a caller testing many subsets tokenize the superset once.
bool role_signature_subset(const std::string& subset_sig, const std::string& superset_sig);
bool role_signature_subset(const std::string& subset_sig,
                           const std::unordered_set<std::string>& superset_tokens);

}  // namespace avis::core
