#include "core/harness.h"

#include "util/checked.h"
#include "util/log.h"
#include "util/rng.h"

namespace avis::core {

ExperimentResult SimulationHarness::run(const ExperimentSpec& spec,
                                        const MonitorModel* monitor_model,
                                        ExperimentContext* context,
                                        const CheckpointStore* checkpoints) const {
  ScheduledDirector director(spec.plan);
  return p_run(spec, director, monitor_model, context, checkpoints, nullptr);
}

ExperimentResult SimulationHarness::run_with_director(const ExperimentSpec& spec,
                                                      hinj::FaultDirector& custom_director,
                                                      const MonitorModel* monitor_model,
                                                      ExperimentContext* context) const {
  return p_run(spec, custom_director, monitor_model, context, nullptr, nullptr);
}

CheckpointStore SimulationHarness::record_prefix(const ExperimentSpec& spec,
                                                 const MonitorModel* monitor_model,
                                                 const CheckpointConfig& config,
                                                 ExperimentContext* context) const {
  util::expects(config.interval_ms > 0, "checkpoint cadence must be positive");
  CheckpointStore store(config);
  ExperimentSpec prefix_spec = spec;
  prefix_spec.plan = FaultPlan{};
  store.begin(prefix_spec, monitor_model != nullptr);
  ScheduledDirector director(prefix_spec.plan);
  const ExperimentResult prefix =
      p_run(prefix_spec, director, monitor_model, context, nullptr, &store);
  store.finish(prefix);
  return store;
}

ExperimentResult SimulationHarness::run_recording(const ExperimentSpec& spec,
                                                  const MonitorModel* monitor_model,
                                                  ExperimentContext* context,
                                                  CheckpointStore& store) const {
  ScheduledDirector director(spec.plan);
  TreeCapture capture = plan_tree_capture(spec, store.config());
  ExperimentResult result =
      p_run(spec, director, monitor_model, context, &store, nullptr, &capture);
  // An unsafe run's snapshots can never be restored (strategies only extend
  // bug-free chains), so merging them would only burn budget.
  if (!result.unsafe()) {
    store.merge_run(spec.plan, std::move(capture.snapshots),
                    std::vector<StateSample>(result.trace),
                    std::vector<ModeTransition>(result.transitions));
  }
  return result;
}

ExperimentResult SimulationHarness::p_run(const ExperimentSpec& spec,
                                          hinj::FaultDirector& custom_director,
                                          const MonitorModel* monitor_model,
                                          ExperimentContext* context,
                                          const CheckpointStore* restore_from,
                                          CheckpointStore* capture_into,
                                          TreeCapture* tree_capture) const {
  // Without a caller-supplied arena, provision into a one-shot local one —
  // same code path, same construction order, the storage just dies with the
  // run. The reset protocol below must mirror from-scratch construction
  // exactly (same seed draws in the same order, same boot traffic) so that
  // a run is a pure function of its spec either way.
  ExperimentContext local_context;
  ExperimentWorld& world = (context != nullptr ? *context : local_context).world();

  // Checkpoint forking: a run whose plan matches a recorded (possibly
  // faulty) prefix up to time t is identical to that recording up to (the
  // top of) iteration t, so restoring the deepest usable snapshot — tree
  // first, fault-free root as fallback — skips the re-simulation of the
  // shared prefix without changing a single observable bit
  // (docs/PERFORMANCE.md).
  CheckpointResume resume;
  if (restore_from != nullptr && restore_from->has_restore_points()) {
    restore_from->require_matches(spec, monitor_model != nullptr);
    resume = restore_from->resolve(spec.plan);
  }

  RecordingDirector director(custom_director);
  RunState rs = p_provision(spec, director, monitor_model, world, resume);
  p_loop(spec, world, director, rs, capture_into, tree_capture);
  return p_finalize(spec, world, director, rs);
}

RunState SimulationHarness::p_provision(const ExperimentSpec& spec,
                                        RecordingDirector& director,
                                        const MonitorModel* monitor_model,
                                        ExperimentWorld& world,
                                        const CheckpointResume& resume) const {
  const bool restoring = static_cast<bool>(resume);
  util::expects(!restoring || (resume.trace != nullptr && resume.transitions != nullptr),
                "a resume snapshot must come with its recording");

  // Provisioning is one code path for cold and restored runs — identical
  // wiring, identical construction order — with the restore pass loading
  // each layer's snapshot state over the top. Keeping a single path is what
  // protects the bit-identical parity contract when provisioning changes.
  util::Rng seed_source(spec.seed);

  // Simulator: re-emplace in place. The environment is rebuilt from the
  // spec's factory (the default is the flat calm field), so two runs of the
  // same spec fly the same world; preset factories carry no per-run state.
  // A restored run's RNG stream position is loaded below, so the
  // construction seed only matters cold.
  world.simulator.emplace(spec.environment_factory ? spec.environment_factory()
                                                   : sim::Environment{},
                          sim::QuadcopterParams{}, seed_source.next_u64());

  // Sensor suite: the expensive one (12 heap-allocated instances). Reset
  // re-seeds the existing instances with the same fork sequence the
  // constructor would draw; a restored run loads full instance state
  // instead, so the reset would be wasted work.
  util::Rng sensor_seeds = seed_source.fork(1);
  if (!world.suite) {
    world.suite.emplace(iris_suite(), sensor_seeds);
  } else if (!restoring) {
    world.suite->reset(iris_suite(), sensor_seeds);
  }

  // Cold runs record from the first (boot) report; a restored run parks the
  // server while the firmware re-boots, because the boot-mode report
  // already lives in the spliced transition prefix and must not be
  // recorded a second time.
  hinj::FaultDirector& boot_director =
      restoring ? static_cast<hinj::FaultDirector&>(world.parked_director) : director;
  if (world.server) {
    world.server->set_director(boot_director);
  } else {
    world.server.emplace(boot_director);
  }
  // The client persists across runs: it is stateless between frames but
  // owns the warmed-up request/response buffers.
  if (!world.client) world.client.emplace(*world.server);

  world.channel.reset_link();
  if (!world.bus) world.bus.emplace(*world.suite, *world.client);

  fw::FirmwareConfig fw_config = spec.personality == fw::Personality::kArduPilotLike
                                     ? fw::FirmwareConfig::ardupilot()
                                     : fw::FirmwareConfig::px4();
  fw_config.bugs = spec.bugs;
  // Firmware state is rebuilt per run (its constructor reports the boot
  // mode through hinj, which must land after the director swap above);
  // emplacing into retained storage keeps the object off the heap.
  world.firmware.emplace(std::move(fw_config), *world.bus, *world.client,
                         world.channel.vehicle(), world.simulator->environment());

  if (restoring) {
    const ExperimentSnapshot& snap = *resume.snapshot;
    world.simulator->load(snap.simulator);
    world.suite->load(snap.suite);
    world.firmware->load(snap.firmware);
    // Link state after the firmware re-boot (construction sends nothing
    // over MAVLink today; the ordering keeps that a non-assumption).
    world.channel.load(snap.channel);
    // Now swap in the recording director, preloaded with the recording's
    // transitions up to the snapshot (for a tree snapshot that recording
    // already includes the ancestor chain's post-injection transitions).
    const auto& recorded_transitions = *resume.transitions;
    director.restore(std::vector<ModeTransition>(
                         recorded_transitions.begin(),
                         recorded_transitions.begin() +
                             static_cast<std::ptrdiff_t>(snap.transitions_len)),
                     snap.current_mode, snap.last_heartbeat_ms);
    world.server->set_director(director);
  }

  RunState rs;
  rs.workload =
      spec.workload_factory ? spec.workload_factory() : workload::make_workload(spec.workload);
  util::expects(rs.workload != nullptr, "unknown workload id");
  rs.gcs.emplace(world.channel.gcs(), world.simulator->environment().frame());
  if (restoring) {
    rs.workload->load(resume.snapshot->workload);
    rs.gcs->load(resume.snapshot->gcs);
  }

  if (monitor_model != nullptr) {
    if (!world.monitor) {
      world.monitor.emplace(*monitor_model);
    }
    if (restoring) {
      world.monitor->restore(*monitor_model, *resume.trace, resume.snapshot->monitor);
    } else {
      world.monitor->restart(*monitor_model);
    }
    rs.monitor = &*world.monitor;
  }

  rs.result.trace.reserve(static_cast<std::size_t>(spec.max_duration_ms / kSamplePeriodMs) + 1);

  if (restoring) {
    // Splice the recorded prefix into the result and resume the loop state
    // exactly where the snapshot froze it.
    const ExperimentSnapshot& snap = *resume.snapshot;
    const auto& recorded_trace = *resume.trace;
    rs.result.trace.assign(recorded_trace.begin(),
                           recorded_trace.begin() + static_cast<std::ptrdiff_t>(snap.trace_len));
    rs.result.workload_passed = snap.workload_passed;
    rs.result.violation = snap.violation;
    rs.result.resumed_from_ms = snap.time_ms;
    rs.result.resumed_depth = resume.depth;
    rs.firmware_dead = snap.firmware_dead;
    rs.workload_done_at = snap.workload_done_at;
    rs.next_workload_ms = snap.next_workload_ms;
    rs.next_sample_ms = snap.next_sample_ms;
    rs.start_ms = snap.time_ms;
  }
  return rs;
}

void SimulationHarness::p_loop(const ExperimentSpec& spec, ExperimentWorld& world,
                               RecordingDirector& director, RunState& rs,
                               CheckpointStore* capture_into,
                               TreeCapture* tree_capture) const {
  sim::Simulator& simulator = *world.simulator;
  fw::Firmware& firmware = *world.firmware;
  workload::Workload& workload = *rs.workload;
  workload::GcsContext& gcs = *rs.gcs;
  MonitorSession* monitor = rs.monitor;
  ExperimentResult& result = rs.result;

  // Capture schedule (prefix run only): the cadence grid merged with the
  // config's exact extra times (golden transition timestamps), ascending
  // and deduplicated. Time 0 is excluded — a snapshot there is just a cold
  // start.
  std::vector<sim::SimTimeMs> capture_times;
  std::size_t capture_idx = 0;
  if (capture_into != nullptr) {
    const CheckpointConfig& config = capture_into->config();
    for (sim::SimTimeMs t = config.interval_ms; t < spec.max_duration_ms;
         t += config.interval_ms) {
      capture_times.push_back(t);
    }
    for (sim::SimTimeMs t : config.capture_at) {
      if (t > 0 && t < spec.max_duration_ms) capture_times.push_back(t);
    }
    std::sort(capture_times.begin(), capture_times.end());
    capture_times.erase(std::unique(capture_times.begin(), capture_times.end()),
                        capture_times.end());
  }

  // Tree capture schedule (directed run, checkpoint trees on): planned by
  // plan_tree_capture. A restored run starts past some of the planned
  // times; those snapshots already exist (or were evicted) — skip them.
  std::size_t tree_idx = 0;
  if (tree_capture != nullptr) {
    while (tree_idx < tree_capture->times.size() &&
           tree_capture->times[tree_idx] < rs.start_ms) {
      ++tree_idx;
    }
  }

  // One snapshot assembly for both capture paths: the state saved at the
  // top of iteration `now` must be identical whether it lands in the root
  // store or a tree recording.
  const auto assemble_snapshot = [&](sim::SimTimeMs now) {
    ExperimentSnapshot snap;
    snap.time_ms = now;
    snap.simulator = simulator.save();
    snap.suite = world.suite->save();
    snap.firmware = firmware.save();
    snap.channel = world.channel.save();
    snap.workload = workload.save();
    snap.gcs = gcs.save();
    if (monitor != nullptr) snap.monitor = monitor->save();
    snap.transitions_len = director.transitions().size();
    snap.current_mode = director.current_mode();
    snap.last_heartbeat_ms = director.last_heartbeat_ms();
    snap.next_workload_ms = rs.next_workload_ms;
    snap.next_sample_ms = rs.next_sample_ms;
    snap.workload_done_at = rs.workload_done_at;
    snap.workload_passed = result.workload_passed;
    snap.firmware_dead = rs.firmware_dead;
    snap.trace_len = result.trace.size();
    snap.violation = result.violation;
    return snap;
  };

  for (sim::SimTimeMs now = rs.start_ms; now < spec.max_duration_ms; ++now) {
    // Checkpoint capture, at the top of the iteration so a restored run
    // re-enters the loop at exactly this point.
    if (capture_idx < capture_times.size() && now == capture_times[capture_idx]) {
      ++capture_idx;
      capture_into->add(assemble_snapshot(now));
    }

    // Tree capture, same top-of-iteration point. Stop once the recording
    // horizon is reached: SABRE schedules children only at the first
    // `transition_horizon` transitions after the first injection, so
    // snapshots past that point can never be restored. The horizon check
    // runs before the capture — a transition at exactly `now` is not yet
    // recorded at the top of the iteration, so the snapshot a child
    // injecting at `now` needs is still captured.
    if (tree_capture != nullptr && !tree_capture->done &&
        tree_idx < tree_capture->times.size() && now == tree_capture->times[tree_idx]) {
      ++tree_idx;
      int post_injection = 0;
      for (auto it = director.transitions().rbegin(); it != director.transitions().rend();
           ++it) {
        if (it->time_ms <= tree_capture->first_injection) break;
        ++post_injection;
      }
      if (post_injection >= tree_capture->transition_horizon) {
        tree_capture->done = true;
      } else {
        tree_capture->snapshots.push_back(assemble_snapshot(now));
      }
    }

    // Step 1: the workload runs until it yields back to the harness.
    const bool workload_due = now == rs.next_workload_ms;
    if (workload_due) rs.next_workload_ms += kWorkloadPeriodMs;
    if (workload_due && !rs.firmware_dead) {
      gcs.pump(now);
      const workload::WorkloadStatus ws = workload.step(gcs);
      if (ws != workload::WorkloadStatus::kRunning && rs.workload_done_at < 0) {
        rs.workload_done_at = now;
        result.workload_passed = ws == workload::WorkloadStatus::kPassed;
      }
    }

    // Steps 3-5: firmware reads (instrumented) sensors and commands motors.
    sim::MotorCommands motors;
    if (!rs.firmware_dead) {
      try {
        motors = firmware.step(now, simulator.state());
      } catch (const util::InvariantError& err) {
        rs.firmware_dead = true;
        util::log_warn() << "firmware aborted: " << err.what();
      }
    }

    // Steps 2 & 6: the simulator advances the physical world.
    simulator.step(motors);

    if (step_hook_) step_hook_(simulator.now_ms(), simulator.state(), firmware);

    // Sample the state tuple at the monitor rate.
    if (now == rs.next_sample_ms) {
      rs.next_sample_ms += kSamplePeriodMs;
      StateSample sample;
      sample.time_ms = now;
      sample.position = simulator.state().position;
      sample.acceleration = simulator.state().acceleration;
      sample.mode_id = firmware.composite_mode().id();
      sample.on_ground = simulator.state().on_ground;
      sample.armed = firmware.armed();
      result.trace.push_back(sample);

      if (monitor != nullptr) {
        const bool workload_failed =
            rs.workload_done_at >= 0 && workload.status() == workload::WorkloadStatus::kFailed;
        const auto violation =
            monitor->on_sample(sample, simulator.state().crashed, simulator.last_crash(),
                               rs.firmware_dead, workload_failed);
        if (violation && !result.violation) {
          result.violation = violation;
          if (spec.stop_on_violation) {
            result.duration_ms = now + 1;
            break;
          }
        }
      }
    }

    // End conditions: workload finished (plus grace), or vehicle crashed and
    // the wreck has been recorded for a little while.
    if (rs.workload_done_at >= 0 && now - rs.workload_done_at >= kGraceMs) {
      result.duration_ms = now + 1;
      break;
    }
    if (simulator.state().crashed && rs.workload_done_at < 0) {
      rs.workload_done_at = now;  // nothing more will happen; start grace
      result.workload_passed = false;
    }
  }
}

ExperimentResult SimulationHarness::p_finalize(const ExperimentSpec& spec,
                                               ExperimentWorld& world,
                                               RecordingDirector& director, RunState& rs) const {
  ExperimentResult result = std::move(rs.result);
  if (result.duration_ms == 0) result.duration_ms = spec.max_duration_ms;
  result.transitions = director.take_transitions();
  result.fired_bugs = world.firmware->fired_bugs();
  result.crash_cause = world.simulator->last_crash();
  // The run's RecordingDirector is about to leave scope; park the retained
  // server on the world's inert director so a pooled arena never dangles.
  world.server->set_director(world.parked_director);
  return result;
}

MonitorModel SimulationHarness::profile(const ExperimentSpec& prototype, int runs,
                                        std::uint64_t seed_base,
                                        ExperimentContext* context) const {
  std::vector<ExperimentResult> profiling;
  for (int i = 0; i < runs; ++i) {
    ExperimentSpec spec = prototype;
    spec.plan = FaultPlan{};
    spec.seed = seed_base + static_cast<std::uint64_t>(i);
    profiling.push_back(run(spec, nullptr, context));
    util::expects(profiling.back().workload_passed,
                  "profiling run did not complete its workload");
  }
  return MonitorModel::calibrate(std::move(profiling));
}

MonitorModel SimulationHarness::profile(fw::Personality personality,
                                        workload::WorkloadId workload,
                                        const fw::BugRegistry& bugs, int runs,
                                        std::uint64_t seed_base,
                                        ExperimentContext* context) const {
  ExperimentSpec prototype;
  prototype.personality = personality;
  prototype.workload = workload;
  prototype.bugs = bugs;
  return profile(prototype, runs, seed_base, context);
}

}  // namespace avis::core
