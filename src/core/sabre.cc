#include "core/sabre.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "util/log.h"

namespace avis::core {

std::string role_signature_of_set(const std::vector<sensors::SensorId>& set) {
  std::map<sensors::SensorType, std::pair<bool, int>> roles;
  for (const auto& id : set) {
    auto& slot = roles[id.type];
    if (id.role() == sensors::SensorRole::kPrimary) {
      slot.first = true;
    } else {
      slot.second += 1;
    }
  }
  std::ostringstream os;
  for (const auto& [type, value] : roles) {
    os << static_cast<int>(type) << ":" << (value.first ? "P" : "-") << value.second << ";";
  }
  return os.str();
}

SabreScheduler::SabreScheduler(sensors::SuiteConfig suite,
                               std::vector<ModeTransition> golden_transitions,
                               SabreConfig config)
    : suite_(suite), config_(config) {
  // Line 1: seed the queue with the profiling run's mode transitions.
  for (const auto& t : golden_transitions) {
    queue_.push_back(QueueEntry{t.time_ms, FaultPlan{}, 0, 0});
  }
}

std::vector<std::string> signature_tokens(const std::string& sig) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < sig.size()) {
    std::size_t end = sig.find(';', start);
    if (end == std::string::npos) end = sig.size();
    if (end > start) tokens.push_back(sig.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool role_signature_subset(const std::string& subset_sig,
                           const std::unordered_set<std::string>& superset_tokens) {
  // Token-exact comparison: a raw substring search would false-positive when
  // one token is a suffix of another (e.g. "1:P2" inside "11:P2").
  for (const auto& token : signature_tokens(subset_sig)) {
    if (!superset_tokens.contains(token)) return false;
  }
  return true;
}

bool role_signature_subset(const std::string& subset_sig, const std::string& superset_sig) {
  const std::vector<std::string> super_tokens = signature_tokens(superset_sig);
  return role_signature_subset(
      subset_sig, std::unordered_set<std::string>(super_tokens.begin(), super_tokens.end()));
}

bool SabreScheduler::p_superset_of_seen_bug(sim::SimTimeMs timestamp,
                                            const std::string& sig) const {
  // The candidate's token set is loop-invariant; build it once and test
  // every same-timestamp bug signature against it.
  std::optional<std::unordered_set<std::string>> sig_tokens;
  for (const auto& [bug_time, bug_sig] : seen_bugs_) {
    if (bug_time != timestamp) continue;
    if (!sig_tokens) {
      const std::vector<std::string> tokens = signature_tokens(sig);
      sig_tokens.emplace(tokens.begin(), tokens.end());
    }
    if (role_signature_subset(bug_sig, *sig_tokens)) return true;
  }
  return false;
}

bool SabreScheduler::p_can_prune(sim::SimTimeMs timestamp,
                                 const std::vector<sensors::SensorId>& set,
                                 const FaultPlan& base) {
  // Found-bug pruning: skip supersets of a set that already triggered a bug
  // at this timestamp.
  if (config_.found_bug_pruning &&
      p_superset_of_seen_bug(timestamp, role_signature_of_set(set))) {
    ++pruned_found_bug_;
    return true;
  }

  // Duplicate elimination (§V-B-2): never simulate a scenario whose
  // (instance- or role-level) signature has been run before.
  FaultPlan candidate = base;
  for (const auto& id : set) candidate.add(timestamp, id);
  const std::string sig =
      config_.symmetry_pruning ? candidate.role_signature() : candidate.signature();
  if (explored_.contains(sig)) {
    ++pruned_duplicate_;
    return true;
  }
  return false;
}

void SabreScheduler::p_emit(sim::SimTimeMs timestamp, const FaultPlan& base,
                            const std::vector<sensors::SensorId>& set) {
  FaultPlan plan = base;
  for (const auto& id : set) plan.add(timestamp, id);
  std::string exact_sig = plan.signature();
  explored_.insert(config_.symmetry_pruning ? plan.role_signature() : exact_sig);
  batch_.push_back(plan);
  pending_.emplace(std::move(exact_sig), Pending{timestamp, role_signature_of_set(set)});
}

void SabreScheduler::p_expand_primary(const QueueEntry& entry) {
  // Out-of-window timestamps emit nothing but still crawl (below): an offset
  // walk that started outside the constraint window may step into it.
  if (entry.timestamp >= 0 && p_in_window(entry.timestamp)) {
    if (config_.full_powerset_batches) {
      // Fig. 5 / Algorithm-1-as-printed mode: the whole power set at this
      // timestamp, in size order.
      for (int size = 1; size <= config_.max_plan_events; ++size) {
        if (static_cast<int>(entry.base.size()) + size > config_.max_plan_events) break;
        const auto sets = config_.symmetry_pruning ? canonical_sets_of_size(suite_, size)
                                                   : all_instance_sets_of_size(suite_, size);
        for (const auto& set : sets) {
          if (!p_set_allowed(set)) continue;
          if (!p_can_prune(entry.timestamp, set, entry.base)) {
            p_emit(entry.timestamp, entry.base, set);
          }
        }
      }
    } else {
      // Singleton stratum at this timestamp; larger sets go to the
      // secondary queue.
      const auto sets = config_.symmetry_pruning ? canonical_sets_of_size(suite_, 1)
                                                 : all_instance_sets_of_size(suite_, 1);
      for (const auto& set : sets) {
        if (!p_set_allowed(set)) continue;
        if (!p_can_prune(entry.timestamp, set, entry.base)) {
          p_emit(entry.timestamp, entry.base, set);
        }
      }
      if (config_.max_set_size >= 2 &&
          static_cast<int>(entry.base.size()) + 2 <= config_.max_plan_events) {
        pair_queue_.push_back(PairEntry{entry.timestamp, entry.base, 2, 0});
      }
    }
  }

  // Line 20: crawl the transition's neighbourhood (both directions — the
  // critical window straddles the transition).
  if (config_.full_powerset_batches) {
    if (entry.offset_k < config_.max_offsets) {
      queue_.push_back(QueueEntry{entry.timestamp + config_.offset_step_ms, entry.base, +1,
                                  entry.offset_k + 1});
    }
    return;
  }
  if (entry.direction == 0) {
    queue_.push_back(
        QueueEntry{entry.timestamp + config_.offset_step_ms, entry.base, +1, 1});
    if (entry.timestamp - config_.offset_step_ms >= 0) {
      queue_.push_back(
          QueueEntry{entry.timestamp - config_.offset_step_ms, entry.base, -1, 1});
    }
  } else if (entry.offset_k < config_.max_offsets) {
    const sim::SimTimeMs next_t =
        entry.timestamp + entry.direction * config_.offset_step_ms;
    if (next_t >= 0) {
      queue_.push_back(QueueEntry{next_t, entry.base, entry.direction, entry.offset_k + 1});
    }
  }
}

void SabreScheduler::p_expand_pairs(PairEntry entry) {
  if (static_cast<int>(entry.base.size()) + entry.size > config_.max_plan_events) return;
  const auto sets = config_.symmetry_pruning
                        ? canonical_sets_of_size(suite_, entry.size)
                        : all_instance_sets_of_size(suite_, entry.size);
  int emitted = 0;
  while (entry.cursor < sets.size() && emitted < config_.pair_chunk) {
    const auto& set = sets[entry.cursor++];
    if (!p_set_allowed(set)) continue;
    if (!p_can_prune(entry.timestamp, set, entry.base)) {
      p_emit(entry.timestamp, entry.base, set);
      ++emitted;
    }
  }
  if (entry.cursor < sets.size()) {
    pair_queue_.push_back(entry);  // continuation
  } else if (entry.size < config_.max_set_size &&
             static_cast<int>(entry.base.size()) + entry.size + 1 <=
                 config_.max_plan_events) {
    pair_queue_.push_back(PairEntry{entry.timestamp, entry.base, entry.size + 1, 0});
  }
}

std::optional<FaultPlan> SabreScheduler::p_pop_batch() {
  // Re-check found-bug pruning at proposal time: a bug found since this
  // batch was built (Algorithm 1 evaluates CanPrune per scenario) may have
  // made queued supersets redundant. Never expands: a nullopt return means
  // the current wave is spent (drained or pruned away).
  while (!batch_.empty()) {
    FaultPlan plan = batch_.front();
    batch_.pop_front();
    const auto pending_it = pending_.find(plan.signature());
    if (config_.found_bug_pruning && pending_it != pending_.end() &&
        p_superset_of_seen_bug(pending_it->second.timestamp, pending_it->second.role_sig)) {
      ++pruned_found_bug_;
      pending_.erase(pending_it);
      continue;
    }
    return plan;
  }
  return std::nullopt;
}

std::optional<FaultPlan> SabreScheduler::next(BudgetClock& budget) {
  if (budget.exhausted()) return std::nullopt;
  for (;;) {
    while (batch_.empty() &&
           (!queue_.empty() || !augmented_queue_.empty() || !pair_queue_.empty())) {
      const bool primaries_empty = queue_.empty() && augmented_queue_.empty();
      const bool pairs_due = !pair_queue_.empty() &&
                             (primaries_empty || batches_since_pairs_ >= config_.pair_interleave);
      if (pairs_due) {
        batches_since_pairs_ = 0;
        PairEntry entry = pair_queue_.front();
        pair_queue_.pop_front();
        p_expand_pairs(std::move(entry));
        continue;
      }
      ++batches_since_pairs_;
      // The augmented lane outranks the primary queue, rate-limited so the
      // breadth pass over the seeded transitions still completes within the
      // paper's budget (see feedback()).
      const bool augmented_due =
          !augmented_queue_.empty() &&
          (queue_.empty() || primary_since_augmented_ >= config_.augmented_interleave);
      if (augmented_due) {
        primary_since_augmented_ = 0;
        const QueueEntry entry = augmented_queue_.front();
        augmented_queue_.pop_front();
        p_expand_primary(entry);
        // Plan-aware scheduling (checkpoint trees): a parent's follow-up
        // entries are adjacent in the lane and share its base plan, whose
        // recording both expansions would restore from. Expanding them into
        // the same wave groups the chain extensions together while the
        // parent recording is freshest; the entries are feedback-complete
        // (their shared parent already ran), so wave semantics are intact.
        while (!augmented_queue_.empty() &&
               augmented_queue_.front().base.signature() == entry.base.signature()) {
          const QueueEntry sibling = augmented_queue_.front();
          augmented_queue_.pop_front();
          p_expand_primary(sibling);
        }
      } else {
        ++primary_since_augmented_;
        const QueueEntry entry = queue_.front();
        queue_.pop_front();
        p_expand_primary(entry);
      }
    }
    if (batch_.empty()) return std::nullopt;
    if (auto plan = p_pop_batch()) return plan;
    // Wave drained by pruning: expand the next one.
  }
}

std::vector<FaultPlan> SabreScheduler::next_batch(BudgetClock& budget, int max_plans) {
  // Configurations where one wave can contain a set and its same-timestamp
  // superset (the whole power set per dequeue) or role-identical sets
  // (symmetry folding off) allow found-bug pruning to fire *within* a wave
  // in serial execution. Batching would skip that proposal-time prune and
  // break report parity, so those configurations serialize.
  if (config_.found_bug_pruning &&
      (config_.full_powerset_batches || !config_.symmetry_pruning)) {
    std::vector<FaultPlan> single;
    if (max_plans > 0) {
      if (auto plan = next(budget)) single.push_back(std::move(*plan));
    }
    return single;
  }
  std::vector<FaultPlan> plans;
  while (static_cast<int>(plans.size()) < max_plans) {
    if (plans.empty()) {
      // The batch's first plan may expand a fresh wave (the previous one
      // was fully consumed and fed back before this call).
      auto plan = next(budget);
      if (!plan) break;
      plans.push_back(std::move(*plan));
      continue;
    }
    // Subsequent plans come strictly from the current wave: p_pop_batch
    // never expands, so even if proposal-time pruning drains the wave the
    // batch ends here rather than crossing into a wave that must see this
    // batch's feedback first. SABRE charges nothing while proposing, so
    // the budget check at the first next() covers the whole batch.
    if (batch_.empty()) break;
    auto plan = p_pop_batch();
    if (!plan) break;
    plans.push_back(std::move(*plan));
  }
  return plans;
}

void SabreScheduler::feedback(const FaultPlan& plan, const ExperimentResult& result) {
  const auto it = pending_.find(plan.signature());
  if (it == pending_.end()) return;
  const Pending pending = it->second;
  pending_.erase(it);

  if (result.unsafe()) {
    // Line 17: remember the triggering (timestamp, set) for pruning.
    seen_bugs_.insert({pending.timestamp, pending.role_sig});
    return;
  }

  // Lines 11-14: a bug-free run contributes its own transitions, carrying
  // the accumulated failures. Only transitions after the newest injection
  // expose new program contexts (a failure already handled before a
  // transition re-creates the same state at it). These go to the queue
  // front so multi-fault chains (e.g. PX4-13291's GPS-then-battery) are
  // reached within the budget; the cap keeps the frontier from exploding.
  if (plan.size() >= 2) return;  // depth limit for the augmented frontier
  if (static_cast<int>(plan.size()) + 1 > config_.max_plan_events) return;
  // Queue-front priority: these enter the augmented lane, which next()
  // services ahead of the primary queue (at most `augmented_interleave`
  // primary waves between augmented waves), so multi-fault chains (e.g.
  // PX4-13291's GPS-then-battery) are proposed within tens of simulations
  // instead of after the whole initial frontier drains. Pushing them raw
  // onto the queue front would instead let the first transition's
  // follow-ups starve every later transition window within the paper's
  // budget — the interleave keeps the breadth pass alive. FIFO within the
  // lane: the ≤2 entries keep their transition order, and earlier runs'
  // follow-ups stay ahead of later ones. They run their singleton stratum
  // but do not crawl; the cap keeps the frontier from exploding.
  int enqueued = 0;
  for (const auto& t : result.transitions) {
    if (t.time_ms <= pending.timestamp) continue;
    if (enqueued >= 2) break;
    augmented_queue_.push_back(QueueEntry{t.time_ms, plan, +1, config_.max_offsets});
    ++enqueued;
  }
}

}  // namespace avis::core
