// 3-vector used for position, velocity, acceleration and angular quantities.
//
// The invariant monitor's state-distance metric (paper §IV-C) is built on
// Euclidean distances between these.
#pragma once

#include <cmath>
#include <ostream>

namespace avis::geo {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm_sq() const { return dot(*this); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  // Component-wise clamp to [-limit, limit].
  Vec3 clamped(double limit) const {
    auto c = [limit](double v) { return v > limit ? limit : (v < -limit ? -limit : v); };
    return {c(x), c(y), c(z)};
  }
};

inline Vec3 operator*(double s, const Vec3& v) { return v * s; }

// Euclidean distance d_e from the paper (§IV-C).
inline double euclidean_distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace avis::geo
