// Attitude representation and kinematics.
//
// The quadcopter model uses Z-Y-X (yaw-pitch-roll) Euler angles. A full
// quaternion implementation is unnecessary: the workloads never command
// attitudes near the pitch singularity, and Euler angles keep the firmware
// controllers (which are PID loops on roll/pitch/yaw errors, as in
// ArduPilot's AC_AttitudeControl) directly comparable to the real thing.
#pragma once

#include <cmath>

#include "geo/vec3.h"

namespace avis::geo {

inline constexpr double kPi = 3.14159265358979323846;

// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}

inline double deg_to_rad(double d) { return d * kPi / 180.0; }
inline double rad_to_deg(double r) { return r * 180.0 / kPi; }

struct Attitude {
  double roll = 0.0;   // rotation about body x, radians
  double pitch = 0.0;  // rotation about body y, radians
  double yaw = 0.0;    // rotation about body z (heading), radians

  constexpr bool operator==(const Attitude&) const = default;

  // Rotate a body-frame vector into the world (NED) frame.
  Vec3 body_to_world(const Vec3& v) const {
    const double cr = std::cos(roll), sr = std::sin(roll);
    const double cp = std::cos(pitch), sp = std::sin(pitch);
    const double cy = std::cos(yaw), sy = std::sin(yaw);
    return {
        v.x * (cy * cp) + v.y * (cy * sp * sr - sy * cr) + v.z * (cy * sp * cr + sy * sr),
        v.x * (sy * cp) + v.y * (sy * sp * sr + cy * cr) + v.z * (sy * sp * cr - cy * sr),
        v.x * (-sp) + v.y * (cp * sr) + v.z * (cp * cr),
    };
  }

  // Rotate a world-frame vector into the body frame (transpose of the above).
  Vec3 world_to_body(const Vec3& v) const {
    const double cr = std::cos(roll), sr = std::sin(roll);
    const double cp = std::cos(pitch), sp = std::sin(pitch);
    const double cy = std::cos(yaw), sy = std::sin(yaw);
    return {
        v.x * (cy * cp) + v.y * (sy * cp) + v.z * (-sp),
        v.x * (cy * sp * sr - sy * cr) + v.y * (sy * sp * sr + cy * cr) + v.z * (cp * sr),
        v.x * (cy * sp * cr + sy * sr) + v.y * (sy * sp * cr - cy * sr) + v.z * (cp * cr),
    };
  }

  // Integrate body angular rates over dt (small-angle Euler kinematics).
  void integrate_rates(const Vec3& body_rates, double dt) {
    const double cr = std::cos(roll), sr = std::sin(roll);
    const double cp = std::cos(pitch);
    const double tp = std::tan(pitch);
    roll = wrap_angle(roll + dt * (body_rates.x + sr * tp * body_rates.y + cr * tp * body_rates.z));
    pitch = wrap_angle(pitch + dt * (cr * body_rates.y - sr * body_rates.z));
    const double cp_safe = std::abs(cp) < 1e-6 ? 1e-6 : cp;
    yaw = wrap_angle(yaw + dt * ((sr / cp_safe) * body_rates.y + (cr / cp_safe) * body_rates.z));
  }

  // Total tilt away from level, radians.
  double tilt() const { return std::sqrt(roll * roll + pitch * pitch); }
};

}  // namespace avis::geo
