// Attitude representation and kinematics.
//
// The quadcopter model uses Z-Y-X (yaw-pitch-roll) Euler angles. A full
// quaternion implementation is unnecessary: the workloads never command
// attitudes near the pitch singularity, and Euler angles keep the firmware
// controllers (which are PID loops on roll/pitch/yaw errors, as in
// ArduPilot's AC_AttitudeControl) directly comparable to the real thing.
#pragma once

#include <cmath>
#include <limits>

#include "geo/vec3.h"

namespace avis::geo {

inline constexpr double kPi = 3.14159265358979323846;

// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}

inline double deg_to_rad(double d) { return d * kPi / 180.0; }
inline double rad_to_deg(double r) { return r * 180.0 / kPi; }

// Memoized sin/cos triples for Euler rotations. A 1 kHz step rotates several
// vectors through the same one or two attitudes — both accelerometer
// instances and the physics use the truth attitude, the estimator its own
// estimate — and in batched lockstep each lane contributes its own pair of
// streams. Reusing the six values sin/cos already returned for an identical
// (roll, pitch, yaw) is bit-identical to recomputing them; the cache only
// changes how often libm runs. One cache per thread; 8 slots cover the
// default batch width's truth+estimate streams.
struct AttitudeTrig {
  double roll, pitch, yaw;
  double sr, cr, sp, cp, sy, cy;
};

namespace detail {

struct TrigCache {
  static constexpr int kSlots = 8;
  AttitudeTrig slots[kSlots];
  int next = 0;  // round-robin victim
  int last = 0;  // most recent hit/insert, probed first

  TrigCache() {
    for (AttitudeTrig& s : slots) s.roll = s.pitch = s.yaw = std::numeric_limits<double>::quiet_NaN();
  }

  // nullptr on miss (lookup never inserts; integrate_rates mutates the
  // attitude right after, so inserting its operand would waste a slot).
  const AttitudeTrig* find(double roll, double pitch, double yaw) {
    for (int k = 0; k < kSlots; ++k) {
      const int i = (last + k) % kSlots;
      const AttitudeTrig& s = slots[i];
      if (s.roll == roll && s.pitch == pitch && s.yaw == yaw) {
        last = i;
        return &s;
      }
    }
    return nullptr;
  }

  const AttitudeTrig& insert(double roll, double pitch, double yaw) {
    AttitudeTrig& s = slots[next];
    last = next;
    next = (next + 1) % kSlots;
    s.roll = roll;
    s.pitch = pitch;
    s.yaw = yaw;
    s.sr = std::sin(roll);
    s.cr = std::cos(roll);
    s.sp = std::sin(pitch);
    s.cp = std::cos(pitch);
    s.sy = std::sin(yaw);
    s.cy = std::cos(yaw);
    return s;
  }
};

inline TrigCache& tls_trig_cache() {
  thread_local TrigCache cache;
  return cache;
}

inline const AttitudeTrig& attitude_trig(double roll, double pitch, double yaw) {
  TrigCache& cache = tls_trig_cache();
  if (const AttitudeTrig* hit = cache.find(roll, pitch, yaw)) return *hit;
  return cache.insert(roll, pitch, yaw);
}

// Lookup-only probe for callers about to mutate the attitude (inserting an
// operand that immediately dies would waste a slot).
inline const AttitudeTrig* trig_lookup(double roll, double pitch, double yaw) {
  return tls_trig_cache().find(roll, pitch, yaw);
}

}  // namespace detail

struct Attitude {
  double roll = 0.0;   // rotation about body x, radians
  double pitch = 0.0;  // rotation about body y, radians
  double yaw = 0.0;    // rotation about body z (heading), radians

  constexpr bool operator==(const Attitude&) const = default;

  // Rotate a body-frame vector into the world (NED) frame.
  Vec3 body_to_world(const Vec3& v) const {
    const AttitudeTrig& t = detail::attitude_trig(roll, pitch, yaw);
    const double cr = t.cr, sr = t.sr;
    const double cp = t.cp, sp = t.sp;
    const double cy = t.cy, sy = t.sy;
    return {
        v.x * (cy * cp) + v.y * (cy * sp * sr - sy * cr) + v.z * (cy * sp * cr + sy * sr),
        v.x * (sy * cp) + v.y * (sy * sp * sr + cy * cr) + v.z * (sy * sp * cr - cy * sr),
        v.x * (-sp) + v.y * (cp * sr) + v.z * (cp * cr),
    };
  }

  // Rotate a world-frame vector into the body frame (transpose of the above).
  Vec3 world_to_body(const Vec3& v) const {
    const AttitudeTrig& t = detail::attitude_trig(roll, pitch, yaw);
    const double cr = t.cr, sr = t.sr;
    const double cp = t.cp, sp = t.sp;
    const double cy = t.cy, sy = t.sy;
    return {
        v.x * (cy * cp) + v.y * (sy * cp) + v.z * (-sp),
        v.x * (cy * sp * sr - sy * cr) + v.y * (sy * sp * sr + cy * cr) + v.z * (cp * sr),
        v.x * (cy * sp * cr + sy * sr) + v.y * (sy * sp * cr - cy * sr) + v.z * (cp * cr),
    };
  }

  // Integrate body angular rates over dt (small-angle Euler kinematics).
  void integrate_rates(const Vec3& body_rates, double dt) {
    double cr, sr, cp;
    if (const AttitudeTrig* t = detail::trig_lookup(roll, pitch, yaw)) {
      cr = t->cr;
      sr = t->sr;
      cp = t->cp;
    } else {
      cr = std::cos(roll);
      sr = std::sin(roll);
      cp = std::cos(pitch);
    }
    const double tp = std::tan(pitch);
    roll = wrap_angle(roll + dt * (body_rates.x + sr * tp * body_rates.y + cr * tp * body_rates.z));
    pitch = wrap_angle(pitch + dt * (cr * body_rates.y - sr * body_rates.z));
    const double cp_safe = std::abs(cp) < 1e-6 ? 1e-6 : cp;
    yaw = wrap_angle(yaw + dt * ((sr / cp_safe) * body_rates.y + (cr / cp_safe) * body_rates.z));
  }

  // Total tilt away from level, radians.
  double tilt() const { return std::sqrt(roll * roll + pitch * pitch); }
};

}  // namespace avis::geo
