// Geodetic <-> local tangent-plane conversion.
//
// The MAVLink mission protocol carries waypoints as (latitude, longitude,
// altitude); the simulator and controllers work in a local NED frame whose
// origin is the home (launch) position. The flat-earth approximation is
// accurate to centimetres over the <100 m missions the workloads fly.
#pragma once

#include <cmath>

#include "geo/vec3.h"

namespace avis::geo {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;  // above mean sea level

  constexpr bool operator==(const GeoPoint&) const = default;
};

inline constexpr double kEarthRadiusM = 6371000.0;

// Local frame anchored at a home point. NED convention: x north, y east,
// z down (so z = -altitude-above-home).
class LocalFrame {
 public:
  LocalFrame() = default;
  explicit LocalFrame(const GeoPoint& home) : home_(home) {}

  const GeoPoint& home() const { return home_; }

  Vec3 to_local(const GeoPoint& p) const {
    const double lat0 = p_deg_to_rad(home_.latitude_deg);
    const double dlat = p_deg_to_rad(p.latitude_deg - home_.latitude_deg);
    const double dlon = p_deg_to_rad(p.longitude_deg - home_.longitude_deg);
    return {
        dlat * kEarthRadiusM,
        dlon * kEarthRadiusM * std::cos(lat0),
        -(p.altitude_m - home_.altitude_m),
    };
  }

  GeoPoint to_geodetic(const Vec3& local) const {
    const double lat0 = p_deg_to_rad(home_.latitude_deg);
    GeoPoint p;
    p.latitude_deg = home_.latitude_deg + p_rad_to_deg(local.x / kEarthRadiusM);
    p.longitude_deg =
        home_.longitude_deg + p_rad_to_deg(local.y / (kEarthRadiusM * std::cos(lat0)));
    p.altitude_m = home_.altitude_m - local.z;
    return p;
  }

 private:
  static double p_deg_to_rad(double d) { return d * 3.14159265358979323846 / 180.0; }
  static double p_rad_to_deg(double r) { return r * 180.0 / 3.14159265358979323846; }

  GeoPoint home_;
};

}  // namespace avis::geo
