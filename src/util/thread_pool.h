// Fixed-size worker pool for the parallel checker.
//
// Experiments are pure functions of their spec, so the checker can farm a
// batch of them out to workers and apply the results on its own thread.
// Tasks are submitted as callables and observed through std::future:
// exceptions thrown inside a task are captured and rethrown from get(), so
// a worker-side failure surfaces on the caller thread instead of aborting
// the process.
//
// Shutdown semantics: the destructor discards tasks that have not started
// (their futures report std::future_errc::broken_promise), lets tasks that
// are already running finish, and joins every worker. Destroying a pool
// with a full queue therefore never deadlocks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/checked.h"

namespace avis::util {

class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    expects(workers > 0, "thread pool needs at least one worker");
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this](std::stop_token stop) { p_run(stop); });
    }
  }

  ~ThreadPool() {
    {
      // Abandon unstarted tasks before waking the workers: dropping the
      // queued packaged_tasks breaks their promises, which is how a caller
      // blocked on get() learns the pool went away.
      std::lock_guard lock(mutex_);
      queue_.clear();
    }
    for (auto& worker : workers_) worker.request_stop();
    cv_.notify_all();
    // std::jthread destructors join.
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Enqueue a callable; the returned future yields its result (or rethrows
  // its exception).
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& fn) {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable targets and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.push_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void p_run(std::stop_token stop) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, stop, [this] { return !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested, nothing left to run
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();  // packaged_task captures exceptions into the future
    }
  }

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;  // last member: destroyed (joined) first
};

}  // namespace avis::util
