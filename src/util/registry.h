// String-keyed registries (ROADMAP: "as many scenarios as you can imagine").
//
// Every extensible axis of an experiment — workloads, injection approaches,
// firmware personalities, environment presets, bug populations — is a
// Registry<T>: an ordered list of {name, description, factory} entries
// looked up by exact string name. Scenario files and CLI flags refer to
// entries by name, so adding a scenario ingredient is one add() call in the
// owning registry builder, with no enum, switch, or parser to extend.
//
// Lookups that miss throw UnknownNameError whose message carries the full
// registered-name listing and a nearest-name suggestion, so every consumer
// (CLI, scenario loader, tests) rejects typos with the same actionable
// diagnostic. Registries are built once inside function-local statics and
// must not be mutated while a campaign is running.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace avis::util {

// A name that is not registered. The what() string already contains the
// "did you mean" suggestion and the registered-name listing.
class UnknownNameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Levenshtein distance; the suggestion machinery only runs on the error
// path, so the O(a*b) DP is irrelevant to any hot loop.
inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

// Closest registered name, or "" when nothing is close enough to be a
// plausible typo. A unique prefix match ("wind" -> "wind-gust-box") wins
// over edit distance.
inline std::string closest_name(std::string_view name, const std::vector<std::string>& names) {
  std::string prefix_hit;
  int prefix_hits = 0;
  for (const std::string& candidate : names) {
    if (!name.empty() && candidate.starts_with(name)) {
      prefix_hit = candidate;
      ++prefix_hits;
    }
  }
  if (prefix_hits == 1) return prefix_hit;

  const std::size_t threshold = name.size() <= 3 ? 1 : 2;
  std::size_t best_distance = threshold + 1;
  std::string best;
  for (const std::string& candidate : names) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

// "unknown workload: 'surveey'; did you mean 'survey'? registered workloads
// are: auto, box-manual, ..." — the one diagnostic every lookup miss
// produces.
inline std::string unknown_name_message(std::string_view what, std::string_view plural,
                                        std::string_view name,
                                        const std::vector<std::string>& names) {
  std::string message = "unknown ";
  message += what;
  message += ": '";
  message += name;
  message += "'";
  const std::string suggestion = closest_name(name, names);
  if (!suggestion.empty()) {
    message += "; did you mean '";
    message += suggestion;
    message += "'?";
  }
  message += " registered ";
  message += plural;
  message += " are: ";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) message += ", ";
    message += names[i];
  }
  return message;
}

inline std::string unknown_name_message(std::string_view what, std::string_view name,
                                        const std::vector<std::string>& names) {
  return unknown_name_message(what, std::string(what) + "s", name, names);
}

template <typename Factory>
class Registry {
 public:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  // `what` names the kind of thing registered ("workload", "approach") and
  // prefixes every lookup-miss diagnostic; `plural` defaults to `what` + "s"
  // for the kinds whose English needs no help.
  explicit Registry(std::string what, std::string plural = "")
      : what_(std::move(what)),
        plural_(plural.empty() ? what_ + "s" : std::move(plural)) {}

  Registry& add(std::string name, std::string description, Factory factory) {
    if (find(name) != nullptr) {
      throw std::logic_error("duplicate " + what_ + " registration: " + name);
    }
    entries_.push_back({std::move(name), std::move(description), std::move(factory)});
    return *this;
  }

  const Entry* find(std::string_view name) const {
    for (const Entry& entry : entries_) {
      if (entry.name == name) return &entry;
    }
    return nullptr;
  }

  const Entry& at(std::string_view name) const {
    const Entry* entry = find(name);
    if (entry == nullptr) {
      throw UnknownNameError(unknown_name_message(what_, plural_, name, names()));
    }
    return *entry;
  }

  bool contains(std::string_view name) const { return find(name) != nullptr; }

  // Registration order; this is the order listings and grids iterate in.
  std::vector<std::string> names() const {
    std::vector<std::string> result;
    result.reserve(entries_.size());
    for (const Entry& entry : entries_) result.push_back(entry.name);
    return result;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  const std::string& what() const { return what_; }
  const std::string& plural() const { return plural_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::string what_;
  std::string plural_;
  std::vector<Entry> entries_;
};

}  // namespace avis::util
