// Minimal leveled logger.
//
// The model checker runs thousands of simulations per bench; logging must be
// cheap when disabled. Messages are formatted only if the level is enabled.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace avis::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Process-wide log configuration. Tests lower the level to capture
// diagnostics; benches leave it at kWarn so timing is not polluted by I/O.
class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  // Redirect output (tests capture messages through this).
  void set_sink(std::function<void(LogLevel, std::string_view)> sink) {
    sink_ = std::move(sink);
  }

  void write(LogLevel level, std::string_view msg) {
    if (!enabled(level)) return;
    if (sink_) {
      sink_(level, msg);
    } else {
      std::cerr << "[" << name(level) << "] " << msg << "\n";
    }
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<void(LogLevel, std::string_view)> sink_;
};

// Streaming helper: LogLine(LogLevel::kInfo) << "x=" << x; emits on
// destruction. Formatting cost is avoided entirely when disabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(Logger::instance().enabled(level)) {}
  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

inline LogLine log_trace() { return LogLine(LogLevel::kTrace); }
inline LogLine log_debug() { return LogLine(LogLevel::kDebug); }
inline LogLine log_info() { return LogLine(LogLevel::kInfo); }
inline LogLine log_warn() { return LogLine(LogLevel::kWarn); }
inline LogLine log_error() { return LogLine(LogLevel::kError); }

}  // namespace avis::util
