// Deterministic pseudo-random number generation for simulation and search.
//
// Every stochastic component in this repository draws from an avis::util::Rng
// seeded from the experiment description, so that a simulation is a pure
// function of (firmware personality, workload, fault plan, seed). This is
// what makes the replayer (DESIGN.md §5) exact.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace avis::util {

// SplitMix64: tiny, fast, and statistically strong enough for sensor noise
// and randomized search. Chosen over std::mt19937_64 because its state is a
// single u64, which makes forking independent per-subsystem streams trivial
// and keeps experiment descriptions serializable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  // Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Marsaglia polar method.
  double next_gaussian() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  // Gaussian with the given standard deviation.
  double gaussian(double stddev) noexcept { return next_gaussian() * stddev; }

  // Bernoulli trial.
  bool chance(double p) noexcept { return next_double() < p; }

  // Derive an independent stream; used to give each subsystem (sensor noise,
  // scheduler tie-breaks, ...) its own RNG so that adding draws in one
  // subsystem does not perturb another.
  Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(next_u64() ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
  }

  // Mid-stream snapshot for experiment checkpointing. The cached Marsaglia
  // spare gaussian is part of the stream position: dropping it would shift
  // every draw after an odd number of next_gaussian() calls.
  struct State {
    std::uint64_t state = 0;
    bool has_spare = false;
    double spare = 0.0;
  };

  State save() const noexcept { return {state_, has_spare_, spare_}; }

  void load(const State& s) noexcept {
    state_ = s.state;
    has_spare_ = s.has_spare;
    spare_ = s.spare;
  }

 private:
  std::uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace avis::util
