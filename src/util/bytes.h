// Fixed-width little-endian byte encoding, shared by the hinj protocol and
// the MAVLink-like codec. Keeping real serialization boundaries between the
// firmware, the engine, and the ground-control station reproduces the
// process isolation of the paper's artifact while staying in-process.
//
// Both ends are built for reuse: a ByteWriter can be clear()ed between
// frames (retaining its capacity, so a steady-state encode touches no
// allocator), and a ByteReader reads from a std::span, so callers can decode
// straight out of a connection-owned buffer without copying.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace avis::util {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    if (s.size() > 0xffff) throw WireError("string too long");
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Drop the current frame but keep the capacity, so the next frame written
  // through this writer is allocation-free once the buffer has warmed up.
  void clear() { buf_.clear(); }

  // Grow the retained capacity up front (e.g. to a protocol's largest
  // fixed-size frame) so even the first frame avoids reallocation steps.
  void reserve(std::size_t n) { buf_.reserve(n); }

  bool empty() const { return buf_.empty(); }
  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> span() const { return {buf_.data(), buf_.size()}; }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  // Spans (and anything convertible to one, e.g. std::vector<uint8_t>) are
  // read in place — the reader never copies or owns the bytes.
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::uint8_t u8() {
    p_need(1);
    return buf_[pos_++];
  }

  std::uint16_t u16() {
    p_need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(buf_[pos_]) | (static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    p_need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    p_need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Zero-copy string read: a view over the underlying frame bytes, valid
  // only as long as the frame buffer is. Hot-path decoders (the hinj
  // server's ModeUpdate dispatch) consume the view before the connection
  // buffer is reused; anything that outlives the frame must copy.
  std::string_view str_view() {
    const std::uint16_t n = u16();
    p_need(n);
    std::string_view s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::string str() { return std::string(str_view()); }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void p_need(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw WireError("truncated message");
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace avis::util
