// Fixed-width little-endian byte encoding, shared by the hinj protocol and
// the MAVLink-like codec. Keeping real serialization boundaries between the
// firmware, the engine, and the ground-control station reproduces the
// process isolation of the paper's artifact while staying in-process.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace avis::util {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    if (s.size() > 0xffff) throw WireError("string too long");
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    p_need(1);
    return buf_[pos_++];
  }

  std::uint16_t u16() {
    p_need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(buf_[pos_]) | (static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    p_need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    p_need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint16_t n = u16();
    p_need(n);
    std::string s(buf_.begin() + static_cast<long>(pos_),
                  buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void p_need(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw WireError("truncated message");
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace avis::util
