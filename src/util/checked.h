// Checked narrowing conversions and invariant assertions (GSL-style).
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>

namespace avis::util {

// Thrown when an internal invariant is violated. The model checker treats a
// thrown InvariantError inside firmware code as a firmware process crash
// (safety violation), mirroring how a SITL process abort is observed.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

inline void expects(bool condition, const char* what) {
  if (!condition) throw InvariantError(what);
}

// narrow_cast with runtime check, per CppCoreGuidelines ES.46/ES.49.
template <typename To, typename From>
To narrow(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      ((result < To{}) != (value < From{}))) {
    throw InvariantError("narrowing conversion lost information");
  }
  return result;
}

}  // namespace avis::util
