// Bounded mutation helpers over registries and integer ranges.
//
// The scenario fuzzer (src/fuzz/) perturbs declarative specs whose fields
// are registry names and bounded integers. These helpers keep every draw
// inside the registered/configured bounds so mutants are valid by
// construction — the mutation engine never produces a spec that validate()
// rejects — and they draw exclusively from a caller-owned util::Rng, so a
// mutation sequence is a pure function of the fuzz seed.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>

#include "util/checked.h"
#include "util/registry.h"
#include "util/rng.h"

namespace avis::util {

// Closed integer range [lo, hi].
struct IntRange {
  long long lo = 0;
  long long hi = 0;
};

inline long long clamp_to(const IntRange& range, long long value) {
  return std::clamp(value, range.lo, range.hi);
}

// `value` plus a uniform non-zero step in [-max_step, +max_step], clamped
// into `range`. The draw is symmetric and never zero, so an interior value
// always moves; a value pinned at a bound may clamp back onto it (the caller
// dedups no-op mutants by spec identity, not here).
inline long long perturb(Rng& rng, long long value, const IntRange& range,
                         long long max_step) {
  expects(range.lo <= range.hi, "perturb: empty range");
  expects(max_step >= 1, "perturb: max_step must be >= 1");
  const auto raw = static_cast<long long>(
      rng.next_below(static_cast<std::uint64_t>(2 * max_step)));  // 0 .. 2*max_step-1
  const long long step = raw < max_step ? raw + 1 : -(raw - max_step + 1);
  return clamp_to(range, value + step);
}

// A uniformly random registered name.
template <typename Factory>
const std::string& pick_name(Rng& rng, const Registry<Factory>& registry) {
  const auto& entries = registry.entries();
  expects(!entries.empty(), "pick_name: empty registry");
  return entries[rng.next_below(entries.size())].name;
}

// A registered name different from `current` whenever the registry has one;
// a single-entry registry returns its only name. One draw: on a self-hit the
// next entry (cyclically) is taken, which keeps the distribution uniform
// over the other entries.
template <typename Factory>
const std::string& pick_other_name(Rng& rng, const Registry<Factory>& registry,
                                   std::string_view current) {
  const auto& entries = registry.entries();
  expects(!entries.empty(), "pick_other_name: empty registry");
  const std::size_t index = static_cast<std::size_t>(rng.next_below(entries.size()));
  if (entries[index].name != current || entries.size() == 1) return entries[index].name;
  return entries[(index + 1) % entries.size()].name;
}

}  // namespace avis::util
