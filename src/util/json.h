// Minimal JSON reader for scenario files (docs/SCENARIOS.md).
//
// The campaign stack *emits* JSON by hand (core/campaign.cc,
// ScenarioSpec::to_json); this header is the other direction — parsing a
// scenario file back into a value tree. It is deliberately tiny: a strict
// recursive-descent parser over the full JSON grammar, a value type whose
// numbers keep their source token (so 64-bit seeds round-trip without going
// through a double), and typed accessors that fail with a JsonError naming
// the offending key. No external dependency, per the repo's no-new-deps
// rule.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace avis::util {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Hard ceilings applied while parsing. Scenario files were the original
// consumer, but the same parser now sits on the distributed campaign wire
// (src/net/), where the peer may be a mismatched binary or an attacker: a
// hostile document must produce a JsonError, never unbounded recursion
// (stack overflow) or unbounded allocation. The defaults are far above
// anything a legitimate grid, report, or protocol frame produces.
struct JsonLimits {
  std::size_t max_depth = 64;                  // nested arrays/objects
  std::size_t max_string_bytes = 1 << 20;      // decoded bytes per string
  std::size_t max_number_chars = 128;          // characters per number token
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;  // insertion order preserved

  Json() = default;

  static Json parse(std::string_view text, const JsonLimits& limits = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const {
    p_require(Kind::kBool, "bool");
    return bool_;
  }

  // Numbers keep their source token: integer accessors parse it exactly
  // (a 2^63-scale seed would lose bits through a double).
  double as_double() const {
    p_require(Kind::kNumber, "number");
    return std::strtod(scalar_.c_str(), nullptr);
  }

  std::int64_t as_int64() const {
    p_require(Kind::kNumber, "number");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(scalar_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      throw JsonError("number is not a 64-bit integer: " + scalar_);
    }
    return v;
  }

  std::uint64_t as_uint64() const {
    p_require(Kind::kNumber, "number");
    if (!scalar_.empty() && scalar_[0] == '-') {
      throw JsonError("number is negative where an unsigned value is required: " + scalar_);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      throw JsonError("number is not an unsigned 64-bit integer: " + scalar_);
    }
    return v;
  }

  const std::string& as_string() const {
    p_require(Kind::kString, "string");
    return scalar_;
  }

  const Array& as_array() const {
    p_require(Kind::kArray, "array");
    return array_;
  }

  const Object& as_object() const {
    p_require(Kind::kObject, "object");
    return object_;
  }

  // Object member lookup; nullptr when absent (or when not an object).
  const Json* find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const Member& member : object_) {
      if (member.first == key) return &member.second;
    }
    return nullptr;
  }

  const Json& at(std::string_view key) const {
    const Json* value = find(key);
    if (value == nullptr) throw JsonError("missing key: '" + std::string(key) + "'");
    return *value;
  }

  // --- Typed getters with defaults, for optional scenario keys ------------
  std::string get_string(std::string_view key, std::string fallback) const {
    const Json* v = find(key);
    return v != nullptr ? v->as_string() : std::move(fallback);
  }

  std::int64_t get_int64(std::string_view key, std::int64_t fallback) const {
    const Json* v = find(key);
    return v != nullptr ? v->as_int64() : fallback;
  }

  std::uint64_t get_uint64(std::string_view key, std::uint64_t fallback) const {
    const Json* v = find(key);
    return v != nullptr ? v->as_uint64() : fallback;
  }

  bool get_bool(std::string_view key, bool fallback) const {
    const Json* v = find(key);
    return v != nullptr ? v->as_bool() : fallback;
  }

  std::vector<std::string> get_string_array(std::string_view key,
                                            std::vector<std::string> fallback) const {
    const Json* v = find(key);
    if (v == nullptr) return fallback;
    std::vector<std::string> result;
    result.reserve(v->as_array().size());
    for (const Json& element : v->as_array()) result.push_back(element.as_string());
    return result;
  }

 private:
  void p_require(Kind kind, const char* name) const {
    if (kind_ != kind) throw JsonError(std::string("JSON value is not a ") + name);
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // string value, or the raw number token
  Array array_;
  Object object_;

  friend class JsonParser;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text, const JsonLimits& limits = {})
      : text_(text), limits_(limits) {}

  Json parse_document() {
    Json value = p_parse_value();
    p_skip_whitespace();
    if (pos_ != text_.size()) p_fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void p_fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError(message + " at line " + std::to_string(line) + ", column " +
                    std::to_string(column));
  }

  void p_skip_whitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char p_peek() {
    if (pos_ >= text_.size()) p_fail("unexpected end of input");
    return text_[pos_];
  }

  void p_expect(char c) {
    if (p_peek() != c) p_fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool p_consume_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    pos_ += keyword.size();
    return true;
  }

  Json p_parse_value() {
    p_skip_whitespace();
    const char c = p_peek();
    switch (c) {
      case '{': return p_parse_object();
      case '[': return p_parse_array();
      case '"': {
        Json value;
        value.kind_ = Json::Kind::kString;
        value.scalar_ = p_parse_string();
        return value;
      }
      case 't':
        if (!p_consume_keyword("true")) p_fail("invalid literal");
        return p_make_bool(true);
      case 'f':
        if (!p_consume_keyword("false")) p_fail("invalid literal");
        return p_make_bool(false);
      case 'n':
        if (!p_consume_keyword("null")) p_fail("invalid literal");
        return Json{};
      default: return p_parse_number();
    }
  }

  static Json p_make_bool(bool value) {
    Json json;
    json.kind_ = Json::Kind::kBool;
    json.bool_ = value;
    return json;
  }

  // Containers are the only recursive productions, so the depth limit is
  // charged (and released) here; everything else parses in constant stack.
  void p_enter_container() {
    if (++depth_ > limits_.max_depth) {
      p_fail("nesting exceeds maximum depth of " + std::to_string(limits_.max_depth));
    }
  }

  Json p_parse_object() {
    p_expect('{');
    p_enter_container();
    Json value;
    value.kind_ = Json::Kind::kObject;
    p_skip_whitespace();
    if (p_peek() == '}') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      p_skip_whitespace();
      std::string key = p_parse_string();
      p_skip_whitespace();
      p_expect(':');
      value.object_.emplace_back(std::move(key), p_parse_value());
      p_skip_whitespace();
      if (p_peek() == ',') {
        ++pos_;
        continue;
      }
      p_expect('}');
      --depth_;
      return value;
    }
  }

  Json p_parse_array() {
    p_expect('[');
    p_enter_container();
    Json value;
    value.kind_ = Json::Kind::kArray;
    p_skip_whitespace();
    if (p_peek() == ']') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      value.array_.push_back(p_parse_value());
      p_skip_whitespace();
      if (p_peek() == ',') {
        ++pos_;
        continue;
      }
      p_expect(']');
      --depth_;
      return value;
    }
  }

  std::string p_parse_string() {
    p_expect('"');
    std::string result;
    while (true) {
      if (pos_ >= text_.size()) p_fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return result;
      if (result.size() >= limits_.max_string_bytes) {
        p_fail("string exceeds maximum length of " + std::to_string(limits_.max_string_bytes) +
               " bytes");
      }
      if (static_cast<unsigned char>(c) < 0x20) p_fail("unescaped control character in string");
      if (c != '\\') {
        result.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) p_fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': result.push_back('"'); break;
        case '\\': result.push_back('\\'); break;
        case '/': result.push_back('/'); break;
        case 'b': result.push_back('\b'); break;
        case 'f': result.push_back('\f'); break;
        case 'n': result.push_back('\n'); break;
        case 'r': result.push_back('\r'); break;
        case 't': result.push_back('\t'); break;
        case 'u': p_append_unicode_escape(result); break;
        default: p_fail("invalid escape character");
      }
    }
  }

  void p_append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) p_fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else p_fail("invalid hex digit in \\u escape");
    }
    // UTF-8 encode the basic-plane code point (surrogate pairs are not
    // needed for registry names; reject them loudly instead of mangling).
    if (code >= 0xd800 && code <= 0xdfff) p_fail("surrogate pairs are not supported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  // RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // Enforced strictly — "1.", "1e", "-.5" and leading zeros are errors, so
  // every document this parser accepts is also accepted by conforming
  // tools downstream (the spec is a wire format).
  Json p_parse_number() {
    const std::size_t start = pos_;
    auto digit_run = [&]() -> std::size_t {
      std::size_t count = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    if (digit_run() == 0) p_fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) p_fail("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digit_run() == 0) p_fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digit_run() == 0) p_fail("digits required in exponent");
    }
    if (pos_ - start > limits_.max_number_chars) {
      p_fail("number token exceeds maximum length of " +
             std::to_string(limits_.max_number_chars) + " characters");
    }
    Json value;
    value.kind_ = Json::Kind::kNumber;
    value.scalar_ = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  JsonLimits limits_;
  std::size_t depth_ = 0;
};

inline Json Json::parse(std::string_view text, const JsonLimits& limits) {
  return JsonParser(text, limits).parse_document();
}

// Escape a string for embedding in emitted JSON (shared by the scenario
// writer and the campaign report).
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace avis::util
