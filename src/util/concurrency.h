// Shared worker-count policy for parallel checker campaigns.
#pragma once

#include <algorithm>
#include <thread>

namespace avis::util {

// Every hardware thread, capped at 8 — past that the checker's batch
// barrier tail dominates on the evaluation workload mix. Always >= 1
// (hardware_concurrency may report 0).
inline int default_worker_count() {
  return std::max(1, static_cast<int>(std::min(8u, std::thread::hardware_concurrency())));
}

// How a fixed hardware budget is divided between the two nested pool
// levels of a campaign: the campaign pool running whole (approach,
// personality, workload) cells concurrently, and each cell's experiment
// pool. campaign_workers * experiment_workers never exceeds the budget,
// so nested parallelism cannot oversubscribe the machine
// (docs/PERFORMANCE.md, "Campaign-level parallelism").
struct WorkerBudget {
  int campaign_workers = 1;    // cells simulated concurrently
  int experiment_workers = 1;  // experiment pool size inside each cell
};

// Favour cell-level parallelism: cells never synchronize, while experiment
// batches barrier at every wave boundary, so a worker spent on a cell buys
// more throughput than one spent inside a cell. Leftover workers (budget
// not divisible by the cell count) go to the experiment pools.
inline WorkerBudget split_worker_budget(int total_workers, int cells) {
  total_workers = std::max(1, total_workers);
  cells = std::max(1, cells);
  WorkerBudget split;
  split.campaign_workers = std::min(cells, total_workers);
  split.experiment_workers = std::max(1, total_workers / split.campaign_workers);
  return split;
}

}  // namespace avis::util
