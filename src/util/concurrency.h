// Shared worker-count policy for parallel checker campaigns.
#pragma once

#include <algorithm>
#include <thread>

namespace avis::util {

// Every hardware thread, capped at 8 — past that the checker's batch
// barrier tail dominates on the evaluation workload mix. Always >= 1
// (hardware_concurrency may report 0).
inline int default_worker_count() {
  return std::max(1, static_cast<int>(std::min(8u, std::thread::hardware_concurrency())));
}

}  // namespace avis::util
