// Plain-text table rendering for the bench harness.
//
// Every bench binary prints the same rows the paper's tables report; this
// helper keeps the formatting consistent and the bench code declarative.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace avis::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience for mixed cell types.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(cells)), ...);
    add_row(std::move(row));
  }

  void render(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto update = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    update(header_);
    for (const auto& row : rows_) update(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        os << " " << std::left << std::setw(static_cast<int>(widths[i])) << cell << " |";
      }
      os << "\n";
    };
    auto print_sep = [&] {
      os << "|";
      for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
      os << "\n";
    };

    print_row(header_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
  }

  std::string to_string() const {
    std::ostringstream os;
    render(os);
    return os.str();
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_same_v<T, std::string> || std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << v;
      return os.str();
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// CSV emission for figure series (Fig. 9 / Fig. 10 altitude traces).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void header(const std::vector<std::string>& cols) { line(cols); }

  void line(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os_ << ",";
      os_ << cells[i];
    }
    os_ << "\n";
  }

  template <typename... Ts>
  void row(const Ts&... cells) {
    bool first = true;
    auto emit = [&](const auto& c) {
      if (!first) os_ << ",";
      first = false;
      os_ << c;
    };
    (emit(cells), ...);
    os_ << "\n";
  }

 private:
  std::ostream& os_;
};

}  // namespace avis::util
