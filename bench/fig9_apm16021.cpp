// Figure 9 (paper §VI-A): APM-16021 — an accelerometer fault injected late
// in the takeoff climb makes the UAV overshoot its target altitude; the
// firmware responds by landing, but its state model predicts a high
// altitude, so it descends into the ground and actuates on it.
//
// Prints the altitude series of the golden run and the fault-injected run
// side by side (the paper's black and blue traces).
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/harness.h"
#include "util/table.h"

int main() {
  using namespace avis;

  core::SimulationHarness harness;

  // Golden run (blue trace): box-manual workload climbs to 20 m.
  core::ExperimentSpec golden_spec;
  golden_spec.personality = fw::Personality::kArduPilotLike;
  golden_spec.workload = workload::WorkloadId::kBoxManual;
  golden_spec.seed = 100;
  std::vector<double> golden_alt;
  harness.set_step_hook([&](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware&) {
    if (t % 200 == 0) golden_alt.push_back(s.altitude());
  });
  const auto golden = harness.run(golden_spec, nullptr);

  // Fault run (black trace): primary accelerometer failed at ~70% of the
  // climb (the paper injects at 18 m of a 20 m takeoff).
  sim::SimTimeMs inject_ms = 0;
  {
    // Find the moment the golden run passes 14 m during takeoff.
    for (std::size_t i = 0; i < golden.trace.size(); ++i) {
      if (-golden.trace[i].position.z >= 14.0) {
        inject_ms = golden.trace[i].time_ms;
        break;
      }
    }
  }
  core::ExperimentSpec fault_spec = golden_spec;
  fault_spec.plan.add(inject_ms, {sensors::SensorType::kAccelerometer, 0});
  std::vector<double> fault_alt;
  std::vector<std::string> fault_mode;
  bool crashed = false;
  sim::SimTimeMs crash_ms = 0;
  harness.set_step_hook([&](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware& f) {
    if (t % 200 == 0) {
      fault_alt.push_back(s.altitude());
      fault_mode.push_back(f.composite_mode().name());
    }
    if (s.crashed && !crashed) {
      crashed = true;
      crash_ms = t;
    }
  });
  const auto fault = harness.run(fault_spec, nullptr);

  std::cout << "== Figure 9: APM-16021 sequence of events ==\n";
  std::cout << "accelerometer fault injected at t=" << inject_ms / 1000.0 << "s ("
            << "golden altitude 14 m of 20 m climb)\n\n";
  std::cout << "t[s], golden_alt[m], fault_alt[m], fault_mode\n";
  const std::size_t n = std::max(golden_alt.size(), fault_alt.size());
  for (std::size_t i = 0; i < n; i += 5) {  // 1-second print resolution
    const double g = i < golden_alt.size() ? golden_alt[i] : golden_alt.back();
    const double a = i < fault_alt.size() ? fault_alt[i] : fault_alt.back();
    const std::string m = i < fault_mode.size() ? fault_mode[i] : fault_mode.back();
    std::printf("%5.1f, %6.2f, %6.2f, %s\n", i * 0.2, g, a, m.c_str());
  }

  const double golden_peak = *std::max_element(golden_alt.begin(), golden_alt.end());
  const double fault_peak = *std::max_element(fault_alt.begin(), fault_alt.end());
  std::cout << "\nevents: (1) fault at " << inject_ms / 1000.0 << "s  (2) overshoot to "
            << fault_peak << " m vs golden peak " << golden_peak
            << " m  (3) firmware responds by landing  (4) "
            << (crashed ? "ground impact at t=" + std::to_string(crash_ms / 1000.0) + "s"
                        : "no impact (unexpected)")
            << "  (5) post-impact actuation: " << sim::to_string(fault.crash_cause) << "\n";
  std::cout << "fired bugs:";
  for (fw::BugId id : fault.fired_bugs) std::cout << " " << fw::bug_info(id).report_name;
  std::cout << "\n";
  return 0;
}
