// End-to-end checker throughput (google-benchmark).
//
// The paper's evaluation hinges on experiments-per-budget (§VI, Tables
// II-V): whichever checker runs the most experiments in the 2-hour window
// finds the most unsafe conditions. These benches measure (a) raw harness
// throughput — experiments/sec for a single thread — and (b) full checker
// campaigns at 1/2/4/8 workers, so the parallel execution layer's speedup
// (and any regression to it) shows up directly in the perf trajectory.
//
// Wall-clock (real time) is the measured quantity: the whole point of the
// worker pool is to trade idle cores for elapsed time. items/s in the
// output is experiments per wall second.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/batch_harness.h"
#include "core/campaign.h"
#include "core/checker.h"
#include "core/sabre.h"

using namespace avis;

namespace {

// One calibrated checker shared by every bench in this binary: profiling
// (3 golden runs) is paid once, and every campaign reuses the same monitor
// model, exactly as Checker::run does across strategies.
core::Checker& shared_checker() {
  static core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                               fw::BugRegistry::current_code_base());
  return checker;
}

// Per-campaign simulated budget. Big enough for several SABRE expansion
// waves (tens of experiments) so worker-pool ramp-up amortizes; small
// enough that a serial campaign completes in a few seconds of wall time.
constexpr sim::SimTimeMs kCampaignBudgetMs = 600 * 1000;

}  // namespace

// Single-experiment hot path: fault-free monitored runs at batch width N.
// Arg(0) is the scalar reference (SimulationHarness::run, the pre-batch
// path); widths >= 1 go through the lockstep batch engine, whose gain is
// the pre-injection estimator fast path plus per-lane-consecutive (tiled)
// stepping. items/s is experiments per wall second, so the batch speedup
// reads directly off the 0 vs 1/4/8 rows.
static void BM_SingleExperiment(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  core::Checker& checker = shared_checker();
  const core::MonitorModel& model = checker.model();
  std::vector<core::ExperimentSpec> specs(std::max<std::size_t>(width, 1));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    core::ExperimentSpec& spec = specs[i];
    spec.personality = checker.personality();
    spec.workload = checker.workload();
    spec.bugs = checker.bugs();
    spec.seed = 100 + i;
    spec.max_duration_ms = model.profiling_duration_ms() + 45000;
  }
  core::BatchHarness engine(checker.harness());
  std::int64_t experiments = 0;
  for (auto _ : state) {
    if (width == 0) {
      benchmark::DoNotOptimize(checker.harness().run(specs[0], &model));
      experiments += 1;
    } else {
      benchmark::DoNotOptimize(engine.run(specs, &model));
      experiments += static_cast<std::int64_t>(width);
    }
  }
  state.SetItemsProcessed(experiments);
}
BENCHMARK(BM_SingleExperiment)->Arg(0)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Full SABRE campaign at N workers. Arg(1) runs the serial Checker::run
// path; higher counts dispatch batches across the worker pool. The reports
// are identical by construction (see tests/test_checker_parallel.cc), so
// the runs are directly comparable: items/s is experiments per wall second
// and real_time per iteration is the campaign wall time.
static void BM_CheckerCampaign(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  core::Checker& checker = shared_checker();
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();

  std::int64_t experiments = 0;
  for (auto _ : state) {
    core::SabreScheduler sabre(suite, model.golden_transitions());
    core::BudgetClock budget(kCampaignBudgetMs);
    const core::CheckerReport report = workers <= 1
                                           ? checker.run(sabre, budget)
                                           : checker.run_parallel(sabre, budget, workers);
    experiments += report.experiments;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(experiments);
  state.counters["experiments/campaign"] = benchmark::Counter(
      static_cast<double>(experiments) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CheckerCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Serial SABRE campaign at lockstep batch width W (single worker, so the
// wall-time delta is the batch engine alone, with no pool effects mixed
// in). Reports are bit-identical at every width (tests/test_batch.cc), so
// experiments/campaign must not vary across rows — only wall time may.
static void BM_CheckerBatchWidth(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  core::Checker& checker = shared_checker();
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();
  checker.set_batch_width(width);

  std::int64_t experiments = 0;
  for (auto _ : state) {
    core::SabreScheduler sabre(suite, model.golden_transitions());
    core::BudgetClock budget(kCampaignBudgetMs);
    const core::CheckerReport report = checker.run(sabre, budget);
    experiments += report.experiments;
    benchmark::DoNotOptimize(report);
  }
  checker.set_batch_width(0);
  state.SetItemsProcessed(experiments);
  state.counters["experiments/campaign"] = benchmark::Counter(
      static_cast<double>(experiments) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CheckerBatchWidth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Whole-campaign sharding: a 4-cell Avis grid (both personalities x both
// default workloads) run at N concurrent cells with a single experiment
// worker per cell, so the reported wall time isolates cell-level
// parallelism. experiments/campaign must not vary with N — each cell's
// report is bit-identical to its serial run (tests/test_campaign.cc).
static void BM_CampaignGrid(benchmark::State& state) {
  const int cell_workers = static_cast<int>(state.range(0));
  const auto grid = bench::evaluation_grid({"avis"}, /*budget_ms=*/kCampaignBudgetMs);
  core::CampaignOptions options;
  options.cell_workers = cell_workers;
  options.experiment_workers = 1;
  const core::CampaignRunner runner(options);

  std::int64_t experiments = 0;
  for (auto _ : state) {
    const core::CampaignResult result = runner.run(grid);
    experiments += result.total_experiments();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(experiments);
  state.counters["experiments/campaign"] = benchmark::Counter(
      static_cast<double>(experiments) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CampaignGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

BENCHMARK_MAIN();
