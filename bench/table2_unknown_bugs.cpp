// Table II (paper §VI-A): previously-unknown bugs found by Avis in the
// "current code base" (the default-enabled bug population), and which of
// them Stratified BFI also finds.
//
// Runs Avis and Stratified BFI on both firmware personalities and both
// default workloads for a two-hour-equivalent budget each, then prints one
// row per seeded Table II bug with the detection check-marks.
#include <iostream>
#include <map>
#include <set>

#include "common.h"
#include "fw/bugs.h"

int main() {
  using namespace avis;

  std::cout << "== Table II: unknown bugs found by Avis ==\n";
  std::cout << "(2h-equivalent budget per approach per workload, both firmware)\n\n";

  std::set<fw::BugId> found_avis;
  std::set<fw::BugId> found_sbfi;
  int avis_runs = 0;
  int sbfi_runs = 0;

  const auto campaign =
      bench::run_campaign(bench::evaluation_grid({"avis", "stratified-bfi"}));
  for (const auto& cell : campaign.cells) {
    const bool is_avis = cell.spec.scenario.approach == "avis";
    (is_avis ? avis_runs : sbfi_runs) += cell.report.experiments;
    auto& found = is_avis ? found_avis : found_sbfi;
    for (const auto& [bug, sim] : cell.report.bug_first_found) found.insert(bug);
  }

  util::TextTable t({"Report #", "Firmware", "Symptom", "Sensor Failure",
                     "Failure Starting Moment", "Avis", "Strat. BFI"});
  for (fw::BugId id : fw::kAllBugs) {
    const fw::BugInfo& info = fw::bug_info(id);
    if (info.known) continue;  // Table V population
    t.add(info.report_name, fw::to_string(info.personality), fw::to_string(info.symptom),
          sensors::to_string(info.sensor), info.window,
          found_avis.contains(id) ? "X" : "", found_sbfi.contains(id) ? "X" : "");
  }
  t.render(std::cout);
  std::cout << "\nAvis simulations: " << avis_runs
            << ", Stratified BFI simulations: " << sbfi_runs << "\n";
  std::cout << "paper: Avis found all 10; Stratified BFI found 4 (16021, 16967, 17046, 17057)\n";
  bench::print_campaign_footer(std::cout, campaign);
  return 0;
}
