// Figure 5 (paper §IV-B): the order in which DFS, BFS, and SABRE explore the
// fault space of a two-sensor (GPS, barometer) vehicle over a five-step
// workload with mode transitions at t1, t2 and t4.
//
// Reproduces the paper's walkthrough: SABRE visits the transition-aligned
// scenarios — including the dissimilar ones at t4 — before either classical
// strategy has left the neighbourhood of its starting corner.
#include <cstdio>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/sabre.h"
#include "sensors/sensor_models.h"

using namespace avis;

namespace {

std::string describe(const core::FaultPlan& plan) {
  // Clean failures latch: a sensor failed at t_k stays failed at t>k, so the
  // printed set at each step is the union of failures started by then.
  std::string out = "<";
  for (int t = 1; t <= 5; ++t) {
    if (t > 1) out += ", ";
    std::string cell;
    for (const auto& e : plan.events) {
      if (e.time_ms <= t) {
        if (!cell.empty()) cell += "+";
        cell += e.sensor.type == sensors::SensorType::kGps ? "GPS" : "Baro";
      }
    }
    out += cell.empty() ? "$" : cell;
  }
  return out + ">";
}

// Enumerate classical depth-first order: lexicographic over per-step subsets
// starting from the last step (the paper's DFS example fails sensors at t5
// first).
std::vector<core::FaultPlan> dfs_order(int limit) {
  std::vector<core::FaultPlan> plans;
  const sensors::SensorId gps{sensors::SensorType::kGps, 0};
  const sensors::SensorId baro{sensors::SensorType::kBarometer, 0};
  // Subsets per step in DFS column order: {}, {GPS}, {Baro}, {GPS,Baro}.
  // A "latched" fault persists to later steps, so enumerate fail-start
  // choices per sensor: start time in {none, 5, 4, 3, 2, 1} — DFS explores
  // late start times first.
  for (int gps_start : {0, 5, 4, 3, 2, 1}) {
    for (int baro_start : {0, 5, 4, 3, 2, 1}) {
      if (gps_start == 0 && baro_start == 0) continue;
      core::FaultPlan plan;
      if (gps_start) plan.add(gps_start, gps);
      if (baro_start) plan.add(baro_start, baro);
      plans.push_back(plan);
      if (static_cast<int>(plans.size()) >= limit) return plans;
    }
  }
  return plans;
}

std::vector<core::FaultPlan> bfs_order(int limit) {
  std::vector<core::FaultPlan> plans;
  const sensors::SensorId gps{sensors::SensorType::kGps, 0};
  const sensors::SensorId baro{sensors::SensorType::kBarometer, 0};
  // BFS explores across time: every single-sensor start time first, then
  // combinations, earliest starts first.
  for (int start = 1; start <= 5; ++start) {
    core::FaultPlan p;
    p.add(start, gps);
    plans.push_back(p);
    core::FaultPlan q;
    q.add(start, baro);
    plans.push_back(q);
    core::FaultPlan r;
    r.add(start, gps);
    r.add(start, baro);
    plans.push_back(r);
  }
  if (static_cast<int>(plans.size()) > limit) plans.resize(limit);
  return plans;
}

}  // namespace

int main() {
  constexpr int kShow = 9;
  std::printf("== Figure 5: fault-space exploration order ==\n");
  std::printf("two sensors (GPS, Baro), five time-steps, transitions at t1, t2, t4\n\n");

  std::printf("Depth-first search (first %d executions):\n", kShow);
  for (const auto& plan : dfs_order(kShow)) std::printf("  %s\n", describe(plan).c_str());

  std::printf("\nBreadth-first search (first %d executions):\n", kShow);
  for (const auto& plan : bfs_order(kShow)) std::printf("  %s\n", describe(plan).c_str());

  // SABRE on the same toy space: transitions at t1, t2, t4; full power-set
  // batches reproduce Algorithm 1's printed order.
  sensors::SuiteConfig suite;
  suite.gyroscopes = 0;
  suite.accelerometers = 0;
  suite.barometers = 1;
  suite.gpses = 1;
  suite.compasses = 0;
  suite.batteries = 0;
  std::vector<core::ModeTransition> transitions{
      {1, 0x0400, "takeoff"}, {2, 0x0500, "auto"}, {4, 0x0900, "land"}};
  core::SabreConfig config;
  config.full_powerset_batches = true;
  config.offset_step_ms = 1;
  config.max_offsets = 2;
  core::SabreScheduler sabre(suite, transitions, config);

  std::printf("\nSABRE (first %d executions):\n", kShow);
  core::BudgetClock budget(1000000);
  for (int i = 0; i < kShow; ++i) {
    auto plan = sabre.next(budget);
    if (!plan) break;
    std::printf("  %s\n", describe(*plan).c_str());
    // All toy runs are bug-free with one mode transition left to explore.
    core::ExperimentResult ok;
    ok.workload_passed = true;
    sabre.feedback(*plan, ok);
  }
  std::printf(
      "\nNote how SABRE reaches the dissimilar t4 scenarios within the first batch-set\n"
      "while DFS is still permuting t5/t4 starts and BFS is still at t1/t2.\n");
  return 0;
}
