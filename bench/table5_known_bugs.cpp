// Table V (paper §VI-C): previously-known bugs re-inserted into the code
// base; did each approach trigger them, and within how many simulations?
//
// Each known bug is enabled on top of the current-code-base population (the
// paper re-inserted fixed bugs into the then-current tree) and each approach
// runs with a two-hour-equivalent budget on the workload that exercises the
// bug's flight phase.
#include <iostream>

#include "common.h"
#include "fw/bugs.h"

int main() {
  using namespace avis;

  std::cout << "== Table V: previously-known bugs triggered after re-insertion ==\n\n";

  const fw::BugId known[] = {fw::BugId::kApm4455, fw::BugId::kApm4679, fw::BugId::kApm5428,
                             fw::BugId::kApm9349, fw::BugId::kPx413291};

  // One flat campaign grid in (bug, approach, workload) order: each known
  // bug re-inserted on top of the current code base (a per-cell
  // bugs_override — re-inserted populations are not registry entries), run
  // on the workload pair for the personality that exercises it.
  std::vector<core::CampaignCellSpec> grid;
  for (fw::BugId bug : known) {
    const fw::BugInfo& info = fw::bug_info(bug);
    fw::BugRegistry registry = fw::BugRegistry::current_code_base();
    registry.enable(bug);
    const std::string personality =
        info.personality == fw::Personality::kArduPilotLike ? "ardupilot" : "px4";
    for (const std::string& approach : {std::string("avis"), std::string("stratified-bfi")}) {
      for (const std::string& workload : bench::evaluation_workloads()) {
        grid.push_back(bench::make_cell(approach, personality, workload, registry));
      }
    }
  }
  const auto campaign = bench::run_campaign(grid);

  util::TextTable t({"Bug ID", "Avis found", "Avis sims", "Strat. BFI found",
                     "Strat. BFI sims"});
  for (fw::BugId bug : known) {
    const fw::BugInfo& info = fw::bug_info(bug);
    std::string avis_found = "";
    std::string avis_sims = "N/A";
    std::string sbfi_found = "";
    std::string sbfi_sims = "N/A";

    // A cell belongs to this bug's row iff its registry has the bug
    // re-inserted (each grid cell enables exactly one known bug; the count
    // check below guards that invariant).
    int row_cells = 0;
    for (const auto& cell : campaign.cells) {
      if (!cell.spec.bugs_override || !cell.spec.bugs_override->enabled(bug)) continue;
      ++row_cells;
      const bool is_avis = cell.spec.scenario.approach == "avis";
      std::string& found = is_avis ? avis_found : sbfi_found;
      std::string& sims = is_avis ? avis_sims : sbfi_sims;
      if (auto it = cell.report.bug_first_found.find(bug);
          it != cell.report.bug_first_found.end()) {
        if (found.empty() || it->second < std::stoi(sims)) {
          found = "X";
          sims = std::to_string(it->second);
        }
      }
    }
    if (row_cells != 4) {  // 2 approaches x 2 workloads per bug
      std::cerr << info.report_name << ": expected 4 campaign cells, matched " << row_cells
                << " — a known bug leaked into another cell's registry\n";
      return 1;
    }
    t.add(info.report_name, avis_found, avis_sims, sbfi_found, sbfi_sims);
  }
  t.render(std::cout);
  bench::print_campaign_footer(std::cout, campaign);
  std::cout << "\npaper: Avis found all 5 (10/21/5/4/18 sims); Strat. BFI found APM-4679 (3)\n"
               "and APM-9349 (5); BFI and Random found none.\n";
  return 0;
}
