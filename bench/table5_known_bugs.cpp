// Table V (paper §VI-C): previously-known bugs re-inserted into the code
// base; did each approach trigger them, and within how many simulations?
//
// Each known bug is enabled on top of the current-code-base population (the
// paper re-inserted fixed bugs into the then-current tree) and each approach
// runs with a two-hour-equivalent budget on the workload that exercises the
// bug's flight phase.
#include <iostream>

#include "common.h"
#include "fw/bugs.h"

int main() {
  using namespace avis;
  using bench::Approach;

  std::cout << "== Table V: previously-known bugs triggered after re-insertion ==\n\n";

  const fw::BugId known[] = {fw::BugId::kApm4455, fw::BugId::kApm4679, fw::BugId::kApm5428,
                             fw::BugId::kApm9349, fw::BugId::kPx413291};

  util::TextTable t({"Bug ID", "Avis found", "Avis sims", "Strat. BFI found",
                     "Strat. BFI sims"});
  for (fw::BugId bug : known) {
    const fw::BugInfo& info = fw::bug_info(bug);
    fw::BugRegistry registry = fw::BugRegistry::current_code_base();
    registry.enable(bug);

    std::string avis_found = "";
    std::string avis_sims = "N/A";
    std::string sbfi_found = "";
    std::string sbfi_sims = "N/A";

    for (workload::WorkloadId workload : bench::evaluation_workloads()) {
      const auto avis_cell =
          bench::run_cell(Approach::kAvis, info.personality, workload, registry);
      if (auto it = avis_cell.report.bug_first_found.find(bug);
          it != avis_cell.report.bug_first_found.end()) {
        if (avis_found.empty() || it->second < std::stoi(avis_sims)) {
          avis_found = "X";
          avis_sims = std::to_string(it->second);
        }
      }
      const auto sbfi_cell =
          bench::run_cell(Approach::kStratifiedBfi, info.personality, workload, registry);
      if (auto it = sbfi_cell.report.bug_first_found.find(bug);
          it != sbfi_cell.report.bug_first_found.end()) {
        if (sbfi_found.empty() || it->second < std::stoi(sbfi_sims)) {
          sbfi_found = "X";
          sbfi_sims = std::to_string(it->second);
        }
      }
    }
    t.add(info.report_name, avis_found, avis_sims, sbfi_found, sbfi_sims);
  }
  t.render(std::cout);
  std::cout << "\npaper: Avis found all 5 (10/21/5/4/18 sims); Strat. BFI found APM-4679 (3)\n"
               "and APM-9349 (5); BFI and Random found none.\n";
  return 0;
}
