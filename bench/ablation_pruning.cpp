// Ablation (paper §IV-B-1): SABRE's redundancy-elimination policies.
//
// Runs Avis with (a) both policies, (b) no sensor-instance symmetry,
// (c) no found-bug pruning, under the same budget, and compares unsafe
// conditions found, distinct bugs found, and scheduler pruning statistics.
#include <iostream>

#include "common.h"
#include "core/sabre.h"

using namespace avis;

int main() {
  std::cout << "== Ablation: SABRE redundancy elimination ==\n";
  std::cout << "(ArduPilot personality, fence workload, 2h-equivalent budget)\n\n";

  struct Config {
    const char* name;
    bool symmetry;
    bool found_bug;
  };
  const Config configs[] = {
      {"SABRE (both policies)", true, true},
      {"no instance symmetry", false, true},
      {"no found-bug pruning", true, false},
      {"no pruning at all", false, false},
  };

  util::TextTable t({"configuration", "simulations", "unsafe #", "distinct bugs",
                     "pruned (sym)", "pruned (bug)", "pruned (dup)"});
  for (const Config& config : configs) {
    core::Checker checker(fw::Personality::kArduPilotLike,
                          workload::WorkloadId::kFenceMission,
                          fw::BugRegistry::current_code_base());
    const core::MonitorModel& model = checker.model();
    core::SabreConfig sabre_config;
    sabre_config.symmetry_pruning = config.symmetry;
    sabre_config.found_bug_pruning = config.found_bug;
    core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                               model.golden_transitions(), sabre_config);
    core::BudgetClock budget = core::BudgetClock::two_hours();
    const auto report = checker.run(sabre, budget);
    t.add(config.name, report.experiments, report.unsafe_count(),
          static_cast<int>(report.bug_first_found.size()), sabre.pruned_by_symmetry(),
          sabre.pruned_by_found_bug(), sabre.pruned_as_duplicate());
  }
  t.render(std::cout);
  std::cout << "\nBoth policies spend the budget on role-distinct, not-yet-buggy scenarios;\n"
               "dropping either spends simulations on redundant states and finds fewer\n"
               "distinct bugs in the same budget.\n";
  return 0;
}
