// Ablation (paper §IV-B-1): SABRE's redundancy-elimination policies.
//
// Runs Avis with (a) both policies, (b) no sensor-instance symmetry,
// (c) no found-bug pruning, under the same budget, and compares unsafe
// conditions found, distinct bugs found, and scheduler pruning statistics.
#include <iostream>
#include <vector>

#include "common.h"
#include "core/sabre.h"

using namespace avis;

int main() {
  std::cout << "== Ablation: SABRE redundancy elimination ==\n";
  std::cout << "(ArduPilot personality, fence workload, 2h-equivalent budget)\n\n";

  struct Config {
    const char* name;
    bool symmetry;
    bool found_bug;
  };
  const Config configs[] = {
      {"SABRE (both policies)", true, true},
      {"no instance symmetry", false, true},
      {"no found-bug pruning", true, false},
      {"no pruning at all", false, false},
  };

  // One campaign cell per configuration; per-cell SabreConfig variants are
  // not registry approaches, so each cell pins a custom strategy factory
  // (and a display label). The runner keeps each cell's strategy alive so
  // the pruning counters can be read after the run.
  std::vector<core::CampaignCellSpec> grid;
  for (const Config& config : configs) {
    core::CampaignCellSpec spec;
    spec.scenario.approach = "avis";
    spec.scenario.personality = "ardupilot";
    spec.scenario.workload = "fence-mission";
    spec.scenario.budget_ms = 7200 * 1000;
    spec.label = config.name;
    spec.make_strategy = [config](const core::MonitorModel& model, std::uint64_t) {
      core::SabreConfig sabre_config;
      sabre_config.symmetry_pruning = config.symmetry;
      sabre_config.found_bug_pruning = config.found_bug;
      return std::make_unique<core::SabreScheduler>(core::SimulationHarness::iris_suite(),
                                                    model.golden_transitions(), sabre_config);
    };
    grid.push_back(std::move(spec));
  }
  const auto campaign = bench::run_campaign(grid);

  util::TextTable t({"configuration", "simulations", "unsafe #", "distinct bugs",
                     "pruned (sym)", "pruned (bug)", "pruned (dup)"});
  for (const auto& cell : campaign.cells) {
    const auto& report = cell.report;
    const auto* sabre = dynamic_cast<const core::SabreScheduler*>(cell.strategy.get());
    if (sabre == nullptr) {
      std::cerr << "cell '" << cell.spec.display_label() << "' did not run a SabreScheduler\n";
      return 1;
    }
    t.add(cell.spec.display_label(), report.experiments, report.unsafe_count(),
          static_cast<int>(report.bug_first_found.size()), sabre->pruned_by_symmetry(),
          sabre->pruned_by_found_bug(), sabre->pruned_as_duplicate());
  }
  t.render(std::cout);
  bench::print_campaign_footer(std::cout, campaign);
  std::cout << "\nBoth policies spend the budget on role-distinct, not-yet-buggy scenarios;\n"
               "dropping either spends simulations on redundant states and finds fewer\n"
               "distinct bugs in the same budget.\n";
  return 0;
}
