// Table III (paper §VI-B): number of unsafe scenarios identified by each
// approach in a two-hour-equivalent budget per workload, per firmware.
// Also prints the headline efficiency ratios (Avis vs Stratified BFI ~2.4x,
// Avis vs BFI ~82x in the paper).
#include <algorithm>
#include <iostream>

#include "common.h"

int main() {
  using namespace avis;

  std::cout << "== Table III: unsafe scenarios identified by each approach ==\n";
  std::cout << "(2h-equivalent budget per workload; both default workloads)\n\n";

  struct Row {
    std::string approach;
    int ap = 0;
    int px4 = 0;
    int experiments = 0;
    int labels = 0;
  };
  const std::vector<std::string> approaches = bench::paper_approaches();
  const auto campaign = bench::run_campaign(bench::evaluation_grid(approaches));

  std::vector<Row> rows;
  for (const std::string& approach : approaches) rows.push_back(Row{approach});
  for (const auto& cell : campaign.cells) {
    Row& row = *std::find_if(rows.begin(), rows.end(), [&](const Row& r) {
      return r.approach == cell.spec.scenario.approach;
    });
    if (cell.spec.scenario.personality == "ardupilot") {
      row.ap += cell.report.unsafe_count();
    } else {
      row.px4 += cell.report.unsafe_count();
    }
    row.experiments += cell.report.experiments;
    row.labels += cell.report.labels;
  }

  util::TextTable t({"Approach", "ArduPilot Unsafe #", "PX4 Unsafe #", "Total #",
                     "simulations", "model labels"});
  for (const Row& row : rows) {
    t.add(bench::label_of(row.approach), row.ap, row.px4, row.ap + row.px4, row.experiments,
          row.labels);
  }
  t.render(std::cout);

  const int avis_total = rows[0].ap + rows[0].px4;
  const int sbfi_total = rows[1].ap + rows[1].px4;
  const int bfi_total = rows[2].ap + rows[2].px4;
  if (sbfi_total > 0) {
    std::cout << "\nAvis vs Stratified BFI: " << static_cast<double>(avis_total) / sbfi_total
              << "x (paper: 2.4x)\n";
  }
  if (bfi_total > 0) {
    std::cout << "Avis vs BFI: " << static_cast<double>(avis_total) / bfi_total
              << "x (paper: 82x)\n";
  } else {
    std::cout << "Avis vs BFI: BFI found none within budget (paper: 82x)\n";
  }
  std::cout << "paper: Avis 104/61/165, Strat. BFI 61/9/70, BFI 1/1/2, Random 2/3/5\n";
  bench::print_campaign_footer(std::cout, campaign);
  return 0;
}
