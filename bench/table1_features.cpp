// Table I (paper §VI): distinguishing features of the four approaches.
// Static by construction — the feature matrix documents what each strategy
// implementation in this repository does.
#include <iostream>

#include "util/table.h"

int main() {
  using namespace avis;
  std::cout << "== Table I: distinguishing features of fault-injection approaches ==\n\n";
  util::TextTable t({"Feature", "Avis", "Strat. BFI", "BFI", "Rnd"});
  t.add("Targets operating mode transitions", "yes", "-", "-", "-");
  t.add("Prior bugs inform injection sites", "yes", "yes", "yes", "-");
  t.add("Search dissimilar scenarios first", "yes", "yes", "-", "yes");
  t.render(std::cout);
  std::cout << "\n(see core/sabre.h, baselines/stratified_bfi.h, baselines/bfi.h,\n"
               " baselines/random_injection.h for the corresponding implementations)\n";
  return 0;
}
