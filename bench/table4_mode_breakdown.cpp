// Table IV (paper §VI-B): unsafe scenarios identified by each approach,
// broken down by the operating-mode bucket in which the violation occurred.
#include <iostream>

#include "common.h"

int main() {
  using namespace avis;

  std::cout << "== Table IV: unsafe scenarios per mode ==\n";
  std::cout << "(2h-equivalent budget per workload; both firmware, both workloads)\n\n";

  const std::vector<std::string> approaches = bench::paper_approaches();
  const auto campaign = bench::run_campaign(bench::evaluation_grid(approaches));

  util::TextTable t({"Approach", "Takeoff #", "Manual #", "Waypoint #", "Land #"});
  for (const std::string& approach : approaches) {
    std::array<int, 4> buckets{};
    for (const auto& cell : campaign.cells) {
      if (cell.spec.scenario.approach != approach) continue;
      const auto cell_buckets = cell.report.unsafe_by_bucket();
      for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += cell_buckets[i];
    }
    t.add(bench::label_of(approach), buckets[0], buckets[1], buckets[2], buckets[3]);
  }
  t.render(std::cout);
  std::cout << "\npaper: Avis 60/37/44/24, Strat. BFI 4/32/35/1, BFI 1/1/0/0, Random 0/2/3/0\n";
  bench::print_campaign_footer(std::cout, campaign);
  return 0;
}
