// Table IV (paper §VI-B): unsafe scenarios identified by each approach,
// broken down by the operating-mode bucket in which the violation occurred.
#include <iostream>

#include "common.h"

int main() {
  using namespace avis;
  using bench::Approach;

  std::cout << "== Table IV: unsafe scenarios per mode ==\n";
  std::cout << "(2h-equivalent budget per workload; both firmware, both workloads)\n\n";

  util::TextTable t({"Approach", "Takeoff #", "Manual #", "Waypoint #", "Land #"});
  for (Approach approach :
       {Approach::kAvis, Approach::kStratifiedBfi, Approach::kBfi, Approach::kRandom}) {
    std::array<int, 4> buckets{};
    for (fw::Personality personality :
         {fw::Personality::kArduPilotLike, fw::Personality::kPx4Like}) {
      for (workload::WorkloadId workload : bench::evaluation_workloads()) {
        const auto cell = bench::run_cell(approach, personality, workload,
                                          fw::BugRegistry::current_code_base());
        const auto cell_buckets = cell.report.unsafe_by_bucket();
        for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += cell_buckets[i];
      }
    }
    t.add(bench::to_string(approach), buckets[0], buckets[1], buckets[2], buckets[3]);
  }
  t.render(std::cout);
  std::cout << "\npaper: Avis 60/37/44/24, Strat. BFI 4/32/35/1, BFI 1/1/0/0, Random 0/2/3/0\n";
  return 0;
}
