// Ablation (paper §IV-C): the liveliness detector's state tuple.
//
// "We could detect liveliness violations using position alone. However, it
// takes tens of seconds to detect liveliness violations with this approach.
// Using multiple variables lets us detect violations in seconds."
//
// This bench measures time-to-detection for the APM-16020 fly-away with the
// full (P, alpha, M) state distance versus a position-only distance.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/checker.h"
#include "util/table.h"

using namespace avis;

namespace {

// Position-only variant of the paper's state distance.
double position_only_distance(const core::MonitorModel& model, const core::StateSample& a,
                              const core::StateSample& b) {
  const double d_len = static_cast<double>(model.mode_graph().diameter());
  return geo::euclidean_distance(a.position, b.position) * d_len /
         model.max_position_spread();
}

}  // namespace

int main() {
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  const core::MonitorModel& model = checker.model();

  // The APM-16020 scenario: GPS failure just after entering AUTO.
  sim::SimTimeMs inject_ms = 0;
  for (const auto& tr : model.golden_transitions()) {
    if (tr.mode_name == "auto-wp1") {
      inject_ms = tr.time_ms;
      break;
    }
  }
  core::ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 100;
  spec.plan.add(inject_ms, {sensors::SensorType::kGps, 0});
  spec.stop_on_violation = false;
  core::SimulationHarness harness;
  const auto result = harness.run(spec, nullptr);

  // Thresholds: tau for the full tuple; the position-only tau is the max
  // pairwise position-only distance across the profiling runs.
  double tau_pos = 0.0;
  for (std::size_t i = 0; i < model.profiling_run_count(); ++i) {
    for (std::size_t j = i + 1; j < model.profiling_run_count(); ++j) {
      for (sim::SimTimeMs t = 0; t < model.profiling_duration_ms();
           t += core::kSamplePeriodMs) {
        tau_pos = std::max(tau_pos, position_only_distance(model, model.profiling_state(i, t),
                                                           model.profiling_state(j, t)));
      }
    }
  }
  tau_pos = std::max(tau_pos, 0.5);

  auto detect = [&](auto&& distance, double tau) -> double {
    int consecutive = 0;
    for (const auto& sample : result.trace) {
      if (sample.time_ms < inject_ms) continue;
      bool violated = true;
      for (std::size_t i = 0; i < model.profiling_run_count(); ++i) {
        if (distance(sample, model.profiling_state(i, sample.time_ms)) <= tau) {
          violated = false;
          break;
        }
      }
      consecutive = violated ? consecutive + 1 : 0;
      if (consecutive >= 6) {
        return (sample.time_ms - inject_ms) / 1000.0;
      }
    }
    return -1.0;
  };

  const double t_full = detect(
      [&](const core::StateSample& a, const core::StateSample& b) {
        return model.state_distance(a, b);
      },
      model.tau());
  const double t_pos = detect(
      [&](const core::StateSample& a, const core::StateSample& b) {
        return position_only_distance(model, a, b);
      },
      tau_pos);

  std::cout << "== Ablation: liveliness detection latency (APM-16020 fly-away) ==\n\n";
  util::TextTable t({"state tuple", "threshold", "time to detect [s]"});
  t.add("(P, alpha, M)  [paper]", model.tau(), t_full < 0 ? -1.0 : t_full);
  t.add("position only", tau_pos, t_pos < 0 ? -1.0 : t_pos);
  t.render(std::cout);
  std::cout << "\npaper: the multi-variable tuple detects in seconds; position alone takes\n"
               "tens of seconds (the fly-away must physically travel before position\n"
               "diverges, while its acceleration and mode diverge immediately).\n";
  return 0;
}
