// Figure 3 + Findings 1-3 (paper §III): the empirical bug study.
#include <cstdio>
#include <iostream>

#include "study/bug_study.h"
#include "util/table.h"

int main() {
  using namespace avis;
  const auto corpus = study::build_corpus();
  const auto summary = study::summarize(corpus);

  std::printf("== Figure 3: Analysis of reported bugs for ArduPilot and PX4 ==\n");
  std::printf("corpus: %d analyzable reports (after pruning, paper SIII)\n\n", summary.total);

  {
    util::TextTable t({"(A) Type of bug", "all reports", "crash reports"});
    const char* names[] = {"Semantic", "Sensor", "Memory", "Other"};
    for (int i = 0; i < 4; ++i) {
      t.add(names[i], summary.by_root_cause[i], summary.crash_by_root_cause[i]);
    }
    t.render(std::cout);
  }
  std::printf("\n");
  {
    util::TextTable t({"(B) Sensor-bug manifestations", "count"});
    t.add("Default settings", summary.sensor_by_repro[0]);
    t.add("Custom env", summary.sensor_by_repro[1]);
    t.add("Custom env & hw", summary.sensor_by_repro[2]);
    t.render(std::cout);
  }
  std::printf("\n");
  {
    util::TextTable t({"(C) Sensor-bug outcomes", "count"});
    t.add("Crash/Fly away", summary.sensor_by_symptom[0]);
    t.add("Transient", summary.sensor_by_symptom[1]);
    t.add("No symptoms", summary.sensor_by_symptom[2]);
    t.render(std::cout);
  }

  std::printf(
      "\nFinding 1: sensor bugs are %.0f%% of all control-firmware bugs (paper: 20%%)\n",
      100.0 * summary.sensor_share());
  std::printf("           and %.0f%% of bugs that caused a crash (paper: 40%%)\n",
              100.0 * summary.sensor_share_of_crashes());
  std::printf("Finding 2: %.0f%% of sensor bugs reproduce under default settings (paper: 47%%)\n",
              100.0 * summary.sensor_default_repro_share());
  std::printf("Finding 3: %.0f%% of sensor bugs have serious symptoms (paper: 34%%)\n",
              100.0 * summary.sensor_serious_share());
  return 0;
}
