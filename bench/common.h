// Shared driver for the evaluation benches (paper §VI).
//
// Every table bench runs one or more of the four approaches — Avis (SABRE),
// Stratified BFI, BFI, Random — against a (personality, workload) pair for a
// two-hour-equivalent budget and aggregates the unsafe conditions found.
// The multi-cell benches build a campaign grid and run it through
// core::CampaignRunner, which shards whole cells across the machine on top
// of the per-cell experiment pool; cell reports are bit-identical to the
// serial run_cell loop (tests/test_campaign.cc).
#pragma once

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/campaign.h"
#include "core/checker.h"
#include "core/sabre.h"
#include "util/concurrency.h"
#include "util/table.h"

namespace avis::bench {

enum class Approach { kAvis = 0, kStratifiedBfi = 1, kBfi = 2, kRandom = 3 };

inline const char* to_string(Approach a) {
  switch (a) {
    case Approach::kAvis: return "Avis";
    case Approach::kStratifiedBfi: return "Strat. BFI";
    case Approach::kBfi: return "BFI";
    case Approach::kRandom: return "Random";
  }
  return "?";
}

// One process-wide Bayes model shared by every BFI-family cell. It is
// immutable after construction (scoring is the only API), so concurrent
// campaign cells can read it without synchronization; the magic-static
// guarantees thread-safe initialization even when the first two cells race
// to construct it.
inline const baselines::NaiveBayesModel& shared_bayes() {
  static const baselines::NaiveBayesModel model(baselines::default_training_corpus());
  return model;
}

inline std::unique_ptr<core::InjectionStrategy> make_strategy(
    Approach approach, const core::MonitorModel& model,
    const baselines::NaiveBayesModel& bayes, std::uint64_t seed) {
  const auto suite = core::SimulationHarness::iris_suite();
  switch (approach) {
    case Approach::kAvis:
      return std::make_unique<core::SabreScheduler>(suite, model.golden_transitions());
    case Approach::kStratifiedBfi:
      return std::make_unique<baselines::StratifiedBfi>(suite, model.golden_transitions(),
                                                        bayes);
    case Approach::kBfi: {
      baselines::ModeTimeline timeline(model.golden_transitions());
      return std::make_unique<baselines::BfiChecker>(suite, bayes, std::move(timeline), seed);
    }
    case Approach::kRandom:
      return std::make_unique<baselines::RandomInjection>(
          suite, model.profiling_duration_ms(), seed);
  }
  return nullptr;
}

struct CellResult {
  core::CheckerReport report;
  fw::Personality personality;
  workload::WorkloadId workload;
};

// Run one approach for one (personality, workload) cell under the paper's
// per-workload budget. `workers` > 1 dispatches experiment batches across a
// thread pool; the report is identical to the serial run (the parallel
// checker applies results in submission order — docs/PERFORMANCE.md), so
// table benches can use every core without perturbing their numbers. This
// is the serial reference the campaign parity test compares against.
inline CellResult run_cell(Approach approach, fw::Personality personality,
                           workload::WorkloadId workload, const fw::BugRegistry& bugs,
                           sim::SimTimeMs budget_ms = 7200 * 1000,
                           std::uint64_t seed = 100,
                           int workers = util::default_worker_count()) {
  core::Checker checker(personality, workload, bugs, seed);
  const core::MonitorModel& model = checker.model();
  auto strategy = make_strategy(approach, model, shared_bayes(), seed + 7);
  core::BudgetClock budget(budget_ms);
  CellResult cell{checker.run_parallel(*strategy, budget, workers), personality, workload};
  return cell;
}

// Campaign cell for a bench approach: the factory builds the strategy
// against the shared Bayes model exactly as run_cell does.
inline core::CampaignCellSpec make_cell(Approach approach, fw::Personality personality,
                                        workload::WorkloadId workload,
                                        const fw::BugRegistry& bugs,
                                        sim::SimTimeMs budget_ms = 7200 * 1000,
                                        std::uint64_t seed = 100) {
  core::CampaignCellSpec spec;
  spec.approach = to_string(approach);
  spec.personality = personality;
  spec.workload = workload;
  spec.bugs = bugs;
  spec.budget_ms = budget_ms;
  spec.seed = seed;
  spec.strategy_seed = seed + 7;
  spec.make_strategy = [approach](const core::MonitorModel& model, std::uint64_t strategy_seed) {
    return make_strategy(approach, model, shared_bayes(), strategy_seed);
  };
  return spec;
}

// The two default evaluation workloads (paper §V-A).
inline std::vector<workload::WorkloadId> evaluation_workloads() {
  return {workload::WorkloadId::kBoxManual, workload::WorkloadId::kFenceMission};
}

inline std::vector<fw::Personality> evaluation_personalities() {
  return {fw::Personality::kArduPilotLike, fw::Personality::kPx4Like};
}

// The full evaluation grid for a set of approaches: both firmware
// personalities x both default workloads per approach, in deterministic
// (approach, personality, workload) order — the iteration order the serial
// table benches used.
inline std::vector<core::CampaignCellSpec> evaluation_grid(
    const std::vector<Approach>& approaches, const fw::BugRegistry& bugs,
    sim::SimTimeMs budget_ms = 7200 * 1000, std::uint64_t seed = 100) {
  std::vector<core::CampaignCellSpec> grid;
  for (Approach approach : approaches) {
    for (fw::Personality personality : evaluation_personalities()) {
      for (workload::WorkloadId workload : evaluation_workloads()) {
        grid.push_back(make_cell(approach, personality, workload, bugs, budget_ms, seed));
      }
    }
  }
  return grid;
}

// Run a grid with the default worker split. Table benches typically follow
// up with print_campaign_footer below.
inline core::CampaignResult run_campaign(const std::vector<core::CampaignCellSpec>& grid) {
  return core::CampaignRunner().run(grid);
}

inline void print_campaign_footer(std::ostream& os, const core::CampaignResult& result) {
  os << "\ncampaign: " << result.cells.size() << " cells, "
     << result.split.campaign_workers << " concurrent ("
     << result.split.experiment_workers << " experiment worker"
     << (result.split.experiment_workers == 1 ? "" : "s") << "/cell), "
     << result.total_experiments() << " simulations in " << result.wall_seconds << " s wall\n";
}

}  // namespace avis::bench
