// Shared driver for the evaluation benches (paper §VI).
//
// Every table bench runs one or more of the four approaches — Avis (SABRE),
// Stratified BFI, BFI, Random — against a (personality, workload) pair for a
// two-hour-equivalent budget and aggregates the unsafe conditions found.
// Approaches, personalities, workloads and environments are registry names
// (core/scenario.h): a bench describes its grid as a list of ScenarioSpec
// cells and runs it through core::CampaignRunner, which shards whole cells
// across the machine on top of the per-cell experiment pool; cell reports
// are bit-identical to the serial run_cell loop (tests/test_campaign.cc).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/checker.h"
#include "core/scenario.h"
#include "util/concurrency.h"
#include "util/table.h"

namespace avis::bench {

// The four paper approaches, in Table I/III row order.
inline std::vector<std::string> paper_approaches() {
  return {"avis", "stratified-bfi", "bfi", "random"};
}

// Display label for a registry approach name ("avis" -> "Avis").
inline std::string label_of(const std::string& approach) {
  return core::approach_label(approach);
}

// The two default evaluation workloads (paper §V-A).
inline std::vector<std::string> evaluation_workloads() {
  return {"box-manual", "fence-mission"};
}

inline std::vector<std::string> evaluation_personalities() { return {"ardupilot", "px4"}; }

struct CellResult {
  core::CheckerReport report;
  core::ScenarioSpec scenario;
};

// Run one approach for one scenario cell under the paper's per-workload
// budget, serially constructed exactly as a campaign cell would be.
// `workers` > 1 dispatches experiment batches across a thread pool; the
// report is identical to the serial run (the parallel checker applies
// results in submission order — docs/PERFORMANCE.md), so table benches can
// use every core without perturbing their numbers. This is the serial
// reference the campaign parity test compares against.
inline CellResult run_cell(const core::ScenarioSpec& scenario,
                           int workers = util::default_worker_count()) {
  core::Checker checker(core::scenario_prototype(scenario));
  const core::MonitorModel& model = checker.model();
  auto strategy = core::make_scenario_strategy(scenario, model);
  core::BudgetClock budget(scenario.budget_ms);
  return CellResult{checker.run_parallel(*strategy, budget, workers), scenario};
}

// Campaign cell for a bench approach. `bugs` overrides the scenario's bug
// selector with an explicit population (table 5 re-inserts one known bug
// per cell); nullopt keeps the "current" Table II population.
inline core::CampaignCellSpec make_cell(std::string approach, std::string personality,
                                        std::string workload,
                                        std::optional<fw::BugRegistry> bugs = std::nullopt,
                                        sim::SimTimeMs budget_ms = 7200 * 1000,
                                        std::uint64_t seed = 100,
                                        std::string environment = "calm") {
  core::CampaignCellSpec cell;
  cell.scenario.approach = std::move(approach);
  cell.scenario.personality = std::move(personality);
  cell.scenario.workload = std::move(workload);
  cell.scenario.environment = std::move(environment);
  cell.scenario.budget_ms = budget_ms;
  cell.scenario.seed = seed;
  cell.scenario.strategy_seed = seed + 7;
  cell.bugs_override = std::move(bugs);
  return cell;
}

// The full evaluation grid for a set of approaches: both firmware
// personalities x both default workloads per approach, in deterministic
// (approach, personality, workload) order — the iteration order the serial
// table benches used.
inline std::vector<core::CampaignCellSpec> evaluation_grid(
    const std::vector<std::string>& approaches, sim::SimTimeMs budget_ms = 7200 * 1000,
    std::uint64_t seed = 100) {
  std::vector<core::CampaignCellSpec> grid;
  for (const std::string& approach : approaches) {
    for (const std::string& personality : evaluation_personalities()) {
      for (const std::string& workload : evaluation_workloads()) {
        grid.push_back(make_cell(approach, personality, workload, std::nullopt, budget_ms,
                                 seed));
      }
    }
  }
  return grid;
}

// Run a grid with the default worker split. Table benches typically follow
// up with print_campaign_footer below.
inline core::CampaignResult run_campaign(const std::vector<core::CampaignCellSpec>& grid) {
  return core::CampaignRunner().run(grid);
}

inline void print_campaign_footer(std::ostream& os, const core::CampaignResult& result) {
  os << "\ncampaign: " << result.cells.size() << " cells, "
     << result.split.campaign_workers << " concurrent ("
     << result.split.experiment_workers << " experiment worker"
     << (result.split.experiment_workers == 1 ? "" : "s") << "/cell, batch width "
     << result.batch_width << "), " << result.total_experiments() << " simulations in "
     << result.wall_seconds << " s wall\n";
}

}  // namespace avis::bench
