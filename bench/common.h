// Shared driver for the evaluation benches (paper §VI).
//
// Every table bench runs one or more of the four approaches — Avis (SABRE),
// Stratified BFI, BFI, Random — against a (personality, workload) pair for a
// two-hour-equivalent budget and aggregates the unsafe conditions found.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/checker.h"
#include "core/sabre.h"
#include "util/concurrency.h"
#include "util/table.h"

namespace avis::bench {

enum class Approach { kAvis = 0, kStratifiedBfi = 1, kBfi = 2, kRandom = 3 };

inline const char* to_string(Approach a) {
  switch (a) {
    case Approach::kAvis: return "Avis";
    case Approach::kStratifiedBfi: return "Strat. BFI";
    case Approach::kBfi: return "BFI";
    case Approach::kRandom: return "Random";
  }
  return "?";
}

inline std::unique_ptr<core::InjectionStrategy> make_strategy(
    Approach approach, const core::MonitorModel& model,
    const baselines::NaiveBayesModel& bayes, std::uint64_t seed) {
  const auto suite = core::SimulationHarness::iris_suite();
  switch (approach) {
    case Approach::kAvis:
      return std::make_unique<core::SabreScheduler>(suite, model.golden_transitions());
    case Approach::kStratifiedBfi:
      return std::make_unique<baselines::StratifiedBfi>(suite, model.golden_transitions(),
                                                        bayes);
    case Approach::kBfi: {
      baselines::ModeTimeline timeline(model.golden_transitions());
      return std::make_unique<baselines::BfiChecker>(suite, bayes, std::move(timeline), seed);
    }
    case Approach::kRandom:
      return std::make_unique<baselines::RandomInjection>(
          suite, model.profiling_duration_ms(), seed);
  }
  return nullptr;
}

struct CellResult {
  core::CheckerReport report;
  fw::Personality personality;
  workload::WorkloadId workload;
};

// Run one approach for one (personality, workload) cell under the paper's
// per-workload budget. `workers` > 1 dispatches experiment batches across a
// thread pool; the report is identical to the serial run (the parallel
// checker applies results in submission order — docs/PERFORMANCE.md), so
// table benches can use every core without perturbing their numbers.
inline CellResult run_cell(Approach approach, fw::Personality personality,
                           workload::WorkloadId workload, const fw::BugRegistry& bugs,
                           sim::SimTimeMs budget_ms = 7200 * 1000,
                           std::uint64_t seed = 100,
                           int workers = util::default_worker_count()) {
  static baselines::NaiveBayesModel bayes(baselines::default_training_corpus());
  core::Checker checker(personality, workload, bugs, seed);
  const core::MonitorModel& model = checker.model();
  auto strategy = make_strategy(approach, model, bayes, seed + 7);
  core::BudgetClock budget(budget_ms);
  CellResult cell{checker.run_parallel(*strategy, budget, workers), personality, workload};
  return cell;
}

// The two default evaluation workloads (paper §V-A).
inline std::vector<workload::WorkloadId> evaluation_workloads() {
  return {workload::WorkloadId::kBoxManual, workload::WorkloadId::kFenceMission};
}

}  // namespace avis::bench
