// Figure 6 (paper §IV-B-1): sensor-instance symmetry pruning.
//
// For a vehicle with N instances of one sensor type, symmetry reduces the
// N x (2^N - 1) instance-level failure scenarios to the 2N - 1 role-distinct
// ones. The paper's running example (3 compasses) drops from 21 to 5.
#include <iostream>

#include "core/canonical.h"
#include "util/table.h"

int main() {
  using namespace avis;

  std::cout << "== Figure 6: sensor-instance symmetry ==\n\n";

  util::TextTable t({"instances N", "unreduced N*(2^N-1)", "canonical 2N-1", "reduction"});
  for (int n = 1; n <= 6; ++n) {
    const long long unreduced = core::unreduced_count(n);
    const int canonical = core::canonical_count(n);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", static_cast<double>(unreduced) / canonical);
    t.add(n, unreduced, canonical, ratio);
  }
  t.render(std::cout);

  // Walk the paper's example concretely: 3 compasses P, B1, B2.
  sensors::SuiteConfig compass_only;
  compass_only.gyroscopes = 0;
  compass_only.accelerometers = 0;
  compass_only.barometers = 0;
  compass_only.gpses = 0;
  compass_only.compasses = 3;
  compass_only.batteries = 0;

  std::cout << "\n3-compass example (paper's P / B1 / B2): canonical failure sets simulated:\n";
  int total = 0;
  for (int size = 1; size <= 3; ++size) {
    for (const auto& set : core::canonical_sets_of_size(compass_only, size)) {
      std::cout << "  {";
      for (std::size_t i = 0; i < set.size(); ++i) {
        if (i) std::cout << ", ";
        std::cout << (set[i].instance == 0 ? "P" : (set[i].instance == 1 ? "B1" : "B2"));
      }
      std::cout << "}\n";
      ++total;
    }
  }
  std::cout << "total canonical sets: " << total << " (paper: 5; unreduced: 7 subsets x 3 "
            << "instance choices = 21 checks)\n";
  return 0;
}
