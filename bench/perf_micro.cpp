// Microbenchmarks (google-benchmark): throughput of the pieces the checker
// loop leans on. The paper's test throughput depends on simulation speed;
// these quantify this implementation's costs.
#include <benchmark/benchmark.h>

#include "core/checker.h"
#include "core/sabre.h"
#include "fuzz/fuzzer.h"
#include "fw/estimator_batch.h"
#include "fw/firmware.h"
#include "sensors/suite_batch.h"
#include "hinj/messages.h"
#include "mavlink/codec.h"
#include "sim/simulator.h"

using namespace avis;

static void BM_SimulatorStep(benchmark::State& state) {
  sim::Simulator simulator(sim::Environment{}, sim::QuadcopterParams{}, 1);
  sim::MotorCommands hover;
  for (double& v : hover.value) v = 0.497;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step(hover));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorStep);

static void BM_FullFirmwareStep(benchmark::State& state) {
  util::Rng seeds(7);
  sensors::SensorSuite suite(core::SimulationHarness::iris_suite(), seeds);
  hinj::NullDirector director;
  hinj::Server server(director);
  hinj::Client client(server);
  mavlink::Channel channel;
  fw::SensorBus bus(suite, client);
  sim::Environment env;
  fw::Firmware firmware(fw::FirmwareConfig::ardupilot(), bus, client, channel.vehicle(), env);
  sim::Simulator simulator(env, sim::QuadcopterParams{}, 1);
  sim::SimTimeMs now = 0;
  for (auto _ : state) {
    const auto motors = firmware.step(++now, simulator.state());
    simulator.step(motors);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullFirmwareStep);

// Batched lockstep inner loop: SuiteBatch reads + EstimatorBatch fusion for
// N lanes at 1 kHz — the hot sensing/fusion phase core::BatchHarness runs
// between per-lane control phases. items/s is lane-steps per second, so the
// structure-of-arrays win over the scalar sensing path (BM_FullFirmwareStep
// carries it plus control) reads off the width-1 vs width-4/8 rows.
static void BM_BatchStep(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  util::Rng seeds(7);
  sensors::SensorSuite scalar_suite(core::SimulationHarness::iris_suite(), seeds);
  sensors::SuiteBatch suite(core::SimulationHarness::iris_suite(), width);
  fw::EstimatorBatch estimator(width);
  std::vector<sim::VehicleState> truth(static_cast<std::size_t>(width));
  sim::Environment env;
  std::vector<const sim::Environment*> envs(static_cast<std::size_t>(width), &env);
  std::vector<int> lanes(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    suite.pack(k, scalar_suite.save());
    estimator.pack(k, fw::StateEstimator::Snapshot{});
    lanes[static_cast<std::size_t>(k)] = k;
  }
  sim::SimTimeMs now = 0;
  for (auto _ : state) {
    estimator.step(++now, suite, truth.data(), envs.data(), lanes.data(), width);
    benchmark::DoNotOptimize(estimator.fused(0));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BatchStep)->Arg(1)->Arg(4)->Arg(8);

static void BM_HinjRoundTrip(benchmark::State& state) {
  hinj::NullDirector director;
  hinj::Server server(director);
  hinj::Client client(server);
  const sensors::SensorId id{sensors::SensorType::kGyroscope, 0};
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.sensor_read(id, ++t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HinjRoundTrip);

// Provisioning cost of one experiment with and without a reusable arena.
// Short runs (2 s simulated) make the per-run constant visible: Arg(0)
// rebuilds the simulator/suite/firmware/channel from scratch every
// iteration, Arg(1) resets one ExperimentContext in place. The results are
// bit-identical (tests/test_harness.cc); only the provisioning cost moves.
static void BM_ExperimentArenaReuse(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  core::SimulationHarness harness;
  core::ExperimentContext context;
  core::ExperimentSpec spec;
  spec.max_duration_ms = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.run(spec, nullptr, reuse ? &context : nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExperimentArenaReuse)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

static void BM_MavlinkRoundTrip(benchmark::State& state) {
  mavlink::GlobalPositionInt gp;
  gp.position = {40.0, -83.0, 220.0};
  gp.velocity_ned = {1.0, 2.0, -0.5};
  std::uint8_t seq = 0;
  for (auto _ : state) {
    auto bytes = mavlink::pack(gp, seq++, 1, 1);
    benchmark::DoNotOptimize(mavlink::unpack(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MavlinkRoundTrip);

static void BM_StateDistance(benchmark::State& state) {
  // Calibrate once on the quick auto workload.
  static core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                               fw::BugRegistry::current_code_base());
  const core::MonitorModel& model = checker.model();
  const core::StateSample a = model.profiling_state(0, 5000);
  const core::StateSample b = model.profiling_state(1, 15000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.state_distance(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateDistance);

static void BM_ScheduledDirectorShouldFail(benchmark::State& state) {
  // A three-event plan, queried for both a sensor the plan touches and one
  // it does not — the shape of every per-step sensor read in the harness.
  core::FaultPlan plan;
  plan.add(30000, {sensors::SensorType::kCompass, 1});
  plan.add(45000, {sensors::SensorType::kGps, 0});
  plan.add(60000, {sensors::SensorType::kBattery, 0});
  core::ScheduledDirector director(plan);
  const sensors::SensorId gyro{sensors::SensorType::kGyroscope, 0};
  const sensors::SensorId compass{sensors::SensorType::kCompass, 1};
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(director.should_fail(gyro, ++t));
    benchmark::DoNotOptimize(director.should_fail(compass, t));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ScheduledDirectorShouldFail);

static void BM_SabreNext(benchmark::State& state) {
  std::vector<core::ModeTransition> transitions{
      {1000, 0x0400, "takeoff"}, {9000, 0x0501, "auto-wp1"}, {15000, 0x0900, "land"}};
  for (auto _ : state) {
    state.PauseTiming();
    core::SabreScheduler sabre(core::SimulationHarness::iris_suite(), transitions);
    core::BudgetClock budget(3600 * 1000);
    state.ResumeTiming();
    for (int i = 0; i < 50; ++i) {
      auto plan = sabre.next(budget);
      if (!plan) break;
      core::ExperimentResult ok;
      ok.workload_passed = true;
      sabre.feedback(*plan, ok);
    }
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_SabreNext);

// The in-flight plan table: feedback() and proposal-time pruning look
// pending plans up by signature. Proposing a long run of waves without
// feedback (the worst case run_parallel creates: a wide batch in flight)
// grows the table; the feedbacks then measure lookup + erase cost. With the
// signature-keyed map this is O(1) per feedback instead of a linear scan
// that recomputed every pending plan's signature string.
static void BM_SabrePendingFeedback(benchmark::State& state) {
  std::vector<core::ModeTransition> transitions;
  for (int i = 0; i < 40; ++i) {
    transitions.push_back({1000 + i * 1000, 0x0400, "takeoff"});
  }
  core::ExperimentResult ok;
  ok.workload_passed = true;
  std::int64_t fed_back = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::SabreScheduler sabre(core::SimulationHarness::iris_suite(), transitions);
    core::BudgetClock budget(3600 * 1000);
    std::vector<core::FaultPlan> proposed;
    proposed.reserve(200);
    for (int i = 0; i < 200; ++i) {
      auto plan = sabre.next(budget);
      if (!plan) break;
      proposed.push_back(std::move(*plan));
    }
    state.ResumeTiming();
    for (const auto& plan : proposed) sabre.feedback(plan, ok);
    fed_back += static_cast<std::int64_t>(proposed.size());
  }
  state.SetItemsProcessed(fed_back);
}
BENCHMARK(BM_SabrePendingFeedback);

// Checkpoint-tree store lookups: resolve() against a root (30 snapshots)
// plus Arg(0) merged two-event chain recordings. Each iteration resolves a
// depth-1 extension, a depth-2 extension and a tree miss (root fallback) —
// the three shapes every provisioned experiment pays exactly once. The
// prefix-signature buckets keep this flat in the number of recordings; a
// per-experiment cost that scaled with tree size would eat the restore win
// on long campaigns.
static void BM_CheckpointTree(benchmark::State& state) {
  const int recordings = static_cast<int>(state.range(0));
  const sensors::SensorId compass{sensors::SensorType::kCompass, 0};
  const sensors::SensorId gps{sensors::SensorType::kGps, 0};
  const sensors::SensorId baro{sensors::SensorType::kBarometer, 0};
  core::CheckpointStore store{core::CheckpointConfig{}};
  store.begin(core::ExperimentSpec{}, false);
  for (sim::SimTimeMs t = 1000; t <= 30000; t += 1000) {
    core::ExperimentSnapshot snap;
    snap.time_ms = t;
    store.add(std::move(snap));
  }
  store.finish(core::ExperimentResult{});
  for (int r = 0; r < recordings; ++r) {
    core::FaultPlan plan;
    plan.add(10000 + r, compass);
    plan.add(20000 + r, gps);
    std::vector<core::ExperimentSnapshot> snaps;
    for (sim::SimTimeMs t = 11000 + r; t <= 26000; t += 1000) {
      core::ExperimentSnapshot snap;
      snap.time_ms = t;
      snaps.push_back(std::move(snap));
    }
    store.merge_run(plan, std::move(snaps), {}, {});
  }
  const int mid = recordings / 2;
  core::FaultPlan shallow;  // extends {compass} before its gps event: depth 1
  shallow.add(10000 + mid, compass);
  shallow.add(18000, baro);
  core::FaultPlan deep;  // extends the full {compass, gps} chain: depth 2
  deep.add(10000 + mid, compass);
  deep.add(20000 + mid, gps);
  deep.add(26000, baro);
  core::FaultPlan miss;  // no recorded ancestor: falls back to the root
  miss.add(5000, baro);
  miss.add(15000, gps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.resolve(shallow));
    benchmark::DoNotOptimize(store.resolve(deep));
    benchmark::DoNotOptimize(store.resolve(miss));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_CheckpointTree)->Arg(8)->Arg(64);

// One fuzz generation end to end (docs/FUZZING.md): seed evaluation plus one
// round of mutate -> evaluate -> admit over a single-cell grid. Dominated by
// the mutant simulations; the gate catches regressions in the fuzz loop's
// bookkeeping and in the campaign path it drives.
static void BM_FuzzGeneration(benchmark::State& state) {
  core::ScenarioGrid grid;
  grid.approaches = {"avis"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"box-manual"};
  grid.environments = {"calm"};
  grid.budget_ms = 15000;
  fuzz::FuzzOptions options;
  options.generations = 1;
  options.mutants_per_generation = 4;
  options.seed = 21;
  options.campaign.total_workers = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::run_fuzz(grid, options));
  }
  state.SetItemsProcessed(state.iterations() * (1 + options.mutants_per_generation));
}
BENCHMARK(BM_FuzzGeneration)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
