// Figure 10 (paper §VI-A): APM-16967 — a compass fault between waypoints
// makes the firmware keep reading old compass state; it loses its heading,
// the land fail-safe activates, the state estimate is reset near the end of
// the landing, and the vehicle crashes.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/harness.h"

int main() {
  using namespace avis;

  core::SimulationHarness harness;

  core::ExperimentSpec golden_spec;
  golden_spec.personality = fw::Personality::kArduPilotLike;
  golden_spec.workload = workload::WorkloadId::kFenceMission;
  golden_spec.seed = 100;
  std::vector<double> golden_alt;
  harness.set_step_hook([&](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware&) {
    if (t % 200 == 0) golden_alt.push_back(s.altitude());
  });
  const auto golden = harness.run(golden_spec, nullptr);

  // Inject a primary-compass fault just after waypoint 1 is reached (the
  // paper's event 1: "compass fault injected" in the auto mode body).
  sim::SimTimeMs inject_ms = 0;
  for (const auto& tr : golden.transitions) {
    if (tr.mode_name == "auto-wp2") {
      inject_ms = tr.time_ms + 300;
      break;
    }
  }
  core::ExperimentSpec fault_spec = golden_spec;
  fault_spec.plan.add(inject_ms, {sensors::SensorType::kCompass, 0});

  std::vector<double> fault_alt;
  std::vector<std::string> fault_mode;
  bool crashed = false;
  sim::SimTimeMs crash_ms = 0;
  harness.set_step_hook([&](sim::SimTimeMs t, const sim::VehicleState& s, const fw::Firmware& f) {
    if (t % 200 == 0) {
      fault_alt.push_back(s.altitude());
      fault_mode.push_back(f.composite_mode().name());
    }
    if (s.crashed && !crashed) {
      crashed = true;
      crash_ms = t;
    }
  });
  const auto fault = harness.run(fault_spec, nullptr);

  std::cout << "== Figure 10: APM-16967 sequence of events ==\n";
  std::cout << "compass fault injected at t=" << inject_ms / 1000.0
            << "s (just after waypoint 1)\n\n";
  std::cout << "t[s], golden_alt[m], fault_alt[m], fault_mode\n";
  const std::size_t n = std::max(golden_alt.size(), fault_alt.size());
  for (std::size_t i = 0; i < n; i += 5) {
    const double g = i < golden_alt.size() ? golden_alt[i] : golden_alt.back();
    const double a = i < fault_alt.size() ? fault_alt[i] : fault_alt.back();
    const std::string m = i < fault_mode.size() ? fault_mode[i] : fault_mode.back();
    std::printf("%5.1f, %6.2f, %6.2f, %s\n", i * 0.2, g, a, m.c_str());
  }

  std::cout << "\nevents: (1) compass fault at " << inject_ms / 1000.0
            << "s  (2) old compass state read; heading estimate lost  (3) emergency land"
            << "  (4) state estimate reset near end of landing  (5) "
            << (crashed ? "crash at t=" + std::to_string(crash_ms / 1000.0) + "s ("
                              + sim::to_string(fault.crash_cause) + ")"
                        : "no crash (unexpected)")
            << "\n";
  std::cout << "fired bugs:";
  for (fw::BugId id : fault.fired_bugs) std::cout << " " << fw::bug_info(id).report_name;
  std::cout << "\n";
  return 0;
}
