// Coverage-guided scenario fuzzing (src/fuzz/, docs/FUZZING.md).
//
// Contracts under test:
//  * coverage keys combine mode-graph edges with the plan's injection-window
//    bucket, and accumulate only across *distinct* consecutive mode ids;
//  * the mutation engine stays inside the registries and constraint bounds —
//    a mutant always passes ScenarioSpec::validate(), and the fuzz-identity
//    fields (approach, bugs, budget, seeds) are never touched;
//  * the corpus admits exactly the entries that reach new coverage keys,
//    dedups by coverage signature, evicts dominated entries, and dumps as a
//    ScenarioGrid document that loads back to the same specs;
//  * the strategies enforce FaultPlanConstraints: RandomInjection samples
//    inside the window from allowed types only, SABRE emits nothing outside
//    the window or the type mask;
//  * the fuzz loop is deterministic — the same seed yields a byte-identical
//    corpus document and an equal coverage map at any worker count — and a
//    fixed-seed run discovers a scenario outside the seed grid reaching a
//    coverage key no seed cell reaches, whose dumped spec replays
//    report-identically through the ordinary campaign path.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baselines/bayes_model.h"
#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/budget.h"
#include "core/coverage.h"
#include "core/harness.h"
#include "core/sabre.h"
#include "core/scenario.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "test_helpers.h"
#include "util/registry.h"

namespace {

using namespace avis;

// --- Coverage keys ---------------------------------------------------------

TEST(Coverage, AccumulatesDistinctEdgesUnderWindowBucket) {
  core::FaultPlan plan;
  plan.add(12500, {sensors::SensorType::kGps, 0});  // bucket 12500 / 5000 = 2
  std::vector<core::ModeTransition> transitions = {
      {0, 10, "a"}, {1000, 20, "b"}, {2000, 20, "b"}, {3000, 10, "a"}, {4000, 20, "b"},
  };
  core::CoverageMap map;
  core::accumulate_run_coverage(map, plan, transitions);
  ASSERT_EQ(map.size(), 2u);  // 10->20 (twice), 20->10; the 20->20 repeat is no edge
  EXPECT_EQ((map[core::CoverageKey{10, 20, 2}]), 2);
  EXPECT_EQ((map[core::CoverageKey{20, 10, 2}]), 1);
  EXPECT_EQ(core::coverage_key_string(core::CoverageKey{10, 20, 2}), "10->20@w2");
}

TEST(Coverage, EmptyPlanBucketsToMinusOne) {
  core::FaultPlan plan;
  std::vector<core::ModeTransition> transitions = {{0, 1, "a"}, {100, 2, "b"}};
  core::CoverageMap map;
  core::accumulate_run_coverage(map, plan, transitions);
  ASSERT_TRUE(map.contains(core::CoverageKey{1, 2, -1}));
  EXPECT_EQ(core::coverage_window_bucket(core::FaultPlan::kNever), -1);
}

TEST(Coverage, SubsetIgnoresCounts) {
  core::CoverageMap small{{core::CoverageKey{1, 2, 0}, 5}};
  core::CoverageMap big{{core::CoverageKey{1, 2, 0}, 1}, {core::CoverageKey{2, 3, 1}, 1}};
  EXPECT_TRUE(core::coverage_keys_subset(small, big));
  EXPECT_FALSE(core::coverage_keys_subset(big, small));
}

// --- Mutation engine -------------------------------------------------------

TEST(Mutator, MutantsAreValidByConstructionAndKeepIdentityFields) {
  core::ScenarioSpec seed;  // defaults: avis / ardupilot / box-manual / calm
  util::Rng rng(42);
  const fuzz::MutationConfig config;
  for (int i = 0; i < 300; ++i) {
    const core::ScenarioSpec mutant = fuzz::mutate(rng, seed, config);
    ASSERT_NO_THROW(mutant.validate()) << "mutant " << i << ": " << mutant.to_json();
    // Fuzz-identity fields never move.
    EXPECT_EQ(mutant.approach, seed.approach);
    EXPECT_EQ(mutant.bugs, seed.bugs);
    EXPECT_EQ(mutant.budget_ms, seed.budget_ms);
    EXPECT_EQ(mutant.seed, seed.seed);
    EXPECT_EQ(mutant.strategy_seed, seed.strategy_seed);
    // Constraint perturbations stay inside the configured bounds.
    EXPECT_GE(mutant.constraints.max_set_size, config.set_size.lo);
    EXPECT_LE(mutant.constraints.max_set_size, config.set_size.hi);
    EXPECT_GE(mutant.constraints.max_plan_events, config.plan_events.lo);
    EXPECT_LE(mutant.constraints.max_plan_events, config.plan_events.hi);
    EXPECT_EQ(mutant.constraints.window_start_ms % config.window_grid_ms, 0);
    EXPECT_EQ(mutant.constraints.window_end_ms % config.window_grid_ms, 0);
  }
}

TEST(Mutator, SameSeedSameMutationSequence) {
  core::ScenarioSpec seed;
  util::Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fuzz::mutate(a, seed).to_json(), fuzz::mutate(b, seed).to_json()) << i;
  }
}

// --- Corpus manager --------------------------------------------------------

fuzz::CorpusEntry entry_with(std::vector<core::CoverageKey> keys, sim::SimTimeMs mark) {
  fuzz::CorpusEntry entry;
  // A distinguishable spec per entry, so eviction is observable.
  entry.spec.constraints.window_start_ms = mark;
  entry.spec.constraints.window_end_ms = mark + 5000;
  entry.root = entry.spec;
  for (const core::CoverageKey& key : keys) entry.coverage[key] = 1;
  return entry;
}

TEST(Corpus, AdmitsOnlyNewCoverageAndEvictsDominated) {
  fuzz::Corpus corpus;
  const core::CoverageKey a{1, 2, 0}, b{2, 3, 0}, c{3, 4, 1};
  ASSERT_TRUE(corpus.consider(entry_with({a}, 5000)));
  EXPECT_EQ(corpus.entries()[0].new_keys, (std::vector<core::CoverageKey>{a}));

  // Same coverage signature: rejected (dedup), corpus untouched.
  EXPECT_FALSE(corpus.consider(entry_with({a}, 10000)));
  EXPECT_EQ(corpus.entries().size(), 1u);

  // Superset coverage: admitted, dominates and evicts the first entry.
  ASSERT_TRUE(corpus.consider(entry_with({a, b}, 15000)));
  ASSERT_EQ(corpus.entries().size(), 1u);
  EXPECT_EQ(corpus.entries()[0].spec.constraints.window_start_ms, 15000);
  EXPECT_EQ(corpus.entries()[0].new_keys, (std::vector<core::CoverageKey>{b}));
  EXPECT_EQ(corpus.evicted(), 1);

  // Disjoint coverage: admitted alongside.
  ASSERT_TRUE(corpus.consider(entry_with({c}, 20000)));
  EXPECT_EQ(corpus.entries().size(), 2u);
  EXPECT_EQ(corpus.coverage_union().size(), 3u);
}

TEST(Corpus, DumpsAsScenarioGridThatLoadsBack) {
  fuzz::Corpus corpus;
  ASSERT_TRUE(corpus.consider(entry_with({core::CoverageKey{1, 2, 0}}, 5000)));
  ASSERT_TRUE(corpus.consider(entry_with({core::CoverageKey{2, 3, 4}}, 25000)));
  const std::string json = corpus.to_scenario_grid_json();
  // Byte-stable: serializing the same corpus twice is identical.
  EXPECT_EQ(json, corpus.to_scenario_grid_json());
  const std::vector<core::ScenarioSpec> loaded = fuzz::Corpus::load_specs(json);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], corpus.entries()[0].spec);
  EXPECT_EQ(loaded[1], corpus.entries()[1].spec);
}

// --- Constraint enforcement ------------------------------------------------

TEST(Constraints, RoundTripsThroughJsonAndRejectsUnknownFaultType) {
  core::ScenarioSpec spec;
  spec.constraints.window_start_ms = 15000;
  spec.constraints.window_end_ms = 30000;
  spec.constraints.fault_types = {"GPS", "barometer"};
  const core::ScenarioSpec parsed = core::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(parsed, spec);

  core::ScenarioSpec bad = spec;
  bad.constraints.fault_types = {"gps"};  // names are sensors::to_string, case-exact
  EXPECT_THROW(bad.validate(), util::UnknownNameError);
  EXPECT_THROW(core::resolve_fault_type("sonar"), util::UnknownNameError);

  core::ScenarioSpec inverted = spec;
  inverted.constraints.window_end_ms = 10000;  // ends before it starts
  EXPECT_THROW(inverted.validate(), util::InvariantError);
}

TEST(Constraints, FaultTypeMaskCoversAllWhenEmpty) {
  EXPECT_EQ(core::fault_type_mask({}), (1u << sensors::kAllSensorTypes.size()) - 1);
  EXPECT_EQ(core::fault_type_mask({"GPS"}),
            1u << static_cast<unsigned>(sensors::SensorType::kGps));
}

TEST(Constraints, RandomInjectionSamplesInsideWindowFromAllowedTypes) {
  const sensors::SuiteConfig suite;
  const std::uint32_t gps_only = core::fault_type_mask({"GPS"});
  baselines::RandomInjection strategy(suite, 120000, 9, 30000, 60000, gps_only);
  core::BudgetClock budget(1000000);
  int plans = 0;
  while (auto plan = strategy.next(budget)) {
    for (const core::FaultEvent& event : plan->events) {
      EXPECT_GE(event.time_ms, 30000);
      EXPECT_LT(event.time_ms, 60000);
      EXPECT_EQ(event.sensor.type, sensors::SensorType::kGps);
    }
    if (++plans >= 200) break;
  }
  EXPECT_GT(plans, 0);
}

TEST(Constraints, SabreEmitsOnlyInsideWindowAndTypeMask) {
  const sensors::SuiteConfig suite;
  // Synthetic golden transitions straddling the window boundary.
  std::vector<core::ModeTransition> golden = {
      {0, 1, "preflight"}, {10000, 2, "takeoff"}, {40000, 3, "cruise"}, {90000, 4, "land"},
  };
  core::SabreConfig config;
  config.window_start_ms = 30000;
  config.window_end_ms = 60000;
  config.allowed_type_mask = core::fault_type_mask({"GPS", "compass"});
  core::SabreScheduler strategy(suite, golden, config);
  core::BudgetClock budget(10000000);
  int plans = 0;
  while (auto plan = strategy.next(budget)) {
    for (const core::FaultEvent& event : plan->events) {
      EXPECT_GE(event.time_ms, 30000) << plan->signature();
      EXPECT_LE(event.time_ms, 60000) << plan->signature();
      EXPECT_TRUE(event.sensor.type == sensors::SensorType::kGps ||
                  event.sensor.type == sensors::SensorType::kCompass)
          << plan->signature();
    }
    if (++plans >= 500) break;
  }
  EXPECT_GT(plans, 0);
}

// BFI honours the same FaultPlanConstraints contract as RandomInjection:
// both the DFS enumeration and the occasional exploratory draw stay inside
// [window_start, min(window_end, duration)) and touch only allowed sensor
// types. run_threshold 0 removes the model gate so plans actually flow.
TEST(Constraints, BfiEnumeratesOnlyInsideWindowFromAllowedTypes) {
  const baselines::NaiveBayesModel model(baselines::default_training_corpus());
  std::vector<core::ModeTransition> golden = {
      {0, 1, "preflight"}, {10000, 2, "takeoff"}, {40000, 3, "cruise"}, {90000, 4, "land"},
  };
  baselines::BfiConfig config;
  config.run_threshold = 0.0;  // every labeled candidate becomes a plan
  config.epsilon = 0.3;        // exercise the exploratory path too
  config.window_start_ms = 30000;
  config.window_end_ms = 60000;
  config.allowed_type_mask = core::fault_type_mask({"GPS"});
  baselines::BfiChecker bfi(core::SimulationHarness::iris_suite(), model,
                            baselines::ModeTimeline(golden), 9, config);
  core::BudgetClock budget(1000000);
  int plans = 0;
  while (auto plan = bfi.next(budget)) {
    for (const core::FaultEvent& event : plan->events) {
      EXPECT_GE(event.time_ms, 30000) << plan->signature();
      EXPECT_LT(event.time_ms, 60000) << plan->signature();
      EXPECT_EQ(event.sensor.type, sensors::SensorType::kGps) << plan->signature();
    }
    if (++plans >= 200) break;
  }
  EXPECT_GT(plans, 0);
}

// With the defaults (no window, all types) the constrained BFI reproduces
// the historical plan sequence bit for bit — the constraint machinery must
// be invisible when unused.
TEST(Constraints, BfiDefaultsReproduceUnconstrainedSequence) {
  const baselines::NaiveBayesModel model(baselines::default_training_corpus());
  std::vector<core::ModeTransition> golden = {{0, 1, "preflight"}, {3540, 2, "takeoff"}};
  baselines::BfiConfig permissive;
  permissive.run_threshold = 0.0;
  baselines::BfiConfig spelled_out = permissive;
  spelled_out.window_start_ms = 0;
  spelled_out.window_end_ms = 0;
  spelled_out.allowed_type_mask = 0xffffffffu;
  baselines::BfiChecker a(core::SimulationHarness::iris_suite(), model,
                          baselines::ModeTimeline(golden), 9, permissive);
  baselines::BfiChecker b(core::SimulationHarness::iris_suite(), model,
                          baselines::ModeTimeline(golden), 9, spelled_out);
  core::BudgetClock budget_a(500000), budget_b(500000);
  for (int i = 0; i < 40; ++i) {
    auto pa = a.next(budget_a);
    auto pb = b.next(budget_b);
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    EXPECT_EQ(pa->signature(), pb->signature()) << "plan " << i;
  }
}

// Stratified BFI inherits the constraints through its embedded SABRE
// scheduler: every candidate the model gates came from a constraint-
// respecting proposer, so nothing outside the window or mask can leak out.
TEST(Constraints, StratifiedBfiInheritsSabreConstraints) {
  const baselines::NaiveBayesModel model(baselines::default_training_corpus());
  std::vector<core::ModeTransition> golden = {
      {0, 1, "preflight"}, {10000, 2, "takeoff"}, {40000, 3, "cruise"}, {90000, 4, "land"},
  };
  core::SabreConfig sabre_config;
  sabre_config.window_start_ms = 30000;
  sabre_config.window_end_ms = 60000;
  sabre_config.allowed_type_mask = core::fault_type_mask({"GPS", "compass"});
  baselines::StratifiedBfi sbfi(core::SimulationHarness::iris_suite(), golden, model,
                                /*run_threshold=*/0.0, sabre_config);
  core::BudgetClock budget(10000000);
  int plans = 0;
  while (auto plan = sbfi.next(budget)) {
    for (const core::FaultEvent& event : plan->events) {
      EXPECT_GE(event.time_ms, 30000) << plan->signature();
      EXPECT_LE(event.time_ms, 60000) << plan->signature();
      EXPECT_TRUE(event.sensor.type == sensors::SensorType::kGps ||
                  event.sensor.type == sensors::SensorType::kCompass)
          << plan->signature();
    }
    if (++plans >= 500) break;
  }
  EXPECT_GT(plans, 0);
}

// --- The fuzz loop ---------------------------------------------------------

core::ScenarioGrid fuzz_seed_grid() {
  core::ScenarioGrid grid;
  grid.approaches = {"avis"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"box-manual"};
  grid.environments = {"calm"};
  // Large enough that SABRE gets past its t=0 wave and traverses mode
  // edges; small enough for a test (roughly a dozen experiments per cell).
  grid.budget_ms = 200000;
  return grid;
}

fuzz::FuzzOptions fuzz_test_options(int total_workers) {
  fuzz::FuzzOptions options;
  options.generations = 3;
  options.mutants_per_generation = 4;
  options.seed = 11;
  options.campaign.total_workers = total_workers;
  return options;
}

TEST(Fuzz, DeterministicCorpusDiscoversNovelCoverageAndReplays) {
  const core::ScenarioGrid grid = fuzz_seed_grid();
  const fuzz::FuzzResult first = fuzz::run_fuzz(grid, fuzz_test_options(2));
  const fuzz::FuzzResult second = fuzz::run_fuzz(grid, fuzz_test_options(4));

  // Same seed => byte-identical corpus document and equal coverage map, at
  // any worker count.
  EXPECT_EQ(first.corpus.to_scenario_grid_json(), second.corpus.to_scenario_grid_json());
  EXPECT_EQ(first.corpus.coverage_union(), second.corpus.coverage_union());
  ASSERT_EQ(first.curve.size(), second.curve.size());
  for (std::size_t i = 0; i < first.curve.size(); ++i) {
    EXPECT_EQ(first.curve[i].admitted, second.curve[i].admitted) << "generation " << i;
    EXPECT_EQ(first.curve[i].coverage_keys, second.curve[i].coverage_keys)
        << "generation " << i;
  }

  // The fixed seed discovers a scenario outside the seed grid reaching a
  // coverage key no seed cell reaches.
  const fuzz::CorpusEntry* novel = nullptr;
  for (const fuzz::CorpusEntry& entry : first.corpus.entries()) {
    if (entry.generation >= 1 && !entry.new_keys.empty()) novel = &entry;
  }
  ASSERT_NE(novel, nullptr) << "no mutant reached new coverage";
  for (const core::CoverageKey& key : novel->new_keys) {
    EXPECT_FALSE(first.baseline_coverage.contains(key))
        << core::coverage_key_string(key) << " already reached by the seed grid";
  }

  // Round trip: the dumped corpus loads back, and re-running the novel
  // entry's spec through the ordinary campaign path reproduces the in-loop
  // report field for field.
  const std::vector<core::ScenarioSpec> loaded =
      fuzz::Corpus::load_specs(first.corpus.to_scenario_grid_json());
  const core::ScenarioSpec* dumped = nullptr;
  for (const core::ScenarioSpec& spec : loaded) {
    if (spec == novel->spec) dumped = &spec;
  }
  ASSERT_NE(dumped, nullptr) << "novel spec missing from the dumped corpus";
  core::CampaignCellSpec cell;
  cell.scenario = *dumped;
  const core::CampaignCellResult replay = core::run_cell(cell, 2, {}, 0);
  avis::testing::expect_reports_equal(novel->report, replay.report);
}

TEST(Fuzz, ReportJsonCarriesCurveCorpusAndOptions) {
  const fuzz::FuzzOptions options = fuzz_test_options(2);
  const fuzz::FuzzResult result = fuzz::run_fuzz(fuzz_seed_grid(), options);
  const std::string json = fuzz::fuzz_report_json(result, options);
  const util::Json parsed = util::Json::parse(json);
  EXPECT_EQ(parsed.at("fuzz").at("generations").as_int64(), 3);
  EXPECT_EQ(parsed.at("fuzz").at("seed").as_int64(), 11);
  EXPECT_EQ(parsed.at("fuzz").at("coverage_curve").as_array().size(), 4u);  // gen 0..3
  EXPECT_EQ(parsed.at("corpus").as_array().size(), result.corpus.entries().size());
}

}  // namespace
