#include <gtest/gtest.h>

#include "core/fault_plan.h"

namespace avis::core {
namespace {

using sensors::SensorId;
using sensors::SensorType;

TEST(FaultPlan, AddNormalizesOrderAndDuplicates) {
  FaultPlan plan;
  plan.add(500, {SensorType::kGps, 0});
  plan.add(100, {SensorType::kBarometer, 0});
  plan.add(500, {SensorType::kGps, 0});  // duplicate
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events[0].time_ms, 100);
  EXPECT_EQ(plan.events[1].time_ms, 500);
}

TEST(FaultPlan, SignatureDistinguishesInstancesAndTimes) {
  FaultPlan a, b, c;
  a.add(100, {SensorType::kCompass, 1});
  b.add(100, {SensorType::kCompass, 2});
  c.add(200, {SensorType::kCompass, 1});
  EXPECT_NE(a.signature(), b.signature());
  EXPECT_NE(a.signature(), c.signature());
  FaultPlan a2;
  a2.add(100, {SensorType::kCompass, 1});
  EXPECT_EQ(a.signature(), a2.signature());
}

TEST(FaultPlan, RoleSignatureFoldsBackupInstances) {
  // Paper Fig. 6: failing B1 is the same scenario as failing B2.
  FaultPlan b1, b2;
  b1.add(100, {SensorType::kCompass, 1});
  b2.add(100, {SensorType::kCompass, 2});
  EXPECT_EQ(b1.role_signature(), b2.role_signature());
  EXPECT_NE(b1.signature(), b2.signature());
}

TEST(FaultPlan, RoleSignatureKeepsPrimaryDistinct) {
  FaultPlan primary, backup;
  primary.add(100, {SensorType::kCompass, 0});
  backup.add(100, {SensorType::kCompass, 1});
  EXPECT_NE(primary.role_signature(), backup.role_signature());
}

TEST(FaultPlan, RoleSignatureCountsBackups) {
  // {P, B1} differs from {P, B1, B2} but {P, B1} == {P, B2}.
  FaultPlan pb1, pb2, pb12;
  pb1.add(100, {SensorType::kCompass, 0});
  pb1.add(100, {SensorType::kCompass, 1});
  pb2.add(100, {SensorType::kCompass, 0});
  pb2.add(100, {SensorType::kCompass, 2});
  pb12.add(100, {SensorType::kCompass, 0});
  pb12.add(100, {SensorType::kCompass, 1});
  pb12.add(100, {SensorType::kCompass, 2});
  EXPECT_EQ(pb1.role_signature(), pb2.role_signature());
  EXPECT_NE(pb1.role_signature(), pb12.role_signature());
}

TEST(FaultPlan, RoleSignatureSeparatesTimesAndTypes) {
  FaultPlan a, b, c;
  a.add(100, {SensorType::kGps, 0});
  b.add(200, {SensorType::kGps, 0});
  c.add(100, {SensorType::kBarometer, 0});
  EXPECT_NE(a.role_signature(), b.role_signature());
  EXPECT_NE(a.role_signature(), c.role_signature());
}

TEST(FaultPlan, FirstInjectionIsTheEarliestEvent) {
  FaultPlan plan;
  plan.add(500, {SensorType::kGps, 0});
  plan.add(100, {SensorType::kBarometer, 0});
  plan.add(9000, {SensorType::kCompass, 1});
  EXPECT_EQ(plan.first_injection_ms(), 100);
}

TEST(FaultPlan, FirstInjectionOfEmptyPlanIsNever) {
  FaultPlan plan;
  EXPECT_EQ(plan.first_injection_ms(), FaultPlan::kNever);
}

TEST(FaultPlan, FirstInjectionSurvivesHandFilledEvents) {
  // Callers that fill `events` directly (no normalize()) still get the min.
  FaultPlan plan;
  plan.events.push_back({700, {SensorType::kGps, 0}});
  plan.events.push_back({200, {SensorType::kBarometer, 0}});
  EXPECT_EQ(plan.first_injection_ms(), 200);
}

TEST(FaultPlan, ToStringIsReadable) {
  FaultPlan plan;
  plan.add(1500, {SensorType::kGps, 0});
  EXPECT_EQ(plan.to_string(), "{GPS#0@1500ms}");
}

TEST(FaultPlan, EmptyPlan) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.signature(), "");
  EXPECT_EQ(plan.to_string(), "{}");
}

}  // namespace
}  // namespace avis::core
