#include <gtest/gtest.h>

#include "core/harness.h"
#include "fw/firmware.h"
#include "test_helpers.h"

namespace avis::fw {
namespace {

using avis::testing::run_plan;
using core::FaultPlan;

// Drives a firmware instance directly through a simulator, acting as a
// minimal ground station.
class FirmwareRig {
 public:
  explicit FirmwareRig(Personality personality = Personality::kArduPilotLike,
                       BugRegistry bugs = BugRegistry::current_code_base())
      : seeds_(17),
        suite_(core::SimulationHarness::iris_suite(), seeds_),
        server_(director_),
        client_(server_),
        bus_(suite_, client_),
        simulator_(sim::Environment{}, sim::QuadcopterParams{}, 23) {
    FirmwareConfig config = personality == Personality::kArduPilotLike
                                ? FirmwareConfig::ardupilot()
                                : FirmwareConfig::px4();
    config.bugs = std::move(bugs);
    firmware_ = std::make_unique<Firmware>(config, bus_, client_, channel_.vehicle(),
                                           simulator_.environment());
  }

  void run_ms(sim::SimTimeMs ms) {
    for (sim::SimTimeMs i = 0; i < ms; ++i) {
      const auto motors = firmware_->step(now_++, simulator_.state());
      simulator_.step(motors);
    }
  }

  void send(const mavlink::Message& msg) { channel_.gcs().send(msg); }

  mavlink::CommandLong command(mavlink::Command cmd, double p1 = 0.0, double p7 = 0.0) {
    mavlink::CommandLong c;
    c.command = cmd;
    c.param1 = p1;
    c.param7 = p7;
    return c;
  }

  Firmware& fw() { return *firmware_; }
  sim::Simulator& sim() { return simulator_; }
  sensors::SensorSuite& suite() { return suite_; }

 private:
  util::Rng seeds_;
  sensors::SensorSuite suite_;
  hinj::NullDirector director_;
  hinj::Server server_;
  hinj::Client client_;
  mavlink::Channel channel_;
  fw::SensorBus bus_;
  sim::Simulator simulator_;
  std::unique_ptr<Firmware> firmware_;
  sim::SimTimeMs now_ = 0;
};

TEST(Firmware, BootsDisarmedInPreflight) {
  FirmwareRig rig;
  rig.run_ms(100);
  EXPECT_FALSE(rig.fw().armed());
  EXPECT_EQ(rig.fw().mode(), Mode::kPreFlight);
}

TEST(Firmware, ArmsOnCommand) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(50);
  EXPECT_TRUE(rig.fw().armed());
}

TEST(Firmware, PrearmRefusesWithDeadSensor) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.suite().fail({sensors::SensorType::kCompass, 0});
  rig.run_ms(200);  // estimator notices
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(50);
  EXPECT_FALSE(rig.fw().armed());
}

TEST(Firmware, TakeoffClimbsToTarget) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(100);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 10.0));
  rig.run_ms(100);
  EXPECT_EQ(rig.fw().mode(), Mode::kTakeoff);
  rig.run_ms(8000);
  EXPECT_NEAR(rig.sim().state().altitude(), 10.0, 1.5);
  EXPECT_EQ(rig.fw().mode(), Mode::kGuided);  // hold after takeoff
}

TEST(Firmware, TakeoffDeniedWhenDisarmed) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 10.0));
  rig.run_ms(50);
  EXPECT_EQ(rig.fw().mode(), Mode::kPreFlight);
}

TEST(Firmware, LandsAndDisarms) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(100);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 6.0));
  rig.run_ms(6000);
  rig.send(rig.command(mavlink::Command::kNavLand));
  rig.run_ms(100);
  EXPECT_EQ(rig.fw().mode(), Mode::kLand);
  rig.run_ms(15000);
  EXPECT_FALSE(rig.fw().armed());
  EXPECT_EQ(rig.fw().mode(), Mode::kPreFlight);
  EXPECT_TRUE(rig.sim().state().on_ground);
  EXPECT_FALSE(rig.sim().state().crashed);
}

TEST(Firmware, GpsFailsafeLandsWithoutPosition) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(100);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 12.0));
  rig.run_ms(7000);  // airborne
  rig.suite().fail({sensors::SensorType::kGps, 0});
  rig.run_ms(600);
  EXPECT_EQ(rig.fw().mode(), Mode::kLand);
  rig.run_ms(25000);
  EXPECT_TRUE(rig.sim().state().on_ground);
  EXPECT_FALSE(rig.sim().state().crashed);
  EXPECT_TRUE(rig.fw().fired_bugs().empty());
}

TEST(Firmware, GyroFailsafePersonalitiesDiffer) {
  // ArduPilot: emergency land. PX4: derived-rate fallback + normal land.
  FirmwareRig ap(Personality::kArduPilotLike);
  ap.run_ms(500);
  ap.send(ap.command(mavlink::Command::kComponentArmDisarm, 1.0));
  ap.run_ms(100);
  ap.send(ap.command(mavlink::Command::kNavTakeoff, 0.0, 12.0));
  ap.run_ms(7000);
  ap.suite().fail({sensors::SensorType::kGyroscope, 0});
  ap.suite().fail({sensors::SensorType::kGyroscope, 1});
  ap.run_ms(600);
  EXPECT_EQ(ap.fw().mode(), Mode::kEmergencyLand);

  FirmwareRig px4(Personality::kPx4Like);
  px4.run_ms(500);
  px4.send(px4.command(mavlink::Command::kComponentArmDisarm, 1.0));
  px4.run_ms(100);
  px4.send(px4.command(mavlink::Command::kNavTakeoff, 0.0, 12.0));
  px4.run_ms(7000);
  px4.suite().fail({sensors::SensorType::kGyroscope, 0});
  px4.suite().fail({sensors::SensorType::kGyroscope, 1});
  px4.run_ms(600);
  EXPECT_EQ(px4.fw().mode(), Mode::kLand);
}

TEST(Firmware, BatterySensorLossLandsAfterDelay) {
  FirmwareRig rig;
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(100);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 12.0));
  rig.run_ms(7000);
  rig.suite().fail({sensors::SensorType::kBattery, 0});
  rig.run_ms(1000);
  EXPECT_NE(rig.fw().mode(), Mode::kLand) << "battery failsafe must debounce ~2s";
  rig.run_ms(2000);
  EXPECT_EQ(rig.fw().mode(), Mode::kLand);
}

TEST(Firmware, CompassPrimaryLossFailsOverSilently) {
  FirmwareRig rig(Personality::kArduPilotLike, BugRegistry::patched());
  rig.run_ms(500);
  rig.send(rig.command(mavlink::Command::kComponentArmDisarm, 1.0));
  rig.run_ms(100);
  rig.send(rig.command(mavlink::Command::kNavTakeoff, 0.0, 12.0));
  rig.run_ms(7000);
  rig.suite().fail({sensors::SensorType::kCompass, 0});
  rig.run_ms(2000);
  EXPECT_EQ(rig.fw().mode(), Mode::kGuided);  // nothing dramatic happened
  EXPECT_TRUE(rig.fw().fired_bugs().empty());
}

// Mode transitions are reported through hinj (harness-level check).
TEST(Firmware, ModeTraceReportedThroughHinj) {
  const auto result = run_plan(Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                               FaultPlan{}, BugRegistry::current_code_base());
  ASSERT_TRUE(result.workload_passed);
  std::vector<std::string> names;
  for (const auto& t : result.transitions) names.push_back(t.mode_name);
  const std::vector<std::string> expected{"preflight", "takeoff", "land", "preflight"};
  EXPECT_EQ(names, expected);
}

TEST(Firmware, CompositeModeEncodesSubmode) {
  const CompositeMode wp3{Mode::kAuto, 3};
  EXPECT_EQ(wp3.name(), "auto-wp3");
  EXPECT_EQ(CompositeMode::from_id(wp3.id()), wp3);
  const CompositeMode plain{Mode::kLand, 0};
  EXPECT_EQ(plain.name(), "land");
}

TEST(Firmware, PersonalityModeNames) {
  EXPECT_EQ(personality_mode_name(Personality::kArduPilotLike, Mode::kPositionHold),
            "POSHOLD");
  EXPECT_EQ(personality_mode_name(Personality::kPx4Like, Mode::kPositionHold), "POSCTL");
  EXPECT_EQ(personality_mode_name(Personality::kPx4Like, Mode::kAuto), "AUTO_MISSION");
}

TEST(Firmware, BucketsMatchTableIV) {
  EXPECT_EQ(bucket_of(Mode::kTakeoff), ModeBucket::kTakeoff);
  EXPECT_EQ(bucket_of(Mode::kPositionHold), ModeBucket::kManual);
  EXPECT_EQ(bucket_of(Mode::kAuto), ModeBucket::kWaypoint);
  EXPECT_EQ(bucket_of(Mode::kReturnToLaunch), ModeBucket::kWaypoint);
  EXPECT_EQ(bucket_of(Mode::kLand), ModeBucket::kLand);
  EXPECT_EQ(bucket_of(Mode::kEmergencyLand), ModeBucket::kLand);
}

TEST(BugRegistry, DefaultPopulationIsTableII) {
  const BugRegistry registry = BugRegistry::current_code_base();
  int enabled = 0;
  for (BugId id : kAllBugs) {
    if (registry.enabled(id)) {
      ++enabled;
      EXPECT_FALSE(bug_info(id).known) << bug_info(id).report_name;
    }
  }
  EXPECT_EQ(enabled, 10);
}

TEST(BugRegistry, EnableDisable) {
  BugRegistry registry = BugRegistry::patched();
  EXPECT_FALSE(registry.enabled(BugId::kApm4679));
  registry.enable(BugId::kApm4679);
  EXPECT_TRUE(registry.enabled(BugId::kApm4679));
  registry.disable(BugId::kApm4679);
  EXPECT_FALSE(registry.enabled(BugId::kApm4679));
}

TEST(BugInfo, MetadataMatchesTableII) {
  const BugInfo& fig1_bug = bug_info(BugId::kApm16682);
  EXPECT_STREQ(fig1_bug.report_name, "APM-16682");
  EXPECT_EQ(fig1_bug.personality, Personality::kArduPilotLike);
  EXPECT_EQ(fig1_bug.symptom, BugSymptom::kCrash);
  EXPECT_EQ(fig1_bug.sensor, sensors::SensorType::kAccelerometer);
  EXPECT_FALSE(fig1_bug.known);
  EXPECT_TRUE(bug_info(BugId::kPx413291).known);
}

}  // namespace
}  // namespace avis::fw
