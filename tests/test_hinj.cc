#include <gtest/gtest.h>

#include "hinj/hinj.h"
#include "hinj/messages.h"

namespace avis::hinj {
namespace {

TEST(HinjMessages, ModeUpdateRoundTrip) {
  ModeUpdate m;
  m.time_ms = 12345;
  m.mode_id = 0x0501;
  m.mode_name = "auto-wp1";
  const Message decoded = decode(encode(m));
  const auto* out = std::get_if<ModeUpdate>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 12345);
  EXPECT_EQ(out->mode_id, 0x0501);
  EXPECT_EQ(out->mode_name, "auto-wp1");
}

TEST(HinjMessages, ReadRequestRoundTrip) {
  ReadRequest r;
  r.time_ms = 777;
  r.sensor = {sensors::SensorType::kCompass, 2};
  const Message decoded = decode(encode(r));
  const auto* out = std::get_if<ReadRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 777);
  EXPECT_EQ(out->sensor, (sensors::SensorId{sensors::SensorType::kCompass, 2}));
}

TEST(HinjMessages, ReadResponseRoundTrip) {
  for (bool fail : {true, false}) {
    ReadResponse r;
    r.fail = fail;
    const Message decoded = decode(encode(r));
    const auto* out = std::get_if<ReadResponse>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->fail, fail);
  }
}

TEST(HinjMessages, HeartbeatRoundTrip) {
  Heartbeat h;
  h.time_ms = 999;
  const Message decoded = decode(encode(h));
  const auto* out = std::get_if<Heartbeat>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 999);
}

TEST(HinjMessages, TruncatedFrameThrows) {
  auto bytes = encode(ReadRequest{100, {sensors::SensorType::kGps, 0}});
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(decode(bytes), WireError);
}

TEST(HinjMessages, UnknownTypeThrows) {
  std::vector<std::uint8_t> bytes{0xEE};
  EXPECT_THROW(decode(bytes), WireError);
}

class CountingDirector final : public FaultDirector {
 public:
  bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) override {
    ++reads;
    last_sensor = sensor;
    last_time = time_ms;
    return fail_next;
  }
  void on_mode_update(std::uint16_t mode_id, const std::string& name,
                      std::int64_t time_ms) override {
    modes.emplace_back(mode_id, name, time_ms);
  }
  void on_heartbeat(std::int64_t time_ms) override { last_heartbeat = time_ms; }

  int reads = 0;
  bool fail_next = false;
  sensors::SensorId last_sensor;
  std::int64_t last_time = 0;
  std::int64_t last_heartbeat = 0;
  std::vector<std::tuple<std::uint16_t, std::string, std::int64_t>> modes;
};

TEST(HinjClientServer, SensorReadRoundTrip) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  EXPECT_FALSE(client.sensor_read({sensors::SensorType::kBarometer, 0}, 42));
  EXPECT_EQ(director.reads, 1);
  EXPECT_EQ(director.last_sensor, (sensors::SensorId{sensors::SensorType::kBarometer, 0}));
  EXPECT_EQ(director.last_time, 42);

  director.fail_next = true;
  EXPECT_TRUE(client.sensor_read({sensors::SensorType::kGps, 0}, 43));
}

TEST(HinjClientServer, ModeUpdatesReachDirector) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  client.update_mode(0x0400, "takeoff", 3540);
  client.update_mode(0x0501, "auto-wp1", 13000);
  ASSERT_EQ(director.modes.size(), 2u);
  EXPECT_EQ(std::get<0>(director.modes[0]), 0x0400);
  EXPECT_EQ(std::get<1>(director.modes[1]), "auto-wp1");
  EXPECT_EQ(std::get<2>(director.modes[1]), 13000);
}

TEST(HinjClientServer, HeartbeatReachesDirector) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  client.heartbeat(500);
  EXPECT_EQ(director.last_heartbeat, 500);
}

TEST(HinjClientServer, NullDirectorNeverFails) {
  NullDirector director;
  Server server(director);
  Client client(server);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(client.sensor_read({sensors::SensorType::kGyroscope, 0}, t));
  }
}

TEST(HinjClientServer, DirectorSwappableMidRun) {
  NullDirector null;
  CountingDirector counting;
  Server server(null);
  Client client(server);
  EXPECT_FALSE(client.sensor_read({sensors::SensorType::kGps, 0}, 1));
  server.set_director(counting);
  counting.fail_next = true;
  EXPECT_TRUE(client.sensor_read({sensors::SensorType::kGps, 0}, 2));
}

}  // namespace
}  // namespace avis::hinj
