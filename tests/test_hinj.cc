#include <gtest/gtest.h>

#include "hinj/hinj.h"
#include "hinj/messages.h"

namespace avis::hinj {
namespace {

TEST(HinjMessages, ModeUpdateRoundTrip) {
  ModeUpdate m;
  m.time_ms = 12345;
  m.mode_id = 0x0501;
  m.mode_name = "auto-wp1";
  const Message decoded = decode(encode(m));
  const auto* out = std::get_if<ModeUpdate>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 12345);
  EXPECT_EQ(out->mode_id, 0x0501);
  EXPECT_EQ(out->mode_name, "auto-wp1");
}

TEST(HinjMessages, ReadRequestRoundTrip) {
  ReadRequest r;
  r.time_ms = 777;
  r.sensor = {sensors::SensorType::kCompass, 2};
  const Message decoded = decode(encode(r));
  const auto* out = std::get_if<ReadRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 777);
  EXPECT_EQ(out->sensor, (sensors::SensorId{sensors::SensorType::kCompass, 2}));
}

TEST(HinjMessages, ReadResponseRoundTrip) {
  for (bool fail : {true, false}) {
    ReadResponse r;
    r.fail = fail;
    const Message decoded = decode(encode(r));
    const auto* out = std::get_if<ReadResponse>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->fail, fail);
  }
}

TEST(HinjMessages, HeartbeatRoundTrip) {
  Heartbeat h;
  h.time_ms = 999;
  const Message decoded = decode(encode(h));
  const auto* out = std::get_if<Heartbeat>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->time_ms, 999);
}

TEST(HinjMessages, TruncatedFrameThrows) {
  auto bytes = encode(ReadRequest{100, {sensors::SensorType::kGps, 0}});
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(decode(bytes), WireError);
}

TEST(HinjMessages, UnknownTypeThrows) {
  std::vector<std::uint8_t> bytes{0xEE};
  EXPECT_THROW(decode(bytes), WireError);
}

// The fixed-size fast-path encoders must emit frames byte-identical to the
// general encode(Message) path — the wire format is the isolation boundary,
// so the fast path may not change a single byte of it.
TEST(HinjMessages, FastPathFramesMatchGeneralEncode) {
  ByteWriter w;

  encode_read_request(w, 777, {sensors::SensorType::kCompass, 2});
  EXPECT_EQ(w.bytes(), encode(ReadRequest{777, {sensors::SensorType::kCompass, 2}}));

  for (bool fail : {true, false}) {
    w.clear();
    encode_read_response(w, fail);
    EXPECT_EQ(w.bytes(), encode(ReadResponse{fail}));
  }

  w.clear();
  encode_heartbeat(w, 999);
  EXPECT_EQ(w.bytes(), encode(Heartbeat{999}));

  w.clear();
  encode_mode_update(w, 12345, 0x0501, "auto-wp1");
  EXPECT_EQ(w.bytes(), encode(ModeUpdate{12345, 0x0501, "auto-wp1"}));
}

// Server::handle_frame (the in-place dispatch the client's fast path uses)
// must produce exactly the response bytes of the general handle() path.
TEST(HinjMessages, HandleFrameResponsesMatchGeneralHandle) {
  NullDirector director;
  Server server(director);

  const auto request = encode(ReadRequest{42, {sensors::SensorType::kGps, 0}});
  ByteWriter response;
  server.handle_frame(request, response);
  EXPECT_EQ(response.bytes(), server.handle(request));

  // Messages without a response leave the (cleared) buffer empty, exactly
  // as handle() returns an empty frame.
  server.handle_frame(encode(Heartbeat{500}), response);
  EXPECT_TRUE(response.empty());
  EXPECT_TRUE(server.handle(encode(Heartbeat{500})).empty());
}

TEST(HinjMessages, ByteWriterClearRetainsCapacity) {
  ByteWriter w;
  encode_read_request(w, 1, {sensors::SensorType::kGyroscope, 0});
  const auto first = w.bytes();
  w.clear();
  EXPECT_TRUE(w.empty());
  encode_read_request(w, 1, {sensors::SensorType::kGyroscope, 0});
  EXPECT_EQ(w.bytes(), first);
}

TEST(HinjMessages, ByteReaderStrViewPointsIntoFrame) {
  ByteWriter w;
  encode_mode_update(w, 7, 0x0400, "takeoff");
  ByteReader r(w.span());
  EXPECT_EQ(static_cast<MessageType>(r.u8()), MessageType::kModeUpdate);
  EXPECT_EQ(r.i64(), 7);
  EXPECT_EQ(r.u16(), 0x0400);
  const std::string_view name = r.str_view();
  EXPECT_EQ(name, "takeoff");
  // Zero-copy: the view aliases the writer's buffer, no owned string.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(name.data()), w.span().data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(name.data()),
            w.span().data() + w.size());
  EXPECT_TRUE(r.exhausted());
}

class CountingDirector final : public FaultDirector {
 public:
  bool should_fail(const sensors::SensorId& sensor, std::int64_t time_ms) override {
    ++reads;
    last_sensor = sensor;
    last_time = time_ms;
    return fail_next;
  }
  void on_mode_update(std::uint16_t mode_id, std::string_view name,
                      std::int64_t time_ms) override {
    modes.emplace_back(mode_id, std::string(name), time_ms);
  }
  void on_heartbeat(std::int64_t time_ms) override { last_heartbeat = time_ms; }

  int reads = 0;
  bool fail_next = false;
  sensors::SensorId last_sensor;
  std::int64_t last_time = 0;
  std::int64_t last_heartbeat = 0;
  std::vector<std::tuple<std::uint16_t, std::string, std::int64_t>> modes;
};

TEST(HinjClientServer, SensorReadRoundTrip) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  EXPECT_FALSE(client.sensor_read({sensors::SensorType::kBarometer, 0}, 42));
  EXPECT_EQ(director.reads, 1);
  EXPECT_EQ(director.last_sensor, (sensors::SensorId{sensors::SensorType::kBarometer, 0}));
  EXPECT_EQ(director.last_time, 42);

  director.fail_next = true;
  EXPECT_TRUE(client.sensor_read({sensors::SensorType::kGps, 0}, 43));
}

TEST(HinjClientServer, ModeUpdatesReachDirector) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  client.update_mode(0x0400, "takeoff", 3540);
  client.update_mode(0x0501, "auto-wp1", 13000);
  ASSERT_EQ(director.modes.size(), 2u);
  EXPECT_EQ(std::get<0>(director.modes[0]), 0x0400);
  EXPECT_EQ(std::get<1>(director.modes[1]), "auto-wp1");
  EXPECT_EQ(std::get<2>(director.modes[1]), 13000);
}

TEST(HinjClientServer, HeartbeatReachesDirector) {
  CountingDirector director;
  Server server(director);
  Client client(server);
  client.heartbeat(500);
  EXPECT_EQ(director.last_heartbeat, 500);
}

TEST(HinjClientServer, NullDirectorNeverFails) {
  NullDirector director;
  Server server(director);
  Client client(server);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(client.sensor_read({sensors::SensorType::kGyroscope, 0}, t));
  }
}

TEST(HinjClientServer, DirectorSwappableMidRun) {
  NullDirector null;
  CountingDirector counting;
  Server server(null);
  Client client(server);
  EXPECT_FALSE(client.sensor_read({sensors::SensorType::kGps, 0}, 1));
  server.set_director(counting);
  counting.fail_next = true;
  EXPECT_TRUE(client.sensor_read({sensors::SensorType::kGps, 0}, 2));
}

}  // namespace
}  // namespace avis::hinj
