// Serial-vs-parallel checker parity: run_parallel must produce a report
// bit-identical to run() for the same (strategy, budget, seed), because
// results are applied on the caller thread in submission order and the
// strategy's batch boundaries preserve the serial plan sequence.
#include <gtest/gtest.h>

#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/checker.h"
#include "core/sabre.h"
#include "test_helpers.h"

namespace {

using namespace avis;

// A modest simulated budget: enough for a multi-batch campaign (several
// expansion waves, at least one unsafe result) while keeping the test quick.
constexpr sim::SimTimeMs kBudgetMs = 600 * 1000;

using avis::testing::expect_reports_equal;

TEST(CheckerParallel, SabreParityAtFourWorkers) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();

  core::SabreScheduler serial_strategy(suite, model.golden_transitions());
  core::BudgetClock serial_budget(kBudgetMs);
  const core::CheckerReport serial = checker.run(serial_strategy, serial_budget);
  ASSERT_GE(serial.experiments, 3) << "budget too small to exercise batching";

  core::SabreScheduler parallel_strategy(suite, model.golden_transitions());
  core::BudgetClock parallel_budget(kBudgetMs);
  const core::CheckerReport parallel =
      checker.run_parallel(parallel_strategy, parallel_budget, /*workers=*/4);

  expect_reports_equal(serial, parallel);
}

TEST(CheckerParallel, RandomParityAtFourWorkers) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();

  baselines::RandomInjection serial_strategy(suite, model.profiling_duration_ms(), 42);
  core::BudgetClock serial_budget(kBudgetMs);
  const core::CheckerReport serial = checker.run(serial_strategy, serial_budget);
  ASSERT_GE(serial.experiments, 3);

  baselines::RandomInjection parallel_strategy(suite, model.profiling_duration_ms(), 42);
  core::BudgetClock parallel_budget(kBudgetMs);
  const core::CheckerReport parallel =
      checker.run_parallel(parallel_strategy, parallel_budget, /*workers=*/4);

  expect_reports_equal(serial, parallel);
}

// BFI and Stratified BFI charge the budget *while proposing* (10 s per
// model label), the case where parity is most fragile: the exhausting
// charge can be a label on a plan that still gets simulated serially. A
// spread of budgets makes the campaign end at different points in the
// label/experiment interleaving.
TEST(CheckerParallel, BfiParityAtFourWorkersAcrossBudgets) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();
  static baselines::NaiveBayesModel bayes(baselines::default_training_corpus());

  for (const sim::SimTimeMs budget_ms : {215000, 300000, 605000}) {
    baselines::BfiChecker serial_strategy(suite, bayes,
                                          baselines::ModeTimeline(model.golden_transitions()),
                                          /*seed=*/7);
    core::BudgetClock serial_budget(budget_ms);
    const core::CheckerReport serial = checker.run(serial_strategy, serial_budget);

    baselines::BfiChecker parallel_strategy(suite, bayes,
                                            baselines::ModeTimeline(model.golden_transitions()),
                                            /*seed=*/7);
    core::BudgetClock parallel_budget(budget_ms);
    const core::CheckerReport parallel =
        checker.run_parallel(parallel_strategy, parallel_budget, /*workers=*/4);

    SCOPED_TRACE("budget_ms=" + std::to_string(budget_ms));
    expect_reports_equal(serial, parallel);
    EXPECT_GT(serial.labels, 0);
  }
}

TEST(CheckerParallel, StratifiedBfiParityAtFourWorkers) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();
  static baselines::NaiveBayesModel bayes(baselines::default_training_corpus());

  baselines::StratifiedBfi serial_strategy(suite, model.golden_transitions(), bayes);
  core::BudgetClock serial_budget(kBudgetMs);
  const core::CheckerReport serial = checker.run(serial_strategy, serial_budget);
  EXPECT_GT(serial.labels, 0);

  baselines::StratifiedBfi parallel_strategy(suite, model.golden_transitions(), bayes);
  core::BudgetClock parallel_budget(kBudgetMs);
  const core::CheckerReport parallel =
      checker.run_parallel(parallel_strategy, parallel_budget, /*workers=*/4);

  expect_reports_equal(serial, parallel);
}

TEST(CheckerParallel, OneWorkerTakesTheSerialPath) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();

  core::SabreScheduler serial_strategy(suite, model.golden_transitions());
  core::BudgetClock serial_budget(kBudgetMs);
  const core::CheckerReport serial = checker.run(serial_strategy, serial_budget);

  core::SabreScheduler one_worker_strategy(suite, model.golden_transitions());
  core::BudgetClock one_worker_budget(kBudgetMs);
  const core::CheckerReport one_worker =
      checker.run_parallel(one_worker_strategy, one_worker_budget, /*workers=*/1);

  expect_reports_equal(serial, one_worker);
}

TEST(CheckerParallel, SabreBatchStopsAtWaveBoundary) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();

  // next_batch must hand out the same plan sequence as repeated next().
  core::SabreScheduler by_next(suite, model.golden_transitions());
  core::SabreScheduler by_batch(suite, model.golden_transitions());
  core::BudgetClock budget_a(kBudgetMs);
  core::BudgetClock budget_b(kBudgetMs);

  std::vector<std::string> next_sigs;
  for (int i = 0; i < 12; ++i) {
    auto plan = by_next.next(budget_a);
    if (!plan) break;
    next_sigs.push_back(plan->signature());
  }
  std::vector<std::string> batch_sigs;
  while (batch_sigs.size() < next_sigs.size()) {
    const auto plans = by_batch.next_batch(budget_b, 5);
    if (plans.empty()) break;
    for (const auto& plan : plans) batch_sigs.push_back(plan.signature());
  }
  batch_sigs.resize(std::min(batch_sigs.size(), next_sigs.size()));
  next_sigs.resize(batch_sigs.size());
  EXPECT_EQ(batch_sigs, next_sigs);
  EXPECT_FALSE(batch_sigs.empty());
}

TEST(CheckerParallel, SabreSerializesConfigsWithIntraWavePruning) {
  core::Checker& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const core::MonitorModel& model = checker.model();
  const auto suite = core::SimulationHarness::iris_suite();
  core::BudgetClock budget(kBudgetMs);

  // Full-powerset waves can contain a set and its same-timestamp superset,
  // and disabled symmetry folding can put role-identical sets in one wave;
  // serial execution prunes those at proposal time after a mid-wave bug, so
  // batching must fall back to one plan at a time to preserve parity.
  core::SabreConfig powerset;
  powerset.full_powerset_batches = true;
  core::SabreScheduler powerset_sabre(suite, model.golden_transitions(), powerset);
  EXPECT_LE(powerset_sabre.next_batch(budget, 8).size(), 1u);

  core::SabreConfig no_symmetry;
  no_symmetry.symmetry_pruning = false;
  core::SabreScheduler no_symmetry_sabre(suite, model.golden_transitions(), no_symmetry);
  EXPECT_LE(no_symmetry_sabre.next_batch(budget, 8).size(), 1u);

  // With found-bug pruning off there is nothing to prune mid-wave, so the
  // full-powerset wave may batch freely again.
  core::SabreConfig no_pruning;
  no_pruning.full_powerset_batches = true;
  no_pruning.found_bug_pruning = false;
  core::SabreScheduler no_pruning_sabre(suite, model.golden_transitions(), no_pruning);
  EXPECT_GT(no_pruning_sabre.next_batch(budget, 8).size(), 1u);
}

}  // namespace
