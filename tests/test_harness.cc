#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/replay.h"
#include "test_helpers.h"

namespace avis::core {
namespace {

using avis::testing::cached_checker;
using avis::testing::run_plan;
using avis::testing::transition_time;

TEST(Harness, DeterministicForSameSpec) {
  FaultPlan plan;
  plan.add(5000, {sensors::SensorType::kBarometer, 0});
  const auto a = run_plan(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto, plan,
                          fw::BugRegistry::current_code_base());
  const auto b = run_plan(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto, plan,
                          fw::BugRegistry::current_code_base());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 10) {
    EXPECT_EQ(a.trace[i].position, b.trace[i].position) << "i=" << i;
    EXPECT_EQ(a.trace[i].mode_id, b.trace[i].mode_id);
  }
  EXPECT_EQ(a.duration_ms, b.duration_ms);
}

TEST(Harness, NoFaultPlanEqualsGoldenRun) {
  // A test run with an empty plan and the golden seed is bit-identical to
  // the golden run — the property the checker's Eq. 1 usage relies on.
  auto& checker = cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const MonitorModel& model = checker.model();
  const auto rerun = run_plan(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                              FaultPlan{}, fw::BugRegistry::current_code_base(), &model);
  EXPECT_TRUE(rerun.workload_passed);
  EXPECT_FALSE(rerun.violation.has_value());
  for (std::size_t i = 0; i < rerun.trace.size(); i += 20) {
    EXPECT_EQ(model.state_distance(rerun.trace[i],
                                   model.profiling_state(0, rerun.trace[i].time_ms)),
              0.0);
  }
}

TEST(Harness, ReusedContextIsBitIdenticalToFreshProvisioning) {
  // The arena reset contract: a run through a context that already hosted
  // other experiments must equal a from-scratch run of the same spec in
  // every observable field. Interleave different specs through one context
  // so stale state from run N-1 would be caught in run N.
  SimulationHarness harness;
  ExperimentContext context;

  FaultPlan baro_plan;
  baro_plan.add(5000, {sensors::SensorType::kBarometer, 0});
  std::vector<ExperimentSpec> specs(3);
  specs[0].plan = baro_plan;
  specs[1].seed = 101;  // golden-style run, different seed
  specs[2].plan = baro_plan;
  specs[2].personality = fw::Personality::kPx4Like;

  // Monitored runs interleave too: the restarted MonitorSession (violation
  // timing, stop_on_violation truncation) must match a fresh session.
  auto& checker = cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto);
  const MonitorModel& model = checker.model();
  std::vector<const MonitorModel*> models = {nullptr, nullptr, nullptr, &model, &model};
  specs.push_back(specs[0]);  // baro fault, now under the monitor
  specs.back().seed = 100;    // the model's golden seed
  specs.push_back(specs.back());
  specs.back().plan.add(8000, {sensors::SensorType::kGps, 0});

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const ExperimentSpec& spec = specs[s];
    const ExperimentResult fresh = harness.run(spec, models[s]);
    const ExperimentResult reused = harness.run(spec, models[s], &context);
    EXPECT_EQ(fresh.workload_passed, reused.workload_passed);
    EXPECT_EQ(fresh.duration_ms, reused.duration_ms);
    EXPECT_EQ(fresh.fired_bugs, reused.fired_bugs);
    ASSERT_EQ(fresh.violation.has_value(), reused.violation.has_value()) << "spec " << s;
    if (fresh.violation) {
      EXPECT_EQ(fresh.violation->type, reused.violation->type);
      EXPECT_EQ(fresh.violation->time_ms, reused.violation->time_ms);
      EXPECT_EQ(fresh.violation->mode_id, reused.violation->mode_id);
      EXPECT_EQ(fresh.violation->details, reused.violation->details);
    }
    ASSERT_EQ(fresh.transitions.size(), reused.transitions.size());
    for (std::size_t i = 0; i < fresh.transitions.size(); ++i) {
      EXPECT_EQ(fresh.transitions[i].time_ms, reused.transitions[i].time_ms);
      EXPECT_EQ(fresh.transitions[i].mode_id, reused.transitions[i].mode_id);
      EXPECT_EQ(fresh.transitions[i].mode_name, reused.transitions[i].mode_name);
    }
    ASSERT_EQ(fresh.trace.size(), reused.trace.size());
    for (std::size_t i = 0; i < fresh.trace.size(); ++i) {
      EXPECT_EQ(fresh.trace[i].position, reused.trace[i].position) << "i=" << i;
      EXPECT_EQ(fresh.trace[i].acceleration, reused.trace[i].acceleration) << "i=" << i;
      EXPECT_EQ(fresh.trace[i].mode_id, reused.trace[i].mode_id) << "i=" << i;
    }
  }
}

TEST(Harness, InjectedFaultLatchesSensor) {
  // Baro fails at 5 s into the auto mission: the honest failsafe lands.
  FaultPlan plan;
  plan.add(5000, {sensors::SensorType::kBarometer, 0});
  const auto result = run_plan(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                               plan, fw::BugRegistry::current_code_base());
  bool failsafe_land = false;
  for (const auto& t : result.transitions) {
    if (t.mode_name == "land" && t.time_ms < 10000) failsafe_land = true;
  }
  EXPECT_TRUE(failsafe_land);
}

TEST(Harness, StopOnViolationShortensRun) {
  auto& checker =
      cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission);
  const MonitorModel& model = checker.model();
  FaultPlan plan;
  plan.add(transition_time(model, "auto-wp2"),
           {sensors::SensorType::kCompass, 0});  // APM-16967 window
  SimulationHarness harness;
  ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.plan = plan;
  spec.seed = 100;
  spec.stop_on_violation = true;
  const auto stopped = harness.run(spec, &model);
  ASSERT_TRUE(stopped.violation.has_value());
  spec.stop_on_violation = false;
  const auto full = harness.run(spec, &model);
  EXPECT_LE(stopped.duration_ms, full.duration_ms);
}

TEST(Harness, StepHookObservesEveryStep) {
  SimulationHarness harness;
  int steps = 0;
  harness.set_step_hook(
      [&](sim::SimTimeMs, const sim::VehicleState&, const fw::Firmware&) { ++steps; });
  ExperimentSpec spec;
  spec.workload = workload::WorkloadId::kAuto;
  spec.max_duration_ms = 2000;
  harness.run(spec, nullptr);
  EXPECT_EQ(steps, 2000);
}

TEST(Harness, ProfileRejectsFailingWorkload) {
  SimulationHarness harness;
  // An absurdly short max duration cannot complete the workload -> the
  // profiling precondition ("runs without sensor failures are correct")
  // fails loudly rather than calibrating on garbage.
  EXPECT_NO_THROW(harness.profile(fw::Personality::kArduPilotLike, workload::WorkloadId::kAuto,
                                  fw::BugRegistry::current_code_base(), 2, 300));
}

TEST(Replay, AnchorsFaultsToModeOccurrences) {
  std::vector<ModeTransition> transitions{{0, 0x0000, "preflight"},
                                          {3540, 0x0400, "takeoff"},
                                          {13000, 0x0501, "auto-wp1"}};
  ExperimentSpec spec;
  spec.plan.add(14000, {sensors::SensorType::kGps, 0});
  const ReplayRecord record = make_replay_record(spec, transitions);
  ASSERT_EQ(record.anchored.size(), 1u);
  EXPECT_EQ(record.anchored[0].anchor_mode_id, 0x0501);
  EXPECT_EQ(record.anchored[0].delta_ms, 1000);
  EXPECT_EQ(record.anchored[0].anchor_occurrence, 0);
}

TEST(Replay, ReproducesViolation) {
  auto& checker =
      cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission);
  const MonitorModel& model = checker.model();
  ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 100;
  spec.plan.add(transition_time(model, "auto-wp2") + 200, {sensors::SensorType::kCompass, 0});
  SimulationHarness harness;
  const auto original = harness.run(spec, &model);
  ASSERT_TRUE(original.violation.has_value());

  const ReplayRecord record = make_replay_record(spec, original.transitions);
  const auto replayed = replay(harness, record, model);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->type, original.violation->type);
  EXPECT_EQ(replayed.fired_bugs, original.fired_bugs);
}

TEST(Replay, SurvivesSeedPerturbation) {
  // The paper's claim (§IV-D): injecting at the same offsets from mode
  // transitions reproduces the bug even under minor non-determinism. A
  // different noise seed shifts transition times slightly; the anchored
  // replay still lands inside the bug window.
  auto& checker =
      cached_checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission);
  const MonitorModel& model = checker.model();
  ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 100;
  spec.plan.add(transition_time(model, "auto-wp2") + 200, {sensors::SensorType::kCompass, 0});
  SimulationHarness harness;
  const auto original = harness.run(spec, &model);
  ASSERT_TRUE(original.violation.has_value());

  const ReplayRecord record = make_replay_record(spec, original.transitions);
  const auto replayed = replay(harness, record, model, /*seed_override=*/104729);
  ASSERT_TRUE(replayed.violation.has_value()) << "anchored replay must survive reseeding";
  EXPECT_FALSE(replayed.fired_bugs.empty());
}

}  // namespace
}  // namespace avis::core
