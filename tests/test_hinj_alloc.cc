// Pins the hinj transport's zero-allocation guarantee: once the connection
// buffers have warmed up, a sensor-read round trip (the inner loop of every
// experiment — ~10 instrumented reads per 1 kHz firmware step) must not
// touch the heap at all. A regression here silently re-introduces millions
// of allocations per experiment, which is why it is a test and not a bench.
//
// The counter hooks the global operator new/delete for this binary only;
// gtest's own allocations are excluded by sampling the counter around the
// measured region (the tests are single-threaded).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/harness.h"
#include "hinj/hinj.h"
#include "hinj/messages.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace avis::hinj {
namespace {

TEST(HinjAllocation, SteadyStateReadRoundTripAllocatesNothing) {
  NullDirector director;
  Server server(director);
  Client client(server);
  const sensors::SensorId id{sensors::SensorType::kGyroscope, 0};

  // Warm-up: the connection buffers grow to the fixed frame size here.
  for (std::int64_t t = 0; t < 16; ++t) client.sensor_read(id, t);

  const std::size_t before = g_allocation_count.load(std::memory_order_relaxed);
  bool failed = false;
  for (std::int64_t t = 16; t < 100016; ++t) failed |= client.sensor_read(id, t);
  const std::size_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_FALSE(failed);
  EXPECT_EQ(after - before, 0u) << "hinj read round trip must be allocation-free";
}

TEST(HinjAllocation, SteadyStateReadWithScheduledDirectorAllocatesNothing) {
  // The production director (per-instance activation table) must keep the
  // decision itself off the heap too.
  core::FaultPlan plan;
  plan.add(30000, {sensors::SensorType::kCompass, 1});
  core::ScheduledDirector director(plan);
  Server server(director);
  Client client(server);
  const sensors::SensorId gyro{sensors::SensorType::kGyroscope, 0};
  const sensors::SensorId compass{sensors::SensorType::kCompass, 1};

  for (std::int64_t t = 0; t < 16; ++t) client.sensor_read(gyro, t);

  const std::size_t before = g_allocation_count.load(std::memory_order_relaxed);
  int fails = 0;
  for (std::int64_t t = 29000; t < 31000; ++t) {
    fails += client.sensor_read(gyro, t) ? 1 : 0;
    fails += client.sensor_read(compass, t) ? 1 : 0;
  }
  const std::size_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(fails, 1000);  // compass fails from t=30000 on
  EXPECT_EQ(after - before, 0u);
}

TEST(HinjAllocation, SteadyStateHeartbeatAllocatesNothing) {
  NullDirector director;
  Server server(director);
  Client client(server);
  for (std::int64_t t = 0; t < 16; ++t) client.heartbeat(t * 500);

  const std::size_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (std::int64_t t = 16; t < 10016; ++t) client.heartbeat(t * 500);
  const std::size_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u);
}

TEST(HinjAllocation, ModeUpdateWireSideAllocatesNothing) {
  // The general (string-carrying) path: the frame encode and the server's
  // string_view decode must stay off the heap. The *director* may allocate
  // when it stores an owning copy — that is its business, so this test uses
  // one that only inspects the view.
  class ViewingDirector final : public FaultDirector {
   public:
    bool should_fail(const sensors::SensorId&, std::int64_t) override { return false; }
    void on_mode_update(std::uint16_t mode_id, std::string_view name,
                        std::int64_t) override {
      last_mode = mode_id;
      name_chars += name.size();
    }
    std::uint16_t last_mode = 0;
    std::size_t name_chars = 0;
  };

  ViewingDirector director;
  Server server(director);
  Client client(server);
  for (int i = 0; i < 16; ++i) client.update_mode(0x0400, "takeoff", i);

  const std::size_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 16; i < 10016; ++i) client.update_mode(0x0501, "auto-wp1", i);
  const std::size_t after = g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(director.last_mode, 0x0501);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace avis::hinj
