// Distributed campaign failure matrix (docs/DISTRIBUTED.md).
//
// Cells are pure functions of their specs, so the coordinator's contract is
// twofold: the merged report is identical to a single-process run of the
// same grid no matter how the fleet behaves, and every failure mode ends in
// either a complete report or a loud CampaignAborted — never a hang or a
// silently partial result. The matrix:
//   (a) clean 2-worker run         -> identical report, one attempt per cell
//   (b) worker killed mid-cell     -> cell reassigned, provenance recorded
//   (c) worker hung past deadline  -> cell reassigned despite live heartbeats
//   (d) all workers dead           -> degraded in-process completion
//   (+) poisoned cell              -> retry cap aborts with a clear error
//   (+) protocol version mismatch  -> refused registration, campaign unharmed
//
// Misbehaving peers are driven through the raw frame protocol: net::run_worker
// cannot be talked into dying mid-cell, so the tests speak wire frames
// directly where the failure requires it.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/campaign.h"
#include "core/journal.h"
#include "core/scenario.h"
#include "net/coordinator.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/worker.h"
#include "test_helpers.h"

namespace {

using namespace avis;
using Clock = std::chrono::steady_clock;

// Registry-named cells only: factories cannot cross the process boundary.
// Budget sized so a cell runs in well under a second but still spans
// several strategy waves.
std::vector<core::CampaignCellSpec> test_cells(int approaches) {
  core::ScenarioGrid grid;
  grid.approaches = approaches >= 2 ? std::vector<std::string>{"avis", "random"}
                                    : std::vector<std::string>{"avis"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"box-manual"};
  grid.environments = {"calm"};
  grid.budget_ms = 20000;
  grid.seed = 100;
  return core::expand_to_cells(grid);
}

core::CampaignResult single_process_reference(const std::vector<core::CampaignCellSpec>& cells) {
  core::CampaignOptions options;
  options.cell_workers = 1;
  options.experiment_workers = 2;
  return core::CampaignRunner(options).run(cells);
}

net::CoordinatorOptions quick_options() {
  net::CoordinatorOptions options;
  options.port = 0;  // kernel-assigned; tests read it back
  options.heartbeat_interval_ms = 50;
  options.heartbeat_miss_threshold = 8;
  options.backoff_initial_ms = 20;
  options.backoff_cap_ms = 100;
  options.experiment_workers = 2;
  return options;
}

net::WorkerOptions worker_options(std::uint16_t port, const std::string& id) {
  net::WorkerOptions options;
  options.port = port;
  options.worker_id = id;
  options.heartbeat_interval_ms = 50;
  options.reconnect_delay_ms = 50;
  options.experiment_workers = 2;
  return options;
}

// A peer that speaks raw frames so it can misbehave on cue.
struct FakeWorker {
  net::FrameChannel channel;

  FakeWorker(std::uint16_t port, const std::string& id,
             int protocol = net::kProtocolVersion, const std::string& auth = "")
      : channel(net::connect_to("127.0.0.1", port)) {
    net::Hello hello;
    hello.protocol = protocol;
    hello.worker_id = id;
    hello.auth = auth;
    channel.send(net::encode(net::Message{hello}));
  }

  net::Message next(int timeout_ms = 10000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      if (auto payload = channel.poll_frame(20)) return net::decode(*payload);
    }
    throw std::runtime_error("fake worker timed out waiting for a frame");
  }
};

// (a) Clean run: two well-behaved workers, every cell one attempt, merged
// report identical to the single-process reference.
TEST(Distributed, CleanTwoWorkerRunMatchesSingleProcess) {
  const auto cells = test_cells(2);
  const core::CampaignResult reference = single_process_reference(cells);

  auto options = quick_options();
  options.allow_degraded = false;  // the fleet must do the work
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });
  bool alpha_ok = false, beta_ok = false;
  std::thread alpha([&] { alpha_ok = net::run_worker(worker_options(port, "alpha")); });
  std::thread beta([&] { beta_ok = net::run_worker(worker_options(port, "beta")); });
  serve.join();
  alpha.join();
  beta.join();

  EXPECT_TRUE(alpha_ok);  // orderly Shutdown, not connection exhaustion
  EXPECT_TRUE(beta_ok);
  avis::testing::expect_campaign_results_equal(reference, result);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.attempts, 1);
    EXPECT_TRUE(cell.completed_by == "alpha" || cell.completed_by == "beta")
        << cell.completed_by;
    EXPECT_TRUE(cell.reassigned_from.empty());
  }
}

// (b) Killed mid-cell: to the coordinator a SIGKILLed worker is an abrupt
// EOF with a cell in flight. The cell is reassigned and the report records
// who lost it.
TEST(Distributed, WorkerKilledMidCellIsReassigned) {
  const auto cells = test_cells(1);
  const core::CampaignResult reference = single_process_reference(cells);

  auto options = quick_options();
  options.allow_degraded = false;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  {
    FakeWorker griefer(port, "griefer");
    ASSERT_TRUE(std::holds_alternative<net::HelloAck>(griefer.next()));
    ASSERT_TRUE(std::holds_alternative<net::AssignCell>(griefer.next()));
    // Die with the cell in flight (destructor closes the socket).
  }

  bool ok = false;
  std::thread rescuer([&] { ok = net::run_worker(worker_options(port, "rescuer")); });
  serve.join();
  rescuer.join();

  EXPECT_TRUE(ok);
  avis::testing::expect_campaign_results_equal(reference, result);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].attempts, 2);
  EXPECT_EQ(result.cells[0].completed_by, "rescuer");
  ASSERT_EQ(result.cells[0].reassigned_from.size(), 1u);
  EXPECT_EQ(result.cells[0].reassigned_from[0], "griefer");
}

// (c) Hung past deadline: the worker keeps heartbeating (liveness never
// trips) but never reports; the per-cell deadline reclaims the cell.
TEST(Distributed, HungWorkerPastDeadlineIsReassigned) {
  const auto cells = test_cells(1);
  const core::CampaignResult reference = single_process_reference(cells);

  auto options = quick_options();
  options.allow_degraded = false;
  // Tight enough to keep the test quick, roomy enough that the rescuer's
  // genuine run (~0.5 s including calibration) never trips it.
  options.cell_deadline_ms = 3000;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  std::thread sloth([&] {
    FakeWorker hung(port, "sloth");
    ASSERT_TRUE(std::holds_alternative<net::HelloAck>(hung.next()));
    ASSERT_TRUE(std::holds_alternative<net::AssignCell>(hung.next()));
    // Heartbeat forever without reporting, until the coordinator enforces
    // the deadline by cutting the connection.
    try {
      while (true) {
        hung.channel.send(net::encode(net::Message{net::Heartbeat{}}));
        hung.channel.poll_frame(40);
      }
    } catch (const net::NetError&) {
      // Disconnected: the deadline fired. Exactly what the test wants.
    }
  });
  sloth.join();  // returns once the coordinator cut the hung worker

  bool ok = false;
  std::thread rescuer([&] { ok = net::run_worker(worker_options(port, "rescuer")); });
  serve.join();
  rescuer.join();

  EXPECT_TRUE(ok);
  avis::testing::expect_campaign_results_equal(reference, result);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].attempts, 2);
  EXPECT_EQ(result.cells[0].completed_by, "rescuer");
  ASSERT_EQ(result.cells[0].reassigned_from.size(), 1u);
  EXPECT_EQ(result.cells[0].reassigned_from[0], "sloth");
}

// (d) All workers dead: the only worker takes a cell down with it and
// nobody replaces it; the coordinator finishes in-process and the campaign
// still produces the full, identical report.
TEST(Distributed, AllWorkersDeadFallsBackToInProcessCompletion) {
  const auto cells = test_cells(2);
  const core::CampaignResult reference = single_process_reference(cells);

  auto options = quick_options();
  options.allow_degraded = true;
  options.degraded_after_ms = 200;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  {
    FakeWorker doomed(port, "doomed");
    ASSERT_TRUE(std::holds_alternative<net::HelloAck>(doomed.next()));
    ASSERT_TRUE(std::holds_alternative<net::AssignCell>(doomed.next()));
  }
  serve.join();

  avis::testing::expect_campaign_results_equal(reference, result);
  ASSERT_EQ(result.cells.size(), 2u);
  // The cell doomed took down carries the reassignment; every cell was
  // finished locally.
  int reassigned = 0;
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.completed_by, "local");
    reassigned += static_cast<int>(cell.reassigned_from.size());
  }
  EXPECT_EQ(reassigned, 1);
}

// Retry cap: a cell that takes a worker down on every attempt must abort
// the campaign with an error naming the cell — not retry forever, and not
// return a partial report.
TEST(Distributed, PoisonedCellExhaustsAttemptsAndAborts) {
  const auto cells = test_cells(1);

  auto options = quick_options();
  options.allow_degraded = false;  // pin the retry-cap path
  options.max_attempts = 2;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  std::string aborted_message;
  std::thread serve([&] {
    try {
      coordinator.run();
    } catch (const net::CampaignAborted& err) {
      aborted_message = err.what();
    }
  });

  // Every connection takes the cell and dies mid-flight; the abort closes
  // the listener, which ends the griefing loop.
  std::thread griefers([&] {
    for (int attempt = 0; attempt < 20; ++attempt) {
      try {
        FakeWorker griefer(port, "griefer-" + std::to_string(attempt));
        if (!std::holds_alternative<net::HelloAck>(griefer.next())) return;
        if (!std::holds_alternative<net::AssignCell>(griefer.next(2000))) return;
      } catch (const std::exception&) {
        return;  // listener closed: the campaign aborted
      }
    }
  });
  serve.join();
  griefers.join();

  EXPECT_NE(aborted_message.find("failed after 2 attempts"), std::string::npos)
      << aborted_message;
  EXPECT_NE(aborted_message.find("cell 0"), std::string::npos) << aborted_message;
}

// Retry cap, live-worker variant: the worker stays connected and healthy
// but reports the cell as failed on every attempt (CellReport{ok=false}).
// The abort must propagate out of the frame-handling path promptly — not be
// mistaken for a dead worker and leave the coordinator spinning with the
// listener closed and no cell that can ever complete.
TEST(Distributed, PoisonedCellFailedReportsFromLiveWorkerAbort) {
  const auto cells = test_cells(1);

  auto options = quick_options();
  options.allow_degraded = false;  // pin the retry-cap path
  options.max_attempts = 2;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  const auto start = Clock::now();
  std::string aborted_message;
  std::thread serve([&] {
    try {
      coordinator.run();
    } catch (const net::CampaignAborted& err) {
      aborted_message = err.what();
    }
  });

  FakeWorker saboteur(port, "saboteur");
  ASSERT_TRUE(std::holds_alternative<net::HelloAck>(saboteur.next()));
  // Fail every assignment while staying registered and responsive; the
  // abort's Shutdown (or the closing connection) ends the loop.
  try {
    while (true) {
      const net::Message message = saboteur.next();
      if (const net::AssignCell* assign = std::get_if<net::AssignCell>(&message)) {
        net::CellReport report;
        report.cell = assign->cell;
        report.ok = false;
        report.error = "simulated strategy crash";
        report.worker_id = "saboteur";
        saboteur.channel.send(net::encode(net::Message{report}));
      } else if (std::holds_alternative<net::Shutdown>(message)) {
        break;
      }
    }
  } catch (const net::NetError&) {
    // Connection died with the aborting coordinator: equally conclusive.
  }
  serve.join();

  // Promptly: two immediate failure reports plus one short backoff — not a
  // liveness timeout, and certainly not a hang.
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(30));
  EXPECT_NE(aborted_message.find("failed after 2 attempts"), std::string::npos)
      << aborted_message;
  EXPECT_NE(aborted_message.find("failed on worker: simulated strategy crash"),
            std::string::npos)
      << aborted_message;
}

// Version skew: a worker speaking a different protocol version is refused
// with a reason naming both versions, and the campaign completes without it.
TEST(Distributed, ProtocolVersionMismatchRefusesToPair) {
  const auto cells = test_cells(1);

  auto options = quick_options();
  options.allow_degraded = true;  // nobody else is coming
  options.degraded_after_ms = 100;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  {
    FakeWorker stale(port, "stale", net::kProtocolVersion + 1);
    const net::Message reply = stale.next();
    const net::HelloAck* ack = std::get_if<net::HelloAck>(&reply);
    ASSERT_NE(ack, nullptr);
    EXPECT_FALSE(ack->ok);
    EXPECT_NE(ack->reason.find("protocol version mismatch"), std::string::npos) << ack->reason;
  }
  serve.join();

  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].completed_by, "local");
  EXPECT_EQ(result.cells[0].attempts, 1);  // the refused worker never held it
}

// Crash-safe resume across execution paths: a journal written by an
// interrupted in-process run (what a crashed coordinator leaves on disk) is
// resumed by a coordinator, which merges the journaled cell and ships only
// the remainder to the fleet — and the merged report is identical to the
// uninterrupted single-process reference.
TEST(Distributed, CoordinatorResumesFromJournalAndMergesIdentically) {
  const auto cells = test_cells(2);
  const core::CampaignResult reference = single_process_reference(cells);
  const std::string path = ::testing::TempDir() + "avis_dist_resume_" +
                           std::to_string(::getpid()) + ".jsonl";

  // Phase 1: journal cell 0, then stop — the stop callback is polled
  // between cells, so exactly one completion lands in the journal.
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(cells, {}, 0));
    core::CampaignOptions options;
    options.cell_workers = 1;
    options.experiment_workers = 2;
    options.journal = &journal;
    int polls = 0;
    options.should_stop = [&polls] { return polls++ >= 1; };
    const core::CampaignResult partial = core::CampaignRunner(options).run(cells);
    ASSERT_TRUE(partial.interrupted);
    ASSERT_EQ(partial.cells.size(), 1u);
  }

  // Phase 2: the coordinator resumes. Cell 0 merges from the journal, cell
  // 1 goes to the only worker.
  const auto loaded = core::CampaignJournal::load(path);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_FALSE(loaded.dropped_torn_record);
  core::CampaignJournal journal = core::CampaignJournal::append_to(path);

  auto options = quick_options();
  options.allow_degraded = false;
  options.journal = &journal;
  options.resume = &loaded.cells;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });
  bool ok = false;
  std::thread finisher([&] { ok = net::run_worker(worker_options(port, "finisher")); });
  serve.join();
  finisher.join();

  EXPECT_TRUE(ok);
  avis::testing::expect_campaign_results_equal(reference, result);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].completed_by, "local");     // journaled provenance
  EXPECT_EQ(result.cells[1].completed_by, "finisher");  // freshly run
  // The journal now binds the complete campaign: a second resume would
  // re-run nothing.
  EXPECT_EQ(core::CampaignJournal::load(path).cells.size(), 2u);
  std::filesystem::remove(path);
}

// Auth: a worker whose Hello carries the wrong shared secret is refused at
// the handshake with a reason that names the mismatch — never the secret —
// and the campaign completes without it.
TEST(Distributed, AuthTokenMismatchRefusesRegistration) {
  const auto cells = test_cells(1);

  auto options = quick_options();
  options.auth_token = "open-sesame";
  options.allow_degraded = true;  // nobody legitimate is coming
  options.degraded_after_ms = 100;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  {
    FakeWorker impostor(port, "impostor", net::kProtocolVersion, "guess");
    const net::Message reply = impostor.next();
    const net::HelloAck* ack = std::get_if<net::HelloAck>(&reply);
    ASSERT_NE(ack, nullptr);
    EXPECT_FALSE(ack->ok);
    EXPECT_NE(ack->reason.find("auth token mismatch"), std::string::npos) << ack->reason;
    EXPECT_EQ(ack->reason.find("open-sesame"), std::string::npos) << ack->reason;
  }
  serve.join();

  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].completed_by, "local");
  EXPECT_EQ(result.cells[0].attempts, 1);  // the impostor never held the cell
}

// Auth, both directions through the real worker loop: the wrong token is a
// fatal ProtocolError (reconnecting cannot fix it), the right token runs
// the campaign to the identical report.
TEST(Distributed, MatchingAuthTokenRunsCampaign) {
  const auto cells = test_cells(1);
  const core::CampaignResult reference = single_process_reference(cells);

  auto options = quick_options();
  options.auth_token = "open-sesame";
  options.allow_degraded = false;
  net::CampaignCoordinator coordinator(cells, options);
  const std::uint16_t port = coordinator.port();

  core::CampaignResult result;
  std::thread serve([&] { result = coordinator.run(); });

  std::thread impostor([&] {
    auto bad = worker_options(port, "impostor");
    bad.auth_token = "wrong";
    EXPECT_THROW(net::run_worker(bad), net::ProtocolError);
  });
  impostor.join();

  bool ok = false;
  std::thread legit([&] {
    auto good = worker_options(port, "legit");
    good.auth_token = "open-sesame";
    ok = net::run_worker(good);
  });
  serve.join();
  legit.join();

  EXPECT_TRUE(ok);
  avis::testing::expect_campaign_results_equal(reference, result);
}

TEST(Distributed, ConstantTimeEqualSemantics) {
  EXPECT_TRUE(net::constant_time_equal("", ""));
  EXPECT_TRUE(net::constant_time_equal("abc", "abc"));
  EXPECT_FALSE(net::constant_time_equal("abc", "abd"));
  EXPECT_FALSE(net::constant_time_equal("", "abc"));
  EXPECT_FALSE(net::constant_time_equal("abc", ""));
  EXPECT_FALSE(net::constant_time_equal("abcabc", "abc"));
}

// Chaos sweep: with deterministic wire faults injected on BOTH sides of the
// connection, every seeded schedule still converges to the identical report
// — the reassignment/reconnection/degraded machinery absorbs whatever the
// chaos layer throws, by construction of the determinism contract.
TEST(Distributed, ChaosSweepPreservesReportIdentity) {
  const auto cells = test_cells(1);
  const core::CampaignResult reference = single_process_reference(cells);

  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3}}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    auto options = quick_options();
    options.allow_degraded = true;  // the last-resort safety net stays armed
    options.degraded_after_ms = 1000;
    options.max_attempts = 10;
    options.cell_deadline_ms = 4000;  // bound the dropped-AssignCell stall
    options.chaos.seed = seed;
    net::CampaignCoordinator coordinator(cells, options);
    const std::uint16_t port = coordinator.port();

    core::CampaignResult result;
    std::thread serve([&] { result = coordinator.run(); });
    std::thread worker([&] {
      auto chaotic = worker_options(port, "chaotic");
      chaotic.chaos.seed = seed;
      // Outcome deliberately ignored: chaos may eat the Shutdown frame, in
      // which case the worker exhausts reconnects against a closed listener.
      net::run_worker(chaotic);
    });
    serve.join();
    worker.join();

    avis::testing::expect_campaign_results_equal(reference, result);
  }
}

// The wire round trip is lossless for every message type (spot checks; the
// report payload itself is covered by the matrix tests above).
TEST(Distributed, ProtocolRoundTripsMessages) {
  net::AssignCell assign;
  assign.cell = 3;
  assign.attempt = 2;
  assign.deadline_ms = 45000;
  assign.label = "Avis";
  assign.scenario.approach = "avis";
  assign.scenario.personality = "ardupilot";
  assign.scenario.workload = "box-manual";
  assign.scenario.budget_ms = 20000;
  assign.scenario.seed = 100;
  assign.checkpoints.enabled = true;
  assign.checkpoints.trees = false;
  assign.checkpoints.interval_ms = 2500;
  assign.checkpoints.tree_transition_horizon = 3;
  assign.checkpoints.byte_budget = 48u * 1024 * 1024;
  const net::Message decoded = net::decode(net::encode(net::Message{assign}));
  const net::AssignCell* round = std::get_if<net::AssignCell>(&decoded);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->cell, 3);
  EXPECT_EQ(round->attempt, 2);
  EXPECT_EQ(round->deadline_ms, 45000);
  EXPECT_EQ(round->label, "Avis");
  EXPECT_EQ(round->scenario.approach, "avis");
  EXPECT_EQ(round->scenario.budget_ms, 20000);
  EXPECT_TRUE(round->checkpoints.enabled);
  EXPECT_FALSE(round->checkpoints.trees);
  EXPECT_EQ(round->checkpoints.interval_ms, 2500);
  EXPECT_EQ(round->checkpoints.tree_transition_horizon, 3);
  EXPECT_EQ(round->checkpoints.byte_budget, 48u * 1024 * 1024);

  net::CellReport failure;
  failure.cell = 7;
  failure.ok = false;
  failure.error = "registry name not found";
  failure.worker_id = "w1";
  const net::Message failure_decoded = net::decode(net::encode(net::Message{failure}));
  const net::CellReport* failure_round = std::get_if<net::CellReport>(&failure_decoded);
  ASSERT_NE(failure_round, nullptr);
  EXPECT_FALSE(failure_round->ok);
  EXPECT_EQ(failure_round->error, "registry name not found");

  // Malformed frames decode to ProtocolError, never a raw JsonError.
  EXPECT_THROW(net::decode("{\"type\": \"assign_cell\""), net::ProtocolError);
  EXPECT_THROW(net::decode("{\"type\": \"no_such_frame\"}"), net::ProtocolError);
  EXPECT_THROW(net::decode("not json at all"), net::ProtocolError);
}

}  // namespace
