// Shared fixtures and helpers for the Avis test suite.
#pragma once

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/checker.h"
#include "core/harness.h"
#include "fw/firmware.h"

namespace avis::testing {

// Runs one experiment with the given plan; convenience for integration and
// bug-window tests.
inline core::ExperimentResult run_plan(fw::Personality personality,
                                       workload::WorkloadId workload,
                                       const core::FaultPlan& plan,
                                       const fw::BugRegistry& bugs,
                                       const core::MonitorModel* model = nullptr,
                                       std::uint64_t seed = 100) {
  core::SimulationHarness harness;
  core::ExperimentSpec spec;
  spec.personality = personality;
  spec.workload = workload;
  spec.bugs = bugs;
  spec.plan = plan;
  spec.seed = seed;
  return harness.run(spec, model);
}

// A calibrated checker per (personality, workload), cached across tests in
// one binary run: profiling costs ~0.5 s per configuration.
inline core::Checker& cached_checker(fw::Personality personality,
                                     workload::WorkloadId workload) {
  static std::map<std::pair<int, int>, std::unique_ptr<core::Checker>> cache;
  const auto key = std::make_pair(static_cast<int>(personality), static_cast<int>(workload));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<core::Checker>(
                                personality, workload, fw::BugRegistry::current_code_base()))
             .first;
  }
  return *it->second;
}

// Field-by-field equality of two checker reports; used by the parallel-
// checker and campaign parity tests, whose contract is that reports are
// bit-identical regardless of worker count.
inline void expect_reports_equal(const core::CheckerReport& serial,
                                 const core::CheckerReport& parallel) {
  EXPECT_EQ(serial.strategy_name, parallel.strategy_name);
  EXPECT_EQ(serial.experiments, parallel.experiments);
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.budget_used_ms, parallel.budget_used_ms);
  EXPECT_EQ(serial.bug_first_found, parallel.bug_first_found);
  // Checkpoint accounting is derived from the applied-result sequence, so
  // it is part of the determinism contract too.
  EXPECT_EQ(serial.checkpoint_hits, parallel.checkpoint_hits);
  EXPECT_EQ(serial.checkpoint_misses, parallel.checkpoint_misses);
  EXPECT_EQ(serial.checkpoint_hits_by_level, parallel.checkpoint_hits_by_level);
  EXPECT_EQ(serial.checkpoint_evicted, parallel.checkpoint_evicted);
  EXPECT_EQ(serial.checkpoint_tree_evicted, parallel.checkpoint_tree_evicted);
  EXPECT_EQ(serial.checkpoint_skipped_ms, parallel.checkpoint_skipped_ms);
  EXPECT_EQ(serial.stalled_runs, parallel.stalled_runs);
  // Edge coverage is derived from transitions, which are bit-identical
  // across worker counts and checkpoint modes — so unlike the checkpoint
  // counters above it has no masking escape hatch.
  ASSERT_EQ(serial.edge_coverage.size(), parallel.edge_coverage.size());
  for (auto a = serial.edge_coverage.begin(), b = parallel.edge_coverage.begin();
       a != serial.edge_coverage.end(); ++a, ++b) {
    EXPECT_EQ(core::coverage_key_string(a->first), core::coverage_key_string(b->first));
    EXPECT_EQ(a->second, b->second) << core::coverage_key_string(a->first);
  }
  ASSERT_EQ(serial.unsafe.size(), parallel.unsafe.size());
  for (std::size_t i = 0; i < serial.unsafe.size(); ++i) {
    const core::UnsafeRecord& a = serial.unsafe[i];
    const core::UnsafeRecord& b = parallel.unsafe[i];
    EXPECT_EQ(a.plan.signature(), b.plan.signature()) << "record " << i;
    EXPECT_EQ(a.violation.type, b.violation.type) << "record " << i;
    EXPECT_EQ(a.violation.time_ms, b.violation.time_ms) << "record " << i;
    EXPECT_EQ(a.violation.mode_id, b.violation.mode_id) << "record " << i;
    EXPECT_EQ(a.fired_bugs, b.fired_bugs) << "record " << i;
    EXPECT_EQ(a.seed, b.seed) << "record " << i;
    EXPECT_EQ(a.experiment_index, b.experiment_index) << "record " << i;
    ASSERT_EQ(a.transitions.size(), b.transitions.size()) << "record " << i;
    for (std::size_t j = 0; j < a.transitions.size(); ++j) {
      EXPECT_EQ(a.transitions[j].time_ms, b.transitions[j].time_ms)
          << "record " << i << " transition " << j;
      EXPECT_EQ(a.transitions[j].mode_id, b.transitions[j].mode_id)
          << "record " << i << " transition " << j;
      EXPECT_EQ(a.transitions[j].mode_name, b.transitions[j].mode_name)
          << "record " << i << " transition " << j;
    }
  }
  EXPECT_EQ(serial.unsafe_by_bucket(), parallel.unsafe_by_bucket());
}

// Campaign-level report identity: cell-by-cell report equality in grid
// order, plus the aggregated checkpoint totals — the distributed merge path
// must reproduce the single-process sums exactly. Wall-clock and provenance
// fields (wall_seconds, attempts, completed_by, reassigned_from) are
// excluded by design: they describe how the campaign ran, not what it found.
inline void expect_campaign_results_equal(const core::CampaignResult& expected,
                                          const core::CampaignResult& actual) {
  ASSERT_EQ(expected.cells.size(), actual.cells.size());
  for (std::size_t i = 0; i < expected.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(expected.cells[i].spec.scenario.approach, actual.cells[i].spec.scenario.approach);
    EXPECT_EQ(expected.cells[i].spec.scenario.workload, actual.cells[i].spec.scenario.workload);
    EXPECT_EQ(expected.cells[i].spec.scenario.environment,
              actual.cells[i].spec.scenario.environment);
    expect_reports_equal(expected.cells[i].report, actual.cells[i].report);
  }
  EXPECT_EQ(expected.total_experiments(), actual.total_experiments());
  EXPECT_EQ(expected.total_checkpoint_hits(), actual.total_checkpoint_hits());
  EXPECT_EQ(expected.total_checkpoint_misses(), actual.total_checkpoint_misses());
  EXPECT_EQ(expected.total_checkpoint_evicted(), actual.total_checkpoint_evicted());
  EXPECT_EQ(expected.total_checkpoint_tree_evicted(), actual.total_checkpoint_tree_evicted());
  EXPECT_EQ(expected.total_checkpoint_skipped_ms(), actual.total_checkpoint_skipped_ms());
  EXPECT_EQ(expected.total_stalled_runs(), actual.total_stalled_runs());
  EXPECT_EQ(expected.coverage_union(), actual.coverage_union());
}

// Time of the first transition whose mode name matches, from the golden run.
inline sim::SimTimeMs transition_time(const core::MonitorModel& model,
                                      const std::string& mode_name) {
  for (const auto& t : model.golden_transitions()) {
    if (t.mode_name == mode_name) return t.time_ms;
  }
  ADD_FAILURE() << "no transition named " << mode_name << " in golden run";
  return -1;
}

}  // namespace avis::testing
