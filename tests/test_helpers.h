// Shared fixtures and helpers for the Avis test suite.
#pragma once

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/harness.h"
#include "fw/firmware.h"

namespace avis::testing {

// Runs one experiment with the given plan; convenience for integration and
// bug-window tests.
inline core::ExperimentResult run_plan(fw::Personality personality,
                                       workload::WorkloadId workload,
                                       const core::FaultPlan& plan,
                                       const fw::BugRegistry& bugs,
                                       const core::MonitorModel* model = nullptr,
                                       std::uint64_t seed = 100) {
  core::SimulationHarness harness;
  core::ExperimentSpec spec;
  spec.personality = personality;
  spec.workload = workload;
  spec.bugs = bugs;
  spec.plan = plan;
  spec.seed = seed;
  return harness.run(spec, model);
}

// A calibrated checker per (personality, workload), cached across tests in
// one binary run: profiling costs ~0.5 s per configuration.
inline core::Checker& cached_checker(fw::Personality personality,
                                     workload::WorkloadId workload) {
  static std::map<std::pair<int, int>, std::unique_ptr<core::Checker>> cache;
  const auto key = std::make_pair(static_cast<int>(personality), static_cast<int>(workload));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<core::Checker>(
                                personality, workload, fw::BugRegistry::current_code_base()))
             .first;
  }
  return *it->second;
}

// Time of the first transition whose mode name matches, from the golden run.
inline sim::SimTimeMs transition_time(const core::MonitorModel& model,
                                      const std::string& mode_name) {
  for (const auto& t : model.golden_transitions()) {
    if (t.mode_name == mode_name) return t.time_ms;
  }
  ADD_FAILURE() << "no transition named " << mode_name << " in golden run";
  return -1;
}

}  // namespace avis::testing
