#include <gtest/gtest.h>

#include <set>

#include "baselines/bayes_model.h"
#include "baselines/bfi.h"
#include "baselines/random_injection.h"
#include "baselines/stratified_bfi.h"
#include "core/harness.h"

namespace avis::baselines {
namespace {

using fw::ModeBucket;
using sensors::SensorType;

NaiveBayesModel default_model() { return NaiveBayesModel(default_training_corpus()); }

TEST(BayesModel, MainFlightModeIncidentsScoreHigh) {
  const auto model = default_model();
  EXPECT_GT(model.p_unsafe(SensorType::kCompass, ModeBucket::kWaypoint), 0.5);
  EXPECT_GT(model.p_unsafe(SensorType::kAccelerometer, ModeBucket::kWaypoint), 0.5);
  EXPECT_GT(model.p_unsafe(SensorType::kGyroscope, ModeBucket::kManual), 0.5);
}

TEST(BayesModel, UntrainedSensorsScoreLow) {
  // The corpus has no unsafe GPS/baro/battery incidents — the reason the
  // BFI family misses the GPS, barometer, and battery bugs of Table II.
  const auto model = default_model();
  EXPECT_LT(model.p_unsafe(SensorType::kGps, ModeBucket::kWaypoint), 0.45);
  EXPECT_LT(model.p_unsafe(SensorType::kBarometer, ModeBucket::kTakeoff), 0.45);
  EXPECT_LT(model.p_unsafe(SensorType::kBattery, ModeBucket::kWaypoint), 0.45);
}

TEST(BayesModel, LandingWindowsScoreLow) {
  const auto model = default_model();
  EXPECT_LT(model.p_unsafe(SensorType::kAccelerometer, ModeBucket::kLand), 0.45);
  EXPECT_LT(model.p_unsafe(SensorType::kGyroscope, ModeBucket::kLand), 0.45);
}

TEST(BayesModel, TakeoffImuIsBorderlineButFindable) {
  // Stratified BFI does find PX4-17057 (gyro at takeoff) in Table II.
  const auto model = default_model();
  EXPECT_GT(model.p_unsafe(SensorType::kGyroscope, ModeBucket::kTakeoff), 0.45);
  EXPECT_LT(model.p_unsafe(SensorType::kCompass, ModeBucket::kTakeoff), 0.45);
}

TEST(BayesModel, SetScoreIsMeanOverMembers) {
  // A mixed set with an untrained member scores below the trained member
  // alone — the model cannot anticipate joint failures (paper §VI-C).
  const auto model = default_model();
  std::vector<sensors::SensorId> mixed{{SensorType::kGps, 0}, {SensorType::kCompass, 0}};
  const double mixed_p = model.p_unsafe_set(mixed, ModeBucket::kWaypoint);
  const double compass_p = model.p_unsafe(SensorType::kCompass, ModeBucket::kWaypoint);
  const double gps_p = model.p_unsafe(SensorType::kGps, ModeBucket::kWaypoint);
  EXPECT_DOUBLE_EQ(mixed_p, (compass_p + gps_p) / 2.0);
  EXPECT_LT(mixed_p, compass_p);
}

TEST(ModeTimeline, LooksUpModeAndBucket) {
  std::vector<core::ModeTransition> transitions{
      {0, 0x0000, "preflight"}, {3540, 0x0400, "takeoff"}, {13000, 0x0501, "auto-wp1"}};
  ModeTimeline timeline(transitions);
  EXPECT_EQ(timeline.mode_at(0), 0x0000);
  EXPECT_EQ(timeline.mode_at(5000), 0x0400);
  EXPECT_EQ(timeline.mode_at(99999), 0x0501);
  EXPECT_EQ(timeline.bucket_at(5000), ModeBucket::kTakeoff);
  EXPECT_EQ(timeline.bucket_at(20000), ModeBucket::kWaypoint);
}

TEST(RandomInjection, ProposesDistinctPlansWithinMission) {
  RandomInjection random(core::SimulationHarness::iris_suite(), 60000, 9);
  core::BudgetClock budget(3600 * 1000);
  std::set<std::string> signatures;
  for (int i = 0; i < 200; ++i) {
    auto plan = random.next(budget);
    ASSERT_TRUE(plan.has_value());
    EXPECT_FALSE(plan->empty());
    for (const auto& e : plan->events) {
      EXPECT_GE(e.time_ms, 0);
      EXPECT_LT(e.time_ms, 60000);
    }
    EXPECT_TRUE(signatures.insert(plan->signature()).second);
  }
}

TEST(RandomInjection, DeterministicPerSeed) {
  RandomInjection a(core::SimulationHarness::iris_suite(), 60000, 5);
  RandomInjection b(core::SimulationHarness::iris_suite(), 60000, 5);
  core::BudgetClock budget(3600 * 1000);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.next(budget)->signature(), b.next(budget)->signature());
  }
}

TEST(BfiChecker, ChargesLabelCostPerCandidate) {
  const auto model = default_model();
  std::vector<core::ModeTransition> transitions{{0, 0x0000, "preflight"},
                                                {3540, 0x0400, "takeoff"}};
  BfiConfig config;
  config.epsilon = 0.0;
  BfiChecker bfi(core::SimulationHarness::iris_suite(), model, ModeTimeline(transitions), 3,
                 config);
  core::BudgetClock budget(200 * 1000);  // 200 s: at most 20 labels
  while (bfi.next(budget).has_value()) {
  }
  EXPECT_TRUE(budget.exhausted());
  EXPECT_LE(budget.labels(), 20);
  EXPECT_GT(budget.labels(), 0);
}

TEST(BfiChecker, DfsBarelyAdvancesInTime) {
  // The paper: "BFI was unable to explore even a single second of data
  // within its 2 hour budget."
  const auto model = default_model();
  std::vector<core::ModeTransition> transitions{{0, 0x0000, "preflight"},
                                                {3540, 0x0400, "takeoff"}};
  BfiConfig config;
  config.epsilon = 0.0;
  BfiChecker bfi(core::SimulationHarness::iris_suite(), model, ModeTimeline(transitions), 3,
                 config);
  core::BudgetClock budget = core::BudgetClock::two_hours();
  sim::SimTimeMs max_site = 0;
  while (auto plan = bfi.next(budget)) {
    for (const auto& e : plan->events) max_site = std::max(max_site, e.time_ms);
  }
  EXPECT_LT(max_site, 1000) << "DFS explored more than a second of the mission";
}

TEST(StratifiedBfi, GatesOutUntrainedScenarios) {
  const auto model = default_model();
  std::vector<core::ModeTransition> transitions{
      {0, 0x0000, "preflight"}, {3540, 0x0400, "takeoff"}, {13000, 0x0501, "auto-wp1"},
      {34000, 0x0900, "land"}};
  StratifiedBfi sbfi(core::SimulationHarness::iris_suite(), transitions, model);
  core::BudgetClock budget(1800 * 1000);
  std::set<SensorType> proposed_types;
  std::set<fw::ModeBucket> buckets;
  ModeTimeline timeline(transitions);
  while (auto plan = sbfi.next(budget)) {
    // Multi-sensor sets are scored by their riskiest member, so a gated
    // sensor may ride along in a pair; the gating property is about
    // singleton scenarios.
    if (plan->size() == 1) {
      for (const auto& e : plan->events) {
        proposed_types.insert(e.sensor.type);
        buckets.insert(timeline.bucket_at(e.time_ms));
      }
    }
    sbfi.feedback(*plan, core::ExperimentResult{});
  }
  // Scenarios the model was never trained on are never simulated.
  EXPECT_FALSE(proposed_types.contains(SensorType::kGps));
  EXPECT_FALSE(proposed_types.contains(SensorType::kBarometer));
  EXPECT_FALSE(proposed_types.contains(SensorType::kBattery));
  // In-model scenarios are.
  EXPECT_TRUE(proposed_types.contains(SensorType::kCompass) ||
              proposed_types.contains(SensorType::kAccelerometer) ||
              proposed_types.contains(SensorType::kGyroscope));
  // Landing-window scenarios are gated out entirely.
  EXPECT_FALSE(buckets.contains(fw::ModeBucket::kLand));
}

TEST(StratifiedBfi, PaysLabelsForSkippedScenarios) {
  const auto model = default_model();
  std::vector<core::ModeTransition> transitions{{3540, 0x0400, "takeoff"}};
  StratifiedBfi sbfi(core::SimulationHarness::iris_suite(), transitions, model);
  core::BudgetClock budget(600 * 1000);
  int runs = 0;
  while (sbfi.next(budget).has_value()) ++runs;
  EXPECT_GT(budget.labels(), runs) << "every candidate costs a label, run or not";
}

}  // namespace
}  // namespace avis::baselines
