#include <gtest/gtest.h>

#include <set>

#include "study/bug_study.h"

namespace avis::study {
namespace {

TEST(BugStudy, CorpusHas215Reports) {
  EXPECT_EQ(build_corpus().size(), 215u);
}

TEST(BugStudy, ReportIdsUnique) {
  std::set<std::string> ids;
  for (const auto& report : build_corpus()) {
    EXPECT_TRUE(ids.insert(report.id).second) << report.id;
  }
}

TEST(BugStudy, Finding1SensorShare) {
  const auto summary = summarize(build_corpus());
  // Paper: sensor bugs are 20% of all bugs...
  EXPECT_NEAR(summary.sensor_share(), 0.20, 0.015);
  // ...and 40% of crash-causing bugs.
  EXPECT_NEAR(summary.sensor_share_of_crashes(), 0.40, 0.03);
}

TEST(BugStudy, Finding2DefaultReproduction) {
  const auto summary = summarize(build_corpus());
  EXPECT_NEAR(summary.sensor_default_repro_share(), 0.47, 0.02);
}

TEST(BugStudy, Finding3SeriousSymptoms) {
  const auto summary = summarize(build_corpus());
  EXPECT_NEAR(summary.sensor_serious_share(), 0.34, 0.02);
}

TEST(BugStudy, SemanticBugsMostlyAsymptomatic) {
  // Paper: "Semantic bugs were often asymptomatic (90%)".
  const auto corpus = build_corpus();
  int semantic = 0;
  int asymptomatic = 0;
  for (const auto& report : corpus) {
    if (report.root_cause != RootCause::kSemantic) continue;
    ++semantic;
    if (report.symptom == Symptom::kNoSymptoms) ++asymptomatic;
  }
  EXPECT_NEAR(static_cast<double>(asymptomatic) / semantic, 0.90, 0.02);
  // Semantic bugs are ~68% of the corpus.
  EXPECT_NEAR(static_cast<double>(semantic) / corpus.size(), 0.68, 0.02);
}

TEST(BugStudy, MarginalsAreConsistent) {
  const auto summary = summarize(build_corpus());
  int total = 0;
  for (int c : summary.by_root_cause) total += c;
  EXPECT_EQ(total, summary.total);
  int sensor_repro = 0;
  for (int c : summary.sensor_by_repro) sensor_repro += c;
  EXPECT_EQ(sensor_repro, summary.by_root_cause[1]);
  int sensor_sym = 0;
  for (int c : summary.sensor_by_symptom) sensor_sym += c;
  EXPECT_EQ(sensor_sym, summary.by_root_cause[1]);
}

TEST(BugStudy, SpansBothProjectsAndStudyYears) {
  std::set<int> years;
  int apm = 0;
  int px4 = 0;
  for (const auto& report : build_corpus()) {
    years.insert(report.year);
    (report.project == Project::kArduPilot ? apm : px4) += 1;
  }
  EXPECT_EQ(years.size(), 4u);  // 2016-2019
  EXPECT_GT(apm, 90);
  EXPECT_GT(px4, 90);
}

}  // namespace
}  // namespace avis::study
