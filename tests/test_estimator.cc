#include <gtest/gtest.h>

#include "fw/estimator.h"
#include "fw/sensor_bus.h"
#include "hinj/hinj.h"
#include "sensors/sensor_models.h"
#include "sim/simulator.h"

namespace avis::fw {
namespace {

// Drives the estimator against a scripted ground-truth trajectory.
class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest()
      : seeds_(11),
        suite_(p_suite(), seeds_),
        server_(director_),
        client_(server_),
        bus_(suite_, client_),
        estimator_(config_, bus_) {}

  static sensors::SuiteConfig p_suite() {
    sensors::SuiteConfig config;
    config.gyroscopes = 2;
    config.accelerometers = 2;
    config.compasses = 3;
    return config;
  }

  // Advance `ms` of hover at the given altitude.
  void hover(double altitude_m, sim::SimTimeMs ms) {
    truth_.position = {0.0, 0.0, -altitude_m};
    truth_.velocity = {};
    truth_.acceleration = {};
    truth_.body_rates = {};
    for (sim::SimTimeMs i = 0; i < ms; ++i) {
      estimator_.update(now_++, truth_, env_);
    }
  }

  // Advance with constant climb rate.
  void climb(double rate, sim::SimTimeMs ms) {
    truth_.velocity = {0.0, 0.0, -rate};
    truth_.acceleration = {};
    for (sim::SimTimeMs i = 0; i < ms; ++i) {
      truth_.position.z -= rate * sim::kStepSeconds;
      estimator_.update(now_++, truth_, env_);
    }
  }

  FirmwareConfig config_;
  util::Rng seeds_;
  sensors::SensorSuite suite_;
  hinj::NullDirector director_;
  hinj::Server server_;
  hinj::Client client_;
  SensorBus bus_;
  StateEstimator estimator_;
  sim::Environment env_;
  sim::VehicleState truth_;
  sim::SimTimeMs now_ = 0;
};

TEST_F(EstimatorTest, ConvergesToHoverAltitude) {
  hover(15.0, 3000);
  EXPECT_NEAR(estimator_.state().altitude(), 15.0, 0.5);
  EXPECT_NEAR(estimator_.state().climb_rate(), 0.0, 0.25);
}

TEST_F(EstimatorTest, TracksClimb) {
  hover(5.0, 2000);
  climb(2.0, 2000);
  EXPECT_NEAR(estimator_.state().climb_rate(), 2.0, 0.4);
  EXPECT_NEAR(estimator_.state().altitude(), truth_.altitude(), 1.0);
}

TEST_F(EstimatorTest, TracksHeading) {
  truth_.attitude.yaw = 0.8;
  hover(10.0, 3000);
  EXPECT_NEAR(estimator_.state().attitude.yaw, 0.8, 0.08);
}

TEST_F(EstimatorTest, HealthStartsAllAlive) {
  hover(1.0, 10);
  const auto& h = estimator_.health(sensors::SensorType::kGyroscope);
  EXPECT_EQ(h.total, 2);
  EXPECT_EQ(h.alive, 2);
  EXPECT_TRUE(h.primary_alive);
  EXPECT_EQ(h.all_failed_at, -1);
  EXPECT_EQ(h.primary_failed_at, -1);
}

TEST_F(EstimatorTest, PrimaryFailoverKeepsEstimating) {
  hover(10.0, 2000);
  suite_.fail({sensors::SensorType::kGyroscope, 0});
  suite_.fail({sensors::SensorType::kCompass, 0});
  truth_.body_rates = {0.0, 0.0, 0.3};
  for (int i = 0; i < 2000; ++i) {
    truth_.attitude.yaw += 0.3 * sim::kStepSeconds;
    estimator_.update(now_++, truth_, env_);
  }
  // Backups keep heading/rate estimation alive.
  EXPECT_NEAR(estimator_.state().body_rates.z, 0.3, 0.05);
  EXPECT_NEAR(estimator_.state().attitude.yaw, truth_.attitude.yaw, 0.12);
  const auto& h = estimator_.health(sensors::SensorType::kGyroscope);
  EXPECT_FALSE(h.primary_alive);
  EXPECT_GE(h.primary_failed_at, 0);
  EXPECT_TRUE(h.any_alive());
}

TEST_F(EstimatorTest, FamilyDeathRecordsTimestamp) {
  hover(10.0, 500);
  suite_.fail({sensors::SensorType::kBarometer, 0});
  hover(10.0, 100);
  const auto& h = estimator_.health(sensors::SensorType::kBarometer);
  EXPECT_FALSE(h.any_alive());
  EXPECT_GE(h.all_failed_at, 500);
}

TEST_F(EstimatorTest, BaroDeathFallsBackToGpsAltitude) {
  hover(20.0, 2000);
  suite_.fail({sensors::SensorType::kBarometer, 0});
  hover(20.0, 4000);
  // Coarse but bounded: GPS vertical keeps the estimate near truth.
  EXPECT_NEAR(estimator_.state().altitude(), 20.0, 4.0);
}

TEST_F(EstimatorTest, GpsDeathSetsDeadReckoning) {
  hover(10.0, 2000);
  EXPECT_FALSE(estimator_.dead_reckoning());
  suite_.fail({sensors::SensorType::kGps, 0});
  hover(10.0, 500);
  EXPECT_TRUE(estimator_.dead_reckoning());
}

TEST_F(EstimatorTest, QuirkHoldStaleGpsVelocityMasksLoss) {
  hover(10.0, 2000);
  estimator_.quirks().hold_stale_gps_velocity = true;
  suite_.fail({sensors::SensorType::kGps, 0});
  hover(10.0, 500);
  EXPECT_FALSE(estimator_.dead_reckoning());  // the bug hides the loss
}

TEST_F(EstimatorTest, QuirkFreezeAltitude) {
  hover(10.0, 2000);
  estimator_.quirks().freeze_altitude = true;
  climb(2.0, 2000);
  // Published altitude stays frozen near 10 while truth climbs.
  EXPECT_NEAR(estimator_.state().altitude(), 10.0, 0.8);
  EXPECT_GT(truth_.altitude(), 13.0);
  EXPECT_NEAR(estimator_.state().climb_rate(), 0.0, 1e-9);
}

TEST_F(EstimatorTest, QuirkAltitudeBias) {
  hover(10.0, 2000);
  estimator_.quirks().altitude_bias = 5.0;
  hover(10.0, 1000);
  EXPECT_NEAR(estimator_.state().altitude(), 15.0, 0.8);
  // The bias must not feed back into the filter: removing it restores truth.
  estimator_.quirks().altitude_bias = 0.0;
  hover(10.0, 200);
  EXPECT_NEAR(estimator_.state().altitude(), 10.0, 0.8);
}

TEST_F(EstimatorTest, QuirkFreezeHeading) {
  truth_.attitude.yaw = 0.0;
  hover(10.0, 2000);
  estimator_.quirks().freeze_heading = true;
  truth_.body_rates.z = 0.5;
  for (int i = 0; i < 2000; ++i) {
    truth_.attitude.yaw = geo::wrap_angle(truth_.attitude.yaw + 0.5 * sim::kStepSeconds);
    estimator_.update(now_++, truth_, env_);
  }
  // Gyro still integrates; but the compass correction is frozen out. With
  // gyro alive the estimate still follows — freeze_heading matters once the
  // consumer holds stale data. Verify compass correction is bypassed by
  // checking the estimate drifts from truth once gyros also go stale.
  estimator_.quirks().stale_rates = true;
  truth_.body_rates.z = 0.0;
  const double yaw_before = estimator_.state().attitude.yaw;
  for (int i = 0; i < 1500; ++i) estimator_.update(now_++, truth_, env_);
  // Stale rate 0.5 rad/s keeps spinning the estimate.
  EXPECT_GT(std::abs(geo::wrap_angle(estimator_.state().attitude.yaw - yaw_before)), 0.4);
}

TEST_F(EstimatorTest, QuirkStaleRatesHoldsLastValue) {
  hover(10.0, 200);
  truth_.body_rates = {0.0, 0.4, 0.0};
  for (int i = 0; i < 200; ++i) estimator_.update(now_++, truth_, env_);
  estimator_.quirks().stale_rates = true;
  truth_.body_rates = {};
  for (int i = 0; i < 200; ++i) estimator_.update(now_++, truth_, env_);
  EXPECT_NEAR(estimator_.state().body_rates.y, 0.4, 0.05);
}

TEST_F(EstimatorTest, QuirkGpsAltitudeOnly) {
  hover(2.0, 3000);
  estimator_.quirks().gps_altitude_only = true;
  hover(2.0, 1000);
  // Published vertical velocity is zeroed; altitude comes from raw GPS.
  EXPECT_DOUBLE_EQ(estimator_.state().velocity.z, 0.0);
}

TEST_F(EstimatorTest, ResetStateEstimateZeroesAttitude) {
  truth_.velocity = {3.0, 0.0, 0.0};
  hover(10.0, 2000);
  truth_.velocity = {3.0, 0.0, 0.0};
  estimator_.reset_state_estimate();
  // One update publishes the reset state; velocity restarts near zero.
  estimator_.update(now_++, truth_, env_);
  EXPECT_LT(estimator_.state().velocity.norm(), 0.5);
}

TEST_F(EstimatorTest, CorruptVelocityShiftsEstimate) {
  hover(10.0, 2000);
  const double before = estimator_.state().velocity.x;
  estimator_.corrupt_velocity({8.0, 0.0, 0.0});
  hover(10.0, 1);
  EXPECT_GT(estimator_.state().velocity.x, before + 6.0);
}

TEST_F(EstimatorTest, BatteryPassThrough) {
  truth_.battery_voltage = 11.2;
  truth_.battery_remaining = 0.4;
  hover(5.0, 500);
  EXPECT_NEAR(estimator_.state().battery_voltage, 11.2, 0.2);
  EXPECT_NEAR(estimator_.state().battery_remaining, 0.4, 0.01);
}

}  // namespace
}  // namespace avis::fw
