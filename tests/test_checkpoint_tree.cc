// Checkpoint trees: snapshots of *faulty* runs keyed by activated-injection
// signature, so a plan extending a previously-run chain restores the shared
// faulty prefix instead of re-simulating it. The contract under test is the
// same as the fault-free root's (tests/test_checkpoint.cc): a tree-restored
// run is bit-identical — every trace sample, transition, violation and
// duration — to the same spec simulated cold, across personalities x
// workloads and through the batched engine with mixed cold / root-restored /
// tree-restored lanes. Eviction ordering rides along: byte-budget pressure
// evicts tree recordings whole (oldest first) and never touches the
// fault-free root to make room for the tree.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch_harness.h"
#include "core/checker.h"
#include "core/checkpoint.h"
#include "core/harness.h"
#include "core/sabre.h"
#include "core/scenario.h"
#include "test_helpers.h"

namespace avis::core {
namespace {

using sensors::SensorId;
using sensors::SensorType;

// Full-field equality, same discipline as tests/test_checkpoint.cc:
// "bit-identical" means every sample, not spot checks.
void expect_results_identical(const ExperimentResult& fresh, const ExperimentResult& restored,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(fresh.workload_passed, restored.workload_passed);
  EXPECT_EQ(fresh.duration_ms, restored.duration_ms);
  EXPECT_EQ(fresh.fired_bugs, restored.fired_bugs);
  EXPECT_EQ(fresh.crash_cause, restored.crash_cause);
  ASSERT_EQ(fresh.violation.has_value(), restored.violation.has_value());
  if (fresh.violation) {
    EXPECT_EQ(fresh.violation->type, restored.violation->type);
    EXPECT_EQ(fresh.violation->time_ms, restored.violation->time_ms);
    EXPECT_EQ(fresh.violation->mode_id, restored.violation->mode_id);
    EXPECT_EQ(fresh.violation->details, restored.violation->details);
  }
  ASSERT_EQ(fresh.transitions.size(), restored.transitions.size());
  for (std::size_t i = 0; i < fresh.transitions.size(); ++i) {
    EXPECT_EQ(fresh.transitions[i].time_ms, restored.transitions[i].time_ms) << "t " << i;
    EXPECT_EQ(fresh.transitions[i].mode_id, restored.transitions[i].mode_id) << "t " << i;
    EXPECT_EQ(fresh.transitions[i].mode_name, restored.transitions[i].mode_name) << "t " << i;
  }
  ASSERT_EQ(fresh.trace.size(), restored.trace.size());
  for (std::size_t i = 0; i < fresh.trace.size(); ++i) {
    EXPECT_EQ(fresh.trace[i].time_ms, restored.trace[i].time_ms) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].position, restored.trace[i].position) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].acceleration, restored.trace[i].acceleration) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].mode_id, restored.trace[i].mode_id) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].on_ground, restored.trace[i].on_ground) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].armed, restored.trace[i].armed) << "i=" << i;
  }
}

FaultPlan chain(std::initializer_list<std::pair<sim::SimTimeMs, SensorId>> events) {
  FaultPlan plan;
  for (const auto& [t, id] : events) plan.add(t, id);
  return plan;
}

// The headline contract: a chain that extends a recorded parent restores a
// *faulty-prefix* snapshot (resume point strictly past its first injection,
// depth >= 1) and is bit-identical to the cold run — swept over both
// personalities x two workloads, parent -> child -> grandchild, all sharing
// one context so stale state from any earlier combination would surface.
TEST(CheckpointTree, TreeRestoredChainsAreBitIdenticalAcrossTheRegistrySurface) {
  SimulationHarness harness;
  ExperimentContext context;
  CheckpointConfig config;  // trees on by default, 1000 ms cadence

  const SensorId compass{SensorType::kCompass, 0};
  const SensorId gps{SensorType::kGps, 0};
  const SensorId baro{SensorType::kBarometer, 0};

  int deep_restores = 0;
  for (const std::string& personality : {"ardupilot", "px4"}) {
    for (const std::string& workload : {"auto", "fence-mission"}) {
      const std::string label = personality + "/" + workload;
      SCOPED_TRACE(label);
      ScenarioSpec scenario;
      scenario.personality = personality;
      scenario.workload = workload;
      ExperimentSpec spec = scenario_prototype(scenario);

      CheckpointStore store = harness.record_prefix(spec, nullptr, config, &context);
      ASSERT_GT(store.size(), 0u);

      // Grow the tree: parent {compass@12s}, then child {.., gps@18s} (the
      // child's own recording files depth-2 snapshots past 18 s).
      spec.plan = chain({{12000, compass}});
      harness.run_recording(spec, nullptr, &context, store);
      ASSERT_GT(store.tree_size(), 0u) << "parent recording merged nothing";
      spec.plan = chain({{12000, compass}, {18000, gps}});
      harness.run_recording(spec, nullptr, &context, store);

      // min_depth, not exact: the transition horizon legitimately stops a
      // child's recording before its second injection on workloads whose
      // first fault triggers transitions quickly, so the grandchild may
      // only find depth-1 ancestors there. The matrix as a whole must
      // still produce depth-2 restores (asserted after the sweep).
      struct ChainCase {
        const char* name;
        FaultPlan plan;
        int min_depth;
      };
      const std::vector<ChainCase> cases = {
          {"child", chain({{12000, compass}, {18000, gps}}), 1},
          {"grandchild", chain({{12000, compass}, {18000, gps}, {24000, baro}}), 1},
          // Extends the parent at a different second fault: still forks from
          // the parent's {compass@12s} snapshots.
          {"sibling", chain({{12000, compass}, {20000, baro}}), 1},
          // No recorded ancestor: falls back to the fault-free root.
          {"root-fallback", chain({{12000, gps}, {18000, compass}}), 0},
      };
      for (const ChainCase& c : cases) {
        spec.plan = c.plan;
        const ExperimentResult fresh = harness.run(spec, nullptr, &context);
        const ExperimentResult restored = harness.run(spec, nullptr, &context, &store);
        EXPECT_GE(restored.resumed_depth, c.min_depth) << c.name;
        if (c.min_depth >= 1) {
          // A tree restore resumes strictly past the first injection — the
          // whole point: the shared faulty prefix is not re-simulated.
          EXPECT_GT(restored.resumed_from_ms, spec.plan.first_injection_ms()) << c.name;
        } else {
          EXPECT_EQ(restored.resumed_depth, 0) << c.name;
          EXPECT_LE(restored.resumed_from_ms, spec.plan.first_injection_ms()) << c.name;
        }
        if (restored.resumed_depth >= 2) ++deep_restores;
        expect_results_identical(fresh, restored, label + "/" + c.name);
      }
    }
  }
  // The two-level walk (grandchild forking from the child's recording) must
  // have real coverage somewhere in the matrix.
  EXPECT_GT(deep_restores, 0);
}

// Mixed lanes through the batched engine: cold (t=0), root-restored,
// tree-restored and fault-free specs in one batch, each bit-identical to
// its scalar cold run — at batch widths that split the mix differently.
TEST(CheckpointTree, BatchedMixedLanesMatchScalarColdRuns) {
  SimulationHarness harness;
  ExperimentContext context;
  CheckpointConfig config;

  const SensorId compass{SensorType::kCompass, 0};
  const SensorId gps{SensorType::kGps, 0};

  ScenarioSpec scenario;
  scenario.personality = "ardupilot";
  scenario.workload = "auto";
  ExperimentSpec prototype = scenario_prototype(scenario);

  CheckpointStore store = harness.record_prefix(prototype, nullptr, config, &context);
  ExperimentSpec parent = prototype;
  parent.plan = chain({{12000, compass}});
  harness.run_recording(parent, nullptr, &context, store);
  ASSERT_GT(store.tree_size(), 0u);

  std::vector<ExperimentSpec> specs;
  for (const FaultPlan& plan :
       {chain({{0, gps}}),                         // cold: injects at t=0
        chain({{12000, compass}, {18000, gps}}),   // tree hit (depth 1)
        chain({{9000, gps}}),                      // root hit
        FaultPlan{},                               // fault-free golden
        chain({{12000, compass}, {21000, gps}}),   // tree hit, later fork
        chain({{3000, compass}})}) {               // root hit, early
    specs.push_back(prototype);
    specs.back().plan = plan;
  }

  std::vector<ExperimentResult> scalar;
  for (const ExperimentSpec& spec : specs) scalar.push_back(harness.run(spec, nullptr, &context));

  for (std::size_t width : {std::size_t{2}, std::size_t{3}, specs.size()}) {
    SCOPED_TRACE("width " + std::to_string(width));
    BatchHarness engine(harness);
    for (std::size_t start = 0; start < specs.size(); start += width) {
      const std::size_t end = std::min(start + width, specs.size());
      const std::vector<ExperimentSpec> slice(specs.begin() + start, specs.begin() + end);
      const std::vector<ExperimentResult> batched = engine.run(slice, nullptr, &store);
      for (std::size_t i = 0; i < slice.size(); ++i) {
        expect_results_identical(scalar[start + i], batched[i],
                                 "lane " + std::to_string(start + i));
      }
    }
  }
}

// Eviction ordering: when root + tree exceed the byte budget, tree
// recordings are evicted whole (oldest first) and the fault-free root is
// never touched to make room — and an evicted-down store still restores
// bit-identically, just shallower.
TEST(CheckpointTree, BudgetPressureEvictsTreeRecordingsNeverTheRoot) {
  SimulationHarness harness;
  ExperimentContext context;

  const SensorId compass{SensorType::kCompass, 0};
  const SensorId gps{SensorType::kGps, 0};

  ScenarioSpec scenario;
  scenario.personality = "ardupilot";
  scenario.workload = "auto";
  ExperimentSpec prototype = scenario_prototype(scenario);

  // Measure the root's footprint with a roomy budget first.
  CheckpointConfig roomy;
  const CheckpointStore full = harness.record_prefix(prototype, nullptr, roomy, &context);
  ASSERT_GT(full.size(), 0u);

  // Room for the root plus a sliver: the first merged tree recording pushes
  // past the budget and must be evicted; the root must survive intact.
  CheckpointConfig tight;
  tight.byte_budget = full.total_bytes() + 4096;
  CheckpointStore store = harness.record_prefix(prototype, nullptr, tight, &context);
  ASSERT_EQ(store.evicted(), 0);
  const std::size_t root_snapshots = store.size();

  ExperimentSpec parent = prototype;
  parent.plan = chain({{12000, compass}});
  harness.run_recording(parent, nullptr, &context, store);
  EXPECT_GT(store.tree_evicted(), 0);
  EXPECT_EQ(store.tree_recordings(), 0u);
  EXPECT_EQ(store.tree_bytes(), 0u);
  // The root is never evicted to make room for the tree.
  EXPECT_EQ(store.evicted(), 0);
  EXPECT_EQ(store.size(), root_snapshots);

  // Restores from the evicted-down store fall back to the root and stay
  // bit-identical.
  ExperimentSpec child = prototype;
  child.plan = chain({{12000, compass}, {18000, gps}});
  const ExperimentResult fresh = harness.run(child, nullptr, &context);
  const ExperimentResult restored = harness.run(child, nullptr, &context, &store);
  EXPECT_EQ(restored.resumed_depth, 0);
  EXPECT_GT(restored.resumed_from_ms, 0);
  expect_results_identical(fresh, restored, "post-eviction child");
}

// FIFO whole-recording eviction under steady pressure: older recordings go
// first, the newest survives, and every eviction is counted.
TEST(CheckpointTree, EvictionIsOldestRecordingFirst) {
  SimulationHarness harness;
  ExperimentContext context;

  const SensorId compass{SensorType::kCompass, 0};
  const SensorId gps{SensorType::kGps, 0};
  const SensorId baro{SensorType::kBarometer, 0};

  ScenarioSpec scenario;
  scenario.personality = "ardupilot";
  scenario.workload = "auto";
  ExperimentSpec prototype = scenario_prototype(scenario);

  CheckpointConfig roomy;
  const CheckpointStore sized = harness.record_prefix(prototype, nullptr, roomy, &context);

  ExperimentSpec parent = prototype;
  parent.plan = chain({{12000, compass}});

  // Budget with room for the root and roughly one recording: merging a
  // second recording evicts the first (FIFO), not the newcomer.
  CheckpointStore probe = harness.record_prefix(prototype, nullptr, roomy, &context);
  harness.run_recording(parent, nullptr, &context, probe);
  ASSERT_GT(probe.tree_bytes(), 0u);

  CheckpointConfig capped;
  capped.byte_budget = sized.total_bytes() + probe.tree_bytes() + probe.tree_bytes() / 2;
  CheckpointStore store = harness.record_prefix(prototype, nullptr, capped, &context);
  harness.run_recording(parent, nullptr, &context, store);
  ASSERT_EQ(store.tree_evicted(), 0);
  ASSERT_GT(store.tree_size(), 0u);

  ExperimentSpec second = prototype;
  second.plan = chain({{14000, gps}});
  harness.run_recording(second, nullptr, &context, store);
  EXPECT_GT(store.tree_evicted(), 0);

  // The survivor is the newest recording: its {gps@14s} snapshots resolve,
  // the evicted {compass@12s} parent's no longer do.
  ExperimentSpec gps_child = prototype;
  gps_child.plan = chain({{14000, gps}, {19000, baro}});
  EXPECT_EQ(store.resolve(gps_child.plan).depth, 1);
  ExperimentSpec compass_child = prototype;
  compass_child.plan = chain({{12000, compass}, {19000, baro}});
  EXPECT_EQ(store.resolve(compass_child.plan).depth, 0);
}

// Checker-level eviction parity: a campaign squeezed into a tiny byte
// budget (root thinned, tree recordings churning) reports identically to a
// roomy one modulo the checkpoint counters themselves.
TEST(CheckpointTree, CheckerReportSurvivesBudgetPressure) {
  constexpr sim::SimTimeMs kBudgetMs = 300 * 1000;
  const auto suite = SimulationHarness::iris_suite();

  ExperimentSpec prototype;
  prototype.personality = fw::Personality::kArduPilotLike;
  prototype.workload = workload::WorkloadId::kAuto;
  prototype.seed = 100;

  const auto normalized = [](CheckerReport report) {
    report.checkpoint_hits = 0;
    report.checkpoint_misses = 0;
    report.checkpoint_hits_by_level.clear();
    report.checkpoint_evicted = 0;
    report.checkpoint_tree_evicted = 0;
    report.checkpoint_skipped_ms = 0;
    return report;
  };

  Checker roomy_checker(prototype);
  SabreScheduler roomy_strategy(suite, roomy_checker.model().golden_transitions());
  BudgetClock roomy_budget(kBudgetMs);
  const CheckerReport roomy = roomy_checker.run(roomy_strategy, roomy_budget);

  CheckpointConfig squeezed;
  squeezed.byte_budget = 512 * 1024;
  Checker tight_checker(prototype, squeezed);
  SabreScheduler tight_strategy(suite, tight_checker.model().golden_transitions());
  BudgetClock tight_budget(kBudgetMs);
  const CheckerReport tight = tight_checker.run(tight_strategy, tight_budget);
  EXPECT_GT(tight.checkpoint_evicted + tight.checkpoint_tree_evicted, 0);

  avis::testing::expect_reports_equal(normalized(roomy), normalized(tight));
}

}  // namespace
}  // namespace avis::core
